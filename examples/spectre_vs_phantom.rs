//! Baseline comparison: conventional Spectre-V2 vs PHANTOM.
//!
//! Three measurements side by side, per microarchitecture:
//! 1. the classic Spectre-V2 leak (two-load gadget, backend window) —
//!    works everywhere;
//! 2. the window-width gap between backend and frontend resteers;
//! 3. whether a phantom (frontend-resteered) path can still execute a
//!    load — the Zen 1/2 privilege the exploits build on.
//!
//! The per-microarchitecture rows are written as a custom
//! [`Scenario`] — the same four-hook contract every experiment in the
//! workspace uses — and sharded across threads by a [`TrialRunner`].
//! Row order and contents are identical at any thread count.
//!
//! Run with: `cargo run --release --example spectre_vs_phantom`

use phantom::experiment::{run_combo, TrainKind, VictimKind};
use phantom::runner::{Scenario, ScenarioError, Trial, TrialRunner};
use phantom::spectre::{spectre_v2_leak, window_comparison};
use phantom::UarchProfile;

struct Row {
    uarch: phantom::IStr,
    leak_ok: bool,
    spectre_uops: u32,
    phantom_uops: u32,
    phantom_executed: bool,
}

/// One trial per microarchitecture; each boots its own machines.
struct Comparison {
    profiles: Vec<UarchProfile>,
}

impl Scenario for Comparison {
    type State = ();
    type Checkpoint = ();
    type Sample = Row;
    type Output = Vec<Row>;

    fn trials(&self) -> usize {
        self.profiles.len()
    }

    fn setup(&self) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn checkpoint(&self, (): ()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn fork(&self, (): &()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn probe(&self, _state: &mut (), trial: Trial) -> Result<Row, ScenarioError> {
        let profile = self.profiles[trial.index].clone();
        let leak = spectre_v2_leak(profile.clone(), 0x5C)?;
        let w = window_comparison(&profile);
        let combo = run_combo(profile.clone(), TrainKind::JmpInd, VictimKind::NonBranch, 0)?;
        Ok(Row {
            uarch: profile.name.clone(),
            leak_ok: leak.correct(),
            spectre_uops: w.spectre_uops,
            phantom_uops: w.phantom_uops,
            phantom_executed: combo.executed,
        })
    }

    fn score(&self, samples: Vec<Row>) -> Vec<Row> {
        samples
    }
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let rows = TrialRunner::new().run(
        &Comparison {
            profiles: UarchProfile::amd(),
        },
        0,
    )?;

    println!(
        "{:<10} {:>14} {:>16} {:>16} {:>14}",
        "uarch", "spectre leak", "spectre window", "phantom window", "phantom EX"
    );
    for r in rows {
        println!(
            "{:<10} {:>14} {:>13} uop {:>13} uop {:>14}",
            r.uarch,
            if r.leak_ok { "0x5c ok" } else { "failed" },
            r.spectre_uops,
            r.phantom_uops,
            r.phantom_executed,
        );
    }
    println!();
    println!("Conventional Spectre leaks on every part — its window closes at");
    println!("execute. PHANTOM's window closes at decode: an order of magnitude");
    println!("narrower, zero execution on Zen 3/4 — and yet §7 turns the crumbs");
    println!("(one fetch, one decode, at most one load) into full KASLR breaks");
    println!("and, nested inside a Spectre window, arbitrary kernel reads.");
    Ok(())
}
