//! Baseline comparison: conventional Spectre-V2 vs PHANTOM.
//!
//! Three measurements side by side, per microarchitecture:
//! 1. the classic Spectre-V2 leak (two-load gadget, backend window) —
//!    works everywhere;
//! 2. the window-width gap between backend and frontend resteers;
//! 3. whether a phantom (frontend-resteered) path can still execute a
//!    load — the Zen 1/2 privilege the exploits build on.
//!
//! Run with: `cargo run --release --example spectre_vs_phantom`

use phantom::experiment::{run_combo, TrainKind, VictimKind};
use phantom::spectre::{spectre_v2_leak, window_comparison};
use phantom::UarchProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<10} {:>14} {:>16} {:>16} {:>14}",
        "uarch", "spectre leak", "spectre window", "phantom window", "phantom EX"
    );
    for profile in UarchProfile::amd() {
        let leak = spectre_v2_leak(profile.clone(), 0x5C)?;
        let w = window_comparison(&profile);
        let combo = run_combo(profile.clone(), TrainKind::JmpInd, VictimKind::NonBranch, 0)?;
        println!(
            "{:<10} {:>14} {:>13} uop {:>13} uop {:>14}",
            profile.name,
            if leak.correct() { "0x5c ok" } else { "failed" },
            w.spectre_uops,
            w.phantom_uops,
            combo.executed,
        );
    }
    println!();
    println!("Conventional Spectre leaks on every part — its window closes at");
    println!("execute. PHANTOM's window closes at decode: an order of magnitude");
    println!("narrower, zero execution on Zen 3/4 — and yet §7 turns the crumbs");
    println!("(one fetch, one decode, at most one load) into full KASLR breaks");
    println!("and, nested inside a Spectre window, arbitrary kernel reads.");
    Ok(())
}
