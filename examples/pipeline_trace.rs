//! Watch a PHANTOM misprediction happen, instruction by instruction.
//!
//! We run the paper's Figure 4 experiment under a pipeline tracer on
//! Zen 2 and Zen 4, printing each architectural step with the frontend's
//! (mis)beliefs annotated. The same nop produces an "EX, 1 load" wrong
//! path on Zen 2 and an "ID, 0 loads" one on Zen 4.
//!
//! Run with: `cargo run --release --example pipeline_trace`

use phantom_isa::asm::Assembler;
use phantom_isa::{Inst, Reg};
use phantom_mem::{PageFlags, VirtAddr};
use phantom_pipeline::{Machine, Tracer, UarchProfile};

fn trace_one(profile: UarchProfile) -> Result<(), Box<dyn std::error::Error>> {
    println!("=== {} ===", profile.name);
    let mut m = Machine::new(profile, 1 << 24);
    let text = PageFlags::USER_TEXT | PageFlags::WRITE;
    let x = VirtAddr::new(0x40_0ac0); // the victim site A/B
    let c = VirtAddr::new(0x48_0b40); // the phantom target C
    m.map_range(x.page_base(), 0x1000, text)?;
    m.map_range(VirtAddr::new(0x60_0000), 64, PageFlags::USER_DATA)?;
    m.set_reg(Reg::R8, 0x60_0000);

    // C: the signal payload (one load, then halt).
    let mut g = Assembler::new(c.raw());
    g.push(Inst::Load { dst: Reg::R9, base: Reg::R8, disp: 0 });
    g.push(Inst::Halt);
    m.load_blob(&g.finish()?, text)?;

    // Training run: jmp* at X -> C.
    let mut t = Assembler::new(x.raw());
    t.push(Inst::JmpInd { src: Reg::R11 });
    t.push(Inst::Halt);
    m.load_blob(&t.finish()?, text)?;
    m.set_reg(Reg::R11, c.raw());
    m.set_pc(x);
    println!("-- training run (jmp* {x} -> {c}):");
    let mut tracer = Tracer::new(64);
    tracer.run(&mut m, 8)?;
    print!("{}", tracer.render());

    // Victim run: the jmp* is now a nop sled, but the BTB remembers.
    m.poke(x, &[0x90, 0x90, 0xF4]);
    m.set_pc(x);
    println!("-- victim run (same bytes are now nops):");
    tracer.clear();
    tracer.run(&mut m, 8)?;
    print!("{}", tracer.render());
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    trace_one(UarchProfile::zen2())?;
    trace_one(UarchProfile::zen4())?;
    Ok(())
}
