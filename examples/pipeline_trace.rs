//! Watch a PHANTOM misprediction happen, instruction by instruction.
//!
//! We run the paper's Figure 4 experiment under a pipeline tracer on
//! Zen 2 and Zen 4, printing each architectural step with the frontend's
//! (mis)beliefs annotated. The same nop produces an "EX, 1 load" wrong
//! path on Zen 2 and an "ID, 0 loads" one on Zen 4.
//!
//! Alongside the tracer, a custom [`EventSink`] rides the typed event
//! bus and tallies the raw wrong-path events — the same attach/detach
//! API any new observation channel would use (see `DESIGN.md`).
//!
//! Run with: `cargo run --release --example pipeline_trace`

use phantom_isa::asm::Assembler;
use phantom_isa::{Inst, Reg};
use phantom_mem::{PageFlags, VirtAddr};
use phantom_pipeline::{EventSink, Machine, PipelineEvent, Tracer, UarchProfile};

/// A minimal bus consumer: tallies the wrong-path events of one run.
#[derive(Default)]
struct WrongPathTally {
    fetches: usize,
    uops: usize,
    loads: usize,
    resteers: usize,
}

impl EventSink for WrongPathTally {
    fn on_event(&mut self, event: &PipelineEvent) {
        match event {
            PipelineEvent::FetchLine {
                transient: true, ..
            } => self.fetches += 1,
            PipelineEvent::WrongPathUop { .. } => self.uops += 1,
            PipelineEvent::TransientLoad { .. } => self.loads += 1,
            PipelineEvent::Resteer { .. } => self.resteers += 1,
            _ => {}
        }
    }
}

fn trace_one(profile: UarchProfile) -> Result<(), Box<dyn std::error::Error>> {
    println!("=== {} ===", profile.name);
    let mut m = Machine::new(profile, 1 << 24);
    let text = PageFlags::USER_TEXT | PageFlags::WRITE;
    let x = VirtAddr::new(0x40_0ac0); // the victim site A/B
    let c = VirtAddr::new(0x48_0b40); // the phantom target C
    m.map_range(x.page_base(), 0x1000, text)?;
    m.map_range(VirtAddr::new(0x60_0000), 64, PageFlags::USER_DATA)?;
    m.set_reg(Reg::R8, 0x60_0000);

    // C: the signal payload (one load, then halt).
    let mut g = Assembler::new(c.raw());
    g.push(Inst::Load {
        dst: Reg::R9,
        base: Reg::R8,
        disp: 0,
    });
    g.push(Inst::Halt);
    m.load_blob(&g.finish()?, text)?;

    // Training run: jmp* at X -> C.
    let mut t = Assembler::new(x.raw());
    t.push(Inst::JmpInd { src: Reg::R11 });
    t.push(Inst::Halt);
    m.load_blob(&t.finish()?, text)?;
    m.set_reg(Reg::R11, c.raw());
    m.set_pc(x);
    println!("-- training run (jmp* {x} -> {c}):");
    let mut tracer = Tracer::new(64);
    tracer.run(&mut m, 8)?;
    print!("{}", tracer.render());

    // Victim run: the jmp* is now a nop sled, but the BTB remembers.
    // Attach a tally sink to the event bus for the duration of the run.
    m.poke(x, &[0x90, 0x90, 0xF4]);
    m.set_pc(x);
    println!("-- victim run (same bytes are now nops):");
    let tally_id = m.attach_sink(WrongPathTally::default());
    tracer.clear();
    tracer.run(&mut m, 8)?;
    print!("{}", tracer.render());
    let tally = m
        .detach_sink_as::<WrongPathTally>(tally_id)
        .expect("tally still attached");
    println!(
        "-- bus tally: {} resteer(s), {} wrong-path fetch(es), {} wrong-path uop(s), {} transient load(s)",
        tally.resteers, tally.fetches, tally.uops, tally.loads
    );
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    trace_one(UarchProfile::zen2())?;
    trace_one(UarchProfile::zen4())?;
    Ok(())
}
