//! A user-defined microarchitecture, end to end: parse a spec file,
//! register it, and compare it against its builtin ancestor.
//!
//! `examples/uarch/whatif.spec` describes "Zen 2F" — Zen 2 with Zen 4's
//! fast decode resteer. The paper's observation O3 (transient
//! *execution* of phantom targets) exists on Zen 1/2 only because their
//! decoder-detected resteer is slow; this what-if machine shows that
//! closing the resteer gap alone demotes the attack from EX to ID.
//!
//! Run with: `cargo run --example custom_uarch`

use phantom::experiment::{run_combo, TrainKind, VictimKind};
use phantom::{UarchProfile, UarchRegistry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/uarch/whatif.spec");
    let text = std::fs::read_to_string(path)?;

    let mut registry = UarchRegistry::with_builtins();
    let keys = registry.register_text(&text)?;
    println!("registered from whatif.spec: {}", keys.join(", "));

    println!(
        "\n{:<24} {:>15} {:>6} {:>6} {:>6} {:>7}",
        "microarchitecture", "resteer(cycles)", "IF", "ID", "EX", "stage"
    );
    for name in ["zen2", "zen2f"] {
        let spec = registry.get(name).expect("registered");
        let profile = spec.profile();
        let resteer = profile.frontend_resteer_latency;
        let o = run_combo(profile, TrainKind::JmpInd, VictimKind::NonBranch, 0)?;
        println!(
            "{:<24} {:>15} {:>6} {:>6} {:>6} {:>7}",
            o.uarch.as_str(),
            resteer,
            o.fetched,
            o.decoded,
            o.executed,
            o.stage()
        );
    }

    // The spec round-trips through the canonical printer.
    let whatif = registry.get("zen2f").expect("registered").clone();
    let reparsed = phantom_pipeline::spec::parse_specs(&whatif.to_text())?;
    assert_eq!(reparsed, vec![whatif]);
    println!("\nspec -> text -> spec round-trip: ok");

    // Sanity: the what-if really is stock Zen 2 apart from the resteer.
    let (zen2, zen2f) = (
        UarchProfile::zen2(),
        registry.get("zen2f").unwrap().profile(),
    );
    assert_eq!(zen2.btb_scheme, zen2f.btb_scheme);
    assert_eq!(zen2.cache, zen2f.cache);
    assert!(zen2f.frontend_resteer_latency < zen2.frontend_resteer_latency);
    Ok(())
}
