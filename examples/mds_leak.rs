//! §7.4 — leaking kernel memory with an MDS gadget: PHANTOM nested
//! inside a conventional Spectre window.
//!
//! The kernel module's `read_data()` has only ONE attacker-indexed load
//! after its bounds check — a classic "MDS gadget" that conventional
//! Spectre cannot exploit (no dependent second load). We train the
//! bounds check taken, inject a `jmp*` prediction at the gadget's direct
//! `call parse_data()`, and let the transient control flow steer into a
//! disclosure gadget that cache-encodes the secret byte into our reload
//! buffer — addressed through physmap, located with the previous attack
//! stages.
//!
//! Run with: `cargo run --release --example mds_leak`

use phantom::attacks::{leak_kernel_memory, MdsLeakConfig};
use phantom::UarchProfile;
use phantom_kernel::System;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bytes = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64usize);

    for profile in [UarchProfile::zen2(), UarchProfile::zen4()] {
        let name = profile.name.clone();
        let mut sys = System::new(profile, 1 << 28, 7)?;
        let physmap = sys.layout().physmap_base(); // from the §7.2 stage
        let result = leak_kernel_memory(
            &mut sys,
            physmap,
            &MdsLeakConfig {
                bytes,
                ..Default::default()
            },
        )?;

        println!("[{name}] leaking {bytes} bytes of planted kernel secret:");
        println!(
            "  signal: {}   accuracy: {:.1}%   rate: {:.0} B/s (simulated)",
            if result.signal { "yes" } else { "no" },
            result.accuracy * 100.0,
            result.bytes_per_sec
        );
        let shown = result.leaked.len().min(16);
        print!("  leaked : ");
        for b in &result.leaked[..shown] {
            print!("{b:02x} ");
        }
        print!("\n  actual : ");
        for b in &sys.secret()[..shown] {
            print!("{b:02x} ");
        }
        println!("\n");
    }
    println!("Zen 2 leaks perfectly; Zen 4's frontend squashes the nested");
    println!("phantom before the disclosure load dispatches, so the same");
    println!("gadget leaks nothing there — exactly the paper's split.");
    Ok(())
}
