//! End-to-end KASLR derandomization: the full §7 attack chain on Zen 2.
//!
//! Stage 1 (§7.1): break kernel-image KASLR with P1 — inject a `jmp*`
//!   prediction at each candidate's `getpid()` nop, watch the I-cache.
//! Stage 2 (§7.2): break physmap KASLR with P2 — confuse the `readv()`
//!   call site with the Listing 3 gadget, watch the D-cache.
//! Stage 3 (Table 5): find the physical address of our own huge page by
//!   making the kernel transiently load `physmap + guess` and
//!   Flush+Reloading our mapping.
//!
//! Run with: `cargo run --release --example kaslr_break`

use phantom::attacks::{
    break_kaslr_image, break_physmap, find_physical_address, KaslrImageConfig, PhysAddrConfig,
    PhysmapConfig,
};
use phantom::UarchProfile;
use phantom_kernel::layout::KaslrLayout;
use phantom_kernel::System;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024);
    let mut sys = System::new(UarchProfile::zen2(), 1 << 30, seed)?;
    println!("booted Zen 2 system, seed {seed} (KASLR randomized)\n");

    // --- Stage 1: kernel image ------------------------------------
    // Scan a 64-slot window (pass PHANTOM_FULL semantics via the repro
    // binary for the full 488); the window is centered blindly on the
    // search space here to keep the example fast.
    let actual_image = sys.layout().image_slot; // used only to size the demo window
    let window = actual_image.saturating_sub(32)..(actual_image + 32).min(488);
    let image = break_kaslr_image(
        &mut sys,
        &KaslrImageConfig {
            slots: window,
            seed,
            ..Default::default()
        },
    )?;
    println!(
        "stage 1: kernel image slot {} (score {}, {:.2} ms simulated) — {}",
        image.guessed_slot,
        image.best_score,
        image.seconds * 1e3,
        if image.correct { "CORRECT" } else { "wrong" }
    );
    let image_base = KaslrLayout::candidate_image_base(image.guessed_slot);

    // --- Stage 2: physmap ------------------------------------------
    let actual_physmap = sys.layout().physmap_slot;
    let window = actual_physmap.saturating_sub(32)..(actual_physmap + 32).min(25_600);
    let physmap = break_physmap(
        &mut sys,
        image_base,
        &PhysmapConfig {
            slots: window,
            seed,
            ..Default::default()
        },
    )?;
    println!(
        "stage 2: physmap slot {} (score {}, {:.2} ms simulated) — {}",
        physmap.guessed_slot,
        physmap.best_score,
        physmap.seconds * 1e3,
        if physmap.correct { "CORRECT" } else { "wrong" }
    );
    let physmap_base = KaslrLayout::candidate_physmap_base(physmap.guessed_slot);

    // --- Stage 3: physical address of our own page ------------------
    let pa = find_physical_address(
        &mut sys,
        image_base,
        physmap_base,
        &PhysAddrConfig {
            max_decoys: 32,
            seed,
        },
    )?;
    println!(
        "stage 3: our huge page is at physical {:#x} after {} guesses ({:.2} ms simulated) — {}",
        pa.guessed_pa.unwrap_or(0),
        pa.guesses_tested,
        pa.seconds * 1e3,
        if pa.correct { "CORRECT" } else { "wrong" }
    );

    println!(
        "\nfull derandomization {}",
        if image.correct && physmap.correct && pa.correct {
            "succeeded"
        } else {
            "FAILED"
        }
    );
    Ok(())
}
