//! §6.2 — reverse engineering the Zen 3/4 cross-privilege BTB functions.
//!
//! First the paper's failed approach: brute-forcing small bit-flip
//! patterns (every Figure 7 function folds `b47`, so no few-bit pattern
//! collides). Then the successful one: collect *random* colliding user
//! addresses behaviourally and solve the resulting GF(2) system for
//! bounded-weight XOR functions — the paper used Z3, we use Gaussian
//! elimination, which is exact for linear functions.
//!
//! Run with: `cargo run --release --example btb_reverse`

use phantom::collide::{
    brute_force, collision_pattern, recover_figure7, BtbOracle, CollisionOracle,
};
use phantom_bpu::BtbScheme;
use phantom_mem::VirtAddr;

fn main() {
    let k = VirtAddr::new(0xffff_ffff_8124_6ac0);
    println!("target kernel address K = {k}\n");

    // --- Brute force (fails on Zen 3, succeeds trivially on Zen 2). --
    let mut zen3 = BtbOracle::new(BtbScheme::zen34());
    let bf = brute_force(&mut zen3, k, 3);
    println!(
        "brute force on Zen 3 (<=3 extra flips): {} patterns in {} trials",
        bf.patterns.len(),
        bf.tested
    );
    let mut zen2 = BtbOracle::new(BtbScheme::zen12());
    let bf2 = brute_force(&mut zen2, k, 0);
    println!(
        "brute force on Zen 2 (0 extra flips):   {} pattern(s) — Retbleed-style high-bit aliasing\n",
        bf2.patterns.len()
    );

    // --- Random collisions + solver (the Figure 7 procedure). --------
    let ks = [k, VirtAddr::new(0xffff_ffff_9230_0ac0)];
    let fig7 = recover_figure7(&mut zen3, &ks, 24, 1);
    println!(
        "collected {} random collisions per address; recovered {} functions:",
        fig7.samples_per_address,
        fig7.functions.len()
    );
    for (i, f) in fig7.functions.iter().enumerate() {
        println!("  f{i} = {f}");
    }
    println!(
        "\npaper's published XOR patterns hold against the recovery: {}",
        fig7.paper_patterns_hold
    );

    // --- Derive a working user<->kernel collision pattern. ------------
    if let Some(pattern) = collision_pattern(&fig7.functions) {
        let user = VirtAddr::new(k.raw() ^ pattern);
        println!("derived collision pattern {pattern:#x}");
        println!("  user alias of K: {user}");
        println!("  behavioural check: {}", zen3.collides(user, k));
    }
}
