//! Quickstart: trigger a PHANTOM speculation and watch how far it gets.
//!
//! We train the branch predictor with an indirect jump, replace the jump
//! with a `nop`, and run it. The frontend — which consults the BTB
//! *before decoding anything* — steers to the stale target: the target
//! is fetched (O1) and decoded (O2) on every modeled microarchitecture,
//! and on Zen 1/2 its first load even executes (O3).
//!
//! Run with: `cargo run --example quickstart`

use phantom::experiment::{run_combo, TrainKind, VictimKind};
use phantom::UarchProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("PHANTOM quickstart: a nop trained as jmp*\n");
    println!(
        "{:<28} {:>6} {:>6} {:>6} {:>7}",
        "microarchitecture", "IF", "ID", "EX", "stage"
    );
    for profile in UarchProfile::all() {
        let outcome = run_combo(profile.clone(), TrainKind::JmpInd, VictimKind::NonBranch, 0)?;
        println!(
            "{:<28} {:>6} {:>6} {:>6} {:>7}",
            profile.name,
            outcome.fetched,
            outcome.decoded,
            outcome.executed,
            outcome.stage()
        );
    }
    println!("\nEvery part fetches and decodes the phantom target before the");
    println!("decoder notices the 'branch' is a nop; Zen 1/2 even dispatch a");
    println!("load from the squashed path — that load's cache fill is the");
    println!("side channel the paper's exploits are built on.");
    Ok(())
}
