//! §6.4 — the PHANTOM covert channel, user receiver / kernel sender.
//!
//! Each bit is encoded in the choice of injected branch target: a mapped
//! kernel-text address (`T1`) or an unmapped hole with the same cache-set
//! bits (`T0`). The receiver primes an I-cache set, invokes `getpid()`,
//! and probes: the kernel's transient fetch of `T1` evicts a primed way.
//!
//! Bit trials are independent (each rewinds to a post-boot machine
//! snapshot), so a [`TrialRunner`] shards them across threads; the
//! decoded stream — and every printed number — is identical at any
//! thread count.
//!
//! Run with: `cargo run --release --example covert_channel [bits] [threads]`

use phantom::covert::{execute_channel_on, fetch_channel_on, CovertConfig};
use phantom::runner::TrialRunner;
use phantom::UarchProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let bits = args.next().and_then(|s| s.parse().ok()).unwrap_or(512usize);
    let runner = match args.next().and_then(|s| s.parse().ok()) {
        Some(threads) => TrialRunner::with_threads(threads),
        None => TrialRunner::new(),
    };
    let config = CovertConfig { bits, seed: 11 };

    println!(
        "fetch (P1) channel — {bits} random bits per part, {} thread(s):",
        runner.threads()
    );
    for profile in UarchProfile::amd() {
        let r = fetch_channel_on(&runner, profile, config)?;
        println!(
            "  {:<7} {:<20} accuracy {:>6.2}%   {:>10.0} bits/s (simulated)",
            r.uarch,
            r.model,
            r.accuracy * 100.0,
            r.bits_per_sec
        );
    }

    println!("\nexecute (P2) channel — needs phantom execution (Zen 1/2):");
    for profile in [
        UarchProfile::zen1(),
        UarchProfile::zen2(),
        UarchProfile::zen3(),
    ] {
        let r = execute_channel_on(&runner, profile, config)?;
        println!(
            "  {:<7} {:<20} accuracy {:>6.2}%   {:>10.0} bits/s (simulated)",
            r.uarch,
            r.model,
            r.accuracy * 100.0,
            r.bits_per_sec
        );
    }
    println!("\nZen 3's execute-channel accuracy collapses to coin-flipping:");
    println!("its decoder resteer lands before the transient load dispatches.");
    Ok(())
}
