//! Cross-crate integration: the full Table 1 grid, asserted against the
//! paper's published shape.

use phantom::experiment::{asymmetric_combos, run_combo, Stage, TrainKind, VictimKind};
use phantom::UarchProfile;

/// The paper's headline shape: for every servable asymmetric
/// combination, fetch and decode happen on all parts; execute only on
/// Zen 1/2.
#[test]
fn table1_shape_matches_the_paper() {
    for profile in UarchProfile::all() {
        let name = profile.name.clone();
        let vendor_blind = profile.indirect_victim_blind;
        let is_zen12 = matches!(name.as_str(), "Zen" | "Zen 2");
        for (train, victim) in asymmetric_combos() {
            let o = run_combo(profile.clone(), train, victim, 0).expect("combo runs");
            // The Intel jmp*-victim blind spot (marked in the paper's
            // Table 1 as absent signals on 9th/11th gen). It gates
            // BTB-served predictions only: the untrained (straight-line)
            // case still signals.
            if vendor_blind && victim == VictimKind::JmpInd && train != TrainKind::NonBranch {
                assert_eq!(o.stage_enum(), Stage::None, "{name}: {train} x {victim}");
                continue;
            }
            // The (non-branch x jcc) cell rides the conditional
            // direction predictor, a backend (Spectre-PHT) window on
            // every part — the paper notes occasional transient execute
            // here "unrelated to the training".
            if train == TrainKind::NonBranch && victim == VictimKind::Jcc {
                assert_eq!(o.stage_enum(), Stage::Ex, "{name}: {train} x {victim}");
                continue;
            }
            assert!(o.fetched, "O1 fails: {name}: {train} x {victim}");
            assert!(o.decoded, "O2 fails: {name}: {train} x {victim}");
            assert_eq!(
                o.executed, is_zen12,
                "O3 split fails: {name}: {train} x {victim}"
            );
        }
    }
}

/// Exactly the 22 asymmetric variants of §5.2, including the two
/// different-displacement diagonals.
#[test]
fn twenty_two_variants_including_displacement_diagonals() {
    let combos = asymmetric_combos();
    assert_eq!(combos.len(), 22);
    assert!(combos.contains(&(TrainKind::Jmp, VictimKind::Jmp)));
    assert!(combos.contains(&(TrainKind::Jcc, VictimKind::Jcc)));
    assert!(!combos.contains(&(TrainKind::JmpInd, VictimKind::JmpInd)));
    assert!(!combos.contains(&(TrainKind::Ret, VictimKind::Ret)));
    assert!(!combos.contains(&(TrainKind::NonBranch, VictimKind::NonBranch)));
}

/// The channels never report a deeper stage than the simulator's ground
/// truth allows (no false EX from an ID-only path, etc.).
#[test]
fn channels_never_overreport_against_ground_truth() {
    for profile in [
        UarchProfile::zen1(),
        UarchProfile::zen3(),
        UarchProfile::intel12(),
    ] {
        for (train, victim) in asymmetric_combos() {
            let o = run_combo(profile.clone(), train, victim, 0).expect("combo runs");
            let truth_exec = o.reports.iter().any(|r| !r.loads_dispatched.is_empty());
            let truth_decoded = o.reports.iter().any(|r| r.decoded);
            assert!(
                !o.executed || truth_exec,
                "{}: {train} x {victim} EX overreported",
                profile.name
            );
            assert!(
                !o.decoded || truth_decoded,
                "{}: {train} x {victim} ID overreported",
                profile.name
            );
        }
    }
}

/// Figure 6 end-to-end: the ID channel fires only at the matching page
/// offset, on both parts the paper plots (Zen 2 and Zen 4).
#[test]
fn figure6_dip_only_at_the_series_offset() {
    for profile in [UarchProfile::zen2(), UarchProfile::zen4()] {
        let name = profile.name.clone();
        let points = phantom::experiment::figure6(profile, 0xac0, 0x160).expect("sweep");
        let hits: Vec<_> = points.iter().filter(|p| p.misses > 0).collect();
        assert_eq!(hits.len(), 1, "{name}: exactly one signalling offset");
        assert_eq!(hits[0].offset, 0xac0, "{name}");
    }
}
