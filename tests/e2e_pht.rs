//! End-to-end PHT channel over the committed M1-Firestorm spec: the
//! file registers next to the builtins, its set-indexed history-mixed
//! CBP admits *out-of-place* mistraining (a folded two-bit alias from
//! another page) that the builtin Zen parts do not exhibit, and the
//! BranchSpectre-style attack recovers a planted secret through the
//! predictor's counters alone — identically at any worker count.

use phantom::attacks::{out_of_place_cbp_alias, pht_channel_on, PhtChannelConfig};
use phantom::runner::TrialRunner;
use phantom::{UarchProfile, UarchRegistry, UarchSpec};
use phantom_mem::VirtAddr;
use phantom_pipeline::spec::parse_specs;

const SPEC_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/examples/uarch/m1_firestorm.spec"
);

fn m1_spec() -> UarchSpec {
    let text = std::fs::read_to_string(SPEC_PATH).expect("committed spec file");
    let mut registry = UarchRegistry::with_builtins();
    let keys = registry.register_text(&text).expect("spec registers");
    assert_eq!(keys, vec!["m1f".to_string()]);
    registry.get("m1f").expect("registered").clone()
}

#[test]
fn committed_m1_spec_registers_and_round_trips() {
    let spec = m1_spec();
    assert_eq!(
        parse_specs(&spec.to_text()).expect("reprints"),
        vec![spec.clone()],
        "committed spec must round-trip through the canonical printer"
    );
    let scheme = &spec.profile().cbp_scheme;
    assert_eq!(scheme.summary(), "1024x2 c2 h16 +tag");
}

/// The mistraining geometry is spec-dependent: the M1 scheme's
/// out-of-place alias is a folded PC-bit *pair* — both halves of one
/// index fold flip, parity survives, tags untouched — while every
/// builtin Zen part aliases on a single far bit. The pair does not
/// alias under the legacy scheme, so the builtins cannot be mistrained
/// this way.
#[test]
fn out_of_place_mistraining_is_an_m1_geometry_not_a_zen_one() {
    let victim = VirtAddr::new(0x40_0000);

    let m1 = m1_spec().profile().cbp_scheme.clone();
    let m1_flip = out_of_place_cbp_alias(&m1, victim)
        .expect("m1 alias exists")
        .raw()
        ^ victim.raw();
    assert_eq!(m1_flip.count_ones(), 2, "folded pair, got {m1_flip:#x}");
    let lo = m1_flip.trailing_zeros();
    assert_eq!(
        m1_flip,
        (1 << lo) | (1 << (lo + 10)),
        "both halves of one b(i+2)^b(i+12) fold"
    );

    for profile in UarchProfile::amd() {
        let zen_flip = out_of_place_cbp_alias(&profile.cbp_scheme, victim)
            .expect("zen alias exists")
            .raw()
            ^ victim.raw();
        assert_eq!(
            zen_flip.count_ones(),
            1,
            "{}: single far bit, got {zen_flip:#x}",
            profile.name
        );
        assert!(
            !profile
                .cbp_scheme
                .aliases(victim, VirtAddr::new(victim.raw() ^ m1_flip), 0),
            "{}: the M1 pair must not alias under the legacy scheme",
            profile.name
        );
    }

    // And symmetrically: the M1 scheme separates the Zen far-bit alias
    // (that bit feeds an index fold whose partner stays put).
    assert!(!m1.aliases(victim, VirtAddr::new(victim.raw() ^ (1 << 13)), 0));
}

/// The attack itself, end-to-end on the registered spec: a secret
/// planted in CBP counters is recovered through timing alone, with the
/// out-of-place flip mask reported back — and the run is byte-stable
/// across worker counts.
#[test]
fn m1_spec_leaks_through_the_pht_at_any_worker_count() {
    let profile = m1_spec().profile();
    let cfg = PhtChannelConfig { bits: 48, seed: 7 };

    let one = pht_channel_on(&TrialRunner::with_threads(1), profile.clone(), cfg)
        .expect("single-threaded run");
    assert!(one.accuracy >= 0.9, "accuracy {}", one.accuracy);
    assert_eq!(one.flip_mask.count_ones(), 2, "out-of-place folded pair");

    let eight =
        pht_channel_on(&TrialRunner::with_threads(8), profile, cfg).expect("eight-threaded run");
    assert_eq!(one.accuracy, eight.accuracy);
    assert_eq!(one.probes, eight.probes);
    assert_eq!(one.abstentions, eight.abstentions);
    assert_eq!(one.mean_confidence, eight.mean_confidence);
    assert_eq!(one.flip_mask, eight.flip_mask);
}
