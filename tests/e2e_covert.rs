//! Cross-crate integration: the §6.4 covert channels stay inside the
//! paper's accuracy bands end to end.

use phantom::covert::{execute_channel, fetch_channel, table2, CovertConfig};
use phantom::UarchProfile;

const CFG: CovertConfig = CovertConfig {
    bits: 192,
    seed: 4096,
};

#[test]
fn fetch_channel_band_on_all_zen() {
    // Table 2-top band: 90.67%–100%.
    for profile in UarchProfile::amd() {
        let name = profile.name.clone();
        let r = fetch_channel(profile, CFG).expect("channel");
        assert!(
            (0.85..=1.0).contains(&r.accuracy),
            "{name}: accuracy {} outside the Table 2 band",
            r.accuracy
        );
    }
}

#[test]
fn execute_channel_band_and_uarch_split() {
    // Table 2-bottom band on Zen 1/2…
    for profile in [UarchProfile::zen1(), UarchProfile::zen2()] {
        let name = profile.name.clone();
        let r = execute_channel(profile, CFG).expect("channel");
        assert!(r.accuracy >= 0.85, "{name}: accuracy {}", r.accuracy);
    }
    // …and chance-level on Zen 4 (no phantom execution).
    let dead = execute_channel(UarchProfile::zen4(), CFG).expect("channel");
    assert!(
        dead.accuracy < 0.7,
        "Zen 4 execute channel: {}",
        dead.accuracy
    );
}

#[test]
fn table2_emits_six_rows_in_paper_order() {
    let rows = table2(CovertConfig { bits: 64, seed: 1 }).expect("table");
    assert_eq!(rows.len(), 6);
    let uarchs: Vec<&str> = rows.iter().map(|r| r.uarch.as_str()).collect();
    assert_eq!(uarchs, ["Zen", "Zen 2", "Zen 3", "Zen 4", "Zen", "Zen 2"]);
    assert!(rows[..4]
        .iter()
        .all(|r| format!("{}", r.kind).contains("fetch")));
    assert!(rows[4..]
        .iter()
        .all(|r| format!("{}", r.kind).contains("execute")));
    // Rates are simulated but finite and positive.
    assert!(rows
        .iter()
        .all(|r| r.bits_per_sec.is_finite() && r.bits_per_sec > 0.0));
}
