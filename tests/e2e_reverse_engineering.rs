//! Cross-crate integration: the §6.2 reverse-engineering pipeline,
//! validated end-to-end against the full-system observation channel.

use phantom::collide::{
    brute_force, collision_pattern, recover_figure7, BtbOracle, CollisionOracle,
};
use phantom::primitives::{p1_detect_executable, PrimitiveConfig};
use phantom::UarchProfile;
use phantom_bpu::BtbScheme;
use phantom_kernel::System;
use phantom_mem::VirtAddr;
use phantom_sidechannel::NoiseModel;

#[test]
fn brute_force_vs_solver_split_matches_the_paper() {
    let k = VirtAddr::new(0xffff_ffff_8124_6ac0);
    // Zen 3: brute force over small flip counts finds nothing.
    let mut zen3 = BtbOracle::new(BtbScheme::zen34());
    assert!(brute_force(&mut zen3, k, 2).patterns.is_empty());
    // The solver pipeline succeeds.
    let fig7 = recover_figure7(&mut zen3, &[k], 30, 5);
    assert_eq!(fig7.functions.len(), 12);
    assert!(fig7.paper_patterns_hold);
}

#[test]
fn recovered_pattern_drives_a_real_cross_privilege_attack() {
    // Recover functions behaviourally, derive a pattern, and use it as
    // the PrimitiveConfig of a live P1 probe on a booted Zen 3 system.
    let mut oracle = BtbOracle::new(BtbScheme::zen34());
    let fig7 = recover_figure7(&mut oracle, &[VirtAddr::new(0xffff_ffff_8124_6ac0)], 30, 6);
    let pattern = collision_pattern(&fig7.functions).expect("derivable");

    let mut sys = System::new(UarchProfile::zen3(), 1 << 28, 42).expect("boot");
    let cfg = PrimitiveConfig {
        pattern,
        attacker_base: VirtAddr::new(0x5000_0000),
        arena: None,
    };
    let mut noise = NoiseModel::quiet(0);
    let victim = sys.image().listing1_nop;
    let mapped = sys.image().base + 0x1000;
    assert!(
        p1_detect_executable(&mut sys, &cfg, victim, mapped, &mut noise).expect("p1"),
        "solver-derived pattern {pattern:#x} aliases user->kernel end to end"
    );
}

#[test]
fn paper_patterns_work_on_zen4_too() {
    // §6.2: "We confirm both of these patterns to work on AMD Zen 4 as
    // well."
    let mut zen4_oracle = BtbOracle::new(BtbScheme::zen34());
    let k = VirtAddr::new(0xffff_ffff_a042_1ac0);
    for pattern in [0xffff_bff8_0000_0000u64, 0xffff_8003_ff80_0000] {
        assert!(zen4_oracle.collides(VirtAddr::new(k.raw() ^ pattern), k));
    }
    // And end to end on a booted Zen 4 (AutoIBRS on — O5 keeps P1 alive).
    let mut sys = System::new(UarchProfile::zen4(), 1 << 28, 43).expect("boot");
    let cfg = PrimitiveConfig::zen34_paper(VirtAddr::new(0x5000_0000));
    let mut noise = NoiseModel::quiet(0);
    let victim = sys.image().listing1_nop;
    let mapped = sys.image().base + 0x1000;
    assert!(p1_detect_executable(&mut sys, &cfg, victim, mapped, &mut noise).expect("p1"));
}

#[test]
fn zen12_needs_no_reverse_engineering() {
    // Retbleed-era folding: the high bits are untagged, so the trivial
    // high-bit pattern collides — no solver needed.
    let mut zen2 = BtbOracle::new(BtbScheme::zen12());
    let out = brute_force(&mut zen2, VirtAddr::new(0xffff_ffff_8124_6ac0), 0);
    assert_eq!(out.patterns.len(), 1);
    assert_eq!(out.tested, 1);
}
