//! Cross-crate integration: the mitigation matrix of §6.3/§8.

use phantom::mitigations::{
    ibpb_blocks_p1, o4_suppress_bp_on_non_br, o5_auto_ibrs_fetch, suppress_overhead,
};
use phantom::primitives::{p2_detect_mapped, PrimitiveConfig};
use phantom::UarchProfile;
use phantom_kernel::System;
use phantom_mem::VirtAddr;
use phantom_sidechannel::NoiseModel;

#[test]
fn o4_matrix_across_zen_parts() {
    // §8.1's two problems: ① the bit does not exist on Zen 1;
    // ② on Zen 2 it stops execution but not IF/ID.
    let zen1 = o4_suppress_bp_on_non_br(UarchProfile::zen1()).expect("runs");
    assert!(zen1.suppressed.executed, "problem ①: unsupported on Zen 1");

    let zen2 = o4_suppress_bp_on_non_br(UarchProfile::zen2()).expect("runs");
    assert!(zen2.baseline.executed);
    assert!(
        zen2.suppressed.fetched && zen2.suppressed.decoded,
        "problem ②: IF/ID survive"
    );
    assert!(!zen2.suppressed.executed, "…but EX is stopped");
}

#[test]
fn suppress_does_not_protect_branch_victims() {
    // "P2 and P3 still work if targeting a victim instruction that is a
    // control-flow edge": the readv() call-site confusion drives a
    // branch victim, so SuppressBPOnNonBr (enabled by the hardened boot)
    // does not stop it on Zen 2.
    let mut sys = System::new(UarchProfile::zen2(), 1 << 28, 5).expect("boot");
    assert!(
        sys.machine().bpu().msr().suppress_bp_on_non_br,
        "hardened boot sets the bit"
    );
    let cfg = PrimitiveConfig::for_system(&sys, VirtAddr::new(0x5000_0000));
    let mut noise = NoiseModel::quiet(0);
    let (l2c, l3g) = (sys.image().listing2_call, sys.image().listing3_gadget);
    let physmap_addr = sys.layout().physmap_base() + 0x10_4000;
    let detected =
        p2_detect_mapped(&mut sys, &cfg, l2c, l3g, physmap_addr, &mut noise).expect("p2");
    assert!(
        detected,
        "P2 through a call victim despite SuppressBPOnNonBr"
    );
}

#[test]
fn o5_and_ibpb() {
    assert!(
        o5_auto_ibrs_fetch(3).expect("runs"),
        "O5: AutoIBRS leaves cross-privilege IF intact"
    );
    assert!(
        !ibpb_blocks_p1(4).expect("runs"),
        "IBPB flushes every prediction structure and kills P1"
    );
}

#[test]
fn overhead_is_fraction_of_a_percent_shaped() {
    let r = suppress_overhead(UarchProfile::zen2());
    assert!(r.geomean_overhead_pct > 0.0);
    assert!(r.geomean_overhead_pct < 2.0, "{}", r.geomean_overhead_pct);
    // The cost concentrates in decoder-path-heavy (big-code) workloads.
    let bigcode = r
        .per_workload
        .iter()
        .find(|(name, _, _)| *name == "bigcode")
        .expect("suite includes bigcode");
    let overhead = bigcode.2 as f64 / bigcode.1 as f64 - 1.0;
    assert!(overhead > 0.003, "bigcode overhead {overhead}");
}

#[test]
fn suppress_bit_is_a_noop_on_zen1_machines() {
    use phantom_pipeline::Machine;
    let mut m = Machine::new(UarchProfile::zen1(), 1 << 20);
    let effective = m.write_msr(phantom_bpu::MsrState {
        suppress_bp_on_non_br: true,
        ..Default::default()
    });
    assert!(!effective.suppress_bp_on_non_br);
}
