//! End-to-end checks for the discover fuzzer: the committed regression
//! corpus replays green, the JSONL report is byte-identical at any
//! worker count, and the minimizer's invariants hold under proptest.

use std::path::PathBuf;

use phantom::runner::{trial_seed, TrialRunner};
use phantom_bench::discover::{
    beyond_table1, discover_jsonl, generate_case, minimize_case, parse_case, replay_case, run_case,
    run_discover_on, CaseOutcome, DiscoverConfig,
};
use proptest::prelude::*;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "case"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "committed corpus must not be empty");
    files
}

#[test]
fn committed_corpus_replays_green() {
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).expect("corpus file reads");
        let entry =
            parse_case(&text).unwrap_or_else(|e| panic!("{}: parse failed: {e}", path.display()));
        replay_case(&entry).unwrap_or_else(|e| panic!("{}: replay failed: {e}", path.display()));
    }
}

#[test]
fn corpus_includes_a_pair_beyond_the_table1_grid() {
    // The fuzzer's reason to exist: at least one committed leak is not
    // reachable from the hand-written Table 1 sweep — an out-of-place
    // (aliased) training site or a mutated spec.
    let mut beyond = 0;
    let mut aliased = 0;
    let mut mutated = 0;
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).expect("corpus file reads");
        let entry = parse_case(&text).expect("corpus parses");
        if beyond_table1(&entry.case) {
            beyond += 1;
        }
        if entry.case.delta != 0 {
            aliased += 1;
        }
        if entry.case.mutated {
            mutated += 1;
        }
    }
    assert!(beyond >= 1, "no corpus entry goes beyond the Table 1 grid");
    assert!(
        aliased >= 1,
        "no corpus entry uses an aliased training site"
    );
    assert!(mutated >= 1, "no corpus entry carries a mutated spec");
}

#[test]
fn corpus_entries_are_minimizer_fixpoints() {
    // Committed cases are already minimized; re-minimizing must be the
    // identity (the minimizer is deterministic and idempotent).
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).expect("corpus file reads");
        let entry = parse_case(&text).expect("corpus parses");
        let again = minimize_case(&entry.case);
        assert_eq!(
            again,
            entry.case,
            "{}: minimizer moved an already-minimal case",
            path.display()
        );
    }
}

#[test]
fn discover_jsonl_identical_at_one_and_two_workers() {
    let cfg = DiscoverConfig { budget: 8, seed: 5 };
    let one = run_discover_on(&TrialRunner::with_threads(1), cfg).expect("runs");
    let two = run_discover_on(&TrialRunner::with_threads(2), cfg).expect("runs");
    let jsonl = discover_jsonl(&one);
    assert_eq!(jsonl, discover_jsonl(&two));
    // The report carries the full budget's disposition accounting.
    assert_eq!(
        one.findings.len() + one.quiet + one.rejected_total() + one.faulted,
        cfg.budget
    );
    assert!(jsonl
        .lines()
        .last()
        .expect("summary line")
        .contains("discover-summary"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Minimization is a pure function of the case and preserves the
    /// leak property: for any trial seed whose case leaks, the
    /// minimized case still leaks, two minimizations agree, and the
    /// minimizer is idempotent.
    #[test]
    fn minimizer_preserves_the_leak_and_is_deterministic(index in 0usize..4096) {
        let case = generate_case(trial_seed(9, index));
        if matches!(run_case(&case), CaseOutcome::Leak(_)) {
            let min = minimize_case(&case);
            prop_assert!(
                matches!(run_case(&min), CaseOutcome::Leak(_)),
                "minimized case stopped leaking: {min:?}"
            );
            prop_assert_eq!(&min, &minimize_case(&case));
            prop_assert_eq!(&min, &minimize_case(&min));
            prop_assert!(min.ops.len() <= case.ops.len());
        }
    }

    /// Case generation is a pure function of the seed.
    #[test]
    fn case_generation_is_pure(seed in any::<u64>()) {
        prop_assert_eq!(generate_case(seed), generate_case(seed));
    }
}
