//! The spec layer must be a lossless re-expression of the legacy
//! profile constructors: every builtin spec compiles to exactly the
//! profile its constructor built, and because the bench snapshot is a
//! pure function of those profiles, this is what keeps
//! `BENCH_phantom.json` byte-identical across the refactor.
//! (`tests/determinism.rs` pins the full snapshot bytes themselves, at
//! 1 and 8 runner threads.)

use phantom::runner::TrialRunner;
use phantom::{UarchProfile, UarchRegistry, UarchSpec};
use phantom_bench::run_figure6_on;
use phantom_pipeline::spec::{parse_specs, specs_to_text};

type BuiltinPair = (&'static str, fn() -> UarchSpec, fn() -> UarchProfile);

#[test]
fn every_builtin_spec_matches_its_legacy_constructor() {
    let pairs: [BuiltinPair; 8] = [
        ("zen1", UarchSpec::zen1, UarchProfile::zen1),
        ("zen2", UarchSpec::zen2, UarchProfile::zen2),
        ("zen3", UarchSpec::zen3, UarchProfile::zen3),
        ("zen4", UarchSpec::zen4, UarchProfile::zen4),
        ("intel9", UarchSpec::intel9, UarchProfile::intel9),
        ("intel11", UarchSpec::intel11, UarchProfile::intel11),
        ("intel12", UarchSpec::intel12, UarchProfile::intel12),
        ("intel13", UarchSpec::intel13, UarchProfile::intel13),
    ];
    for (key, spec, profile) in pairs {
        assert_eq!(spec().profile(), profile(), "{key} drifted from its spec");
    }
    // And the registry serves the same profiles in Table 1 order.
    assert_eq!(UarchRegistry::builtin().profiles(), UarchProfile::all());
}

#[test]
fn builtin_specs_survive_a_text_round_trip_with_identical_profiles() {
    let builtins = UarchSpec::builtins();
    let reparsed = parse_specs(&specs_to_text(&builtins)).expect("builtin text parses");
    assert_eq!(reparsed, builtins);
    for (a, b) in reparsed.iter().zip(&builtins) {
        assert_eq!(a.profile(), b.profile(), "{} profile drifted", a.key);
    }
}

/// The acceptance path: the committed example spec parses, registers
/// next to the builtins, and completes a Figure 6 sweep end-to-end.
#[test]
fn committed_whatif_spec_runs_figure6() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/uarch/whatif.spec");
    let text = std::fs::read_to_string(path).expect("committed spec file");

    let mut registry = UarchRegistry::with_builtins();
    let keys = registry.register_text(&text).expect("spec registers");
    assert_eq!(keys, vec!["zen2f".to_string()]);

    let whatif = registry.get("zen2f").expect("registered").clone();
    assert_eq!(
        parse_specs(&whatif.to_text()).expect("reprints"),
        vec![whatif.clone()],
        "committed spec must round-trip through the canonical printer"
    );

    let runner = TrialRunner::with_threads(2);
    let points =
        run_figure6_on(&runner, whatif.profile(), 0x400).expect("figure 6 sweep completes");
    let signalling: Vec<_> = points.iter().filter(|p| p.misses > 0).collect();
    assert_eq!(signalling.len(), 1, "one signalling offset");
    assert_eq!(signalling[0].offset, 0xac0, "the paper's 0xac0 dip");
}
