//! The trial runner's determinism contract, end to end: with the same
//! seeds (experiment seed and the NoiseModel stream it derives), the
//! rendered report output is byte-identical whether the trials run on
//! one worker thread or many. Trial sharding is contiguous and
//! order-preserving, and every probe is a pure function of the
//! post-train state and its own `Trial`, so thread count can never
//! change a published number.

use phantom::covert::{execute_channel_on, fetch_channel_on, table2_on, CovertConfig};
use phantom::experiment::table1_on;
use phantom::report;
use phantom::report::json::BenchSnapshot;
use phantom::report::value::JsonValue;
use phantom::runner::{trial_seed, Scenario, ScenarioError, Trial, TrialRunner};
use phantom::{UarchProfile, UarchRegistry};
use phantom_bench::campaign::{self, CampaignConfig, CampaignScenario};
use phantom_bench::{collect_snapshot, BenchConfig};

#[test]
fn table1_report_is_byte_identical_across_thread_counts() {
    let profiles = [UarchProfile::zen2(), UarchProfile::zen3()];
    let one = table1_on(&TrialRunner::with_threads(1), &profiles, 5).unwrap();
    let many = table1_on(&TrialRunner::with_threads(8), &profiles, 5).unwrap();
    assert_eq!(report::render_table1(&one), report::render_table1(&many));
}

#[test]
fn table2_report_is_byte_identical_across_thread_counts() {
    let config = CovertConfig { bits: 48, seed: 13 };
    let one = table2_on(&TrialRunner::with_threads(1), config).unwrap();
    let many = table2_on(&TrialRunner::with_threads(6), config).unwrap();
    assert_eq!(report::render_table2(&one), report::render_table2(&many));
}

#[test]
fn channel_results_match_field_by_field_across_thread_counts() {
    let config = CovertConfig { bits: 40, seed: 21 };
    for threads in [2, 3, 7] {
        let base =
            fetch_channel_on(&TrialRunner::with_threads(1), UarchProfile::zen4(), config).unwrap();
        let sharded = fetch_channel_on(
            &TrialRunner::with_threads(threads),
            UarchProfile::zen4(),
            config,
        )
        .unwrap();
        assert_eq!(base.accuracy, sharded.accuracy, "{threads} threads");
        assert_eq!(base.seconds, sharded.seconds, "{threads} threads");
        assert_eq!(base.bits_per_sec, sharded.bits_per_sec, "{threads} threads");
    }
    let base =
        execute_channel_on(&TrialRunner::with_threads(1), UarchProfile::zen1(), config).unwrap();
    let sharded =
        execute_channel_on(&TrialRunner::with_threads(5), UarchProfile::zen1(), config).unwrap();
    assert_eq!(base.accuracy, sharded.accuracy);
    assert_eq!(base.seconds, sharded.seconds);
}

/// The canonical `repro bench` snapshot — every experiment, serialized
/// — is byte-identical at 1 and 8 worker threads. This is the
/// machine-readable analogue of the rendered-report tests above, and
/// what makes a committed `BENCH_phantom.json` diffable across hosts.
#[test]
fn bench_snapshot_json_is_byte_identical_across_thread_counts() {
    let cfg = BenchConfig::default();
    let one = collect_snapshot(&TrialRunner::with_threads(1), &cfg)
        .unwrap()
        .to_json_string();
    let eight = collect_snapshot(&TrialRunner::with_threads(8), &cfg)
        .unwrap()
        .to_json_string();
    assert_eq!(one, eight, "snapshot bytes depend on thread count");
}

/// A full snapshot — which embeds every record type in `report::json`,
/// including the host section — survives serialize → parse → compare.
#[test]
fn bench_snapshot_round_trips_through_json() {
    let cfg = BenchConfig {
        host_meta: true,
        ..BenchConfig::default()
    };
    let snapshot = collect_snapshot(&TrialRunner::with_threads(2), &cfg).unwrap();
    assert!(snapshot.host.is_some(), "host section requested");
    let text = snapshot.to_json_string();
    let reparsed = BenchSnapshot::from_json_str(&text).unwrap();
    assert_eq!(snapshot, reparsed);
    assert_eq!(text, reparsed.to_json_string());
}

/// The noise sweep shards one trial per sweep point, and each point
/// derives its NoiseModel stream from the scenario seed — so the
/// adaptive decoder's accuracy, probe spend, and abstention counts are
/// identical at any thread count, knob by knob.
#[test]
fn noise_sweep_is_identical_across_thread_counts() {
    let cfg = phantom::ablation::NoiseSweepConfig::quick(31);
    let one = phantom::ablation::noise_sweep_on(&TrialRunner::with_threads(1), &cfg).unwrap();
    let eight = phantom::ablation::noise_sweep_on(&TrialRunner::with_threads(8), &cfg).unwrap();
    assert_eq!(one.len(), eight.len());
    for (a, b) in one.iter().zip(&eight) {
        assert_eq!(a.axis, b.axis);
        assert_eq!(a.value, b.value);
        assert_eq!(a.accuracy, b.accuracy, "{} = {}", a.axis, a.value);
        assert_eq!(a.probes, b.probes, "{} = {}", a.axis, a.value);
        assert_eq!(a.abstentions, b.abstentions, "{} = {}", a.axis, a.value);
        assert_eq!(
            a.mean_confidence, b.mean_confidence,
            "{} = {}",
            a.axis, a.value
        );
    }
}

/// A scenario built to *maximize* completion-order skew: trial `i`
/// sleeps `(trials - i)` milliseconds before returning, so on a
/// multi-worker pool the LAST trial finishes FIRST and the completion
/// order is roughly the reverse of the claim order. If the runner
/// folded samples in completion order — or let worker identity leak
/// into a sample — the rendered JSONL would differ between 1 and 8
/// workers. It must not: samples are slotted by trial index, and each
/// sample is a pure function of its `Trial`.
struct SlowProbe {
    trials: usize,
}

impl Scenario for SlowProbe {
    type State = ();
    type Checkpoint = ();
    type Sample = JsonValue;
    type Output = String;

    fn trials(&self) -> usize {
        self.trials
    }

    fn setup(&self) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn checkpoint(&self, (): ()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn fork(&self, (): &()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn probe(&self, (): &mut (), trial: Trial) -> Result<JsonValue, ScenarioError> {
        // Adversarial skew: early trials are the slowest.
        let ms = (self.trials - trial.index) as u64;
        std::thread::sleep(std::time::Duration::from_millis(ms));
        let mut rec = JsonValue::object();
        rec.set("trial", JsonValue::Uint(trial.index as u64))
            .set("seed", JsonValue::Uint(trial.seed));
        Ok(rec)
    }

    fn score(&self, samples: Vec<JsonValue>) -> String {
        samples
            .iter()
            .map(|s| s.to_compact_string() + "\n")
            .collect()
    }
}

/// Byte-identical JSONL under adversarially skewed completion order:
/// the slow-probe scenario reverses finish order on a pool, yet the
/// folded stream matches the single-worker run byte for byte, with
/// trial indices in order and per-trial seeds unchanged.
#[test]
fn jsonl_is_byte_identical_under_reversed_completion_order() {
    let scenario = SlowProbe { trials: 24 };
    let seed = 99;
    let one = TrialRunner::with_threads(1).run(&scenario, seed).unwrap();
    let eight = TrialRunner::with_threads(8).run(&scenario, seed).unwrap();
    assert_eq!(one, eight, "JSONL bytes depend on worker count");
    for (i, line) in one.lines().enumerate() {
        let v = phantom::report::value::parse(line).unwrap();
        assert_eq!(v.get("trial").unwrap().as_u64().unwrap(), i as u64);
        assert_eq!(
            v.get("seed").unwrap().as_u64().unwrap(),
            trial_seed(seed, i)
        );
    }
}

fn small_campaign() -> CampaignConfig {
    let registry = UarchRegistry::with_builtins();
    let mut cfg = CampaignConfig::default_grid(&registry);
    cfg.uarches.truncate(2);
    cfg.scenarios = vec![CampaignScenario::Fetch, CampaignScenario::Execute];
    cfg.noise.truncate(3);
    cfg.bits = 24;
    cfg.seed = 7;
    cfg
}

fn run_to_string(threads: usize, cfg: &CampaignConfig, skip: usize, seeded: &str) -> String {
    let mut buf = seeded.as_bytes().to_vec();
    campaign::run_campaign(
        &TrialRunner::with_threads(threads),
        cfg,
        skip,
        &mut buf,
        &mut |_, _, _| {},
    )
    .unwrap();
    String::from_utf8(buf).unwrap()
}

/// The campaign JSONL stream — the `repro serve` payload — is
/// byte-identical at 1 and 8 worker threads.
#[test]
fn campaign_jsonl_is_byte_identical_across_worker_counts() {
    let cfg = small_campaign();
    let one = run_to_string(1, &cfg, 0, "");
    let eight = run_to_string(8, &cfg, 0, "");
    assert_eq!(one, eight, "campaign bytes depend on worker count");
    assert_eq!(one.lines().count(), campaign::jobs(&cfg).len());
}

/// Kill-and-resume reproduces the uninterrupted file byte for byte,
/// even when the truncation tears a record mid-line and the resumed
/// run uses a different worker count than the original.
#[test]
fn campaign_resume_reproduces_uninterrupted_bytes() {
    let cfg = small_campaign();
    let jobs = campaign::jobs(&cfg);
    let full = run_to_string(1, &cfg, 0, "");

    for cut in [1, full.len() / 3, full.len() / 2, full.len() - 2] {
        let rp = campaign::resume_prefix(&full[..cut], &jobs);
        let resumed = run_to_string(8, &cfg, rp.done, &rp.prefix);
        assert_eq!(resumed, full, "resume from byte {cut} diverged");
    }
}

/// The TLB and copy-on-write hot-path counters in the snapshot's perf
/// section come from fixed single-machine reference workloads, never
/// from the sharded trial loop — so 1 worker thread and 8 must produce
/// identical, non-zero counters. Non-zero matters: a counter that
/// reads 0 on both sides would make the regression gate vacuous.
#[test]
fn perf_counters_are_identical_at_1_and_8_threads() {
    let cfg = BenchConfig::default();
    let one = collect_snapshot(&TrialRunner::with_threads(1), &cfg)
        .unwrap()
        .perf;
    let eight = collect_snapshot(&TrialRunner::with_threads(8), &cfg)
        .unwrap()
        .perf;
    assert_eq!(one, eight, "perf counters depend on thread count");
    assert!(one.tlb_hits > 0, "tlb reference produced no hits");
    assert!(one.tlb_misses > 0, "tlb reference produced no misses");
    assert!(one.cow_faults > 0, "cow reference unshared no frames");
    assert!(one.cow_frames_shared > 0, "cow reference shares no frames");
    assert!(
        one.restore_frames_copied > 0,
        "cow reference restored no frames"
    );
}

// ---------------------------------------------------------------------
// Self-modifying code through the runner: the trace/superblock engine's
// invalidation must be worker-count-invisible.
// ---------------------------------------------------------------------

/// A trial that executes a program which overwrites its own hot inner
/// function mid-run: `f` returns 1 for 24 calls, gets patched to return
/// 2 by an architectural store, runs 24 more calls, halts (r3 = 72).
/// Every trial rewinds the fork and re-runs, so each worker's warm
/// trace cache is repeatedly invalidated and re-recorded — any
/// coherence slip shows up as a sample diverging by worker or trial.
struct SelfModifyingTrials {
    trials: usize,
}

impl SelfModifyingTrials {
    fn boot() -> Result<phantom_pipeline::Machine, ScenarioError> {
        use phantom_isa::asm::Assembler;
        use phantom_isa::inst::AluOp;
        use phantom_isa::{Inst, Reg};
        use phantom_mem::{PageFlags, VirtAddr};

        let mut m = phantom_pipeline::Machine::new(UarchProfile::zen2(), 1 << 26);
        let f_addr = 0x40_0200u64;
        let mut patch = Vec::new();
        phantom_isa::encode::encode_into(
            &Inst::MovImm {
                dst: Reg::R0,
                imm: 2,
            },
            &mut patch,
        )?;
        phantom_isa::encode::encode_into(&Inst::Ret, &mut patch)?;
        patch.resize(8, 0x90);
        let patch = u64::from_le_bytes(patch[..8].try_into().unwrap());

        let mut a = Assembler::new(0x40_0000);
        for (reg, imm) in [(Reg::R6, 1), (Reg::R5, 24), (Reg::R4, 0)] {
            a.push(Inst::MovImm { dst: reg, imm });
        }
        a.label("loop1");
        a.call("f");
        a.push(Inst::Alu {
            op: AluOp::Add,
            dst: Reg::R3,
            src: Reg::R0,
        });
        a.push(Inst::Alu {
            op: AluOp::Add,
            dst: Reg::R4,
            src: Reg::R6,
        });
        a.push(Inst::Cmp {
            a: Reg::R4,
            b: Reg::R5,
        });
        a.jb("loop1");
        a.push(Inst::MovImm {
            dst: Reg::R1,
            imm: patch,
        });
        a.push(Inst::MovImm {
            dst: Reg::R2,
            imm: f_addr,
        });
        a.push(Inst::Store {
            base: Reg::R2,
            disp: 0,
            src: Reg::R1,
        });
        a.push(Inst::MovImm {
            dst: Reg::R4,
            imm: 0,
        });
        a.label("loop2");
        a.call("f");
        a.push(Inst::Alu {
            op: AluOp::Add,
            dst: Reg::R3,
            src: Reg::R0,
        });
        a.push(Inst::Alu {
            op: AluOp::Add,
            dst: Reg::R4,
            src: Reg::R6,
        });
        a.push(Inst::Cmp {
            a: Reg::R4,
            b: Reg::R5,
        });
        a.jb("loop2");
        a.push(Inst::Halt);
        a.org(f_addr);
        a.label("f");
        a.push(Inst::MovImm {
            dst: Reg::R0,
            imm: 1,
        });
        a.push(Inst::Ret);
        a.push(Inst::NopN { len: 8 });
        let blob = a.finish()?;
        m.load_blob(&blob, PageFlags::USER_TEXT | PageFlags::WRITE)?;
        let stack = VirtAddr::new(0x7000_0000);
        m.map_range(stack, 0x4000, PageFlags::USER_DATA)?;
        m.set_reg(Reg::SP, 0x7000_4000 - 64);
        m.set_pc(VirtAddr::new(blob.base));
        Ok(m)
    }
}

impl Scenario for SelfModifyingTrials {
    type State = (phantom_pipeline::Machine, phantom_pipeline::Checkpoint);
    type Checkpoint = phantom_pipeline::Checkpoint;
    type Sample = (u64, u64);
    type Output = Vec<(u64, u64)>;

    fn trials(&self) -> usize {
        self.trials
    }

    fn setup(&self) -> Result<Self::State, ScenarioError> {
        let mut m = Self::boot()?;
        let ck = m.checkpoint();
        Ok((m, ck))
    }

    fn checkpoint(&self, state: Self::State) -> Result<Self::Checkpoint, ScenarioError> {
        Ok(state.1)
    }

    fn fork(&self, ck: &Self::Checkpoint) -> Result<Self::State, ScenarioError> {
        Ok((ck.fork(), ck.clone()))
    }

    fn probe(&self, state: &mut Self::State, _trial: Trial) -> Result<Self::Sample, ScenarioError> {
        let (m, ck) = state;
        ck.rewind(m);
        let exit = m.run(100_000)?;
        assert_eq!(exit, phantom_pipeline::RunExit::Halted);
        Ok((m.reg(phantom_isa::Reg::R3), m.cycles()))
    }

    fn score(&self, samples: Vec<Self::Sample>) -> Self::Output {
        samples
    }
}

#[test]
fn self_modifying_trials_are_identical_across_thread_counts() {
    let scenario = SelfModifyingTrials { trials: 32 };
    let one = TrialRunner::with_threads(1).run(&scenario, 7).unwrap();
    let eight = TrialRunner::with_threads(8).run(&scenario, 7).unwrap();
    assert_eq!(one, eight, "1-worker and 8-worker runs agree");
    for (i, (r3, cycles)) in one.iter().enumerate() {
        assert_eq!(*r3, 72, "trial {i}: stale code survived the patch");
        assert_eq!(*cycles, one[0].1, "trial {i}: cycle-identical trials");
    }
}
