//! Cross-crate integration: why the paper "limits our focus to the AMD
//! parts for exploitation" (§6) — on the modeled Intel parts, user-mode
//! BTB training is never served in kernel mode.

use phantom::primitives::{p1_detect_executable, PrimitiveConfig};
use phantom::UarchProfile;
use phantom_isa::BranchKind;
use phantom_kernel::System;
use phantom_mem::VirtAddr;
use phantom_sidechannel::NoiseModel;

#[test]
fn user_injected_predictions_are_not_served_in_kernel_mode() {
    // "the Intel processors we tested do not re-use a user-injected
    // prediction in kernel mode, even while the mitigation is switched
    // off" — modeled as privilege-tagged BTB entries.
    for profile in [UarchProfile::intel9(), UarchProfile::intel12()] {
        let name = profile.name.clone();
        let mut sys = System::new(profile, 1 << 28, 70).expect("boot");
        let victim = sys.image().listing1_nop;
        let target = sys.image().base + 0x1000;
        // Train directly at the kernel victim address (page-fault-and-
        // catch, the strongest possible aliasing)...
        sys.train_user_branch(victim, BranchKind::Indirect, target)
            .expect("training runs");
        // ...yet the kernel-mode prediction query refuses to serve it.
        let pred = sys.machine_mut().bpu_mut().predict_block(
            victim,
            phantom_mem::PrivilegeLevel::Supervisor,
            0,
        );
        assert!(pred.is_none(), "{name}: cross-privilege reuse must fail");
    }
}

#[test]
fn p1_kaslr_probe_is_blind_on_intel() {
    // The full P1 probe (the Table 3 building block) sees nothing on
    // Intel: the kernel never fires the user-trained entry.
    let mut sys = System::new(UarchProfile::intel13(), 1 << 28, 71).expect("boot");
    let cfg = PrimitiveConfig {
        pattern: 0, // exact-address aliasing — the best case
        attacker_base: VirtAddr::new(0x5000_0000),
        arena: None,
    };
    let mut noise = NoiseModel::quiet(0);
    let victim = sys.image().listing1_nop;
    let mapped = sys.image().base + 0x1000;
    let detected =
        p1_detect_executable(&mut sys, &cfg, victim, mapped, &mut noise).expect("probe runs");
    assert!(!detected, "no cross-privilege P1 signal on Intel");
}

#[test]
fn same_mode_phantom_still_works_on_intel() {
    // Table 1 shows IF/ID on Intel for user->user confusion: the
    // privilege tag only blocks *cross-mode* reuse.
    use phantom::experiment::{run_combo, TrainKind, VictimKind};
    let o = run_combo(
        UarchProfile::intel12(),
        TrainKind::JmpInd,
        VictimKind::NonBranch,
        0,
    )
    .expect("combo");
    assert!(
        o.fetched && o.decoded,
        "same-mode phantom fetch/decode on Intel"
    );
    assert!(!o.executed, "but never execution");
}
