//! Cross-crate integration: the full §7 exploit chain on one booted
//! system — image KASLR → physmap KASLR → physical address → MDS leak —
//! with every stage feeding the next from *measured* values, never
//! ground truth.

use phantom::attacks::{
    break_kaslr_image, break_physmap, find_physical_address, leak_kernel_memory, KaslrImageConfig,
    MdsLeakConfig, PhysAddrConfig, PhysmapConfig,
};
use phantom::UarchProfile;
use phantom_kernel::layout::{KaslrLayout, KERNEL_IMAGE_SLOTS, PHYSMAP_SLOTS};
use phantom_kernel::System;

fn window(actual: u64, width: u64, total: u64) -> std::ops::Range<u64> {
    let lo = actual.saturating_sub(width / 2).min(total - width);
    lo..lo + width
}

#[test]
fn full_chain_on_zen2() {
    let mut sys = System::new(UarchProfile::zen2(), 1 << 28, 1234).expect("boot");
    let (image_slot, physmap_slot) = (sys.layout().image_slot, sys.layout().physmap_slot);

    // Stage 1 — the guessed slot, not the layout, feeds stage 2.
    let s1 = break_kaslr_image(
        &mut sys,
        &KaslrImageConfig {
            slots: window(image_slot, 32, KERNEL_IMAGE_SLOTS),
            seed: 1,
            ..Default::default()
        },
    )
    .expect("stage 1");
    assert!(
        s1.correct,
        "stage 1: {} vs {}",
        s1.guessed_slot, s1.actual_slot
    );
    let image_base = KaslrLayout::candidate_image_base(s1.guessed_slot);

    // Stage 2 — physmap, using stage 1's image base.
    let s2 = break_physmap(
        &mut sys,
        image_base,
        &PhysmapConfig {
            slots: window(physmap_slot, 32, PHYSMAP_SLOTS),
            seed: 2,
            ..Default::default()
        },
    )
    .expect("stage 2");
    assert!(
        s2.correct,
        "stage 2: {} vs {}",
        s2.guessed_slot, s2.actual_slot
    );
    let physmap_base = KaslrLayout::candidate_physmap_base(s2.guessed_slot);

    // Stage 3 — physical address of an attacker page, via stages 1+2.
    let s3 = find_physical_address(
        &mut sys,
        image_base,
        physmap_base,
        &PhysAddrConfig {
            max_decoys: 16,
            seed: 3,
        },
    )
    .expect("stage 3");
    assert!(
        s3.correct,
        "stage 3: {:?} vs {:#x}",
        s3.guessed_pa, s3.actual_pa
    );

    // Stage 4 — leak the planted secret through the MDS gadget.
    let s4 = leak_kernel_memory(
        &mut sys,
        physmap_base,
        &MdsLeakConfig {
            bytes: 32,
            seed: 4,
            ..Default::default()
        },
    )
    .expect("stage 4");
    assert!(s4.signal);
    assert_eq!(&s4.leaked[..32], &sys.secret()[..32], "leaked bytes match");
}

#[test]
fn chain_collapses_at_stage2_on_zen3() {
    // Zen 3: stage 1 (P1, fetch-based) works; stage 2 (P2, needs phantom
    // execution) finds nothing but noise — the paper's Table 3 includes
    // Zen 3/4 while Table 4 does not.
    let mut sys = System::new(UarchProfile::zen3(), 1 << 28, 99).expect("boot");
    let (image_slot, physmap_slot) = (sys.layout().image_slot, sys.layout().physmap_slot);
    let s1 = break_kaslr_image(
        &mut sys,
        &KaslrImageConfig {
            slots: window(image_slot, 24, KERNEL_IMAGE_SLOTS),
            seed: 9,
            ..Default::default()
        },
    )
    .expect("stage 1");
    assert!(s1.correct, "P1 still works on Zen 3");

    let image_base = KaslrLayout::candidate_image_base(s1.guessed_slot);
    let s2 = break_physmap(
        &mut sys,
        image_base,
        &PhysmapConfig {
            slots: window(physmap_slot, 24, PHYSMAP_SLOTS),
            seed: 10,
            ..Default::default()
        },
    )
    .expect("stage 2 runs");
    assert!(
        s2.best_score <= 9,
        "P2 signal is noise on Zen 3: {}",
        s2.best_score
    );
}

#[test]
fn repeated_reboots_track_fresh_kaslr() {
    // Three boots, three different layouts, three correct breaks.
    let mut slots_seen = std::collections::HashSet::new();
    for seed in [7u64, 8, 9] {
        let mut sys = System::new(UarchProfile::zen4(), 1 << 28, seed).expect("boot");
        let actual = sys.layout().image_slot;
        slots_seen.insert(actual);
        let r = break_kaslr_image(
            &mut sys,
            &KaslrImageConfig {
                slots: window(actual, 16, KERNEL_IMAGE_SLOTS),
                seed,
                ..Default::default()
            },
        )
        .expect("attack");
        assert!(r.correct, "seed {seed}");
    }
    assert!(slots_seen.len() >= 2, "KASLR actually re-randomized");
}
