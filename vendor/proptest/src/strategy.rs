//! Strategy combinators: the generation half of proptest's `Strategy`.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Object safe: `prop_map` and `boxed` are `Self: Sized`, so
/// `Box<dyn Strategy<Value = T>>` works (see [`BoxedStrategy`]).
pub trait Strategy {
    type Value: fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (backs [`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
    _marker: PhantomData<T>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union {
            arms,
            _marker: PhantomData,
        }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.rng().gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

impl<T> fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
