//! Deterministic case generation and failure plumbing.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Non-unwinding failure raised by `prop_assert!` and friends.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// RNG handed to strategies; seeded from the property name and case
/// index so every run of the suite sees the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(
            hash ^ (u64::from(case) << 32) ^ u64::from(case),
        ))
    }

    /// Access the underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}
