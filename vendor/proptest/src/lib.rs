//! Offline vendored stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace uses:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, [`prop_oneof!`],
//! [`strategy::Strategy`] with `prop_map`/`boxed`, [`strategy::Just`],
//! `any::<T>()`, range and tuple strategies, and
//! [`collection::vec`]/[`collection::hash_set`].
//!
//! Test cases are generated from a deterministic RNG seeded from the
//! test's name and case index, so failures reproduce exactly. Shrinking
//! is not implemented: a failing case panics with the full `Debug`
//! rendering of its inputs instead of a minimized one.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: std::fmt::Debug + Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.rng().gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.rng().gen::<bool>()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// Size bound for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.rng().gen_range(self.min..=self.max_inclusive)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy producing a `HashSet` of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut out = HashSet::with_capacity(target);
            // Bounded retry loop in case the element space collapses to
            // fewer distinct values than requested.
            let mut attempts = 0;
            while out.len() < target && attempts < target * 16 + 64 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `HashSet` strategy with a cardinality drawn from `size`.
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a proptest body, failing the case (not
/// unwinding) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Uniform choice between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u8..8, v in proptest::collection::vec(any::<u64>(), 1..10)) {
///         prop_assert!(v.len() < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let strategies = ($($strategy,)+);
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name), case);
                let ($($arg,)+) = $crate::strategy::Strategy::generate(&strategies, &mut rng);
                let rendered = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}\n    inputs: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        err,
                        rendered
                    );
                }
            }
        }
    )*};
}
