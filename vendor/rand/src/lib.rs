//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace ships a
//! minimal, deterministic implementation of the `rand` 0.8 API surface it
//! actually uses: [`rngs::StdRng`], [`rngs::SmallRng`], [`SeedableRng`],
//! and the [`Rng`] extension methods `gen`, `gen_bool` and `gen_range`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — the same
//! construction rand's `SmallRng` uses on 64-bit targets — which passes
//! the statistical calibration tests in `phantom-sidechannel` (e.g. a
//! 3% Bernoulli over 10 000 trials lands within [150, 450] hits).
//! Streams are stable across runs and platforms for a given seed, which
//! the workspace's determinism tests rely on.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 exactly like
    /// upstream rand does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high]` (inclusive bounds).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                let span = (high as $u).wrapping_sub(low as $u) as u128 + 1;
                // Modulo over a 64-bit stream: bias < 2^-60 for the tiny
                // spans this workspace draws; irrelevant here.
                let draw = (rng.next_u64() as u128 % span) as $u;
                ((low as $u).wrapping_add(draw)) as $t
            }
        }
    )*};
}
impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + One> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.minus_one())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range: empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Helper for converting a half-open bound to an inclusive one.
pub trait One {
    fn minus_one(self) -> Self;
}

macro_rules! impl_one {
    ($($t:ty),*) => {$(
        impl One for $t {
            fn minus_one(self) -> Self { self - 1 }
        }
    )*};
}
impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods on any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        f64::sample_standard(self) < p
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — deterministic, fast, statistically solid.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }

    /// Same engine as [`StdRng`]; kept as a distinct type to mirror
    /// upstream's `small_rng` feature.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(StdRng);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng(StdRng::from_seed(seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_bool_calibrated() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_600..=5_400).contains(&hits), "{hits}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let v = r.gen_range(3u8..10);
            assert!((3..10).contains(&v));
            let s = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
