//! Offline vendored stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion 0.5 API the workspace's
//! `harness = false` benches use: `criterion_group!`/`criterion_main!`,
//! [`Criterion::benchmark_group`], `sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, [`BenchmarkId`] and
//! [`black_box`]. Instead of criterion's statistical analysis it runs a
//! short warm-up, then reports mean wall-clock per iteration (plus
//! derived throughput when configured) on stdout.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier (stable `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier, rendered as `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("?"),
        }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Measurement driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Time `routine`, discarding one warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total = start.elapsed();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (criterion semantics:
    /// statistical sample count; here: iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Annotate throughput for subsequent benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a parameterless benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().render());
        let mut bencher = Bencher {
            iters: self.sample_size,
            total: Duration::ZERO,
        };
        f(&mut bencher);
        self.criterion.report(&label, &bencher, self.throughput);
        self
    }

    /// Run a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().render());
        let mut bencher = Bencher {
            iters: self.sample_size,
            total: Duration::ZERO,
        };
        f(&mut bencher, input);
        self.criterion.report(&label, &bencher, self.throughput);
        self
    }

    /// End the group (criterion requires this before the group drops).
    pub fn finish(&mut self) {}
}

/// Conversions accepted where criterion takes a benchmark name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self.to_string()),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self),
            parameter: None,
        }
    }
}

/// Top-level benchmark harness state.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    fn report(&mut self, label: &str, bencher: &Bencher, throughput: Option<Throughput>) {
        let iters = bencher.iters.max(1);
        let per_iter = bencher.total.as_secs_f64() / iters as f64;
        let mut line = format!("{label:<48} {:>12.3} µs/iter", per_iter * 1e6);
        match throughput {
            Some(Throughput::Bytes(bytes)) if per_iter > 0.0 => {
                let mbps = bytes as f64 / per_iter / 1e6;
                line.push_str(&format!("  ({mbps:.1} MB/s)"));
            }
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                let eps = n as f64 / per_iter;
                line.push_str(&format!("  ({eps:.0} elem/s)"));
            }
            _ => {}
        }
        println!("{line}");
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
