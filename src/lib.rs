//! Workspace root crate for the Phantom (MICRO '23) reproduction.
//!
//! This crate only hosts the workspace-level integration tests (in
//! `tests/`) and the runnable examples (in `examples/`). All functionality
//! lives in the member crates under `crates/`; see [`phantom`] for the
//! top-level API implementing the paper's contribution.
//!
//! # Examples
//!
//! ```
//! // The root crate re-exports nothing; use the member crates directly.
//! use phantom::uarch_all;
//! assert_eq!(uarch_all().len(), 8);
//! ```

pub use phantom as core;
