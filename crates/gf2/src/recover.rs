//! XOR-function recovery from collision lists — the §6.2 procedure with
//! Gaussian elimination standing in for the Z3 SMT solver.

use crate::matrix::{parity, BitMatrix};

/// Configuration for [`recover_functions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Lowest address bit considered (the paper ignores the low 12
    /// untranslated bits).
    pub min_bit: u32,
    /// Highest address bit considered (47 — the canonical boundary).
    pub max_bit: u32,
    /// Maximum number of coefficients per function; the paper gradually
    /// increased `n` and reports results for `n = 4`.
    pub max_weight: u32,
}

impl Default for RecoveryConfig {
    fn default() -> RecoveryConfig {
        RecoveryConfig {
            min_bit: 12,
            max_bit: 47,
            max_weight: 4,
        }
    }
}

/// One recovered XOR function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct RecoveredFunction {
    /// Mask of selected address bits.
    pub mask: u64,
}

impl RecoveredFunction {
    /// Number of selected bits.
    pub fn weight(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Selected bit positions, descending (paper notation
    /// `b47 ^ b35 ^ b23`).
    pub fn bits(&self) -> Vec<u32> {
        (0..64).rev().filter(|b| self.mask >> b & 1 == 1).collect()
    }

    /// Evaluate on an address.
    pub fn eval(&self, addr: u64) -> u64 {
        parity(addr & self.mask)
    }
}

impl std::fmt::Display for RecoveredFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let bits = self.bits();
        for (i, b) in bits.iter().enumerate() {
            if i > 0 {
                write!(f, " ^ ")?;
            }
            write!(f, "b{b}")?;
        }
        if bits.is_empty() {
            write!(f, "0")?;
        }
        Ok(())
    }
}

/// Recover a minimal-weight basis of XOR functions from collision data.
///
/// `collisions` maps each probed kernel address `K` to the list `L_K` of
/// addresses observed to collide with it. Every linear function the BTB
/// uses must satisfy `f(K ^ A) = 0` for all `A ∈ L_K`; the returned
/// functions are a basis of all bounded-weight solutions, found by
/// enumerating candidate masks in increasing weight (the paper's
/// "gradually increase `n`" loop) and keeping those that are independent
/// of the ones already found.
///
/// Returns an empty vector when the data admits no bounded-weight
/// nonzero solution (e.g. too few collisions, so everything is still
/// unconstrained — callers should collect more data).
///
/// # Examples
///
/// ```
/// use phantom_gf2::{recover_functions, RecoveryConfig};
/// // Ground truth: f = b13 ^ b14. Collisions differ only in ways f
/// // cannot see.
/// let k = 0xffff_0000_0000u64;
/// let colliding = vec![k ^ (1 << 13) ^ (1 << 14), k ^ (1 << 20)];
/// let cfg = RecoveryConfig { min_bit: 12, max_bit: 21, max_weight: 2 };
/// let fns = recover_functions(&[(k, colliding)], cfg);
/// assert!(fns.iter().any(|f| f.mask == (1 << 13) | (1 << 14)));
/// ```
pub fn recover_functions(
    collisions: &[(u64, Vec<u64>)],
    cfg: RecoveryConfig,
) -> Vec<RecoveredFunction> {
    let width = cfg.max_bit - cfg.min_bit + 1;
    assert!(width <= 64, "bit range too wide");

    // Difference vectors, shifted down to the considered window.
    let mut diffs = BitMatrix::new(width);
    for (k, list) in collisions {
        for a in list {
            let d = (k ^ a) >> cfg.min_bit;
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            diffs.push_row(d & mask);
        }
    }

    // The solution space is the orthogonal complement of the difference
    // span. We search it for a bounded-weight basis by enumerating masks
    // in increasing weight (paper's incremental `n`), keeping each mask
    // that annihilates all differences and grows the rank.
    let diff_basis = diffs.row_basis();
    let annihilates = |m: u64| diff_basis.iter().all(|&d| parity(m & d) == 0);

    let solution_dim = (width - diffs.rank()) as usize;
    let mut found: Vec<u64> = Vec::new();
    let mut found_matrix = BitMatrix::new(width);

    'outer: for weight in 1..=cfg.max_weight {
        // Enumerate all masks of exactly `weight` bits over `width`
        // columns in lexicographic order (Gosper's hack).
        if weight > width {
            break;
        }
        let limit: u64 = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let mut m: u64 = (1u64 << weight) - 1;
        loop {
            if annihilates(m) && !found_matrix.in_row_space(m) {
                found.push(m);
                found_matrix.push_row(m);
                if found.len() == solution_dim {
                    break 'outer;
                }
            }
            // Next mask with the same popcount.
            let c = m & m.wrapping_neg();
            let r = m + c;
            if r > limit || r == 0 {
                break;
            }
            m = (((r ^ m) >> 2) / c) | r;
            if m > limit {
                break;
            }
        }
    }

    let mut out: Vec<RecoveredFunction> = found
        .into_iter()
        .map(|m| RecoveredFunction {
            mask: m << cfg.min_bit,
        })
        .collect();
    out.sort_by_key(|f| (f.weight(), f.mask));
    out
}

/// Verify that a set of recovered functions is consistent with all the
/// collision data (every collider agrees with its kernel address on
/// every function).
pub fn verify_functions(functions: &[RecoveredFunction], collisions: &[(u64, Vec<u64>)]) -> bool {
    collisions.iter().all(|(k, list)| {
        list.iter()
            .all(|a| functions.iter().all(|f| f.eval(*k) == f.eval(*a)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plant the paper's Figure 7 family and recover it from synthetic
    /// collision lists.
    fn figure7_masks() -> Vec<u64> {
        let of = |bits: &[u32]| bits.iter().fold(0u64, |m, b| m | (1 << b));
        vec![
            of(&[47, 35, 23]),
            of(&[47, 36, 24, 12]),
            of(&[47, 37, 25, 13]),
            of(&[47, 38, 26, 14]),
            of(&[47, 39, 26, 13]),
            of(&[47, 39, 27, 15]),
            of(&[47, 40, 28, 16]),
            of(&[47, 41, 29, 17]),
            of(&[47, 42, 30, 18]),
            of(&[47, 43, 31, 19]),
            of(&[47, 44, 32, 20]),
            of(&[47, 45, 33, 21]),
        ]
    }

    /// Deterministic pseudo-random colliding addresses: enumerate the
    /// nullspace of the planted family.
    fn synthetic_collisions(k: u64, count: usize) -> Vec<u64> {
        let masks = figure7_masks();
        let fam = BitMatrix::from_rows(48, &masks);
        let ortho = fam.orthogonal_basis(); // vectors invisible to all fns
                                            // Only perturb bits 12..=47 (low bits stay equal per the paper).
        let usable: Vec<u64> = ortho
            .into_iter()
            .map(|v| v & 0x0000_ffff_ffff_f000)
            .filter(|&v| v != 0)
            .collect();
        let mut out = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        while out.len() < count {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mut d = 0u64;
            for (i, &v) in usable.iter().enumerate() {
                if (state >> i) & 1 == 1 {
                    d ^= v;
                }
            }
            if d != 0 {
                out.push(k ^ d);
            }
        }
        out
    }

    #[test]
    fn recovers_a_basis_of_the_figure7_space() {
        let k = 0xffff_ffff_8124_6000u64;
        let colliders = synthetic_collisions(k, 64);
        let fns = recover_functions(&[(k, colliders.clone())], RecoveryConfig::default());
        // Exactly 12 independent functions of weight <= 4.
        assert_eq!(fns.len(), 12, "rank-12 solution space");
        for f in &fns {
            assert!(f.weight() <= 4);
        }
        // They verify against the data…
        assert!(verify_functions(&fns, &[(k, colliders)]));
        // …and span the same space as the ground truth.
        let truth = BitMatrix::from_rows(48, &figure7_masks());
        for f in &fns {
            assert!(
                truth.in_row_space(f.mask),
                "recovered {f} not in planted space"
            );
        }
        let recovered = BitMatrix::from_rows(48, &fns.iter().map(|f| f.mask).collect::<Vec<_>>());
        assert_eq!(recovered.rank(), 12);
    }

    #[test]
    fn too_little_data_underconstrains() {
        let k = 0xffff_ffff_8124_6000u64;
        let colliders = synthetic_collisions(k, 2);
        let fns = recover_functions(&[(k, colliders.clone())], RecoveryConfig::default());
        // With only 2 difference vectors the solution space has dimension
        // >= 34; whatever is found must still verify.
        assert!(verify_functions(&fns, &[(k, colliders)]));
        assert!(
            fns.len() > 12,
            "underconstrained: too many spurious functions"
        );
    }

    #[test]
    fn weight_bound_is_respected() {
        let k = 0x8000_0000_0000u64; // bit 47 set
        let colliders = synthetic_collisions(k, 64);
        for w in 1..=4u32 {
            let cfg = RecoveryConfig {
                max_weight: w,
                ..RecoveryConfig::default()
            };
            for f in recover_functions(&[(k, colliders.clone())], cfg) {
                assert!(f.weight() <= w);
            }
        }
    }

    #[test]
    fn display_matches_paper_notation() {
        let f = RecoveredFunction {
            mask: (1 << 47) | (1 << 35) | (1 << 23),
        };
        assert_eq!(f.to_string(), "b47 ^ b35 ^ b23");
    }

    #[test]
    fn multiple_kernel_addresses_combine() {
        // Different K values: all constraints pool into one system.
        let k1 = 0xffff_ffff_8124_6000u64;
        let k2 = 0xffff_ffff_a200_0000u64;
        let c1 = synthetic_collisions(k1, 32);
        let c2 = synthetic_collisions(k2, 32);
        let fns = recover_functions(
            &[(k1, c1.clone()), (k2, c2.clone())],
            RecoveryConfig::default(),
        );
        assert_eq!(fns.len(), 12);
        assert!(verify_functions(&fns, &[(k1, c1), (k2, c2)]));
    }
}
