//! Property-based tests for the GF(2) solver.

use proptest::prelude::*;

use crate::matrix::{parity, BitMatrix};
use crate::recover::{recover_functions, verify_functions, RecoveryConfig};

proptest! {
    /// rank <= min(rows, cols), and appending a dependent row never
    /// changes the rank.
    #[test]
    fn rank_bounds_and_dependence(rows in proptest::collection::vec(any::<u64>(), 1..20)) {
        let m = BitMatrix::from_rows(48, &rows);
        let r = m.rank();
        prop_assert!(r as usize <= rows.len());
        prop_assert!(r <= 48);
        // Append the XOR of the first two rows (dependent).
        if rows.len() >= 2 {
            let mut m2 = m.clone();
            m2.push_row(rows[0] ^ rows[1]);
            prop_assert_eq!(m2.rank(), r);
        }
    }

    /// Every orthogonal-basis vector is orthogonal to every row, and
    /// dim(row space) + dim(orthogonal) == cols.
    #[test]
    fn orthogonal_complement_dimensions(
        cols in 1u32..48,
        rows in proptest::collection::vec(any::<u64>(), 0..16),
    ) {
        let m = BitMatrix::from_rows(cols, &rows);
        let ortho = m.orthogonal_basis();
        prop_assert_eq!(ortho.len() as u32 + m.rank(), cols);
        for &v in &ortho {
            for &row in m.rows() {
                prop_assert_eq!(parity(v & row), 0);
            }
        }
        // Orthogonal vectors are independent.
        let om = BitMatrix::from_rows(cols, &ortho);
        prop_assert_eq!(om.rank() as usize, ortho.len());
    }

    /// in_row_space is closed under XOR of rows.
    #[test]
    fn row_space_closure(rows in proptest::collection::vec(any::<u64>(), 2..10), picks in any::<u16>()) {
        let m = BitMatrix::from_rows(40, &rows);
        let mask = (1u64 << 40) - 1;
        let mut combo = 0u64;
        for (i, &r) in rows.iter().enumerate() {
            if (picks >> i) & 1 == 1 {
                combo ^= r & mask;
            }
        }
        prop_assert!(m.in_row_space(combo));
    }

    /// Recovery soundness: whatever is recovered verifies against the
    /// input collision data.
    #[test]
    fn recovery_is_sound(
        k in any::<u64>(),
        seeds in proptest::collection::vec(any::<u64>(), 1..20),
    ) {
        // Plant a random 3-function family over bits 12..=29.
        let f1 = (1u64 << 12) | (1 << 18) | (1 << 24);
        let f2 = (1u64 << 13) | (1 << 19) | (1 << 25);
        let f3 = (1u64 << 14) | (1 << 20);
        let fam = [f1, f2, f3];
        // Colliders: differences orthogonal to the family, derived from
        // random seeds projected onto the orthogonal complement.
        let m = BitMatrix::from_rows(30, &fam);
        let ortho: Vec<u64> = m.orthogonal_basis().into_iter()
            .map(|v| v & 0x3fff_f000) // bits 12..=29 only
            .filter(|&v| v != 0)
            .collect();
        let colliders: Vec<u64> = seeds.iter().map(|&s| {
            let mut d = 0u64;
            for (i, &v) in ortho.iter().enumerate() {
                if (s >> (i % 64)) & 1 == 1 {
                    d ^= v;
                }
            }
            k ^ d
        }).collect();
        let cfg = RecoveryConfig { min_bit: 12, max_bit: 29, max_weight: 3 };
        let fns = recover_functions(&[(k, colliders.clone())], cfg);
        prop_assert!(verify_functions(&fns, &[(k, colliders)]));
        // The planted functions are always consistent with the data, so
        // each must lie in the span of what a fully-constrained recovery
        // returns — check containment when enough data was provided.
        if seeds.len() >= 10 {
            let rec = BitMatrix::from_rows(30, &fns.iter().map(|f| f.mask).collect::<Vec<_>>());
            for planted in fam {
                if rec.rank() == 3 {
                    prop_assert!(rec.in_row_space(planted));
                }
            }
        }
    }
}
