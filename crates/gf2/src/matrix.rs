//! Bit-packed matrices over GF(2).

use std::fmt;

/// A matrix over GF(2), each row packed into a `u64` (so up to 64
/// columns — addresses have 48 meaningful bits, plenty).
///
/// # Examples
///
/// ```
/// use phantom_gf2::BitMatrix;
/// let m = BitMatrix::from_rows(3, &[0b001, 0b010, 0b011]);
/// assert_eq!(m.rank(), 2);
/// assert!(m.in_row_space(0b011));
/// assert!(!m.in_row_space(0b100));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    cols: u32,
    rows: Vec<u64>,
}

impl BitMatrix {
    /// An empty matrix with `cols` columns.
    ///
    /// # Panics
    ///
    /// Panics if `cols > 64`.
    pub fn new(cols: u32) -> BitMatrix {
        assert!(cols <= 64, "at most 64 columns supported");
        BitMatrix {
            cols,
            rows: Vec::new(),
        }
    }

    /// Build from explicit row bit-patterns.
    pub fn from_rows(cols: u32, rows: &[u64]) -> BitMatrix {
        let mut m = BitMatrix::new(cols);
        for &r in rows {
            m.push_row(r);
        }
        m
    }

    /// Append a row.
    pub fn push_row(&mut self, row: u64) {
        let mask = if self.cols == 64 {
            u64::MAX
        } else {
            (1u64 << self.cols) - 1
        };
        self.rows.push(row & mask);
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_cols(&self) -> u32 {
        self.cols
    }

    /// The rows.
    pub fn rows(&self) -> &[u64] {
        &self.rows
    }

    /// Row-echelon basis of the row space (pivot rows, descending pivot
    /// bit).
    pub fn row_basis(&self) -> Vec<u64> {
        let mut basis: Vec<u64> = Vec::new(); // basis[i] has a unique leading bit
        for &row in &self.rows {
            let mut r = row;
            for &b in &basis {
                let lead = 63 - b.leading_zeros();
                if r >> lead & 1 == 1 {
                    r ^= b;
                }
            }
            if r != 0 {
                basis.push(r);
                basis.sort_unstable_by_key(|&x| std::cmp::Reverse(x));
            }
        }
        basis
    }

    /// The rank of the matrix.
    pub fn rank(&self) -> u32 {
        self.row_basis().len() as u32
    }

    /// Whether `v` lies in the row space.
    pub fn in_row_space(&self, v: u64) -> bool {
        let basis = self.row_basis();
        let mut r = v;
        for &b in &basis {
            let lead = 63 - b.leading_zeros();
            if r >> lead & 1 == 1 {
                r ^= b;
            }
        }
        r == 0
    }

    /// A basis of the *nullspace dual*: all vectors `m` with
    /// `parity(m & row) == 0` for every row. (Equivalently: a basis of
    /// the orthogonal complement of the row space.)
    pub fn orthogonal_basis(&self) -> Vec<u64> {
        // Build the row space basis in reduced form, track pivot columns,
        // then read off the standard nullspace construction of the
        // transpose-free formulation: we want the kernel of the linear
        // map m -> (parity(m & row_i))_i, i.e. the nullspace of the
        // matrix whose rows are our rows.
        let mut basis = self.row_basis();
        // Reduce fully (each pivot bit appears in exactly one basis row).
        basis.sort_unstable_by_key(|&x| std::cmp::Reverse(x));
        for i in 0..basis.len() {
            let lead = 63 - basis[i].leading_zeros();
            for j in 0..basis.len() {
                if i != j && (basis[j] >> lead) & 1 == 1 {
                    basis[j] ^= basis[i];
                }
            }
        }
        let pivots: Vec<u32> = basis.iter().map(|&b| 63 - b.leading_zeros()).collect();
        let is_pivot = |c: u32| pivots.contains(&c);

        let mut out = Vec::new();
        for free in 0..self.cols {
            if is_pivot(free) {
                continue;
            }
            // Set the free column to 1; solve the pivot columns so that
            // every basis row has even parity.
            let mut v = 1u64 << free;
            for (&b, &p) in basis.iter().zip(&pivots) {
                if (b >> free) & 1 == 1 {
                    v |= 1u64 << p;
                }
            }
            out.push(v);
        }
        out
    }
}

impl fmt::Display for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.rows {
            for c in (0..self.cols).rev() {
                write!(f, "{}", (row >> c) & 1)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Parity (XOR of bits) of `x`.
pub fn parity(x: u64) -> u64 {
    u64::from(x.count_ones() & 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_of_identity() {
        let m = BitMatrix::from_rows(4, &[0b0001, 0b0010, 0b0100, 0b1000]);
        assert_eq!(m.rank(), 4);
    }

    #[test]
    fn rank_with_dependent_rows() {
        let m = BitMatrix::from_rows(4, &[0b0011, 0b0110, 0b0101, 0b1111]);
        // 0b0101 = 0b0011 ^ 0b0110; rank is 3 (0b1111 independent).
        assert_eq!(m.rank(), 3);
    }

    #[test]
    fn row_space_membership() {
        let m = BitMatrix::from_rows(5, &[0b00011, 0b01100]);
        assert!(m.in_row_space(0b01111));
        assert!(m.in_row_space(0));
        assert!(!m.in_row_space(0b00001));
        assert!(!m.in_row_space(0b10000));
    }

    #[test]
    fn orthogonal_basis_is_orthogonal_and_complete() {
        let m = BitMatrix::from_rows(6, &[0b000111, 0b111000]);
        let ortho = m.orthogonal_basis();
        // dim(ortho) = cols - rank = 6 - 2 = 4.
        assert_eq!(ortho.len(), 4);
        for &v in &ortho {
            for &row in m.rows() {
                assert_eq!(parity(v & row), 0, "v={v:#b} row={row:#b}");
            }
        }
        // The orthogonal vectors are independent.
        let check = BitMatrix::from_rows(6, &ortho);
        assert_eq!(check.rank(), 4);
    }

    #[test]
    fn orthogonal_of_full_rank_is_empty() {
        let m = BitMatrix::from_rows(3, &[0b001, 0b010, 0b100]);
        assert!(m.orthogonal_basis().is_empty());
    }

    #[test]
    fn rows_are_masked_to_cols() {
        let mut m = BitMatrix::new(4);
        m.push_row(0xFF);
        assert_eq!(m.rows()[0], 0xF);
    }

    #[test]
    fn parity_fn() {
        assert_eq!(parity(0), 0);
        assert_eq!(parity(0b1011), 1);
        assert_eq!(parity(u64::MAX), 0);
    }
}
