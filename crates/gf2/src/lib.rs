//! GF(2) linear algebra and XOR-function recovery.
//!
//! The paper (§6.2) reverse engineers the Zen 3/4 cross-privilege BTB
//! indexing functions by collecting user-space addresses that collide
//! with a kernel address and feeding the Z3 SMT solver an equation
//! system: find coefficients `x0..x47` such that the XOR of the selected
//! address bits takes the same value for every colliding address, with
//! at most `n` coefficients set (gradually increasing `n`; results at
//! `n = 4`).
//!
//! XOR functions are linear over GF(2), so the SMT solver is overkill:
//! the constraint "f(K) = f(A)" for a linear `f` is exactly
//! "f(K ^ A) = 0", and the set of all such `f` is the **dual** of the
//! span of the difference vectors. This crate substitutes Z3 with plain
//! Gaussian elimination plus the paper's bounded-weight enumeration,
//! recovering the same Figure 7 family.
//!
//! # Examples
//!
//! ```
//! use phantom_gf2::BitMatrix;
//! let m = BitMatrix::from_rows(48, &[0b011, 0b110, 0b101]);
//! assert_eq!(m.rank(), 2); // third row is the sum of the first two
//! ```

pub mod matrix;
pub mod recover;

pub use matrix::BitMatrix;
pub use recover::{recover_functions, RecoveredFunction, RecoveryConfig};

#[cfg(test)]
mod proptests;
