//! The Branch Target Buffer.
//!
//! Entries are keyed by the *alias class* of the branch-source address:
//! its low 12 (untranslated) bits plus the XOR-fold signature of the
//! high bits ([`crate::hashfn::FoldFamily`]). Any address in the same
//! alias class reuses the entry — the attacker's training address and
//! the kernel victim address need not be equal, only alias-equal (§6.2).
//!
//! Each entry stores the **trained branch kind** and the target, which
//! for direct branches is kept PC-relative ("the branch predictor serves
//! direct branch targets as PC-relative", §5.2).

use std::sync::atomic::{AtomicU64, Ordering};

use phantom_isa::BranchKind;
use phantom_mem::{PrivilegeLevel, VirtAddr};

use crate::hashfn::FoldFamily;

/// Source of BTB content-generation stamps. Process-global so a stamp
/// value identifies one specific BTB content for the process lifetime:
/// clones and snapshot restores carry the stamp *with* the content, and
/// post-restore retraining draws fresh values instead of re-walking the
/// numbers the discarded timeline used. Caches derived from BTB content
/// (the pipeline's trace engine memoizes "no visible hit in this fetch
/// window") stay sound across rewinds because of this.
static BTB_GENERATIONS: AtomicU64 = AtomicU64::new(1);

fn next_btb_generation() -> u64 {
    BTB_GENERATIONS.fetch_add(1, Ordering::Relaxed)
}

/// How the BTB keys entries for a given microarchitecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BtbScheme {
    /// XOR-fold family for the address bits above the page offset.
    pub family: FoldFamily,
    /// Associativity per alias class.
    pub ways: usize,
    /// Whether entries are tagged with the privilege mode that trained
    /// them, making cross-privilege reuse impossible (modeled for the
    /// Intel parts: "the Intel processors we tested do not re-use a
    /// user-injected prediction in kernel mode", §6).
    pub privilege_tagged: bool,
}

impl BtbScheme {
    /// Zen 3 / Zen 4 scheme: the Figure 7 fold family.
    pub fn zen34() -> BtbScheme {
        BtbScheme {
            family: FoldFamily::zen34(),
            ways: 2,
            privilege_tagged: false,
        }
    }

    /// Zen 1 / Zen 2 scheme: Retbleed-style folding without `b47`.
    pub fn zen12() -> BtbScheme {
        BtbScheme {
            family: FoldFamily::zen12(),
            ways: 2,
            privilege_tagged: false,
        }
    }

    /// Intel scheme: same structural folding as Zen 1/2 but with
    /// privilege-tagged entries.
    pub fn intel() -> BtbScheme {
        BtbScheme {
            family: FoldFamily::zen12(),
            ways: 2,
            privilege_tagged: true,
        }
    }

    /// Compact one-line descriptor for CLI listings, the BTB sibling of
    /// [`CbpScheme::summary`](crate::CbpScheme::summary): fold-function
    /// count x ways, with a `+priv` marker for privilege-tagged parts.
    #[must_use]
    pub fn summary(&self) -> String {
        let tag = if self.privilege_tagged { " +priv" } else { "" };
        format!("{}fx{}{tag}", self.family.len(), self.ways)
    }
}

/// The target representation stored in an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StoredTarget {
    /// Absolute target (indirect branches, returns are RSB-served).
    Abs(VirtAddr),
    /// Displacement from the *source address* (direct branches): applying
    /// the entry at an aliased source yields a shifted target C′.
    Rel(i64),
}

/// One BTB entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BtbEntry {
    /// Low 12 bits of the source address (within-page position).
    pub page_offset: u16,
    /// Fold signature of the source address's high bits.
    pub signature: u32,
    /// The branch kind that trained the entry.
    pub kind: BranchKind,
    /// Privilege mode at training time.
    pub trained_at: PrivilegeLevel,
    /// SMT thread that trained the entry.
    pub thread: u8,
    /// Primary target slot: (BHB tag at training time, target).
    target: (u16, StoredTarget),
    /// Optional secondary target slot — §2.1: "BTB entries can serve
    /// multiple targets … the BPU selects the target by matching a tag
    /// of the current BHB".
    alt_target: Option<(u16, StoredTarget)>,
    lru: u64,
}

impl BtbEntry {
    fn resolve(stored: StoredTarget, source: VirtAddr) -> VirtAddr {
        match stored {
            StoredTarget::Abs(t) => t,
            StoredTarget::Rel(d) => VirtAddr::new(source.raw().wrapping_add(d as u64)),
        }
    }

    /// The predicted target when this entry fires at `source` (primary
    /// slot). Returns `None` for `ret`-kind entries (the RSB provides
    /// those).
    pub fn target_at(&self, source: VirtAddr) -> Option<VirtAddr> {
        Some(Self::resolve(self.target.1, source))
    }

    /// The predicted target under a specific BHB history tag: the slot
    /// whose training tag matches wins; otherwise the primary (most
    /// recently trained) slot serves.
    pub fn target_for_history(&self, source: VirtAddr, bhb_tag: u16) -> Option<VirtAddr> {
        if let Some((tag, stored)) = self.alt_target {
            if tag == bhb_tag && self.target.0 != bhb_tag {
                return Some(Self::resolve(stored, source));
            }
        }
        Some(Self::resolve(self.target.1, source))
    }

    /// Whether the entry currently holds two targets.
    pub fn is_multi_target(&self) -> bool {
        self.alt_target.is_some()
    }
}

/// A raw prediction out of the BTB: where in the fetch window the
/// predicted branch source sits, what kind it is, and its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BtbHit {
    /// The predicted branch-source address.
    pub source: VirtAddr,
    /// Trained branch kind.
    pub kind: BranchKind,
    /// Predicted target (`None` for `ret`, which the RSB serves).
    pub target: Option<VirtAddr>,
    /// Privilege mode that trained the entry (for IBRS-style gating).
    pub trained_at: PrivilegeLevel,
    /// SMT thread that trained the entry (for STIBP gating).
    pub thread: u8,
}

/// The Branch Target Buffer.
///
/// # Examples
///
/// ```
/// use phantom_bpu::{Btb, BtbScheme};
/// use phantom_isa::BranchKind;
/// use phantom_mem::{PrivilegeLevel, VirtAddr};
///
/// let mut btb = Btb::new(BtbScheme::zen34());
/// let a = VirtAddr::new(0x0000_1000_0000_0ac0);
/// btb.train(a, BranchKind::Indirect, VirtAddr::new(0x5000), PrivilegeLevel::User, 0);
/// let hit = btb.lookup(a).expect("trained entry");
/// assert_eq!(hit.kind, BranchKind::Indirect);
/// assert_eq!(hit.target, Some(VirtAddr::new(0x5000)));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    scheme: BtbScheme,
    /// Entries bucketed by page offset; fold signatures disambiguate.
    buckets: std::collections::HashMap<u16, Vec<BtbEntry>>,
    clock: u64,
    /// Content stamp: restamped (from the process-global counter) only
    /// when an entry's *predictive* content actually changes — inserts,
    /// evictions, replacements, flushes. A retrain that rewrites an
    /// entry with identical kind/target/tags is LRU-only and leaves the
    /// generation alone, so steady-state re-execution of a trained
    /// branch doesn't look like BTB churn to generation watchers.
    generation: u64,
}

impl Btb {
    /// An empty BTB with the given scheme.
    pub fn new(scheme: BtbScheme) -> Btb {
        Btb {
            scheme,
            buckets: std::collections::HashMap::new(),
            clock: 0,
            generation: next_btb_generation(),
        }
    }

    /// The indexing scheme.
    pub fn scheme(&self) -> &BtbScheme {
        &self.scheme
    }

    /// The content-generation stamp. Unchanged generation means no
    /// entry's predictive content (kind, targets, history tags,
    /// privilege/thread tagging) has changed — LRU refreshes don't
    /// count. Values are process-globally unique per content state, so
    /// the guarantee survives snapshot restores that roll the BTB back.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Record a resolved branch: source address, decoded kind, resolved
    /// target. Overwrites an aliasing entry; otherwise inserts, evicting
    /// LRU beyond the per-class associativity.
    pub fn train(
        &mut self,
        source: VirtAddr,
        kind: BranchKind,
        target: VirtAddr,
        level: PrivilegeLevel,
        thread: u8,
    ) {
        self.train_with_history(source, kind, target, level, thread, 0);
    }

    /// [`Btb::train`] under an explicit BHB history tag. Retraining an
    /// aliasing entry with a *different* tag keeps the old target in the
    /// secondary slot, so the entry serves per-history targets.
    pub fn train_with_history(
        &mut self,
        source: VirtAddr,
        kind: BranchKind,
        target: VirtAddr,
        level: PrivilegeLevel,
        thread: u8,
        bhb_tag: u16,
    ) {
        self.clock += 1;
        let page_offset = (source.raw() & 0xfff) as u16;
        let signature = self.scheme.family.signature(source);
        let stored = if kind.target_is_relative() {
            StoredTarget::Rel(target.raw().wrapping_sub(source.raw()) as i64)
        } else {
            StoredTarget::Abs(target)
        };
        let privilege_tagged = self.scheme.privilege_tagged;
        let ways = self.scheme.ways;
        let clock = self.clock;
        let bucket = self.buckets.entry(page_offset).or_default();
        // Alias match: same signature (and privilege when tagged).
        if let Some(existing) = bucket
            .iter_mut()
            .find(|e| e.signature == signature && (!privilege_tagged || e.trained_at == level))
        {
            // Same kind, different history: demote the old target to the
            // secondary slot instead of forgetting it (§2.1 multi-target
            // entries). A kind change always replaces the whole entry.
            let alt_target = if existing.kind == kind && existing.target.0 != bhb_tag {
                Some(existing.target)
            } else {
                None
            };
            let replacement = BtbEntry {
                page_offset,
                signature,
                kind,
                trained_at: level,
                thread,
                target: (bhb_tag, stored),
                alt_target,
                lru: clock,
            };
            // A retrain that reproduces the entry verbatim is an
            // LRU-only touch; only real content changes restamp the
            // generation.
            if existing.kind == replacement.kind
                && existing.trained_at == replacement.trained_at
                && existing.thread == replacement.thread
                && existing.target == replacement.target
                && existing.alt_target == replacement.alt_target
            {
                existing.lru = clock;
            } else {
                *existing = replacement;
                self.generation = next_btb_generation();
            }
            return;
        }
        self.generation = next_btb_generation();
        let entry = BtbEntry {
            page_offset,
            signature,
            kind,
            trained_at: level,
            thread,
            target: (bhb_tag, stored),
            alt_target: None,
            lru: clock,
        };
        if bucket.len() >= ways {
            // Evict LRU within the bucket.
            if let Some(pos) = bucket
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
            {
                bucket.remove(pos);
            }
        }
        bucket.push(entry);
    }

    /// Look up a prediction for a potential branch source at `source`.
    /// Matching is purely address-based — the caller has *not decoded*
    /// anything yet.
    pub fn lookup(&self, source: VirtAddr) -> Option<BtbHit> {
        self.lookup_with_history(source, 0)
    }

    /// [`Btb::lookup`] under an explicit BHB history tag (selects among
    /// multi-target entry slots).
    pub fn lookup_with_history(&self, source: VirtAddr, bhb_tag: u16) -> Option<BtbHit> {
        let page_offset = (source.raw() & 0xfff) as u16;
        // Bucket first: most window bytes have no entry at their page
        // offset at all, and the fold signature is only worth computing
        // once a bucket exists.
        let bucket = self.buckets.get(&page_offset)?;
        let signature = self.scheme.family.signature(source);
        let entry = bucket.iter().find(|e| e.signature == signature)?;
        let target = if entry.kind == BranchKind::Ret {
            None
        } else {
            entry.target_for_history(source, bhb_tag)
        };
        Some(BtbHit {
            source,
            kind: entry.kind,
            target,
            trained_at: entry.trained_at,
            thread: entry.thread,
        })
    }

    /// Scan a fetch window `[base, base+len)` for the first predicted
    /// branch source, in address order. This is the pre-decode BTB query
    /// the fetch unit performs for every block.
    pub fn lookup_window(&self, base: VirtAddr, len: u64) -> Option<BtbHit> {
        (0..len).find_map(|off| self.lookup(base + off))
    }

    /// Remove every entry (IBPB).
    pub fn flush(&mut self) {
        if !self.buckets.is_empty() {
            self.generation = next_btb_generation();
        }
        self.buckets.clear();
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// Whether the BTB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl crate::state::PredictorState for Btb {
    fn name(&self) -> &'static str {
        "btb"
    }

    fn capacity(&self) -> usize {
        // One bucket per page offset, `ways` entries each.
        4096 * self.scheme.ways
    }

    fn live_entries(&self) -> usize {
        self.len()
    }

    fn generation(&self) -> u64 {
        Btb::generation(self)
    }

    fn flush(&mut self) {
        Btb::flush(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_simple(btb: &mut Btb, src: u64, kind: BranchKind, tgt: u64) {
        btb.train(
            VirtAddr::new(src),
            kind,
            VirtAddr::new(tgt),
            PrivilegeLevel::User,
            0,
        );
    }

    #[test]
    fn exact_source_lookup() {
        let mut btb = Btb::new(BtbScheme::zen34());
        train_simple(&mut btb, 0x10_0ac0, BranchKind::Indirect, 0x55_0000);
        let hit = btb.lookup(VirtAddr::new(0x10_0ac0)).unwrap();
        assert_eq!(hit.target, Some(VirtAddr::new(0x55_0000)));
        assert_eq!(hit.kind, BranchKind::Indirect);
    }

    #[test]
    fn aliased_source_reuses_entry() {
        let mut btb = Btb::new(BtbScheme::zen34());
        let k = VirtAddr::new(0xffff_ffff_8124_6ac0);
        let u = VirtAddr::new(k.raw() ^ 0xffff_bff8_0000_0000);
        // Train at the *user* aliasing address...
        btb.train(
            u,
            BranchKind::Indirect,
            VirtAddr::new(0x5000),
            PrivilegeLevel::User,
            0,
        );
        // ...and the kernel victim address hits.
        let hit = btb.lookup(k).expect("cross-privilege alias");
        assert_eq!(hit.target, Some(VirtAddr::new(0x5000)));
        assert_eq!(hit.trained_at, PrivilegeLevel::User);
    }

    #[test]
    fn non_aliasing_address_misses() {
        let mut btb = Btb::new(BtbScheme::zen34());
        train_simple(&mut btb, 0x10_0ac0, BranchKind::Indirect, 0x5000);
        // Same page offset, different high bits that change the signature.
        assert!(btb.lookup(VirtAddr::new(0x10_0ac0 ^ (1 << 23))).is_none());
        // Different page offset entirely.
        assert!(btb.lookup(VirtAddr::new(0x10_0ac8)).is_none());
    }

    #[test]
    fn direct_targets_shift_with_the_source() {
        let mut btb = Btb::new(BtbScheme::zen12());
        // Train jmp at A=0x40_0ac0 -> C=0x40_1000 (disp +0x540).
        train_simple(&mut btb, 0x40_0ac0, BranchKind::Direct, 0x40_1000);
        // Victim B aliases A (zen12: flip b12+b24+b36-preserving bits);
        // easiest alias: same address (exact hit) at another "instance".
        // Check the PC-relative application: look up at B != A in the
        // same alias class.
        let a = VirtAddr::new(0x40_0ac0);
        let b = VirtAddr::new(a.raw() ^ (1 << 12) ^ (1 << 24)); // f0 sees two flips
        assert!(btb.scheme().family.aliases(a, b));
        let hit = btb.lookup(b).unwrap();
        // Predicted target is B + 0x540 (C'), not C.
        assert_eq!(hit.target, Some(VirtAddr::new(b.raw() + 0x540)));
    }

    #[test]
    fn ret_entries_have_no_btb_target() {
        let mut btb = Btb::new(BtbScheme::zen12());
        train_simple(&mut btb, 0x1234, BranchKind::Ret, 0x9999);
        let hit = btb.lookup(VirtAddr::new(0x1234)).unwrap();
        assert_eq!(hit.kind, BranchKind::Ret);
        assert_eq!(hit.target, None, "ret targets come from the RSB");
    }

    #[test]
    fn training_overwrites_kind() {
        let mut btb = Btb::new(BtbScheme::zen34());
        train_simple(&mut btb, 0x2000, BranchKind::Direct, 0x3000);
        train_simple(&mut btb, 0x2000, BranchKind::Indirect, 0x4000);
        let hit = btb.lookup(VirtAddr::new(0x2000)).unwrap();
        assert_eq!(hit.kind, BranchKind::Indirect);
        assert_eq!(hit.target, Some(VirtAddr::new(0x4000)));
        assert_eq!(btb.len(), 1, "aliasing train replaces, not duplicates");
    }

    #[test]
    fn privilege_tagging_blocks_cross_mode_reuse() {
        let mut btb = Btb::new(BtbScheme::intel());
        let k = VirtAddr::new(0xffff_ffff_8124_6ac0);
        // Find a user alias under the zen12 family (clear untagged bits
        // >= 36, including b47).
        let u = VirtAddr::new(k.raw() & 0xf_ffff_ffff);
        assert!(btb.scheme().family.aliases(k, u));
        btb.train(
            u,
            BranchKind::Indirect,
            VirtAddr::new(0x5000),
            PrivilegeLevel::User,
            0,
        );
        // Address-wise the entry aliases, but the scheme tags privilege:
        // lookup finds the entry, and the *caller* must compare modes.
        // The Bpu layer filters; at the raw BTB layer the entry carries
        // its training mode.
        let hit = btb.lookup(k).unwrap();
        assert_eq!(hit.trained_at, PrivilegeLevel::User);
    }

    #[test]
    fn window_scan_finds_first_source_in_order() {
        let mut btb = Btb::new(BtbScheme::zen12());
        train_simple(&mut btb, 0x1010, BranchKind::Direct, 0x9000);
        train_simple(&mut btb, 0x1008, BranchKind::Indirect, 0x8000);
        let hit = btb.lookup_window(VirtAddr::new(0x1000), 32).unwrap();
        assert_eq!(hit.source, VirtAddr::new(0x1008), "address order wins");
        assert!(btb.lookup_window(VirtAddr::new(0x1020), 32).is_none());
    }

    #[test]
    fn associativity_evicts_lru() {
        let mut btb = Btb::new(BtbScheme::zen34());
        // Three sources with the same page offset, distinct signatures.
        let a = 0x00_0ac0u64;
        let b = a ^ (1 << 23); // changes f0 only
        let c = a ^ (1 << 24); // changes f1 only
        train_simple(&mut btb, a, BranchKind::Indirect, 0x1000);
        train_simple(&mut btb, b, BranchKind::Indirect, 0x2000);
        train_simple(&mut btb, c, BranchKind::Indirect, 0x3000); // evicts a (2 ways)
        assert!(btb.lookup(VirtAddr::new(a)).is_none());
        assert!(btb.lookup(VirtAddr::new(b)).is_some());
        assert!(btb.lookup(VirtAddr::new(c)).is_some());
    }

    #[test]
    fn flush_clears_everything() {
        let mut btb = Btb::new(BtbScheme::zen34());
        train_simple(&mut btb, 0x2000, BranchKind::Direct, 0x3000);
        btb.flush();
        assert!(btb.is_empty());
        assert!(btb.lookup(VirtAddr::new(0x2000)).is_none());
    }

    #[test]
    fn generation_tracks_content_not_lru() {
        let mut btb = Btb::new(BtbScheme::zen34());
        let g0 = btb.generation();
        train_simple(&mut btb, 0x10_0ac0, BranchKind::Indirect, 0x5000);
        let g1 = btb.generation();
        assert_ne!(g0, g1, "insert restamps");
        // Verbatim retrain (the steady-state hot loop): LRU-only.
        train_simple(&mut btb, 0x10_0ac0, BranchKind::Indirect, 0x5000);
        assert_eq!(btb.generation(), g1, "no-op retrain keeps the stamp");
        // Target change restamps.
        train_simple(&mut btb, 0x10_0ac0, BranchKind::Indirect, 0x6000);
        let g2 = btb.generation();
        assert_ne!(g2, g1);
        // Kind change restamps.
        train_simple(&mut btb, 0x10_0ac0, BranchKind::Direct, 0x6000);
        let g3 = btb.generation();
        assert_ne!(g3, g2);
        // Flush of a non-empty BTB restamps; flushing empty does not.
        btb.flush();
        let g4 = btb.generation();
        assert_ne!(g4, g3);
        btb.flush();
        assert_eq!(btb.generation(), g4);
    }

    #[test]
    fn generation_values_are_never_reused_across_clones() {
        // Snapshot-restore pattern: clone carries the stamp with the
        // content; divergent mutation on the live side draws a value the
        // clone's timeline can never produce.
        let mut live = Btb::new(BtbScheme::zen34());
        train_simple(&mut live, 0x10_0ac0, BranchKind::Indirect, 0x5000);
        let snap = live.clone();
        assert_eq!(live.generation(), snap.generation());
        train_simple(&mut live, 0x10_0ac0, BranchKind::Indirect, 0x7000);
        let diverged = live.generation();
        // "Restore": adopt the snapshot wholesale, then mutate again.
        live = snap.clone();
        assert_eq!(live.generation(), snap.generation());
        train_simple(&mut live, 0x10_0ac0, BranchKind::Indirect, 0x7000);
        assert_ne!(
            live.generation(),
            diverged,
            "same retrain after a rewind draws a fresh stamp"
        );
    }
}

#[cfg(test)]
mod multi_target_tests {
    use super::*;

    fn train_hist(btb: &mut Btb, src: u64, tgt: u64, tag: u16) {
        btb.train_with_history(
            VirtAddr::new(src),
            BranchKind::Indirect,
            VirtAddr::new(tgt),
            PrivilegeLevel::User,
            0,
            tag,
        );
    }

    #[test]
    fn two_histories_two_targets() {
        // §2.1: one entry serves per-history targets.
        let mut btb = Btb::new(BtbScheme::zen34());
        let src = 0x40_0ac0;
        train_hist(&mut btb, src, 0x1000, 7);
        train_hist(&mut btb, src, 0x2000, 9);
        let at = |tag: u16| {
            btb.lookup_with_history(VirtAddr::new(src), tag)
                .unwrap()
                .target
                .unwrap()
                .raw()
        };
        assert_eq!(at(7), 0x1000, "old history tag serves the old target");
        assert_eq!(at(9), 0x2000, "new history tag serves the new target");
        // An unknown history falls back to the most recent target.
        assert_eq!(at(42), 0x2000);
    }

    #[test]
    fn kind_change_discards_the_secondary_slot() {
        let mut btb = Btb::new(BtbScheme::zen34());
        let src = 0x40_0ac0;
        train_hist(&mut btb, src, 0x1000, 7);
        // Retrain as a direct branch: the indirect slot must not survive.
        btb.train_with_history(
            VirtAddr::new(src),
            BranchKind::Direct,
            VirtAddr::new(0x3000),
            PrivilegeLevel::User,
            0,
            9,
        );
        let hit = btb.lookup_with_history(VirtAddr::new(src), 7).unwrap();
        assert_eq!(hit.kind, BranchKind::Direct);
        assert_eq!(hit.target, Some(VirtAddr::new(0x3000)));
    }

    #[test]
    fn same_history_retrain_stays_single_target() {
        let mut btb = Btb::new(BtbScheme::zen34());
        let src = 0x40_0ac0;
        train_hist(&mut btb, src, 0x1000, 7);
        train_hist(&mut btb, src, 0x2000, 7);
        assert_eq!(
            btb.lookup_with_history(VirtAddr::new(src), 7)
                .unwrap()
                .target,
            Some(VirtAddr::new(0x2000))
        );
    }

    #[test]
    fn default_tag_paths_are_unchanged() {
        // The default train/lookup pair behaves exactly like a
        // single-target BTB (tag 0 everywhere) — the Phantom machinery
        // runs on this path.
        let mut btb = Btb::new(BtbScheme::zen12());
        btb.train(
            VirtAddr::new(0x2000),
            BranchKind::Indirect,
            VirtAddr::new(0x9000),
            PrivilegeLevel::User,
            0,
        );
        btb.train(
            VirtAddr::new(0x2000),
            BranchKind::Indirect,
            VirtAddr::new(0xa000),
            PrivilegeLevel::User,
            0,
        );
        let hit = btb.lookup(VirtAddr::new(0x2000)).unwrap();
        assert_eq!(hit.target, Some(VirtAddr::new(0xa000)));
    }

    #[test]
    fn summary_is_compact() {
        assert_eq!(BtbScheme::zen34().summary(), "13fx2");
        assert_eq!(BtbScheme::intel().summary(), "12fx2 +priv");
    }
}
