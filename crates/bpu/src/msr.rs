//! Mitigation MSR state.
//!
//! Models the speculation-control knobs the paper evaluates in §6.3/§8:
//! `SuppressBPOnNonBr` (MSR `0xC00110E3` on Zen 2), AutoIBRS (Zen 4),
//! eIBRS (Intel 9th gen+), STIBP, and the IBPB flush command. The point
//! of observations O4/O5 is that these knobs gate *late* pipeline stages:
//! they stop transient execution but not transient fetch or decode.

/// Speculation-control MSR state, as configured by the (simulated) OS.
///
/// # Examples
///
/// ```
/// use phantom_bpu::MsrState;
/// let mut msr = MsrState::default();
/// assert!(!msr.suppress_bp_on_non_br);
/// msr.suppress_bp_on_non_br = true; // wrmsr 0xC00110E3
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MsrState {
    /// `SuppressBPOnNonBr`: when set, a prediction whose victim decodes
    /// as a non-branch may not *execute* its target µops. Per O4, it does
    /// not gate IF/ID. Not supported on Zen 1 (the profile layer refuses
    /// to set it there).
    pub suppress_bp_on_non_br: bool,
    /// AutoIBRS (Zen 4): predictions trained at a lower privilege level
    /// are restricted when predicted in supervisor mode — but only after
    /// ID (O5): the fetch of the predicted target still happens.
    pub auto_ibrs: bool,
    /// eIBRS-style privilege tagging (Intel): the BTB never serves an
    /// entry across privilege modes at all.
    pub eibrs_tagging: bool,
    /// STIBP: sibling-thread predictions are isolated (entries tagged by
    /// SMT thread id).
    pub stibp: bool,
}

impl MsrState {
    /// All mitigations off (the Zen 1 baseline).
    pub fn none() -> MsrState {
        MsrState::default()
    }

    /// The default-Ubuntu threat-model configuration for a given level of
    /// hardware support: every supported mitigation on.
    pub fn hardened(supports_suppress: bool, supports_auto_ibrs: bool, intel: bool) -> MsrState {
        MsrState {
            suppress_bp_on_non_br: supports_suppress,
            auto_ibrs: supports_auto_ibrs,
            eibrs_tagging: intel,
            stibp: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_off() {
        let msr = MsrState::default();
        assert!(!msr.suppress_bp_on_non_br);
        assert!(!msr.auto_ibrs);
        assert!(!msr.eibrs_tagging);
        assert!(!msr.stibp);
    }

    #[test]
    fn hardened_reflects_support_matrix() {
        // Zen 1: nothing supported.
        let zen1 = MsrState::hardened(false, false, false);
        assert_eq!(
            zen1,
            MsrState {
                stibp: true,
                ..MsrState::none()
            }
        );
        // Zen 4: SuppressBPOnNonBr + AutoIBRS.
        let zen4 = MsrState::hardened(true, true, false);
        assert!(zen4.suppress_bp_on_non_br && zen4.auto_ibrs && !zen4.eibrs_tagging);
        // Intel: eIBRS tagging.
        let intel = MsrState::hardened(false, false, true);
        assert!(intel.eibrs_tagging);
    }
}
