//! Branch History Buffer: footprints of recent control-flow edges.
//!
//! §2.1: "Branch History Buffers (BHBs) contain footprints of recently
//! encountered control-flow edges, and are used to index Branch Target
//! Buffers … The BPU selects the target by matching a tag of the current
//! BHB with the tag from one of the targets."
//!
//! We model the BHB as a shift register folding (source, target) edge
//! bits, exposing a bounded-width *tag*. The machine updates it on every
//! taken branch; multi-target BTB selection (the BHI attack surface,
//! cited as \[8\]) keys per-entry targets off this tag. Phantom itself
//! does not depend on BHB state — its predictions fire regardless of
//! history — which this crate's tests pin down.

use phantom_mem::VirtAddr;

/// A folding branch-history shift register.
///
/// # Examples
///
/// ```
/// use phantom_bpu::Bhb;
/// use phantom_mem::VirtAddr;
/// let mut bhb = Bhb::new();
/// let empty = bhb.tag();
/// bhb.record(VirtAddr::new(0x1234), VirtAddr::new(0x2468));
/// assert_ne!(bhb.tag(), empty);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bhb {
    state: u64,
}

/// Number of meaningful tag bits exposed by [`Bhb::tag`].
pub const BHB_TAG_BITS: u32 = 16;

impl Bhb {
    /// An empty history.
    pub fn new() -> Bhb {
        Bhb { state: 0 }
    }

    /// Record one taken control-flow edge. The footprint folds low
    /// source and target bits, shifted in two bits at a time — old edges
    /// age out after ~32 branches, like real BHBs.
    pub fn record(&mut self, source: VirtAddr, target: VirtAddr) {
        let footprint = (source.raw() >> 2) ^ (target.raw() >> 1);
        self.state = (self.state << 2) ^ (footprint & 0x3f);
    }

    /// The current history tag (bounded to [`BHB_TAG_BITS`]).
    pub fn tag(&self) -> u16 {
        let folded = self.state ^ (self.state >> 16) ^ (self.state >> 32) ^ (self.state >> 48);
        (folded & ((1 << BHB_TAG_BITS) - 1)) as u16
    }

    /// Clear the history (context switch / IBPB).
    pub fn flush(&mut self) {
        self.state = 0;
    }

    /// The raw shift-register state (reverse-engineering experiments).
    pub fn raw(&self) -> u64 {
        self.state
    }
}

impl Default for Bhb {
    fn default() -> Bhb {
        Bhb::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(n: u64) -> (VirtAddr, VirtAddr) {
        (
            VirtAddr::new(0x40_0000 + n * 64),
            VirtAddr::new(0x50_0000 + n * 128),
        )
    }

    #[test]
    fn distinct_histories_give_distinct_tags() {
        let mut a = Bhb::new();
        let mut b = Bhb::new();
        let (s1, t1) = edge(1);
        let (s2, t2) = edge(2);
        a.record(s1, t1);
        b.record(s2, t2);
        assert_ne!(a.tag(), b.tag());
    }

    #[test]
    fn history_order_matters() {
        let mut ab = Bhb::new();
        let mut ba = Bhb::new();
        let (s1, t1) = edge(1);
        let (s2, t2) = edge(2);
        ab.record(s1, t1);
        ab.record(s2, t2);
        ba.record(s2, t2);
        ba.record(s1, t1);
        assert_ne!(ab.tag(), ba.tag(), "the BHB is a sequence footprint");
    }

    #[test]
    fn same_history_same_tag() {
        let mut a = Bhb::new();
        let mut b = Bhb::new();
        for i in 0..10 {
            let (s, t) = edge(i);
            a.record(s, t);
            b.record(s, t);
        }
        assert_eq!(a.tag(), b.tag());
    }

    #[test]
    fn old_edges_age_out() {
        // Two histories differing only in an edge >32 branches ago
        // converge to the same tag (2 bits shift per edge over 64 bits).
        let mut a = Bhb::new();
        let mut b = Bhb::new();
        let (sx, tx) = edge(99);
        a.record(sx, tx);
        for i in 0..40 {
            let (s, t) = edge(i);
            a.record(s, t);
            b.record(s, t);
        }
        assert_eq!(a.tag(), b.tag(), "stale edge shifted out");
    }

    #[test]
    fn flush_restores_empty() {
        let mut a = Bhb::new();
        let (s, t) = edge(3);
        a.record(s, t);
        a.flush();
        assert_eq!(a, Bhb::new());
    }

    #[test]
    fn tag_fits_declared_width() {
        let mut a = Bhb::new();
        for i in 0..100 {
            let (s, t) = edge(i);
            a.record(s, t);
            assert!(u32::from(a.tag()) < 1 << BHB_TAG_BITS);
        }
    }
}
