//! Return Stack Buffer (RSB / Return Address Stack).
//!
//! A small circular stack of recent call sites used to predict `ret`
//! targets without waiting for the architectural stack load (§2.1). When
//! a victim instruction is *trained as* a return (the `ret`-training rows
//! of Table 1), the frontend pops this structure — so the predicted
//! target is "the most recent call site", not the trained target C.

use phantom_mem::VirtAddr;

/// A fixed-depth return stack buffer.
///
/// Overflow wraps around (oldest entries are overwritten); underflow
/// returns `None` (some real parts then fall back to the BTB, which we
/// leave to the caller).
///
/// # Examples
///
/// ```
/// use phantom_bpu::Rsb;
/// use phantom_mem::VirtAddr;
/// let mut rsb = Rsb::new(16);
/// rsb.push(VirtAddr::new(0x1005));
/// assert_eq!(rsb.pop(), Some(VirtAddr::new(0x1005)));
/// assert_eq!(rsb.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct Rsb {
    entries: Vec<VirtAddr>,
    depth: usize,
    top: usize,
    live: usize,
}

impl Rsb {
    /// Create an RSB holding `depth` entries (16 or 32 on real parts).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Rsb {
        assert!(depth > 0, "RSB depth must be nonzero");
        Rsb {
            entries: vec![VirtAddr::new(0); depth],
            depth,
            top: 0,
            live: 0,
        }
    }

    /// Record a call site's return address.
    pub fn push(&mut self, ret_addr: VirtAddr) {
        self.entries[self.top] = ret_addr;
        self.top = (self.top + 1) % self.depth;
        self.live = (self.live + 1).min(self.depth);
    }

    /// Predict a return target (consumes the entry).
    pub fn pop(&mut self) -> Option<VirtAddr> {
        if self.live == 0 {
            return None;
        }
        self.top = (self.top + self.depth - 1) % self.depth;
        self.live -= 1;
        Some(self.entries[self.top])
    }

    /// Peek at the next prediction without consuming it.
    pub fn peek(&self) -> Option<VirtAddr> {
        if self.live == 0 {
            return None;
        }
        Some(self.entries[(self.top + self.depth - 1) % self.depth])
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the RSB is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Capacity.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Clear all entries (IBPB-style flush, or RSB stuffing with dummy
    /// targets modeled as a flush).
    pub fn flush(&mut self) {
        self.live = 0;
        self.top = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut rsb = Rsb::new(4);
        for i in 1..=3u64 {
            rsb.push(VirtAddr::new(i * 0x100));
        }
        assert_eq!(rsb.pop(), Some(VirtAddr::new(0x300)));
        assert_eq!(rsb.pop(), Some(VirtAddr::new(0x200)));
        assert_eq!(rsb.pop(), Some(VirtAddr::new(0x100)));
        assert_eq!(rsb.pop(), None);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut rsb = Rsb::new(2);
        rsb.push(VirtAddr::new(1));
        rsb.push(VirtAddr::new(2));
        rsb.push(VirtAddr::new(3)); // overwrites 1
        assert_eq!(rsb.pop(), Some(VirtAddr::new(3)));
        assert_eq!(rsb.pop(), Some(VirtAddr::new(2)));
        assert_eq!(rsb.pop(), None, "entry 1 was overwritten");
    }

    #[test]
    fn peek_does_not_consume() {
        let mut rsb = Rsb::new(4);
        rsb.push(VirtAddr::new(7));
        assert_eq!(rsb.peek(), Some(VirtAddr::new(7)));
        assert_eq!(rsb.len(), 1);
        assert_eq!(rsb.pop(), Some(VirtAddr::new(7)));
    }

    #[test]
    fn flush_empties() {
        let mut rsb = Rsb::new(4);
        rsb.push(VirtAddr::new(1));
        rsb.flush();
        assert!(rsb.is_empty());
        assert_eq!(rsb.pop(), None);
    }
}
