//! The combined branch prediction unit: BTB + RSB + CBP behind the
//! mitigation MSRs.
//!
//! [`Bpu::predict_block`] is the *pre-decode* query the fetch unit runs
//! for every fetch window. It returns at most one [`Prediction`] — where
//! the frontend should steer next and how trusted that steer is under
//! the active mitigations (a prediction can be `restricted`, meaning it
//! may fetch and decode but never execute, which is exactly the AutoIBRS
//! and `SuppressBPOnNonBr` behavior of observations O4/O5).

use phantom_isa::BranchKind;
use phantom_mem::{PrivilegeLevel, VirtAddr};

use crate::bhb::Bhb;
use crate::btb::{Btb, BtbScheme};
use crate::cbp::{Cbp, CbpScheme};
use crate::msr::MsrState;
use crate::rsb::Rsb;
use crate::state::PredictorState;

/// A prediction served to the fetch unit before decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted branch-source address (where the BPU believes a branch
    /// sits — there may be *no* branch there in reality).
    pub source: VirtAddr,
    /// The branch kind, as trained.
    pub kind: BranchKind,
    /// Predicted target. `None` when an RSB underflow leaves a
    /// `ret`-kind prediction with nowhere to go.
    pub target: Option<VirtAddr>,
    /// Privilege mode that trained the underlying entry.
    pub trained_at: PrivilegeLevel,
    /// Whether a mitigation allows this prediction to steer fetch/decode
    /// but forbids executing µops from the target (AutoIBRS cross-mode
    /// case). `SuppressBPOnNonBr` restriction is applied later, at
    /// decode, because it depends on what the victim decodes as.
    pub restricted: bool,
}

/// The branch prediction unit.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Bpu {
    btb: Btb,
    rsb: Rsb,
    cbp: Cbp,
    bhb: Bhb,
    msr: MsrState,
}

impl Bpu {
    /// Create a BPU with the given BTB scheme, the legacy conditional
    /// predictor, and the given MSR state.
    pub fn new(scheme: BtbScheme, msr: MsrState) -> Bpu {
        Bpu::with_schemes(scheme, CbpScheme::legacy(), msr)
    }

    /// Create a BPU with explicit BTB *and* CBP schemes — the spec-driven
    /// constructor the machine layer uses.
    pub fn with_schemes(btb: BtbScheme, cbp: CbpScheme, msr: MsrState) -> Bpu {
        Bpu {
            btb: Btb::new(btb),
            rsb: Rsb::new(32),
            cbp: Cbp::new(cbp),
            bhb: Bhb::new(),
            msr,
        }
    }

    /// Current MSR state.
    pub fn msr(&self) -> MsrState {
        self.msr
    }

    /// Reconfigure MSRs (the OS writing `wrmsr`).
    pub fn set_msr(&mut self, msr: MsrState) {
        self.msr = msr;
    }

    /// The underlying BTB (for experiments that inspect it).
    pub fn btb(&self) -> &Btb {
        &self.btb
    }

    /// The RSB.
    pub fn rsb(&self) -> &Rsb {
        &self.rsb
    }

    /// The RSB, mutably (call/ret bookkeeping from the pipeline).
    pub fn rsb_mut(&mut self) -> &mut Rsb {
        &mut self.rsb
    }

    /// The conditional-branch predictor (for experiments that inspect
    /// or calibrate against its counters).
    pub fn cbp(&self) -> &Cbp {
        &self.cbp
    }

    /// Every predictor structure behind one introspection interface —
    /// attacks and reports that read predictor state (occupancy,
    /// generations) iterate this instead of special-casing the BTB.
    pub fn predictor_states(&self) -> [&dyn PredictorState; 2] {
        [&self.btb, &self.cbp]
    }

    /// The branch history buffer.
    pub fn bhb(&self) -> &Bhb {
        &self.bhb
    }

    /// Record a resolved taken edge into the BHB (the machine calls this
    /// on every taken branch). Phantom predictions fire regardless of
    /// history; the BHB exists for fidelity and BHI-style experiments.
    pub fn record_edge(&mut self, source: VirtAddr, target: VirtAddr) {
        self.bhb.record(source, target);
    }

    /// Train the BTB with a resolved branch (called when a branch
    /// resolves in the backend — or when a faulting user branch to a
    /// kernel address is squashed, which still deposits an entry; that
    /// is the §6.2 page-fault training trick).
    pub fn train(
        &mut self,
        source: VirtAddr,
        kind: BranchKind,
        target: VirtAddr,
        level: PrivilegeLevel,
    ) {
        self.train_smt(source, kind, target, level, 0);
    }

    /// [`Bpu::train`] with an explicit SMT thread id.
    pub fn train_smt(
        &mut self,
        source: VirtAddr,
        kind: BranchKind,
        target: VirtAddr,
        level: PrivilegeLevel,
        thread: u8,
    ) {
        self.btb.train(source, kind, target, level, thread);
    }

    /// Record a conditional branch outcome in the CBP.
    pub fn train_direction(&mut self, source: VirtAddr, taken: bool) {
        self.cbp.update(source, taken);
    }

    /// Predicted direction for a conditional at `source`.
    pub fn predict_direction(&self, source: VirtAddr) -> bool {
        self.cbp.predict(source)
    }

    /// The pre-decode prediction query for a fetch window starting at
    /// `base` (32 bytes, a typical fetch block). `level` is the *current*
    /// privilege mode; `thread` the current SMT thread.
    ///
    /// Mitigation gating implemented here:
    /// * **eIBRS tagging** (Intel): entries trained in another mode are
    ///   invisible;
    /// * **STIBP**: entries trained by the sibling thread are invisible;
    /// * **AutoIBRS**: entries trained at user, predicted in supervisor,
    ///   are served but `restricted` (O5: fetch still happens).
    pub fn predict_block(
        &mut self,
        base: VirtAddr,
        level: PrivilegeLevel,
        thread: u8,
    ) -> Option<Prediction> {
        self.predict_window(base, 32, level, thread)
    }

    /// [`Bpu::predict_block`] over an explicit window length (the machine
    /// queries per-instruction spans so each prediction fires exactly
    /// once).
    pub fn predict_window(
        &mut self,
        base: VirtAddr,
        window: u64,
        level: PrivilegeLevel,
        thread: u8,
    ) -> Option<Prediction> {
        let hit = self.first_visible_hit(base, window, level, thread)?;

        // Conditional predictions consult the CBP for direction; a
        // not-taken prediction serves no steer at all.
        if hit.kind == BranchKind::Cond && !self.cbp.predict(hit.source) {
            return None;
        }

        let target = match hit.kind {
            BranchKind::Ret => self.rsb.pop(),
            _ => hit.target,
        };

        let restricted = self.msr.auto_ibrs
            && level == PrivilegeLevel::Supervisor
            && hit.trained_at == PrivilegeLevel::User;

        Some(Prediction {
            source: hit.source,
            kind: hit.kind,
            target,
            trained_at: hit.trained_at,
            restricted,
        })
    }

    /// The first BTB hit in `[base, base+window)` that the active
    /// mitigations let this privilege mode and SMT thread *see*. Scans
    /// window positions in address order; entries hidden by tag-based
    /// mitigations (eIBRS tagging, STIBP) are skipped without shadowing
    /// later visible ones. Pure with respect to predictor state.
    fn first_visible_hit(
        &self,
        base: VirtAddr,
        window: u64,
        level: PrivilegeLevel,
        thread: u8,
    ) -> Option<crate::btb::BtbHit> {
        let scheme_tagged = self.btb.scheme().privilege_tagged;
        let stibp = self.msr.stibp;
        let eibrs = self.msr.eibrs_tagging;
        for off in 0..window {
            if let Some(h) = self.btb.lookup(base + off) {
                let hidden_priv = (scheme_tagged || eibrs) && h.trained_at != level;
                let hidden_smt = stibp && h.thread != thread;
                if hidden_priv || hidden_smt {
                    continue;
                }
                return Some(h);
            }
        }
        None
    }

    /// Whether [`predict_window`](Bpu::predict_window) over the same
    /// span could serve *any* prediction: a visible BTB hit exists
    /// (direction/RSB handling aside). Non-perturbing — consumers
    /// memoizing "this window predicts nothing" (the pipeline's trace
    /// engine) revalidate with this without popping the RSB or touching
    /// any counter.
    pub fn window_has_visible_hit(
        &self,
        base: VirtAddr,
        window: u64,
        level: PrivilegeLevel,
        thread: u8,
    ) -> bool {
        self.first_visible_hit(base, window, level, thread)
            .is_some()
    }

    /// The BTB's content-generation stamp; see [`Btb::generation`].
    pub fn btb_generation(&self) -> u64 {
        self.btb.generation()
    }

    /// The CBP's content-generation stamp; see [`Cbp::generation`].
    pub fn cbp_generation(&self) -> u64 {
        self.cbp.generation()
    }

    /// IBPB: flush every prediction structure. "Assuming that IBPB can
    /// flush all types of predictions, it mitigates all our exploitation
    /// primitives P1, P2, and P3" (§8.2).
    pub fn ibpb(&mut self) {
        self.btb.flush();
        self.rsb.flush();
        self.cbp.flush();
        self.bhb.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bpu(scheme: BtbScheme, msr: MsrState) -> Bpu {
        Bpu::new(scheme, msr)
    }

    #[test]
    fn window_prediction_finds_trained_source() {
        let mut b = bpu(BtbScheme::zen34(), MsrState::none());
        let src = VirtAddr::new(0x40_1008);
        b.train(
            src,
            BranchKind::Indirect,
            VirtAddr::new(0x7000),
            PrivilegeLevel::User,
        );
        let p = b
            .predict_block(VirtAddr::new(0x40_1000), PrivilegeLevel::User, 0)
            .unwrap();
        assert_eq!(p.source, src);
        assert_eq!(p.target, Some(VirtAddr::new(0x7000)));
        assert!(!p.restricted);
    }

    #[test]
    fn no_training_no_prediction() {
        let mut b = bpu(BtbScheme::zen34(), MsrState::none());
        assert!(b
            .predict_block(VirtAddr::new(0x1000), PrivilegeLevel::User, 0)
            .is_none());
    }

    #[test]
    fn ret_prediction_pops_rsb() {
        let mut b = bpu(BtbScheme::zen12(), MsrState::none());
        let src = VirtAddr::new(0x2000);
        b.train(src, BranchKind::Ret, VirtAddr::new(0), PrivilegeLevel::User);
        b.rsb_mut().push(VirtAddr::new(0xcafe));
        let p = b.predict_block(src, PrivilegeLevel::User, 0).unwrap();
        assert_eq!(p.kind, BranchKind::Ret);
        assert_eq!(
            p.target,
            Some(VirtAddr::new(0xcafe)),
            "most recent call site"
        );
        // RSB consumed: next prediction underflows.
        let p2 = b.predict_block(src, PrivilegeLevel::User, 0).unwrap();
        assert_eq!(p2.target, None);
    }

    #[test]
    fn conditional_prediction_respects_direction() {
        let mut b = bpu(BtbScheme::zen12(), MsrState::none());
        let src = VirtAddr::new(0x3000);
        b.train(
            src,
            BranchKind::Cond,
            VirtAddr::new(0x4000),
            PrivilegeLevel::User,
        );
        // Default PHT state: weakly not taken -> no steer.
        assert!(b.predict_block(src, PrivilegeLevel::User, 0).is_none());
        b.train_direction(src, true);
        b.train_direction(src, true);
        b.train_direction(src, true);
        // PHT history shifts the index; retrain until the static query
        // predicts taken.
        for _ in 0..8 {
            b.train_direction(src, true);
        }
        assert!(
            b.predict_direction(src) || b.predict_block(src, PrivilegeLevel::User, 0).is_some()
        );
    }

    #[test]
    fn auto_ibrs_restricts_but_serves_cross_privilege() {
        let msr = MsrState {
            auto_ibrs: true,
            ..MsrState::none()
        };
        let mut b = bpu(BtbScheme::zen34(), msr);
        let k = VirtAddr::new(0xffff_ffff_8124_6ac0);
        let u = VirtAddr::new(k.raw() ^ 0xffff_bff8_0000_0000);
        b.train(
            u,
            BranchKind::Indirect,
            VirtAddr::new(0x9000),
            PrivilegeLevel::User,
        );
        // Kernel-mode prediction: served, restricted (O5).
        let p = b
            .predict_block(
                k.page_base() + (k.raw() & 0xfff) / 32 * 32,
                PrivilegeLevel::Supervisor,
                0,
            )
            .or_else(|| b.predict_block(k, PrivilegeLevel::Supervisor, 0))
            .unwrap();
        assert!(p.restricted);
        assert_eq!(p.target, Some(VirtAddr::new(0x9000)));
    }

    #[test]
    fn eibrs_tagging_hides_cross_privilege_entries() {
        let msr = MsrState {
            eibrs_tagging: true,
            ..MsrState::none()
        };
        let mut b = bpu(BtbScheme::intel(), msr);
        let k = VirtAddr::new(0xffff_ffff_8124_6ac0);
        let u = VirtAddr::new(k.raw() & 0x0000_7fff_ffff_ffff & !(1 << 47));
        b.train(
            u,
            BranchKind::Indirect,
            VirtAddr::new(0x9000),
            PrivilegeLevel::User,
        );
        assert!(
            b.predict_block(k, PrivilegeLevel::Supervisor, 0).is_none(),
            "Intel does not reuse user predictions in kernel mode"
        );
        // Same mode still works.
        assert!(b.predict_block(u, PrivilegeLevel::User, 0).is_some());
    }

    #[test]
    fn stibp_isolates_smt_threads() {
        let msr = MsrState {
            stibp: true,
            ..MsrState::none()
        };
        let mut b = bpu(BtbScheme::zen12(), msr);
        let src = VirtAddr::new(0x5000);
        b.train_smt(
            src,
            BranchKind::Indirect,
            VirtAddr::new(0x6000),
            PrivilegeLevel::User,
            1,
        );
        assert!(b.predict_block(src, PrivilegeLevel::User, 0).is_none());
        assert!(b.predict_block(src, PrivilegeLevel::User, 1).is_some());
    }

    #[test]
    fn ibpb_flushes_all_structures() {
        let mut b = bpu(BtbScheme::zen34(), MsrState::none());
        let src = VirtAddr::new(0x5000);
        b.train(
            src,
            BranchKind::Indirect,
            VirtAddr::new(0x6000),
            PrivilegeLevel::User,
        );
        b.rsb_mut().push(VirtAddr::new(0x1234));
        b.ibpb();
        assert!(b.predict_block(src, PrivilegeLevel::User, 0).is_none());
        assert!(b.rsb().is_empty());
    }
}
