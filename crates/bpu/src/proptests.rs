//! Property-based tests for the branch prediction structures.

use proptest::prelude::*;

use phantom_isa::BranchKind;
use phantom_mem::{PrivilegeLevel, VirtAddr};

use crate::btb::{Btb, BtbScheme};
use crate::hashfn::{FoldFamily, FoldFn};
use crate::rsb::Rsb;

fn arb_kind() -> impl Strategy<Value = BranchKind> {
    prop_oneof![
        Just(BranchKind::Direct),
        Just(BranchKind::Indirect),
        Just(BranchKind::Cond),
        Just(BranchKind::Call),
        Just(BranchKind::CallInd),
        Just(BranchKind::Ret),
    ]
}

proptest! {
    /// Aliasing is an equivalence: reflexive and symmetric, and XORing a
    /// signature-preserving pattern is involutive.
    #[test]
    fn aliasing_is_symmetric(addr in any::<u64>(), other in any::<u64>()) {
        let fam = FoldFamily::zen34();
        let a = VirtAddr::new(addr);
        let b = VirtAddr::new(other);
        prop_assert!(fam.aliases(a, a));
        prop_assert_eq!(fam.aliases(a, b), fam.aliases(b, a));
    }

    /// The paper's two public XOR collision patterns preserve aliasing
    /// for ANY base address.
    #[test]
    fn figure7_patterns_alias_everywhere(addr in any::<u64>()) {
        let fam = FoldFamily::zen34();
        let a = VirtAddr::new(addr);
        for pattern in [0xffff_bff8_0000_0000u64, 0xffff_8003_ff80_0000] {
            prop_assert!(fam.aliases(a, VirtAddr::new(addr ^ pattern)));
        }
    }

    /// After training a source, looking it up always returns the trained
    /// kind, and for indirect branches the trained target.
    #[test]
    fn btb_lookup_returns_last_training(
        src in any::<u64>(),
        tgt in any::<u64>(),
        kind in arb_kind(),
    ) {
        let mut btb = Btb::new(BtbScheme::zen34());
        btb.train(VirtAddr::new(src), kind, VirtAddr::new(tgt), PrivilegeLevel::User, 0);
        let hit = btb.lookup(VirtAddr::new(src)).expect("just trained");
        prop_assert_eq!(hit.kind, kind);
        match kind {
            BranchKind::Ret => prop_assert_eq!(hit.target, None),
            BranchKind::Direct | BranchKind::Call =>
                prop_assert_eq!(hit.target, Some(VirtAddr::new(tgt))),
            _ => prop_assert_eq!(hit.target, Some(VirtAddr::new(tgt))),
        }
    }

    /// Direct targets are PC-relative: for any aliasing pair (a, b),
    /// target(b) - b == target(a) - a.
    #[test]
    fn direct_targets_are_pc_relative(src in any::<u64>(), disp in any::<i32>()) {
        let mut btb = Btb::new(BtbScheme::zen34());
        let a = VirtAddr::new(src);
        let b = VirtAddr::new(src ^ 0xffff_bff8_0000_0000); // aliases a
        let tgt = VirtAddr::new(src.wrapping_add(disp as i64 as u64));
        btb.train(a, BranchKind::Direct, tgt, PrivilegeLevel::User, 0);
        let hit = btb.lookup(b).expect("aliasing entry");
        let predicted = hit.target.unwrap();
        prop_assert_eq!(
            predicted.raw().wrapping_sub(b.raw()),
            tgt.raw().wrapping_sub(a.raw())
        );
    }

    /// The RSB is a bounded LIFO: popping returns pushes in reverse
    /// order, truncated to the most recent `depth`.
    #[test]
    fn rsb_is_a_bounded_lifo(
        depth in 1usize..32,
        pushes in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let mut rsb = Rsb::new(depth);
        for &p in &pushes {
            rsb.push(VirtAddr::new(p));
        }
        let expected: Vec<u64> = pushes.iter().rev().take(depth).copied().collect();
        let mut got = Vec::new();
        while let Some(v) = rsb.pop() {
            got.push(v.raw());
        }
        prop_assert_eq!(got, expected);
    }

    /// BTB lookups never fabricate entries: an untrained alias class
    /// misses.
    #[test]
    fn untouched_btb_never_hits(addrs in proptest::collection::vec(any::<u64>(), 1..50)) {
        let btb = Btb::new(BtbScheme::zen34());
        for a in addrs {
            prop_assert!(btb.lookup(VirtAddr::new(a)).is_none());
        }
    }

    /// Fold signatures are linear: sig(a ^ p) == sig(a) ^ sig_of_pattern(p)
    /// where sig_of_pattern is the signature of the pattern alone.
    #[test]
    fn signatures_are_gf2_linear(a in any::<u64>(), p in any::<u64>()) {
        let fam = FoldFamily::zen34();
        let sig_a = fam.signature(VirtAddr::new(a));
        let sig_p = fam.signature(VirtAddr::new(p));
        let sig_ap = fam.signature(VirtAddr::new(a ^ p));
        prop_assert_eq!(sig_ap, sig_a ^ sig_p);
    }

    /// A single selected-bit flip always changes the signature of a
    /// function that selects it (sanity of FoldFn::eval).
    #[test]
    fn selected_bit_flip_flips_parity(addr in any::<u64>(), bit in 0u32..48) {
        let f = FoldFn::of_bits(&[bit]);
        let a = VirtAddr::new(addr);
        prop_assert_ne!(f.eval(a), f.eval(a.flip_bit(bit)));
    }
}
