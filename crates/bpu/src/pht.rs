//! Pattern History Table: conditional branch direction prediction.
//!
//! A classic array of 2-bit saturating counters indexed by a hash of the
//! branch PC and a global history register. The MDS-gadget exploit of
//! §7.4 trains the kernel's bounds check (`jcc`) to predict *taken*
//! before supplying an out-of-bounds index.
//!
//! The live BPU no longer routes direction prediction through this
//! table — the spec-driven [`crate::Cbp`] replaced it (its
//! [`crate::CbpScheme::legacy`] geometry reproduces this table
//! bit-for-bit, pinned by a test in `cbp.rs`). `Pht` stays as the flat
//! reference model that cross-checks the CBP.

use phantom_mem::VirtAddr;

/// Direction prediction state: 2-bit saturating counters + global
/// history.
///
/// # Examples
///
/// ```
/// use phantom_bpu::Pht;
/// use phantom_mem::VirtAddr;
/// let mut pht = Pht::new(1024);
/// let pc = VirtAddr::new(0x400123);
/// // Weakly not-taken by default; training "taken" repeatedly saturates
/// // the counters along the history path.
/// for _ in 0..12 {
///     pht.update(pc, true);
/// }
/// assert!(pht.predict(pc));
/// ```
#[derive(Debug, Clone)]
pub struct Pht {
    counters: Vec<u8>,
    ghr: u64,
    history_bits: u32,
}

impl Pht {
    /// Create a PHT with `entries` counters. History is 8 bits by
    /// default.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two ≥ 2 — the index mask
    /// requires it. (Earlier versions silently rounded up, which let a
    /// typo'd size masquerade as a differently-shaped table.)
    pub fn new(entries: usize) -> Pht {
        match Pht::try_new(entries) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Pht::new`] — the `CacheGeometry::try_new` pattern: a
    /// description of the violated constraint instead of a panic, for
    /// callers holding user-authored sizes (the uarch spec layer wraps
    /// the message in a field-named `SpecError`).
    pub fn try_new(entries: usize) -> Result<Pht, String> {
        if !entries.is_power_of_two() {
            return Err(format!(
                "pht entries must be a power of two (got {entries})"
            ));
        }
        if entries < 2 {
            return Err(format!("pht needs at least 2 entries (got {entries})"));
        }
        Ok(Pht {
            counters: vec![1; entries],
            ghr: 0,
            history_bits: 8,
        })
    }

    fn index(&self, pc: VirtAddr) -> usize {
        let mask = self.counters.len() as u64 - 1;
        let h = self.ghr & ((1 << self.history_bits) - 1);
        (((pc.raw() >> 1) ^ h) & mask) as usize
    }

    /// Predicted direction for the branch at `pc` (true = taken).
    pub fn predict(&self, pc: VirtAddr) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Update with the resolved direction, shifting global history.
    pub fn update(&mut self, pc: VirtAddr, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.ghr = (self.ghr << 1) | u64::from(taken);
    }

    /// Reset all counters to weakly not-taken and clear history.
    pub fn flush(&mut self) {
        self.counters.fill(1);
        self.ghr = 0;
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the table has zero counters (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_not_taken() {
        let pht = Pht::new(64);
        assert!(!pht.predict(VirtAddr::new(0x1000)));
    }

    #[test]
    fn saturating_training() {
        let mut pht = Pht::new(64);
        let pc = VirtAddr::new(0x2044);
        // Pin history by always updating the same way from a fresh table.
        pht.update(pc, true);
        // After one taken update at this history the counter moved to 2,
        // but history shifted; re-resolve via a fresh table for a stable
        // single-index check.
        let mut pht2 = Pht::new(2); // single effective index space
        let pc2 = VirtAddr::new(0);
        pht2.update(pc2, true);
        pht2.update(pc2, true);
        pht2.update(pc2, true);
        pht2.update(pc2, true); // saturate at 3
        assert!(pht2.predict(pc2));
        for _ in 0..2 {
            pht2.update(pc2, false);
        }
        // From 3, two not-taken -> 1 -> predict not taken.
        assert!(!pht2.predict(pc2));
    }

    #[test]
    fn flush_restores_default() {
        let mut pht = Pht::new(16);
        let pc = VirtAddr::new(0x88);
        for _ in 0..4 {
            pht.update(pc, true);
        }
        pht.flush();
        assert!(!pht.predict(pc));
    }

    #[test]
    fn non_power_of_two_sizes_are_rejected_not_masked() {
        // Regression: `Pht::new(100)` used to round up to 128 silently,
        // so a mistyped geometry produced a differently-shaped table
        // instead of an error.
        let err = Pht::try_new(100).unwrap_err();
        assert!(err.contains("power of two"), "{err}");
        assert!(Pht::try_new(0).is_err());
        assert!(Pht::try_new(1).unwrap_err().contains("at least 2"));
        assert_eq!(Pht::try_new(128).unwrap().len(), 128);
    }
}
