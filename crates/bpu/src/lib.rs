//! Branch prediction unit for the Phantom reproduction.
//!
//! The paper's core mechanism: the BTB is consulted **before decode**,
//! keyed only by the fetch address, and serves three things the frontend
//! trusts blindly — whether a branch exists at an address, what *kind* of
//! branch it is, and where it goes. All three are attacker-trainable:
//!
//! * the **kind** stored is whatever instruction *trained* the entry
//!   ("the training instruction always determines the prediction
//!   semantics of the victim instruction", §5.2);
//! * **direct** targets are stored PC-relative, so an aliased victim at a
//!   different address is steered to a *shifted* target C′ (§5.2);
//! * the index/tag are XOR folds of address bits ([`hashfn`]), so
//!   attacker-chosen user addresses can **alias kernel addresses** —
//!   the Zen 3/4 fold family is the paper's Figure 7, reproduced by the
//!   solver in `phantom-gf2`.
//!
//! The crate also models the RSB (return target prediction), a
//! spec-driven conditional-branch predictor ([`cbp`] — set-indexed,
//! history-mixed direction counters whose index/tag hashes are GF(2)
//! folds just like the BTB's) and the mitigation MSRs
//! (`SuppressBPOnNonBr`, AutoIBRS, eIBRS, STIBP, IBPB) whose incomplete
//! coverage is the subject of §6.3 and §8. The BTB and CBP share one
//! introspection surface, [`PredictorState`], so attacks read predictor
//! state through a single interface.
//!
//! # Examples
//!
//! ```
//! use phantom_bpu::{Bpu, BtbScheme, MsrState};
//! use phantom_isa::BranchKind;
//! use phantom_mem::{PrivilegeLevel, VirtAddr};
//!
//! let mut bpu = Bpu::new(BtbScheme::zen34(), MsrState::default());
//! // Train an indirect branch at A -> C.
//! bpu.train(
//!     VirtAddr::new(0x40_1000),
//!     BranchKind::Indirect,
//!     VirtAddr::new(0x40_8000),
//!     PrivilegeLevel::User,
//! );
//! // The victim at an aliasing address reuses the entry — even if the
//! // instruction there is not a branch at all.
//! let pred = bpu
//!     .predict_block(VirtAddr::new(0x40_1000), PrivilegeLevel::User, 0)
//!     .expect("prediction served");
//! assert_eq!(pred.kind, BranchKind::Indirect);
//! assert_eq!(pred.target, Some(VirtAddr::new(0x40_8000)));
//! ```

pub mod bhb;
pub mod btb;
pub mod cbp;
pub mod hashfn;
pub mod msr;
pub mod pht;
pub mod predict;
pub mod rsb;
pub mod state;

pub use bhb::{Bhb, BHB_TAG_BITS};
pub use btb::{Btb, BtbEntry, BtbScheme};
pub use cbp::{Cbp, CbpScheme, MixedFold};
pub use hashfn::{parity_fold, FoldFamily, FoldFn};
pub use msr::MsrState;
pub use pht::Pht;
pub use predict::{Bpu, Prediction};
pub use rsb::Rsb;
pub use state::PredictorState;

#[cfg(test)]
mod proptests;
