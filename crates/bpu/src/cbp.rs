//! The conditional-branch predictor (CBP): a set-indexed, history-mixed
//! table of saturating direction counters.
//!
//! Where [`crate::Pht`] is the flat textbook gshare table the seed
//! shipped, the CBP is spec-driven: the set index and (optional) tag are
//! GF(2) fold functions over the branch PC *and* the global history
//! register, and the geometry — index width, associativity, counter
//! width, history length — is plain data ([`CbpScheme`]). The default
//! [`CbpScheme::legacy`] reproduces the seed PHT bit-for-bit; non-x86
//! schemes (the Apple-M1-style predictor with PC-bit folding that makes
//! *out-of-place* conditional mistraining possible) are just different
//! data, loadable from `phantom-uarch-spec` text.
//!
//! Like the BTB, the CBP carries a process-globally-unique content
//! generation stamp so trace-engine memoization stays sound across
//! snapshot rewinds.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use phantom_mem::VirtAddr;

use crate::hashfn::{parity_fold, FoldFn};
use crate::state::PredictorState;

/// Source of CBP content-generation stamps; same contract as
/// `BTB_GENERATIONS` (see [`crate::btb`]): process-global so a stamp
/// value identifies one specific CBP content for the process lifetime.
static CBP_GENERATIONS: AtomicU64 = AtomicU64::new(1);

fn next_cbp_generation() -> u64 {
    CBP_GENERATIONS.fetch_add(1, Ordering::Relaxed)
}

/// One CBP index-bit function: the XOR of a parity over branch-PC bits
/// and a parity over global-history bits.
///
/// # Examples
///
/// ```
/// use phantom_bpu::MixedFold;
/// use phantom_mem::VirtAddr;
/// // bit = b3 ^ h0
/// let f = MixedFold { pc: 1 << 3, hist: 1 };
/// assert_eq!(f.eval(VirtAddr::new(0b1000), 0), 1);
/// assert_eq!(f.eval(VirtAddr::new(0b1000), 1), 0);
/// assert_eq!(f.to_string(), "b3 ^ h0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MixedFold {
    /// Selected branch-PC bit positions.
    pub pc: u64,
    /// Selected history-register bit positions (bit 0 = most recent
    /// outcome).
    pub hist: u64,
}

impl MixedFold {
    /// Evaluate the fold on a branch PC under a history value (0 or 1).
    pub fn eval(&self, pc: VirtAddr, ghr: u64) -> u64 {
        parity_fold(pc.raw(), self.pc) ^ parity_fold(ghr, self.hist)
    }
}

impl fmt::Display for MixedFold {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for b in (0..64).rev() {
            if self.pc >> b & 1 == 1 {
                if !first {
                    write!(f, " ^ ")?;
                }
                write!(f, "b{b}")?;
                first = false;
            }
        }
        for b in (0..64).rev() {
            if self.hist >> b & 1 == 1 {
                if !first {
                    write!(f, " ^ ")?;
                }
                write!(f, "h{b}")?;
                first = false;
            }
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

/// How a CBP indexes, tags and sizes its direction counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CbpScheme {
    /// One [`MixedFold`] per set-index bit; the table has
    /// `2^index.len()` sets.
    pub index: Vec<MixedFold>,
    /// PC fold functions forming the per-entry tag. Empty means the
    /// table is untagged — every PC mapping to a set *is* that set's
    /// counter, the classic gshare aliasing that BranchSpectre-style
    /// attacks read.
    pub tag: Vec<FoldFn>,
    /// Associativity. Untagged schemes must be direct-mapped.
    pub ways: usize,
    /// Saturating-counter width in bits (direction threshold sits at
    /// the counter midpoint).
    pub counter_bits: u32,
    /// Global-history length: outcomes older than this fall off the
    /// register.
    pub history_bits: u32,
}

impl CbpScheme {
    /// The seed PHT as a scheme: 4096 sets × 1 way, untagged, 2-bit
    /// counters, 8 bits of history. Index bit `i` is PC bit `i+1` XOR
    /// history bit `i` (history covers only the low 8 index bits) —
    /// exactly `((pc >> 1) ^ ghr) & 0xfff`.
    pub fn legacy() -> CbpScheme {
        CbpScheme {
            index: (0..12)
                .map(|i| MixedFold {
                    pc: 1 << (i + 1),
                    hist: if i < 8 { 1 << i } else { 0 },
                })
                .collect(),
            tag: Vec::new(),
            ways: 1,
            counter_bits: 2,
            history_bits: 8,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        1 << self.index.len()
    }

    /// Total counter capacity (sets × ways).
    pub fn capacity(&self) -> usize {
        self.sets() * self.ways
    }

    /// The set index of `pc` under history `ghr`.
    pub fn index_of(&self, pc: VirtAddr, ghr: u64) -> usize {
        self.index
            .iter()
            .enumerate()
            .fold(0, |idx, (i, f)| idx | ((f.eval(pc, ghr) as usize) << i))
    }

    /// The tag of `pc` (0 for untagged schemes).
    pub fn tag_of(&self, pc: VirtAddr) -> u32 {
        self.tag
            .iter()
            .enumerate()
            .fold(0, |t, (i, f)| t | ((f.eval(pc) as u32) << i))
    }

    /// Whether two branch PCs collide in this CBP under history `ghr`:
    /// same set index *and* same tag. This is the out-of-place
    /// mistraining criterion — under the legacy untagged scheme PCs
    /// 2 bytes apart already collide, while a tagged M1-style scheme
    /// only admits collisions its fold family cannot distinguish.
    pub fn aliases(&self, a: VirtAddr, b: VirtAddr, ghr: u64) -> bool {
        self.index_of(a, ghr) == self.index_of(b, ghr) && self.tag_of(a) == self.tag_of(b)
    }

    /// The counter value meaning "weakly not-taken" (reset state).
    pub fn reset_counter(&self) -> u8 {
        ((1u32 << (self.counter_bits - 1)) - 1) as u8
    }

    /// Counter values at or above this predict taken.
    pub fn taken_threshold(&self) -> u8 {
        (1u32 << (self.counter_bits - 1)) as u8
    }

    /// The saturation maximum.
    pub fn max_counter(&self) -> u8 {
        ((1u32 << self.counter_bits) - 1) as u8
    }

    /// Structural validity — the `CacheGeometry::try_new` pattern: a
    /// description of the violated constraint instead of a panic, for
    /// the uarch-spec layer to wrap with a field name.
    /// (Full-rank checks on the fold families need GF(2) elimination and
    /// live in the spec layer, which has `phantom-gf2`.)
    pub fn validate(&self) -> Result<(), String> {
        if self.index.is_empty() {
            return Err("cbp needs at least one index fold".to_string());
        }
        if self.index.len() > 24 {
            return Err(format!(
                "at most 24 cbp index folds supported (got {})",
                self.index.len()
            ));
        }
        if self.ways == 0 {
            return Err("cbp ways must be nonzero".to_string());
        }
        if self.tag.is_empty() && self.ways != 1 {
            return Err(format!(
                "an untagged cbp must be direct-mapped (got {} ways)",
                self.ways
            ));
        }
        if self.counter_bits == 0 || self.counter_bits > 8 {
            return Err(format!(
                "cbp counter bits must be in 1..=8 (got {})",
                self.counter_bits
            ));
        }
        if self.history_bits > 32 {
            return Err(format!(
                "at most 32 cbp history bits supported (got {})",
                self.history_bits
            ));
        }
        let hist_mask = (1u64 << self.history_bits) - 1;
        for (i, f) in self.index.iter().enumerate() {
            if f.pc == 0 && f.hist == 0 {
                return Err(format!("cbp index fold {i} selects no bits"));
            }
            if f.hist & !hist_mask != 0 {
                return Err(format!(
                    "cbp index fold {i} mixes history bits beyond the {}-bit register",
                    self.history_bits
                ));
            }
        }
        for (i, f) in self.tag.iter().enumerate() {
            if f.mask == 0 {
                return Err(format!("cbp tag fold {i} selects no bits"));
            }
        }
        Ok(())
    }

    /// A one-line geometry summary for CLI listings, e.g.
    /// `4096x1 c2 h8` (sets × ways, counter bits, history bits, `+tag`
    /// when the scheme tags entries).
    pub fn summary(&self) -> String {
        let tag = if self.tag.is_empty() { "" } else { " +tag" };
        format!(
            "{}x{} c{} h{}{tag}",
            self.sets(),
            self.ways,
            self.counter_bits,
            self.history_bits
        )
    }
}

/// One CBP entry: a direction counter plus (for tagged schemes) its
/// allocation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CbpEntry {
    tag: u32,
    counter: u8,
    valid: bool,
    lru: u64,
}

/// The conditional-branch predictor.
///
/// # Examples
///
/// ```
/// use phantom_bpu::{Cbp, CbpScheme};
/// use phantom_mem::VirtAddr;
///
/// let mut cbp = Cbp::new(CbpScheme::legacy());
/// let pc = VirtAddr::new(0x40_1000);
/// assert!(!cbp.predict(pc), "reset state is weakly not-taken");
/// cbp.update(pc, true);
/// // History shifted, but the counter at the *new* index is untouched;
/// // train along the same history path to flip the prediction.
/// ```
#[derive(Debug, Clone)]
pub struct Cbp {
    scheme: CbpScheme,
    entries: Vec<CbpEntry>,
    ghr: u64,
    clock: u64,
    dirty: bool,
    generation: u64,
}

impl Cbp {
    /// A CBP in reset state.
    ///
    /// # Panics
    ///
    /// Panics if the scheme fails [`CbpScheme::validate`].
    pub fn new(scheme: CbpScheme) -> Cbp {
        match Cbp::try_new(scheme) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Cbp::new`], for spec-provided schemes.
    pub fn try_new(scheme: CbpScheme) -> Result<Cbp, String> {
        scheme.validate()?;
        let reset = CbpEntry {
            tag: 0,
            counter: scheme.reset_counter(),
            // Untagged tables have no allocation state: every counter
            // exists from reset. Tagged ways allocate on first update.
            valid: scheme.tag.is_empty(),
            lru: 0,
        };
        let entries = vec![reset; scheme.capacity()];
        Ok(Cbp {
            scheme,
            entries,
            ghr: 0,
            clock: 0,
            dirty: false,
            generation: next_cbp_generation(),
        })
    }

    /// The indexing scheme.
    pub fn scheme(&self) -> &CbpScheme {
        &self.scheme
    }

    /// The current global history register.
    pub fn ghr(&self) -> u64 {
        self.ghr
    }

    /// The content-generation stamp; same contract as
    /// [`crate::Btb::generation`]. Every update restamps — a direction
    /// outcome shifts the history register, which changes where every
    /// subsequent prediction indexes, so there is no BTB-style
    /// "verbatim retrain" fast path.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn set_range(&self, idx: usize) -> std::ops::Range<usize> {
        let base = idx * self.scheme.ways;
        base..base + self.scheme.ways
    }

    /// Predicted direction for a conditional at `pc` under the current
    /// history. Pure: no counter, LRU or history state is touched, so
    /// trace replay may re-issue predictions freely.
    pub fn predict(&self, pc: VirtAddr) -> bool {
        let idx = self.scheme.index_of(pc, self.ghr);
        let tag = self.scheme.tag_of(pc);
        let threshold = self.scheme.taken_threshold();
        self.entries[self.set_range(idx)]
            .iter()
            .find(|e| e.valid && e.tag == tag)
            .is_some_and(|e| e.counter >= threshold)
    }

    /// The counter currently serving `pc` (under the live history), or
    /// `None` when no way holds a matching allocation. Introspection
    /// for tests and attack calibration.
    pub fn counter(&self, pc: VirtAddr) -> Option<u8> {
        let idx = self.scheme.index_of(pc, self.ghr);
        let tag = self.scheme.tag_of(pc);
        self.entries[self.set_range(idx)]
            .iter()
            .find(|e| e.valid && e.tag == tag)
            .map(|e| e.counter)
    }

    /// Record a resolved conditional outcome: saturate the counter the
    /// pre-update history selects, then shift the outcome into the
    /// history register.
    pub fn update(&mut self, pc: VirtAddr, taken: bool) {
        let idx = self.scheme.index_of(pc, self.ghr);
        let tag = self.scheme.tag_of(pc);
        let max = self.scheme.max_counter();
        let reset = self.scheme.reset_counter();
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(idx);
        let set = &mut self.entries[range];
        let entry = match set.iter_mut().find(|e| e.valid && e.tag == tag) {
            Some(e) => e,
            None => {
                // Allocate: an invalid way first, else the LRU victim.
                let victim = set
                    .iter_mut()
                    .min_by_key(|e| (e.valid, e.lru))
                    .expect("ways is nonzero");
                *victim = CbpEntry {
                    tag,
                    counter: reset,
                    valid: true,
                    lru: clock,
                };
                victim
            }
        };
        if taken {
            entry.counter = (entry.counter + 1).min(max);
        } else {
            entry.counter = entry.counter.saturating_sub(1);
        }
        entry.lru = clock;
        let hist_mask = (1u64 << self.scheme.history_bits).wrapping_sub(1);
        self.ghr = ((self.ghr << 1) | u64::from(taken)) & hist_mask;
        self.dirty = true;
        self.generation = next_cbp_generation();
    }

    /// Reset every counter, allocation and the history register (IBPB).
    /// Restamps the generation only when there was content to lose.
    pub fn flush(&mut self) {
        if self.dirty {
            self.generation = next_cbp_generation();
        }
        let reset = CbpEntry {
            tag: 0,
            counter: self.scheme.reset_counter(),
            valid: self.scheme.tag.is_empty(),
            lru: 0,
        };
        self.entries.fill(reset);
        self.ghr = 0;
        self.clock = 0;
        self.dirty = false;
    }

    /// Entries holding trained content: allocated ways for tagged
    /// schemes, counters moved off reset for untagged ones.
    pub fn len(&self) -> usize {
        let reset = self.scheme.reset_counter();
        if self.scheme.tag.is_empty() {
            self.entries.iter().filter(|e| e.counter != reset).count()
        } else {
            self.entries.iter().filter(|e| e.valid).count()
        }
    }

    /// Whether no entry holds trained content.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl PredictorState for Cbp {
    fn name(&self) -> &'static str {
        "cbp"
    }

    fn capacity(&self) -> usize {
        self.scheme.capacity()
    }

    fn live_entries(&self) -> usize {
        self.len()
    }

    fn generation(&self) -> u64 {
        Cbp::generation(self)
    }

    fn flush(&mut self) {
        Cbp::flush(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pht::Pht;

    fn pc(raw: u64) -> VirtAddr {
        VirtAddr::new(raw)
    }

    #[test]
    fn legacy_scheme_matches_the_seed_pht_bit_for_bit() {
        // The refactor's ground truth: drive the flat seed PHT and the
        // spec-driven legacy CBP with the same outcome stream and demand
        // identical predictions at every step.
        let mut pht = Pht::new(4096);
        let mut cbp = Cbp::new(CbpScheme::legacy());
        let mut x = 0x243f_6a88_85a3_08d3u64; // xorshift, deterministic
        for _ in 0..4096 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let a = pc(0x40_0000 + (x & 0xffff));
            let taken = x >> 17 & 1 == 1;
            assert_eq!(pht.predict(a), cbp.predict(a), "predict diverged");
            pht.update(a, taken);
            cbp.update(a, taken);
        }
    }

    #[test]
    fn legacy_index_is_the_gshare_formula() {
        let s = CbpScheme::legacy();
        for (a, ghr) in [(0x40_1234u64, 0u64), (0xffff_ffff_8124_6ac0, 0xa5)] {
            let expect = ((a >> 1) ^ (ghr & 0xff)) as usize & 4095;
            assert_eq!(s.index_of(pc(a), ghr), expect);
        }
    }

    #[test]
    fn reset_state_predicts_not_taken() {
        let cbp = Cbp::new(CbpScheme::legacy());
        assert!(!cbp.predict(pc(0x1000)));
        assert!(cbp.is_empty());
    }

    #[test]
    fn saturating_training_flips_and_unflips() {
        let mut cbp = Cbp::new(CbpScheme::legacy());
        let a = pc(0x40_1000);
        // Hold history constant by reading the counter through the
        // scheme directly: train along whatever index the live history
        // selects each step; after enough taken outcomes the counter at
        // the *stable* history (all-taken pattern) saturates.
        for _ in 0..16 {
            cbp.update(a, true);
        }
        assert!(cbp.predict(a), "saturated taken");
        for _ in 0..16 {
            cbp.update(a, false);
        }
        assert!(!cbp.predict(a), "trained back down");
    }

    #[test]
    fn tagged_scheme_separates_colliding_pcs() {
        // Two PCs in the same set but with different tags get their own
        // ways; the untagged legacy scheme would share one counter.
        let mut scheme = CbpScheme::legacy();
        scheme.tag = vec![FoldFn::of_bits(&[20]), FoldFn::of_bits(&[21])];
        scheme.ways = 2;
        let mut cbp = Cbp::new(scheme);
        let a = pc(0x40_1000);
        let b = pc(0x40_1000 | 1 << 20); // same index bits, different tag
        assert_eq!(cbp.scheme().index_of(a, 0), cbp.scheme().index_of(b, 0));
        assert_ne!(cbp.scheme().tag_of(a), cbp.scheme().tag_of(b));
        // Interleave: a trained taken, b trained not-taken, same set.
        for _ in 0..8 {
            cbp.update(a, true);
            cbp.update(b, false);
        }
        assert!(cbp.predict(a));
        assert!(!cbp.predict(b));
    }

    #[test]
    fn untagged_collisions_share_the_counter() {
        let mut cbp = Cbp::new(CbpScheme::legacy());
        let a = pc(0x40_1000);
        let b = pc(a.raw() | 1 << 20); // legacy index ignores b20: collides
        assert!(cbp.scheme().aliases(a, b, cbp.ghr()));
        for _ in 0..16 {
            cbp.update(a, true);
        }
        assert!(cbp.predict(b), "out-of-place training through the alias");
    }

    #[test]
    fn generation_restamps_on_update_and_dirty_flush() {
        let mut cbp = Cbp::new(CbpScheme::legacy());
        let g0 = cbp.generation();
        cbp.flush();
        assert_eq!(cbp.generation(), g0, "clean flush keeps the stamp");
        cbp.update(pc(0x1000), true);
        let g1 = cbp.generation();
        assert_ne!(g0, g1, "update restamps (history shifted)");
        cbp.flush();
        let g2 = cbp.generation();
        assert_ne!(g1, g2, "dirty flush restamps");
        cbp.flush();
        assert_eq!(cbp.generation(), g2);
    }

    #[test]
    fn generation_values_are_never_reused_across_clones() {
        let mut live = Cbp::new(CbpScheme::legacy());
        live.update(pc(0x1000), true);
        let snap = live.clone();
        assert_eq!(live.generation(), snap.generation());
        live.update(pc(0x1000), true);
        let diverged = live.generation();
        live = snap.clone();
        live.update(pc(0x1000), true);
        assert_ne!(
            live.generation(),
            diverged,
            "same retrain after a rewind draws a fresh stamp"
        );
    }

    #[test]
    fn validate_rejects_degenerate_schemes() {
        let ok = CbpScheme::legacy();
        assert!(ok.validate().is_ok());
        let mut s = ok.clone();
        s.index.clear();
        assert!(s.validate().unwrap_err().contains("index fold"));
        let mut s = ok.clone();
        s.ways = 0;
        assert!(s.validate().unwrap_err().contains("ways"));
        let mut s = ok.clone();
        s.ways = 2; // untagged + associative
        assert!(s.validate().unwrap_err().contains("direct-mapped"));
        let mut s = ok.clone();
        s.counter_bits = 0;
        assert!(s.validate().unwrap_err().contains("counter bits"));
        let mut s = ok.clone();
        s.index[0] = MixedFold { pc: 0, hist: 0 };
        assert!(s.validate().unwrap_err().contains("selects no bits"));
        let mut s = ok;
        s.index[0].hist = 1 << 20; // beyond the 8-bit register
        assert!(s.validate().unwrap_err().contains("history"));
    }

    #[test]
    fn predictor_state_surface() {
        let mut cbp = Cbp::new(CbpScheme::legacy());
        assert_eq!(PredictorState::name(&cbp), "cbp");
        assert_eq!(PredictorState::capacity(&cbp), 4096);
        assert_eq!(PredictorState::live_entries(&cbp), 0);
        cbp.update(pc(0x1000), true);
        assert_eq!(PredictorState::live_entries(&cbp), 1);
        PredictorState::flush(&mut cbp);
        assert!(cbp.is_empty());
    }

    #[test]
    fn mixed_fold_displays_pc_then_history_terms() {
        let f = MixedFold {
            pc: (1 << 13) | (1 << 3),
            hist: 1 << 1,
        };
        assert_eq!(f.to_string(), "b13 ^ b3 ^ h1");
        assert_eq!(MixedFold { pc: 0, hist: 0 }.to_string(), "0");
    }

    #[test]
    fn summary_is_compact() {
        assert_eq!(CbpScheme::legacy().summary(), "4096x1 c2 h8");
    }
}
