//! A shared introspection surface over predictor structures.
//!
//! The BTB and the CBP are both set-indexed, fold-hashed, generation-
//! stamped prediction memories; attacks and reports that "read predictor
//! state" (occupancy scans, flush-and-retrain protocols, generation
//! watchers) should not care which structure they are pointed at. This
//! trait is that one interface — [`crate::Btb`] and [`crate::Cbp`] both
//! implement it, and [`crate::Bpu::predictor_states`] hands back every
//! structure behind it.

/// Uniform read/reset access to one predictor structure's state.
pub trait PredictorState {
    /// Short structure name ("btb", "cbp").
    fn name(&self) -> &'static str;

    /// Total entries the structure can hold (sets × ways).
    fn capacity(&self) -> usize;

    /// Entries currently holding trained content. For tagged structures
    /// this counts allocated entries; for untagged counter arrays it
    /// counts counters moved off their reset value.
    fn live_entries(&self) -> usize;

    /// The content-generation stamp. Unchanged generation means no
    /// predictive content has changed; values are process-globally
    /// unique per content state (see [`crate::Btb::generation`]).
    fn generation(&self) -> u64;

    /// Flush every entry back to reset state (the IBPB path).
    fn flush(&mut self);
}
