//! XOR-fold address hash functions for BTB indexing.
//!
//! BTBs compress 48-bit virtual addresses into a small index + tag by
//! XOR-folding groups of address bits. Each function is the parity of a
//! set of bit positions; we represent one function as a 64-bit mask and a
//! family of functions as a vector of masks. Two addresses *alias* (can
//! hit the same BTB entry) when they agree on the low untranslated bits
//! and on the output of every fold function — this is the structure the
//! paper's §6.2 reverse engineering recovers as Figure 7.

use std::fmt;

use phantom_mem::VirtAddr;

/// Parity of `addr & mask` — the value of one XOR-fold function.
///
/// # Examples
///
/// ```
/// use phantom_bpu::parity_fold;
/// // b47 ^ b35 ^ b23 over an address with b47 and b23 set = 0.
/// let addr = (1u64 << 47) | (1 << 23);
/// assert_eq!(parity_fold(addr, (1 << 47) | (1 << 35) | (1 << 23)), 0);
/// assert_eq!(parity_fold(addr, 1 << 47), 1);
/// ```
pub fn parity_fold(addr: u64, mask: u64) -> u64 {
    u64::from((addr & mask).count_ones() & 1)
}

/// One XOR-fold function: the parity of the address bits selected by
/// `mask`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FoldFn {
    /// Selected bit positions.
    pub mask: u64,
}

impl FoldFn {
    /// Build from explicit bit positions.
    ///
    /// # Examples
    ///
    /// ```
    /// use phantom_bpu::FoldFn;
    /// let f = FoldFn::of_bits(&[47, 35, 23]);
    /// assert_eq!(f.mask, (1u64 << 47) | (1 << 35) | (1 << 23));
    /// ```
    pub fn of_bits(bits: &[u32]) -> FoldFn {
        FoldFn {
            mask: bits.iter().fold(0, |m, b| m | (1u64 << b)),
        }
    }

    /// Evaluate the function on an address (0 or 1).
    pub fn eval(&self, addr: VirtAddr) -> u64 {
        parity_fold(addr.raw(), self.mask)
    }

    /// The bit positions this function selects, ascending.
    pub fn bits(&self) -> Vec<u32> {
        (0..64).filter(|b| self.mask >> b & 1 == 1).collect()
    }
}

impl fmt::Display for FoldFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bits = self.bits();
        let mut first = true;
        for b in bits.iter().rev() {
            if !first {
                write!(f, " ^ ")?;
            }
            write!(f, "b{b}")?;
            first = false;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

/// A family of fold functions — the full alias signature of an address
/// above the untranslated bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldFamily {
    fns: Vec<FoldFn>,
}

impl FoldFamily {
    /// Build a family from fold functions.
    pub fn new(fns: Vec<FoldFn>) -> FoldFamily {
        assert!(fns.len() <= 32, "at most 32 fold functions supported");
        FoldFamily { fns }
    }

    /// The paper's Figure 7 family (ground truth of the Zen 3/4
    /// cross-privilege BTB hash we plant for the solver to recover):
    /// twelve functions, each folding `b47` with three lower bits at a
    /// 12-bit stride.
    pub fn zen34() -> FoldFamily {
        FoldFamily::new(vec![
            FoldFn::of_bits(&[47, 35, 23]),
            FoldFn::of_bits(&[47, 36, 24, 12]),
            FoldFn::of_bits(&[47, 37, 25, 13]),
            FoldFn::of_bits(&[47, 38, 26, 14]),
            FoldFn::of_bits(&[47, 39, 26, 13]),
            FoldFn::of_bits(&[47, 39, 27, 15]),
            FoldFn::of_bits(&[47, 40, 28, 16]),
            FoldFn::of_bits(&[47, 41, 29, 17]),
            FoldFn::of_bits(&[47, 42, 30, 18]),
            FoldFn::of_bits(&[47, 43, 31, 19]),
            FoldFn::of_bits(&[47, 44, 32, 20]),
            FoldFn::of_bits(&[47, 45, 33, 21]),
            // The published family covers neither b22 nor b34/b46 — yet
            // real Zen 3 distinguishes addresses differing in those bits
            // (488 distinct KASLR slots are told apart). §6.2 attributes
            // the gap to "overlapping functions … that may not involve
            // bit 47, or use address bits we did not consider". We model
            // one such function with weight 5, deliberately outside the
            // paper's n = 4 solver bound, so Figure 7 recovery still
            // returns exactly the twelve published functions.
            FoldFn::of_bits(&[46, 34, 22, 14, 12]),
        ])
    }

    /// A Retbleed-style fold family for Zen 1/2: two-term folding of bits
    /// \[12..35\] only. Bits ≥ 36 — including `b47` — are untagged, which
    /// is why user/kernel BTB collisions are easy to construct on these
    /// parts (Retbleed) and why the paper's Zen 3 results, where every
    /// function gained a `b47` term, required fresh reverse engineering.
    pub fn zen12() -> FoldFamily {
        FoldFamily::new(
            (0..12)
                .map(|i| FoldFn::of_bits(&[12 + i, 24 + i]))
                .collect(),
        )
    }

    /// The fold functions.
    pub fn fns(&self) -> &[FoldFn] {
        &self.fns
    }

    /// Number of functions (signature width in bits).
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// Whether the family is empty (degenerate: everything aliases).
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    /// The alias signature of an address: one bit per function.
    pub fn signature(&self, addr: VirtAddr) -> u32 {
        self.fns
            .iter()
            .enumerate()
            .fold(0, |sig, (i, f)| sig | ((f.eval(addr) as u32) << i))
    }

    /// Whether two addresses alias under this family **and** share their
    /// low 12 (untranslated) bits — the collision criterion of §6.2.
    pub fn aliases(&self, a: VirtAddr, b: VirtAddr) -> bool {
        a.raw() & 0xfff == b.raw() & 0xfff && self.signature(a) == self.signature(b)
    }

    /// An XOR pattern that, applied to any address, preserves the alias
    /// signature (every function sees an even number of flips) while
    /// flipping `b47` — i.e. a user⇄kernel collision pattern like the
    /// paper's `K ^ 0xffffbff800000000`. Returns `None` if the family
    /// has no such pattern over bits 12–47 together with the canonical
    /// sign-extension bits 48–63.
    pub fn cross_privilege_pattern(&self) -> Option<u64> {
        // Search greedily: start with bit 47 plus sign extension, then
        // for every violated function flip one of its other bits; since
        // functions overlap, iterate to a fixed point over a bounded
        // number of passes.
        let mut pattern: u64 = 0xffff_0000_0000_0000 | (1 << 47);
        for _ in 0..64 {
            let mut fixed_all = true;
            for f in &self.fns {
                if parity_fold(pattern, f.mask) == 1 {
                    // Flip the highest selected bit below 47 not yet set.
                    let candidate = f
                        .bits()
                        .into_iter()
                        .rfind(|&b| b < 47 && pattern >> b & 1 == 0);
                    match candidate {
                        Some(b) => {
                            pattern |= 1 << b;
                            fixed_all = false;
                        }
                        None => return None,
                    }
                }
            }
            if fixed_all {
                return Some(pattern);
            }
        }
        None
    }
}

impl fmt::Display for FoldFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, func) in self.fns.iter().enumerate() {
            writeln!(f, "f{i} = {func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_fold_counts_selected_bits() {
        assert_eq!(parity_fold(0b1011, 0b1111), 1);
        assert_eq!(parity_fold(0b1011, 0b0011), 0);
        assert_eq!(parity_fold(0, u64::MAX), 0);
    }

    #[test]
    fn zen34_family_matches_figure7() {
        let fam = FoldFamily::zen34();
        assert_eq!(fam.len(), 13, "12 published + 1 supplementary");
        // f0 = b47 ^ b35 ^ b23.
        assert_eq!(fam.fns()[0].bits(), vec![23, 35, 47]);
        // Every PUBLISHED function involves b47 (the paper's key finding
        // vs Zen 2); the supplementary weight-5 fold does not.
        for f in &fam.fns()[..12] {
            assert_eq!(f.mask >> 47 & 1, 1, "{f}");
        }
        assert_eq!(fam.fns()[12].bits().len(), 5);
    }

    #[test]
    fn paper_xor_patterns_alias_on_zen34() {
        let fam = FoldFamily::zen34();
        let k = VirtAddr::new(0xffff_ffff_8124_6520); // a "kernel" address
        for pattern in [0xffff_bff8_0000_0000u64, 0xffff_8003_ff80_0000] {
            let user = VirtAddr::new(k.raw() ^ pattern);
            assert!(!user.is_kernel_half(), "{user} should be a user address");
            assert!(fam.aliases(k, user), "pattern {pattern:#x} must alias");
        }
    }

    #[test]
    fn single_bit_flips_do_not_alias_on_zen34() {
        let fam = FoldFamily::zen34();
        let k = VirtAddr::new(0xffff_ffff_8124_6520);
        // Flipping up to 6 arbitrary high bits rarely preserves the
        // signature — this is why the paper's brute force failed. Spot
        // check a few specific flips.
        for b in [47u32, 40, 35, 24, 13] {
            assert!(!fam.aliases(k, k.flip_bit(b)), "single flip of b{b}");
        }
    }

    #[test]
    fn derived_cross_privilege_pattern_works() {
        for fam in [FoldFamily::zen34(), FoldFamily::zen12()] {
            if let Some(p) = fam.cross_privilege_pattern() {
                let k = VirtAddr::new(0xffff_ffff_8860_0000);
                let u = VirtAddr::new(k.raw() ^ p);
                assert!(fam.aliases(k, u), "pattern {p:#x}");
                assert!(!u.is_kernel_half());
            } else {
                panic!("no cross-privilege pattern found");
            }
        }
    }

    #[test]
    fn zen12_has_no_b47_dependence() {
        let fam = FoldFamily::zen12();
        for f in fam.fns() {
            assert_eq!(f.mask >> 47 & 1, 0);
        }
        // Kernel/user pairs differing only in bits >= 36 alias directly.
        let k = VirtAddr::new(0xffff_ffff_8124_6000);
        let u = VirtAddr::new(k.raw() & 0xf_ffff_ffff);
        assert!(fam.aliases(k, u));
    }

    #[test]
    fn signature_fits_function_count() {
        let fam = FoldFamily::zen34();
        let sig = fam.signature(VirtAddr::new(u64::MAX));
        assert!(sig < 1 << fam.len());
    }

    #[test]
    fn display_formats_like_the_paper() {
        let f = FoldFn::of_bits(&[47, 35, 23]);
        assert_eq!(f.to_string(), "b47 ^ b35 ^ b23");
    }
}
