//! The typed pipeline event bus.
//!
//! Every observable thing the simulated pipeline does — an I-cache line
//! touched by fetch, a µop-cache fill or dispatch, a resteer, a
//! transient load, a retirement — is emitted as a [`PipelineEvent`].
//! Consumers implement [`EventSink`] and attach themselves to a
//! [`Machine`](crate::Machine) with
//! [`attach_sink`](crate::Machine::attach_sink); the machine itself
//! never knows who is listening.
//!
//! Two sinks ship with the workspace:
//!
//! * [`PerfCounters`] — the PMU is a pure function of the event stream
//!   (the machine keeps one attached implicitly; see [`count`]).
//! * [`TraceSink`](crate::trace::TraceSink) — distills the stream into
//!   per-retirement [`TraceEvent`](crate::TraceEvent)s.
//!
//! Adding a new observation channel means implementing [`EventSink`] in
//! one module and attaching it — no machine changes. See `DESIGN.md`
//! for a worked example.

use std::any::Any;
use std::fmt;

use phantom_cache::{Event as PmuEvent, Level, PerfCounters};
use phantom_isa::Inst;
use phantom_mem::{PageFault, VirtAddr};

use crate::resteer::ResteerKind;

/// One observable pipeline occurrence.
///
/// Events carry the *architectural* facts (addresses, cache levels,
/// transient-ness); counter and timing policy live in the sinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineEvent {
    /// Instruction fetch touched the line holding `va` and found it at
    /// `level`. `transient: true` means the touch happened on a
    /// squashed (wrong-path) fetch.
    FetchLine {
        /// Virtual address fetched.
        va: VirtAddr,
        /// Hierarchy level that served the line.
        level: Level,
        /// Whether this was a wrong-path fetch.
        transient: bool,
    },
    /// The architectural frontend dispatched µops for `pc`, either from
    /// the µop cache (`hit`) or from the decoder.
    UopDispatch {
        /// Instruction address.
        pc: VirtAddr,
        /// µop-cache hit (vs. decoder path).
        hit: bool,
    },
    /// The decode stage filled the µop cache for `va`.
    UopCacheFill {
        /// Filled address.
        va: VirtAddr,
        /// Whether the fill came from a wrong-path decode.
        transient: bool,
    },
    /// A misprediction was detected and the pipeline was resteered.
    Resteer {
        /// The mispredicted instruction.
        pc: VirtAddr,
        /// Frontend (decoder-detected, PHANTOM) or backend
        /// (execute-detected, Spectre).
        kind: ResteerKind,
        /// Where the wrong path went, if a target was served.
        target: Option<VirtAddr>,
    },
    /// Inside a transient window, the BTB steered fetch to a nested
    /// phantom target (§7.4).
    PhantomSteer {
        /// Transient PC the BTB lied about.
        pc: VirtAddr,
        /// The nested wrong-path target.
        target: VirtAddr,
    },
    /// An architectural data access (load or store) resolved at `level`.
    DataAccess {
        /// Accessed virtual address.
        va: VirtAddr,
        /// Hierarchy level that served it.
        level: Level,
    },
    /// A wrong-path load was dispatched; it fills the D-cache even
    /// though the path is squashed.
    TransientLoad {
        /// Load address.
        va: VirtAddr,
        /// Hierarchy level that served it.
        level: Level,
    },
    /// One wrong-path µop issued to the backend.
    WrongPathUop {
        /// Transient PC.
        pc: VirtAddr,
    },
    /// An instruction retired. Always the last event of a successful
    /// [`step`](crate::Machine::step).
    Retired {
        /// Retired instruction's address.
        pc: VirtAddr,
        /// The instruction.
        inst: Inst,
        /// Total elapsed machine cycles after retirement.
        cycles: u64,
    },
    /// An architectural fetch fault was caught by the registered
    /// handler; the step ends without a retirement.
    FaultCaught {
        /// Faulting PC.
        pc: VirtAddr,
        /// The fault.
        fault: PageFault,
        /// Total elapsed machine cycles after signal delivery.
        cycles: u64,
    },
}

/// A consumer of [`PipelineEvent`]s.
///
/// `Any + Send + Sync` so sinks can cross thread boundaries with the
/// machine — including sharing a checkpointed machine by reference
/// across worker threads (see
/// [`Checkpoint`](crate::machine::Checkpoint)) — and be
/// recovered by concrete type via
/// [`detach_sink_as`](crate::Machine::detach_sink_as). Sinks are only
/// ever *called* through `&mut self` from the owning machine's step
/// loop, so `Sync` costs implementors nothing beyond not caching
/// thread-local state in `Rc`/`Cell`-style fields.
pub trait EventSink: Any + Send + Sync {
    /// Observe one event. Called synchronously from inside the step.
    fn on_event(&mut self, event: &PipelineEvent);
}

/// Handle to an attached sink, for later detachment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SinkId(u64);

/// Ordered registry of attached sinks. Owned by the machine; dispatch
/// preserves attachment order.
#[derive(Default)]
pub struct EventBus {
    sinks: Vec<(SinkId, Box<dyn EventSink>)>,
    next: u64,
}

impl EventBus {
    /// An empty bus.
    pub fn new() -> EventBus {
        EventBus::default()
    }

    /// Attach a sink; returns its handle.
    pub fn attach(&mut self, sink: Box<dyn EventSink>) -> SinkId {
        let id = SinkId(self.next);
        self.next += 1;
        self.sinks.push((id, sink));
        id
    }

    /// Detach and return the sink behind `id`, if attached.
    pub fn detach(&mut self, id: SinkId) -> Option<Box<dyn EventSink>> {
        let at = self.sinks.iter().position(|(sid, _)| *sid == id)?;
        Some(self.sinks.remove(at).1)
    }

    /// Deliver one event to every attached sink, in attachment order.
    /// The zero-sink case returns before touching the sink list — the
    /// machine emits on every fetch, dispatch and retire, and most runs
    /// never attach a sink, so this is the hot path.
    #[inline]
    pub fn dispatch(&mut self, event: &PipelineEvent) {
        if self.sinks.is_empty() {
            return;
        }
        for (_, sink) in &mut self.sinks {
            sink.on_event(event);
        }
    }

    /// Number of attached sinks.
    #[inline]
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sinks are attached.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl fmt::Debug for EventBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventBus")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

/// Cloning a bus yields an *empty* bus: sinks are observation state,
/// not machine state, so snapshots and clones never carry them.
impl Clone for EventBus {
    fn clone(&self) -> Self {
        EventBus::new()
    }
}

/// The PMU counter policy: which counters a given event bumps.
///
/// This is the single place event → counter mapping lives; the machine
/// applies it to its built-in PMU on every emit, and an external
/// [`PerfCounters`] attached as a sink sees identical updates.
#[inline]
pub fn count(pmu: &mut PerfCounters, event: &PipelineEvent) {
    match *event {
        PipelineEvent::FetchLine { level, .. } => {
            if level == Level::Memory {
                pmu.bump(PmuEvent::IcacheMiss);
            }
        }
        PipelineEvent::UopDispatch { hit: true, .. } => {
            pmu.bump(PmuEvent::OpCacheHit);
            pmu.bump(PmuEvent::UopsFromOpCache);
        }
        PipelineEvent::UopDispatch { hit: false, .. } => {
            pmu.bump(PmuEvent::OpCacheMiss);
            pmu.bump(PmuEvent::UopsFromDecoder);
        }
        PipelineEvent::UopCacheFill { transient, .. } => {
            // The architectural fill is already accounted by the
            // decoder-path dispatch; only wrong-path decodes add µops.
            if transient {
                pmu.bump(PmuEvent::UopsFromDecoder);
            }
        }
        PipelineEvent::Resteer { kind, .. } => {
            pmu.bump(PmuEvent::BranchMispredict);
            pmu.bump(match kind {
                ResteerKind::Frontend => PmuEvent::ResteerFrontend,
                ResteerKind::Backend => PmuEvent::ResteerBackend,
            });
        }
        PipelineEvent::PhantomSteer { .. } => {}
        PipelineEvent::DataAccess { level, .. } => {
            if level == Level::Memory {
                pmu.bump(PmuEvent::DcacheMiss);
            }
        }
        PipelineEvent::TransientLoad { level, .. } => {
            if level == Level::Memory {
                pmu.bump(PmuEvent::DcacheMiss);
            }
            pmu.bump(PmuEvent::LoadsDispatched);
        }
        PipelineEvent::WrongPathUop { .. } => pmu.bump(PmuEvent::WrongPathUops),
        PipelineEvent::Retired { .. } => pmu.bump(PmuEvent::InstRetired),
        PipelineEvent::FaultCaught { .. } => {}
    }
}

/// A detached [`PerfCounters`] is itself a sink: attach one to mirror
/// the machine's built-in PMU (e.g. to count only a probe phase).
impl EventSink for PerfCounters {
    fn on_event(&mut self, event: &PipelineEvent) {
        count(self, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter(usize);
    impl EventSink for Counter {
        fn on_event(&mut self, _: &PipelineEvent) {
            self.0 += 1;
        }
    }

    fn retired() -> PipelineEvent {
        PipelineEvent::Retired {
            pc: VirtAddr::new(0x1000),
            inst: Inst::Nop,
            cycles: 7,
        }
    }

    #[test]
    fn attach_dispatch_detach_round_trip() {
        let mut bus = EventBus::new();
        let id = bus.attach(Box::new(Counter::default()));
        assert_eq!(bus.len(), 1);
        bus.dispatch(&retired());
        bus.dispatch(&retired());
        let sink = bus.detach(id).expect("attached");
        let any: Box<dyn Any> = sink;
        let counter = any.downcast::<Counter>().expect("a Counter");
        assert_eq!(counter.0, 2);
        assert!(bus.is_empty());
        assert!(bus.detach(id).is_none());
    }

    #[test]
    fn clone_drops_sinks() {
        let mut bus = EventBus::new();
        bus.attach(Box::new(Counter::default()));
        assert!(bus.clone().is_empty());
    }

    #[test]
    fn perf_counters_sink_matches_count_policy() {
        let mut direct = PerfCounters::new();
        let mut sink = PerfCounters::new();
        let events = [
            retired(),
            PipelineEvent::UopDispatch {
                pc: VirtAddr::new(0),
                hit: false,
            },
            PipelineEvent::Resteer {
                pc: VirtAddr::new(0),
                kind: ResteerKind::Frontend,
                target: None,
            },
            PipelineEvent::TransientLoad {
                va: VirtAddr::new(0x40),
                level: Level::Memory,
            },
        ];
        for ev in &events {
            count(&mut direct, ev);
            sink.on_event(ev);
        }
        for ev in [
            PmuEvent::InstRetired,
            PmuEvent::OpCacheMiss,
            PmuEvent::UopsFromDecoder,
            PmuEvent::BranchMispredict,
            PmuEvent::ResteerFrontend,
            PmuEvent::LoadsDispatched,
            PmuEvent::DcacheMiss,
        ] {
            assert_eq!(direct.read(ev), sink.read(ev), "{ev:?}");
        }
        assert_eq!(sink.read(PmuEvent::LoadsDispatched), 1);
        assert_eq!(sink.read(PmuEvent::DcacheMiss), 1);
    }
}
