//! Transient (wrong-path) window parameters and reports.

use phantom_mem::VirtAddr;

use crate::profile::UarchProfile;
use crate::resteer::ResteerKind;

/// What a squashed path is *allowed* to do before the resteer lands,
/// derived from the microarchitecture profile, the resteer kind, and the
/// active mitigations.
///
/// # Examples
///
/// ```
/// use phantom_pipeline::{ResteerKind, TransientWindow, UarchProfile};
///
/// // A phantom (frontend-resteered) window on Zen 2 can execute µops…
/// let w = TransientWindow::for_resteer(&UarchProfile::zen2(), ResteerKind::Frontend);
/// assert!(w.fetch && w.decode && w.exec_uops > 0);
/// // …but on Zen 4 it is squashed before execute.
/// let w4 = TransientWindow::for_resteer(&UarchProfile::zen4(), ResteerKind::Frontend);
/// assert!(w4.fetch && w4.decode && w4.exec_uops == 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransientWindow {
    /// The target's I-cache line may be fetched.
    pub fetch: bool,
    /// The target's bytes may be decoded (µop-cache fill).
    pub decode: bool,
    /// How many wrong-path µops may dispatch to execute (0 = squashed
    /// before execute).
    pub exec_uops: u32,
    /// The resteer that ends the window.
    pub resteer: ResteerKind,
}

impl TransientWindow {
    /// Derive the window a resteer of the given kind leaves open on
    /// `profile`, before mitigation gating.
    pub fn for_resteer(profile: &UarchProfile, resteer: ResteerKind) -> TransientWindow {
        match resteer {
            ResteerKind::Frontend => {
                let deadline = profile.frontend_resteer_latency;
                TransientWindow {
                    fetch: profile.fetch_latency < deadline,
                    decode: profile.fetch_latency + profile.decode_latency <= deadline,
                    exec_uops: profile.phantom_exec_uops,
                    resteer,
                }
            }
            ResteerKind::Backend => TransientWindow {
                fetch: true,
                decode: true,
                exec_uops: profile.spectre_exec_uops,
                resteer,
            },
        }
    }

    /// Apply an execute-stage gate (AutoIBRS restriction,
    /// `SuppressBPOnNonBr` on a non-branch victim): fetch and decode stay
    /// allowed, execute is blocked. This asymmetry is observations O4/O5.
    pub fn without_execute(self) -> TransientWindow {
        TransientWindow {
            exec_uops: 0,
            ..self
        }
    }

    /// A fully-suppressed window (e.g. the Intel jmp*-victim blind spot).
    pub fn suppressed(resteer: ResteerKind) -> TransientWindow {
        TransientWindow {
            fetch: false,
            decode: false,
            exec_uops: 0,
            resteer,
        }
    }
}

/// What a squashed path actually did — the ground truth the observation
/// channels (I-cache timing, µop-cache counters, D-cache probing) later
/// recover. Tests compare channel output against these reports.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransientReport {
    /// Where the wrong-path fetch went (None when no target was served).
    pub target: Option<VirtAddr>,
    /// The window that was in force.
    pub window: Option<TransientWindow>,
    /// Whether the target line was fetched into the I-cache.
    pub fetched: bool,
    /// Whether target bytes were decoded into the µop cache.
    pub decoded: bool,
    /// Addresses of loads dispatched on the wrong path (these touched the
    /// D-cache and cannot be recalled).
    pub loads_dispatched: Vec<VirtAddr>,
    /// Wrong-path µops that dispatched before the squash.
    pub executed_uops: u32,
    /// Whether a *nested* phantom steer happened inside this transient
    /// path (the §7.4 phantom-inside-Spectre construction).
    pub nested_phantom: bool,
}

impl TransientReport {
    /// An empty report for a step with no misprediction.
    pub fn none() -> TransientReport {
        TransientReport::default()
    }

    /// The deepest pipeline stage the wrong path reached, as the strings
    /// used in Table 1 ("IF", "ID", "EX", or "-" for nothing).
    pub fn deepest_stage(&self) -> &'static str {
        if !self.loads_dispatched.is_empty() || self.executed_uops > 0 {
            "EX"
        } else if self.decoded {
            "ID"
        } else if self.fetched {
            "IF"
        } else {
            "-"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontend_windows_match_table1_per_uarch() {
        for p in UarchProfile::all() {
            let w = TransientWindow::for_resteer(&p, ResteerKind::Frontend);
            assert!(w.fetch, "O1 on {p}");
            assert!(w.decode, "O2 on {p}");
            let expect_exec = matches!(p.name.as_str(), "Zen" | "Zen 2");
            assert_eq!(w.exec_uops > 0, expect_exec, "O3 on {p}");
        }
    }

    #[test]
    fn backend_windows_always_execute() {
        for p in UarchProfile::all() {
            let w = TransientWindow::for_resteer(&p, ResteerKind::Backend);
            assert!(w.exec_uops >= 40, "Spectre windows are wide on {p}");
        }
    }

    #[test]
    fn execute_gate_preserves_fetch_and_decode() {
        let w = TransientWindow::for_resteer(&UarchProfile::zen2(), ResteerKind::Frontend)
            .without_execute();
        assert!(w.fetch && w.decode);
        assert_eq!(w.exec_uops, 0);
    }

    #[test]
    fn deepest_stage_ordering() {
        let mut r = TransientReport::none();
        assert_eq!(r.deepest_stage(), "-");
        r.fetched = true;
        assert_eq!(r.deepest_stage(), "IF");
        r.decoded = true;
        assert_eq!(r.deepest_stage(), "ID");
        r.loads_dispatched.push(VirtAddr::new(0x1000));
        assert_eq!(r.deepest_stage(), "EX");
    }
}
