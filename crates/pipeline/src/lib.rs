//! A decoupled frontend/backend CPU pipeline simulator exhibiting
//! speculation **before instruction decode** — the mechanism behind
//! PHANTOM (MICRO '23).
//!
//! # Model
//!
//! Real hardware runs fetch, decode and execute as asynchronous modules
//! joined by queues (paper Figure 2). We simulate the *architectural*
//! instruction stream step by step and, at every step, resolve what the
//! frontend would have done **before decoding**: it queries the BTB with
//! nothing but the fetch address. If the BTB claims a branch lives here,
//! the frontend steers to the predicted target immediately; the target
//! then advances through the pipeline until a *resteer* squashes it:
//!
//! * **frontend resteer** — the decoder discovers the prediction
//!   contradicts the actual instruction bytes (kind mismatch, or a direct
//!   branch with a different displacement). Short window. This is
//!   PHANTOM speculation;
//! * **backend resteer** — the mismatch is only discoverable at execute
//!   (wrong indirect target, wrong conditional direction, wrong return
//!   address). Long window. This is conventional Spectre.
//!
//! How far the squashed path advanced — fetch (I-cache fill), decode
//! (µop-cache fill), execute (non-abortable load dispatch) — is decided
//! by comparing per-stage latencies against the resteer latency of the
//! active [`UarchProfile`]. Zen 1/2's slow decoder resteer lets a load
//! dispatch (observation O3); Zen 3/4 and Intel squash first.
//!
//! # Examples
//!
//! ```
//! use phantom_pipeline::{Machine, UarchProfile};
//! use phantom_isa::{asm::Assembler, Inst, Reg};
//! use phantom_mem::PageFlags;
//!
//! let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
//! let mut a = Assembler::new(0x40_0000);
//! a.push(Inst::MovImm { dst: Reg::R0, imm: 42 });
//! a.push(Inst::Halt);
//! let blob = a.finish()?;
//! m.load_blob(&blob, PageFlags::USER_TEXT)?;
//! m.set_pc(blob.base.into());
//! m.run(100)?;
//! assert_eq!(m.reg(phantom_isa::Reg::R0), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod events;
pub mod intern;
pub mod machine;
pub mod profile;
pub mod resteer;
pub mod spec;
pub mod trace;
pub mod transient;

#[cfg(test)]
mod proptests;

pub use events::{EventSink, PipelineEvent, SinkId};
pub use intern::IStr;
pub use machine::{Checkpoint, Machine, MachineError, MachineSnapshot, RunExit, StepOutcome};
pub use profile::{UarchProfile, Vendor};
pub use resteer::{ResteerKind, SpeculationVerdict};
pub use spec::{SpecError, UarchRegistry, UarchSpec};
pub use trace::{TraceEvent, TraceSink, Tracer};
pub use transient::{TransientReport, TransientWindow};
