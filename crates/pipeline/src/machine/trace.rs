//! The trace/superblock engine: straight-line replay of hot basic
//! blocks.
//!
//! The campaign hot loop (`TrialRunner` → `System::syscall` →
//! [`Machine::run`]) retires the same short instruction sequences
//! millions of times. The generic [`Machine::step`] re-derives
//! everything per instruction — translation, code-byte reads, decode,
//! window classification — even though the decode cache already proves
//! the answers never change while the code and page table stay put.
//! This module lifts that observation one level up: it records a hot
//! basic block once into a compact µop IR (a [`TraceBlock`]), validates
//! the recording against cheap content stamps at lookup, and then
//! replays the whole block as a straight-line run that *mirrors
//! [`Machine::step`] side effect for side effect*.
//!
//! # Bit-identity contract
//!
//! Replay is a host-performance optimization only. Cycles, PMU
//! counters, decode-/µop-cache statistics, architectural state and the
//! `PipelineEvent` stream are bit-identical with the engine on or off;
//! only the host wall-clock changes (mirroring the decode cache's
//! contract, one level up). Attached sinks observe the same events in
//! the same order either way — the replay loop emits every event the
//! stage machine would (fetch, µop dispatch, resteer, transient and
//! retirement), which `machine::tests` enforces by comparing full
//! recorded streams. The engine earns the rest of the contract by
//! *bailing out* to the stage machine at anything it cannot prove it
//! replays exactly:
//!
//! * block validation failure — page-table stamp, BTB content
//!   generation, MSR state, SMT thread (see [`TraceBlock`]);
//! * a fetch fault (bails *before* any state is touched — the
//!   charged-translation fault path mutates nothing);
//! * a branch misprediction — the full misprediction tail (resteer
//!   event and latency, transient window, wrong-path run) executes
//!   inline first, then the replay conservatively ends;
//! * a caught data fault or any other control-flow redirect (detected
//!   by the next-µop PC check);
//! * a self-modifying-code write landing in a traced frame mid-replay
//!   (detected by the [`TraceCache::generation`] check —
//!   `note_code_write` invalidates overlapping blocks);
//! * fences, syscalls, `sysret` and `hlt` — never recorded into blocks
//!   at all, so they always take the generic path;
//! * snapshot/restore boundaries — restore invalidates blocks
//!   overlapping frames the rewind copied back, and revalidation
//!   (below) covers everything else.
//!
//! # Keying and validation
//!
//! Blocks are keyed by `(fetch VA, privilege tag)` and stamped with the
//! page-table *class* versions (user and kernel half — see
//! `PageTable::class_version`; only the halves the block's code pages
//! touch gate validity, so kernel-text blocks ride out the user-half
//! mapping churn every campaign trial causes), the BTB content
//! generation, the MSR state and the SMT thread at record time. The
//! stamps are *globally unique* (process-wide counters), so a stamp
//! match after any sequence of snapshot/restore rewinds still proves
//! content equality. On a
//! page-table stamp mismatch the block's code pages are re-translated:
//! same frames ⇒ restamp, anything else ⇒ invalidate. The predictor
//! context (BTB content generation, MSR, SMT thread) is stamped but
//! never *revalidated*: while every stamp matches, a µop whose span
//! provably had no visible BTB hit skips `predict_window` entirely
//! during replay — the call is side-effect-free in that case, and the
//! skip is where the bulk of the replay win comes from — and on any
//! drift replay simply makes the live `predict_window` call exactly as
//! `step()` would, bit-identically. (Re-stamping the flags eagerly
//! would cost a BTB probe per µop every time training bumps the
//! generation, which campaign trials do constantly.)

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use phantom_bpu::MsrState;
use phantom_isa::decode::decode;
use phantom_isa::{BranchKind, Inst};
use phantom_mem::{AccessKind, PhysAddr, PrivilegeLevel, VirtAddr};

use crate::events::PipelineEvent;
use crate::resteer::{classify_predicted, classify_unpredicted, ResteerKind, SpeculationVerdict};
use crate::transient::TransientReport;

use super::decode::level_tag;
use super::{Machine, MachineError};

/// Lookups at a block head before recording kicks in. Cold code never
/// pays the recording walk; anything the campaign loop touches this
/// often is worth a block.
const HEAT_THRESHOLD: u32 = 8;

/// Hard cap on µops per block (blocks end at the first branch anyway;
/// this bounds pathological branch-free runs).
const MAX_BLOCK_UOPS: usize = 64;

/// One recorded µop: the decoded instruction at its recorded PC.
#[derive(Debug, Clone, Copy)]
struct TraceUop {
    pc: VirtAddr,
    inst: Inst,
    len: u64,
}

/// A recorded superblock: one hot basic block in straight-line µop IR.
/// Immutable once recorded — everything that drifts with machine state
/// (stamps, per-µop predictor flags) lives in the cache's [`TraceEntry`]
/// instead, so revalidation never clones the block.
#[derive(Debug)]
struct TraceBlock {
    /// Privilege level the block was recorded at (also in the key tag;
    /// kept here for revalidation translations).
    level: PrivilegeLevel,
    uops: Vec<TraceUop>,
    /// `(page base VA, physical frame number)` for every page holding
    /// the block's code bytes — the revalidation and SMC surface.
    code_pages: Vec<(VirtAddr, u64)>,
    /// Whether any code page lies in the user (bit 63 clear) and/or
    /// kernel half — selects which page-table class stamps gate
    /// validity, so kernel-text blocks survive user-half mapping churn
    /// (every campaign trial maps attacker pages) without a walk.
    uses_user: bool,
    uses_kernel: bool,
}

/// The mutable cache entry wrapping an immutable [`TraceBlock`]: the
/// content stamps and the per-µop "no visible BTB hit" flags (bit *i* =
/// µop *i*; [`MAX_BLOCK_UOPS`] is exactly 64). Restamping mutates this
/// in place — forks sharing the `Arc`'d block each restamp their own
/// entry for free.
#[derive(Debug, Clone)]
struct TraceEntry {
    /// SMT thread the µop flags were stamped for.
    thread: u8,
    /// MSR state the µop flags were stamped for.
    msr: MsrState,
    /// Page-table class stamps ([`phantom_mem::PageTable::class_version`]) for the
    /// user and kernel halves: a match on every half the block's code
    /// pages touch ⇒ every translation the block depends on is
    /// unchanged.
    pt_user: u64,
    pt_kernel: u64,
    /// BTB content-generation stamp: match ⇒ the `no_visible_hit` flags
    /// are still exact.
    btb_generation: u64,
    /// CBP content-generation stamp. The CBP never makes a hidden
    /// window visible (direction only gates *served* BTB hits), so this
    /// is conservative — a stale stamp forces a live `predict_window`
    /// call, which is pure when it returns `None` — but it keeps every
    /// predictor structure covered by the same stamped-not-revalidated
    /// contract.
    cbp_generation: u64,
    /// Bit *i* set ⇔ at stamp time no visible BTB entry covered µop
    /// *i*'s span for (level, thread, MSR) — `predict_window` would
    /// return `None` without touching any predictor state, so replay
    /// may skip the call while the BTB generation still matches.
    no_visible_hit: u64,
    block: Arc<TraceBlock>,
}

/// The per-machine trace cache. Cloned with the machine (blocks are
/// `Arc`-shared, so forks inherit a warm cache for pointer bumps);
/// deliberately *not* rewound by [`Machine::restore`] — the globally
/// unique stamps let surviving blocks revalidate against the restored
/// content instead.
#[derive(Debug, Clone)]
pub(super) struct TraceCache {
    enabled: bool,
    blocks: HashMap<(u64, u8), TraceEntry>,
    /// Union of the frames backing any block's code bytes, for the O(1)
    /// SMC check in `note_code_write`.
    code_frames: HashSet<u64>,
    /// Lookup-miss counts per candidate block head.
    heat: HashMap<(u64, u8), u32>,
    /// Bumped on every invalidation; an in-flight replay that observes
    /// a bump bails before its next µop (its block may be stale).
    generation: u64,
    hits: u64,
    bailouts: u64,
    invalidations: u64,
}

impl TraceCache {
    pub(super) fn new(enabled: bool) -> TraceCache {
        TraceCache {
            enabled,
            blocks: HashMap::new(),
            code_frames: HashSet::new(),
            heat: HashMap::new(),
            generation: 0,
            hits: 0,
            bailouts: 0,
            invalidations: 0,
        }
    }

    /// `(hits, bailouts, invalidations)` since construction.
    pub(super) fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.bailouts, self.invalidations)
    }

    fn clear(&mut self) {
        self.blocks.clear();
        self.code_frames.clear();
        self.heat.clear();
        self.generation += 1;
    }
}

/// What a block replay accomplished before returning to the run loop.
pub(super) struct ReplayOutcome {
    /// Architectural steps retired (≥ 1).
    pub(super) steps: u64,
    /// A `hlt` retired (never set today — halts are not recorded into
    /// blocks — but handled for robustness).
    pub(super) halted: bool,
    /// Transient reports in program order, exactly as the equivalent
    /// `step()` sequence would have produced.
    pub(super) transients: Vec<TransientReport>,
}

impl Machine {
    // ----- public knobs ----------------------------------------------

    /// Enable or disable the trace/superblock engine (enabled by
    /// default; the `PHANTOM_TRACE_CACHE=0` environment variable
    /// disables it at construction). Disabling exists for A/B
    /// benchmarking — results are bit-identical either way, only host
    /// wall-clock changes. Toggling drops all recorded blocks; the
    /// counters survive.
    pub fn set_trace_cache_enabled(&mut self, enabled: bool) {
        self.trace_cache.enabled = enabled;
        self.trace_cache.clear();
    }

    /// Trace-engine `(hits, bailouts, invalidations)` since
    /// construction. A hit is a fully replayed block; a bailout is a
    /// replay abandoned early (including before its first µop); an
    /// invalidation is a recorded block dropped for staleness.
    pub fn trace_stats(&self) -> (u64, u64, u64) {
        self.trace_cache.stats()
    }

    // ----- invalidation ----------------------------------------------

    /// Drop recorded blocks whose code bytes live in the written frame.
    /// Called from `note_code_write` on every architectural store and
    /// changed-byte `poke` chunk; the `code_frames` check keeps data
    /// writes free.
    #[inline]
    pub(super) fn trace_note_code_write(&mut self, pa: PhysAddr) {
        if self.trace_cache.code_frames.contains(&pa.page_number()) {
            self.trace_invalidate_frames(&[pa.page_number()]);
        }
    }

    /// Drop recorded blocks whose code bytes live in any of `frames`
    /// (physical frame numbers). Restore feeds this the frames a rewind
    /// copied back.
    pub(super) fn trace_invalidate_frames(&mut self, frames: &[u64]) {
        let touched = frames
            .iter()
            .any(|f| self.trace_cache.code_frames.contains(f));
        if !touched {
            return;
        }
        let before = self.trace_cache.blocks.len();
        self.trace_cache
            .blocks
            .retain(|_, e| !e.block.code_pages.iter().any(|(_, f)| frames.contains(f)));
        let removed = (before - self.trace_cache.blocks.len()) as u64;
        if removed == 0 {
            return;
        }
        self.trace_cache.invalidations += removed;
        self.trace_cache.generation += 1;
        let mut live = HashSet::new();
        for entry in self.trace_cache.blocks.values() {
            live.extend(entry.block.code_pages.iter().map(|&(_, f)| f));
        }
        self.trace_cache.code_frames = live;
    }

    /// Drop every recorded block (raw `phys_mut`/`page_table_mut`
    /// access — anything could have changed).
    pub(super) fn trace_invalidate_all(&mut self) {
        let removed = self.trace_cache.blocks.len() as u64;
        self.trace_cache.invalidations += removed;
        self.trace_cache.clear();
    }

    // ----- lookup / record / validate --------------------------------

    /// Offer the trace engine up to `budget` architectural steps at the
    /// current PC. `Ok(Some(_))` means at least one step retired with
    /// effects bit-identical to the same number of [`Machine::step`]
    /// calls; `Ok(None)` means the stage machine should take the next
    /// step.
    ///
    /// # Errors
    ///
    /// Exactly the [`MachineError`]s the equivalent `step()` sequence
    /// would have returned (unhandled faults mid-replay propagate).
    pub(super) fn try_trace_step(
        &mut self,
        budget: u64,
    ) -> Result<Option<ReplayOutcome>, MachineError> {
        if !self.trace_cache.enabled {
            return Ok(None);
        }
        let Some(entry) = self.trace_entry_at(self.pc) else {
            return Ok(None);
        };
        if entry.block.uops.len() as u64 > budget {
            // Partial-block replay would complicate the hit/bailout
            // accounting for no win; let the stage machine finish the
            // run's tail.
            return Ok(None);
        }
        self.replay_block(&entry)
    }

    /// A validated cache entry starting at `pc`, recording one if `pc`
    /// has warmed past the heat threshold. The returned entry is a
    /// cheap copy (stamps + `Arc` bump) so replay doesn't hold a borrow
    /// of the cache.
    fn trace_entry_at(&mut self, pc: VirtAddr) -> Option<TraceEntry> {
        let key = (pc.raw(), level_tag(self.level));
        // Fast path: recorded and the page-table class stamps current
        // for every half the block's code lives in — one lookup.
        // (Predictor-context stamps never gate a lookup; see
        // `trace_validate`.)
        if let Some(entry) = self.trace_cache.blocks.get(&key) {
            if (!entry.block.uses_user || entry.pt_user == self.page_table.class_version(false))
                && (!entry.block.uses_kernel
                    || entry.pt_kernel == self.page_table.class_version(true))
            {
                return Some(entry.clone());
            }
            return self.trace_validate(key);
        }
        let heat = self.trace_cache.heat.entry(key).or_insert(0);
        *heat += 1;
        if *heat < HEAT_THRESHOLD {
            return None;
        }
        match self.trace_record(pc) {
            Some(entry) => {
                for &(_, frame) in &entry.block.code_pages {
                    self.trace_cache.code_frames.insert(frame);
                }
                self.trace_cache.heat.remove(&key);
                self.trace_cache.blocks.insert(key, entry.clone());
                Some(entry)
            }
            None => {
                // Unrecordable head (terminator or undecodable first
                // instruction): restart the warmup so the next attempt
                // is a threshold away instead of every step.
                self.trace_cache.heat.insert(key, 0);
                None
            }
        }
    }

    /// Revalidate the entry at `key` against live content, restamping
    /// in place where the content still matches and dropping it where
    /// it doesn't. Restamps touch only the entry's stamp words — the
    /// `Arc`'d block itself is immutable, so no clone ever happens.
    fn trace_validate(&mut self, key: (u64, u8)) -> Option<TraceEntry> {
        // Page-table class stamps: a match on every half the block's
        // code touches proves its translations unchanged. On mismatch,
        // re-translate the code pages — identical frames mean the bytes
        // the block decoded are still the bytes fetch would see (byte
        // *content* changes go through note_code_write or full
        // invalidation, never silently).
        let pt_user = self.page_table.class_version(false);
        let pt_kernel = self.page_table.class_version(true);
        let entry = self.trace_cache.blocks.get(&key)?;
        let stale = (entry.block.uses_user && entry.pt_user != pt_user)
            || (entry.block.uses_kernel && entry.pt_kernel != pt_kernel);
        if stale {
            let block = Arc::clone(&entry.block);
            let same_frames = block.code_pages.iter().all(|&(page, frame)| {
                self.translate_fast(page, AccessKind::Execute, block.level)
                    .is_ok_and(|pa| pa.page_number() == frame)
            });
            if !same_frames {
                self.trace_cache.blocks.remove(&key);
                self.trace_cache.invalidations += 1;
                self.trace_cache.generation += 1;
                let mut live = HashSet::new();
                for e in self.trace_cache.blocks.values() {
                    live.extend(e.block.code_pages.iter().map(|&(_, f)| f));
                }
                self.trace_cache.code_frames = live;
                return None;
            }
            if let Some(entry) = self.trace_cache.blocks.get_mut(&key) {
                entry.pt_user = pt_user;
                entry.pt_kernel = pt_kernel;
            }
        }

        // Predictor context (BTB generation, MSR, thread) is *not*
        // revalidated here: a stale stamp merely disables the per-µop
        // `predict_window` skip, and replay then makes the live call —
        // exactly what `step()` does, bit-identically. Re-stamping the
        // flags eagerly would cost a `window_has_visible_hit` probe per
        // µop per predictor drift, which on training-heavy loops (every
        // campaign trial retrains the BTB) is more than the skip saves.
        self.trace_cache.blocks.get(&key).cloned()
    }

    /// Statically decode one basic block starting at `start`. Pure
    /// reads only — nothing about the machine changes. Terminators
    /// (syscall/sysret/hlt/fences/invalid) end the block *exclusive*;
    /// the first branch ends it *inclusive*.
    fn trace_record(&self, start: VirtAddr) -> Option<TraceEntry> {
        let mut uops = Vec::new();
        let mut no_visible_hit = 0u64;
        let mut code_pages: Vec<(VirtAddr, u64)> = Vec::new();
        let mut cur = start;
        while uops.len() < MAX_BLOCK_UOPS {
            let bytes = self.read_code_bytes(cur, 15);
            let Some((inst, len)) = decode(&bytes) else {
                break;
            };
            let len = len as u64;
            if matches!(
                inst,
                Inst::Syscall
                    | Inst::Sysret
                    | Inst::Halt
                    | Inst::Lfence
                    | Inst::Mfence
                    | Inst::Invalid { .. }
            ) {
                break;
            }
            // Record the frames backing this µop's bytes (first and
            // last byte bound the page span; instructions are ≤ 15 B).
            let mut pages_ok = true;
            for va in [cur, cur + (len - 1)] {
                let page = va.page_base();
                if code_pages.iter().any(|&(p, _)| p == page) {
                    continue;
                }
                match self.translate_fast(page, AccessKind::Execute, self.level) {
                    Ok(pa) => code_pages.push((page, pa.page_number())),
                    Err(_) => {
                        pages_ok = false;
                        break;
                    }
                }
            }
            if !pages_ok {
                break;
            }
            if !self
                .bpu
                .window_has_visible_hit(cur, len, self.level, self.thread)
            {
                no_visible_hit |= 1 << uops.len();
            }
            let is_branch = inst.kind() != BranchKind::NotBranch;
            uops.push(TraceUop { pc: cur, inst, len });
            if is_branch {
                break;
            }
            cur = cur + len;
        }
        if uops.is_empty() {
            return None;
        }
        let uses_user = code_pages.iter().any(|&(p, _)| p.raw() >> 63 == 0);
        let uses_kernel = code_pages.iter().any(|&(p, _)| p.raw() >> 63 != 0);
        Some(TraceEntry {
            thread: self.thread,
            msr: self.bpu.msr(),
            pt_user: self.page_table.class_version(false),
            pt_kernel: self.page_table.class_version(true),
            btb_generation: self.bpu.btb_generation(),
            cbp_generation: self.bpu.cbp_generation(),
            no_visible_hit,
            block: Arc::new(TraceBlock {
                level: self.level,
                uops,
                code_pages,
                uses_user,
                uses_kernel,
            }),
        })
    }

    // ----- replay ----------------------------------------------------

    /// Replay the entry's µops, mirroring [`Machine::step`] stage for
    /// stage, until the block ends or a bail-out condition fires.
    fn replay_block(&mut self, entry: &TraceEntry) -> Result<Option<ReplayOutcome>, MachineError> {
        let block = &*entry.block;
        let entry_generation = self.trace_cache.generation;
        let mut out = ReplayOutcome {
            steps: 0,
            halted: false,
            transients: Vec::new(),
        };
        for (i, uop) in block.uops.iter().enumerate() {
            // Bail-out checks, both before any state is touched: an SMC
            // store earlier in this replay invalidated traced code, or
            // the previous µop redirected control flow (caught data
            // fault → handler) off the recorded straight line.
            if self.trace_cache.generation != entry_generation || self.pc != uop.pc {
                break;
            }
            let (pc, inst, len) = (uop.pc, uop.inst, uop.len);

            // --- Instruction fetch (mirrors `arch_fetch`). ---
            let pa = match self.translate_charged(pc, AccessKind::Execute) {
                Ok(pa) => pa,
                // The charged-translation fault path mutates nothing,
                // so bailing here lets step() take the fault from
                // scratch, bit-identically.
                Err(_) => break,
            };
            let (level, lat) = self.caches.access_inst(pa.raw());
            self.cycles += lat;
            self.emit(PipelineEvent::FetchLine {
                va: pc,
                level,
                transient: false,
            });

            // --- Decode and µop dispatch. ---
            self.replay_decode_account(pc, inst, len);
            self.uop_dispatch(pc);

            // --- Pre-decode prediction for this instruction's span.
            // While the full predictor context (BTB and CBP content
            // generations, MSR, thread) still matches the stamps, a stamped
            // `no_visible_hit` proves `predict_window` would return
            // `None` without any side effect — skip it. Any drift makes
            // the live call instead, exactly as `step()` would. ---
            let pred = if entry.no_visible_hit & (1 << i) != 0
                && self.bpu.btb_generation() == entry.btb_generation
                && self.bpu.cbp_generation() == entry.cbp_generation
                && self.thread == entry.thread
                && self.bpu.msr() == entry.msr
            {
                None
            } else {
                self.bpu.predict_window(pc, len, self.level, self.thread)
            };

            // --- Resolve, classify, run the wrong path (mirrors
            // `step()` exactly, inline). ---
            let (taken, actual_target) = self.resolve_branch(&inst, pc)?;
            let verdict = match &pred {
                Some(p) => classify_predicted(p, &inst, actual_target, taken),
                None => classify_unpredicted(&inst, pc, taken),
            };
            let mispredicted = verdict.is_misprediction();
            if let SpeculationVerdict::Mispredicted {
                resteer,
                transient_target,
            } = verdict
            {
                self.emit(PipelineEvent::Resteer {
                    pc,
                    kind: resteer,
                    target: transient_target,
                });
                match resteer {
                    ResteerKind::Frontend => self.cycles += self.profile.frontend_resteer_latency,
                    ResteerKind::Backend => self.cycles += self.profile.backend_resteer_latency,
                }
                let window = self.window_for(&inst, pred.as_ref(), resteer);
                out.transients.push(match transient_target {
                    Some(target) => self.run_transient(target, window),
                    None => TransientReport {
                        window: Some(window),
                        ..TransientReport::none()
                    },
                });
            }

            // --- Architectural execute and retire. ---
            let halted = self.execute(inst, pc, len, taken, actual_target, pred.as_ref())?;
            self.cycles += 1;
            self.emit(PipelineEvent::Retired {
                pc,
                inst,
                cycles: self.cycles,
            });
            out.steps += 1;
            if halted {
                out.halted = true;
                break;
            }
            if mispredicted {
                // The misprediction itself replayed exactly (resteer,
                // window, wrong path, training); ending the block here
                // is the conservative bail-out contract.
                break;
            }
        }
        if out.steps == 0 {
            self.trace_cache.bailouts += 1;
            return Ok(None);
        }
        if out.steps == block.uops.len() as u64 {
            self.trace_cache.hits += 1;
        } else {
            self.trace_cache.bailouts += 1;
        }
        Ok(Some(out))
    }
}
