//! The squashed wrong path: transient fetch, decode, and a bounded
//! number of executed µops, with nested phantom steering (§7.4).

use std::collections::HashSet;

use phantom_isa::Inst;
use phantom_mem::{AccessKind, VirtAddr};

use crate::events::PipelineEvent;
use crate::transient::{TransientReport, TransientWindow};

use super::Machine;

impl Machine {
    /// Simulate the squashed wrong path: transient fetch, decode and a
    /// bounded number of µops, with nested phantom steering.
    pub fn run_transient(&mut self, start: VirtAddr, window: TransientWindow) -> TransientReport {
        let mut report = TransientReport {
            target: Some(start),
            window: Some(window),
            ..TransientReport::none()
        };
        if !window.fetch {
            return report;
        }

        // Transient fetch of the target line. An inaccessible target
        // (unmapped / NX / supervisor-only from user) fills nothing —
        // primitive P1's signal.
        let mut lines = HashSet::new();
        if !self.transient_touch(start, window.decode, &mut lines) {
            return report;
        }
        report.fetched = true;
        if !window.decode {
            return report;
        }
        report.decoded = true;

        // Decode the first fetch block's worth of lines at the target.
        let block = self.profile.fetch_block;
        let mut off = 64 - (start.raw() & 63);
        while off < block {
            self.transient_touch(start + off, true, &mut lines);
            off += 64;
        }

        if window.exec_uops == 0 {
            return report;
        }

        // Transient execution over a copy of the register file — the
        // wrong path sees the victim's live registers (that is P3).
        let mut tregs = self.regs;
        let (mut tzf, mut tsf, mut tcf) = (self.zf, self.sf, self.cf);
        let mut tpc = start;
        let mut budget = window.exec_uops;

        while budget > 0 {
            if !self.transient_touch(tpc, true, &mut lines) {
                break;
            }
            let (inst, len) = match self.cached_decode(tpc) {
                Some(pair) => pair,
                None => break,
            };
            budget -= 1;

            // Nested phantom steer: the BTB may claim this transient
            // instruction is a branch of a different kind (§7.4 nests
            // PHANTOM inside a Spectre window this way).
            if let Some(hit) = self.bpu.btb().lookup(tpc) {
                if hit.kind != inst.kind() {
                    if let Some(nested_target) = hit.target {
                        report.nested_phantom = true;
                        self.emit(PipelineEvent::PhantomSteer {
                            pc: tpc,
                            target: nested_target,
                        });
                        // The inner window is a frontend resteer: fetch +
                        // decode always; execute only with a phantom
                        // budget (Zen 1/2).
                        self.transient_touch(nested_target, true, &mut lines);
                        if self.profile.phantom_exec_uops == 0 {
                            break;
                        }
                        budget = budget.min(self.profile.phantom_exec_uops);
                        tpc = nested_target;
                        continue;
                    }
                }
            }

            report.executed_uops += 1;
            self.emit(PipelineEvent::WrongPathUop { pc: tpc });
            match inst {
                Inst::Nop | Inst::NopN { .. } => tpc = tpc + len,
                Inst::MovImm { dst, imm } => {
                    tregs[usize::from(dst.index())] = imm;
                    tpc = tpc + len;
                }
                Inst::MovReg { dst, src } => {
                    tregs[usize::from(dst.index())] = tregs[usize::from(src.index())];
                    tpc = tpc + len;
                }
                Inst::Alu { op, dst, src } => {
                    let d = usize::from(dst.index());
                    tregs[d] = op.apply(tregs[d], tregs[usize::from(src.index())]);
                    tpc = tpc + len;
                }
                Inst::Shr { dst, amount } => {
                    let d = usize::from(dst.index());
                    tregs[d] >>= amount;
                    tpc = tpc + len;
                }
                Inst::Shl { dst, amount } => {
                    let d = usize::from(dst.index());
                    tregs[d] <<= amount;
                    tpc = tpc + len;
                }
                Inst::AndImm { dst, imm } => {
                    let d = usize::from(dst.index());
                    tregs[d] &= u64::from(imm);
                    tpc = tpc + len;
                }
                Inst::Cmp { a, b } => {
                    let (av, bv) = (tregs[usize::from(a.index())], tregs[usize::from(b.index())]);
                    tzf = av == bv;
                    tcf = av < bv;
                    tsf = (av.wrapping_sub(bv) as i64) < 0;
                    tpc = tpc + len;
                }
                Inst::Load { dst, base, disp } => {
                    let addr = VirtAddr::new(
                        tregs[usize::from(base.index())].wrapping_add(disp as i64 as u64),
                    );
                    // A dispatched load cannot be aborted: it fills the
                    // D-cache even though the path is squashed.
                    match self.translate_fast(addr, AccessKind::Read, self.level) {
                        Ok(pa) => {
                            let (lvl, _) = self.caches.access_data(pa.raw());
                            self.emit(PipelineEvent::TransientLoad {
                                va: addr,
                                level: lvl,
                            });
                            report.loads_dispatched.push(addr);
                            tregs[usize::from(dst.index())] = self.phys.read_u64(pa);
                        }
                        Err(_) => {
                            // Faulting transient loads return no data and
                            // fill nothing.
                            tregs[usize::from(dst.index())] = 0;
                        }
                    }
                    tpc = tpc + len;
                }
                Inst::Store { .. } => {
                    // Stores never commit transiently; they occupy the
                    // store buffer and are dropped at squash.
                    tpc = tpc + len;
                }
                Inst::Jmp { .. } => {
                    tpc = VirtAddr::new(inst.direct_target(tpc.raw()).expect("direct"));
                }
                Inst::Call { .. } => {
                    tpc = VirtAddr::new(inst.direct_target(tpc.raw()).expect("direct"));
                }
                Inst::Jcc { cond, .. } => {
                    if cond.eval(tzf, tsf, tcf) {
                        tpc = VirtAddr::new(inst.direct_target(tpc.raw()).expect("direct"));
                    } else {
                        tpc = tpc + len;
                    }
                }
                Inst::JmpInd { src } | Inst::CallInd { src } => {
                    tpc = VirtAddr::new(tregs[usize::from(src.index())]);
                }
                // Barriers, privilege transitions and everything else end
                // the transient path.
                Inst::Ret
                | Inst::Lfence
                | Inst::Mfence
                | Inst::Clflush { .. }
                | Inst::Syscall
                | Inst::Sysret
                | Inst::Halt
                | Inst::Invalid { .. } => break,
            }
        }
        report
    }
}
