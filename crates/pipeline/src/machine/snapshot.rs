//! Whole-machine checkpoints.
//!
//! A snapshot captures every architectural *and* microarchitectural
//! state element — registers, flags, PC, privilege, memory, page
//! tables, BTB/RSB/direction predictor, all cache levels, the µop
//! cache, TLB, PMU and the cycle counter — but never the attached
//! event sinks, which are observation state. Trial runners use
//! snapshots to rewind a trained machine instead of rebuilding and
//! retraining it from scratch.

use super::Machine;

/// An immutable checkpoint of a [`Machine`].
///
/// Boxed so the (large) state lives on the heap and moving a snapshot
/// between threads is a pointer copy.
#[derive(Debug, Clone)]
pub struct MachineSnapshot {
    inner: Box<Machine>,
}

impl Machine {
    /// Checkpoint the full machine state. Attached sinks are not part
    /// of the snapshot (cloning the machine detaches them; see
    /// [`crate::events::EventBus`]).
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            inner: Box::new(self.clone()),
        }
    }

    /// Rewind to `snapshot`. Sinks currently attached to `self` stay
    /// attached and keep observing after the restore.
    pub fn restore(&mut self, snapshot: &MachineSnapshot) {
        let mut state = (*snapshot.inner).clone();
        std::mem::swap(&mut state.bus, &mut self.bus);
        *self = state;
    }
}
