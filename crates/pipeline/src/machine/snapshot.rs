//! Whole-machine checkpoints.
//!
//! A snapshot captures every architectural *and* microarchitectural
//! state element — registers, flags, PC, privilege, memory, page
//! tables, BTB/RSB/direction predictor, all cache levels, the µop
//! cache, TLB, PMU and the cycle counter — but never the attached
//! event sinks, which are observation state. Trial runners use
//! snapshots to rewind a trained machine instead of rebuilding and
//! retraining it from scratch.
//!
//! Checkpoint and rewind are O(dirty state), not O(machine):
//! [`phantom_mem::PhysMemory`] frames are `Arc`-shared copy-on-write,
//! so `snapshot` is a per-resident-frame pointer bump and `restore`
//! copies back only frames written since the checkpoint (see
//! [`phantom_mem::PhysMemory::restore_from`]). The page-table maps and
//! the decoded-line cache are `Arc`-backed too, so the big cold
//! structures are shared rather than deep-copied.

use std::sync::Arc;

use super::Machine;

/// An immutable checkpoint of a [`Machine`].
///
/// Boxed so the (large) state lives on the heap and moving a snapshot
/// between threads is a pointer copy.
#[derive(Debug, Clone)]
pub struct MachineSnapshot {
    inner: Box<Machine>,
}

impl Machine {
    /// Checkpoint the full machine state. Attached sinks are not part
    /// of the snapshot (cloning the machine detaches them; see
    /// [`crate::events::EventBus`]).
    ///
    /// Takes `&mut self` because checkpointing opens a new
    /// copy-on-write epoch on physical memory: frames written after
    /// this call are unshared on first touch, which is what lets
    /// [`Machine::restore`] copy only the dirty ones back.
    pub fn snapshot(&mut self) -> MachineSnapshot {
        // Open restore epochs on the set-associative structures before
        // cloning, so the clone (the snapshot) carries the same epoch
        // token and `restore` can copy back only sets the live machine
        // dirtied since this point.
        self.caches.begin_epoch();
        self.uop_cache.begin_epoch();
        // `PhysMemory::snapshot` returns the pre-epoch-bump frame set;
        // the machine clone below carries the post-bump live memory, so
        // swap the snapshot's copy in.
        let phys = self.phys.snapshot();
        let mut inner = Box::new(self.clone());
        inner.phys = phys;
        MachineSnapshot { inner }
    }

    /// Rewind to `snapshot`. Sinks currently attached to `self` stay
    /// attached and keep observing after the restore.
    ///
    /// Restores field-by-field into the live machine — no intermediate
    /// whole-machine clone. Physical memory rewinds through
    /// [`phantom_mem::PhysMemory::restore_from`] (copies only frames
    /// dirtied since the checkpoint); the `Arc`-backed page-table maps
    /// and decode cache restore as pointer bumps.
    pub fn restore(&mut self, snapshot: &MachineSnapshot) {
        let s = &*snapshot.inner;
        self.profile = s.profile.clone();
        self.bpu = s.bpu.clone();
        // O(sets dirtied since the checkpoint) when the epoch tokens
        // match (the common rewind loop); full copies otherwise.
        self.caches.restore_from(&s.caches);
        self.uop_cache.restore_from(&s.uop_cache);
        self.pmu = s.pmu.clone();
        // The rewind hands back the frames it copied; recorded trace
        // blocks whose code bytes live in one of them are stale.
        let copied_frames = self.phys.restore_from(&s.phys);
        self.trace_invalidate_frames(&copied_frames);
        if self.warm_fork {
            // The copied frames are the previous trial's dirty set —
            // the next trial's writes land on the same pages, so pay
            // their CoW copies here instead of inside the first steps.
            self.phys.prewarm(&copied_frames);
        }
        self.page_table = s.page_table.clone();
        self.tlb = s.tlb.clone();
        self.regs = s.regs;
        self.zf = s.zf;
        self.sf = s.sf;
        self.cf = s.cf;
        self.pc = s.pc;
        self.level = s.level;
        self.thread = s.thread;
        self.cycles = s.cycles;
        self.syscall_entry = s.syscall_entry;
        self.syscall_return = s.syscall_return;
        self.fault_handler = s.fault_handler;
        self.last_fault = s.last_fault;
        self.halted = s.halted;
        // `self.bus` deliberately untouched: sinks are observation
        // state, not machine state.
        self.decode_cache = s.decode_cache.clone();
        // `self.trace_cache` deliberately kept (minus the frame
        // invalidations above): blocks are stamped with globally unique
        // page-table/BTB stamps, so survivors revalidate against the
        // restored content instead of being rebuilt every rewind.
    }

    /// Seal the machine into a thread-shareable [`Checkpoint`] and
    /// consume it. Equivalent to [`Machine::snapshot`] followed by
    /// [`Checkpoint::new`], but makes the intended lifecycle — boot
    /// once, fork per worker — read directly at the call site.
    pub fn into_checkpoint(mut self) -> Checkpoint {
        Checkpoint::new(self.snapshot())
    }

    /// Take a [`Checkpoint`] of the current state, leaving the machine
    /// usable (its later writes are dirty with respect to the
    /// checkpoint, exactly as after [`Machine::snapshot`]).
    pub fn checkpoint(&mut self) -> Checkpoint {
        Checkpoint::new(self.snapshot())
    }
}

/// A shareable, immutable fork point: an `Arc`-held [`MachineSnapshot`]
/// that any number of worker threads can [`fork`](Checkpoint::fork)
/// private machines from, or [`rewind`](Checkpoint::rewind) their fork
/// back to between trials.
///
/// Cloning a checkpoint is an `Arc` bump; every fork shares the
/// checkpoint's physical frames copy-on-write (the read-only base) and
/// unshares only the frames it writes (its private dirty overlay), so
/// a fork costs O(resident-frame pointer bumps) and each trial's writes
/// cost one 4 KiB copy per dirtied frame — never a reboot.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    base: Arc<MachineSnapshot>,
}

impl Checkpoint {
    /// Wrap an existing snapshot as a shareable fork point.
    pub fn new(snapshot: MachineSnapshot) -> Checkpoint {
        Checkpoint {
            base: Arc::new(snapshot),
        }
    }

    /// The underlying snapshot (for [`Machine::restore`]).
    pub fn snapshot(&self) -> &MachineSnapshot {
        &self.base
    }

    /// Fork a private machine whose state equals the checkpoint.
    ///
    /// The fork shares every physical frame with the checkpoint (and
    /// with sibling forks) copy-on-write, and opens a fresh write epoch
    /// so its own writes stay distinguishable — which is what lets
    /// [`rewind`](Checkpoint::rewind) undo a trial in O(dirty frames).
    /// Like any machine clone, the fork carries no event sinks.
    pub fn fork(&self) -> Machine {
        let mut machine = (*self.base.inner).clone();
        machine.phys.begin_epoch();
        machine
    }

    /// Rewind a fork (or the original checkpointed machine) back to the
    /// checkpoint. Sinks attached to `machine` stay attached.
    pub fn rewind(&self, machine: &mut Machine) {
        machine.restore(&self.base);
    }
}
