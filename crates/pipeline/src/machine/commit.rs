//! The commit stage: the step loop tying fetch, decode, speculation and
//! execute together, and the retirement events.

use phantom_isa::Inst;

use crate::events::PipelineEvent;
use crate::resteer::{classify_predicted, classify_unpredicted, ResteerKind, SpeculationVerdict};
use crate::transient::TransientReport;

use super::{Machine, MachineError, RunExit, StepOutcome};

impl Machine {
    /// Execute one architectural instruction, resolving the speculation
    /// the frontend performed around it.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] on unhandled faults, invalid
    /// instructions, or missing syscall wiring.
    pub fn step(&mut self) -> Result<StepOutcome, MachineError> {
        let pc = self.pc;

        // --- Instruction fetch (architectural). ---
        if let Err(fault) = self.arch_fetch(pc) {
            self.handle_fault(fault)?;
            let caught = self.last_fault.expect("just set");
            self.emit(PipelineEvent::FaultCaught {
                pc,
                fault: caught,
                cycles: self.cycles,
            });
            return Ok(StepOutcome {
                pc,
                inst: Inst::Nop,
                transient: None,
                halted: false,
                caught_fault: Some(caught),
            });
        }

        // --- Decode and µop dispatch. ---
        let (inst, len) = self.decode_at(pc)?;
        self.uop_dispatch(pc);

        // --- Pre-decode prediction for this instruction's span. ---
        let pred = self.bpu.predict_window(pc, len, self.level, self.thread);

        // --- Resolve architectural branch semantics. ---
        let (taken, actual_target) = self.resolve_branch(&inst, pc)?;

        // --- Classify and run the wrong path. ---
        let verdict = match &pred {
            Some(p) => classify_predicted(p, &inst, actual_target, taken),
            None => classify_unpredicted(&inst, pc, taken),
        };
        let transient = match verdict {
            SpeculationVerdict::Mispredicted {
                resteer,
                transient_target,
            } => {
                self.emit(PipelineEvent::Resteer {
                    pc,
                    kind: resteer,
                    target: transient_target,
                });
                match resteer {
                    ResteerKind::Frontend => self.cycles += self.profile.frontend_resteer_latency,
                    ResteerKind::Backend => self.cycles += self.profile.backend_resteer_latency,
                }
                let window = self.window_for(&inst, pred.as_ref(), resteer);
                Some(match transient_target {
                    Some(target) => self.run_transient(target, window),
                    None => TransientReport {
                        window: Some(window),
                        ..TransientReport::none()
                    },
                })
            }
            _ => None,
        };

        // --- Architectural execute and retire. ---
        let halted = self.execute(inst, pc, len, taken, actual_target, pred.as_ref())?;
        self.cycles += 1;
        self.emit(PipelineEvent::Retired {
            pc,
            inst,
            cycles: self.cycles,
        });

        Ok(StepOutcome {
            pc,
            inst,
            transient,
            halted,
            caught_fault: None,
        })
    }

    /// Run until halt or `max_steps`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`MachineError`] from [`Machine::step`].
    pub fn run(&mut self, max_steps: u64) -> Result<RunExit, MachineError> {
        for _ in 0..max_steps {
            let out = self.step()?;
            if out.halted {
                return Ok(RunExit::Halted);
            }
        }
        Ok(RunExit::StepLimit)
    }

    /// Run, collecting every transient report produced on the way.
    ///
    /// # Errors
    ///
    /// Propagates the first [`MachineError`] from [`Machine::step`].
    pub fn run_collecting(
        &mut self,
        max_steps: u64,
    ) -> Result<(RunExit, Vec<TransientReport>), MachineError> {
        let mut reports = Vec::new();
        for _ in 0..max_steps {
            let out = self.step()?;
            if let Some(t) = out.transient {
                reports.push(t);
            }
            if out.halted {
                return Ok((RunExit::Halted, reports));
            }
        }
        Ok((RunExit::StepLimit, reports))
    }
}
