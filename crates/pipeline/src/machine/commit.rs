//! The commit stage: the step loop tying fetch, decode, speculation and
//! execute together, and the retirement events.

use phantom_isa::Inst;

use crate::events::PipelineEvent;
use crate::resteer::{classify_predicted, classify_unpredicted, ResteerKind, SpeculationVerdict};
use crate::transient::TransientReport;

use super::{Machine, MachineError, RunExit, StepOutcome};

impl Machine {
    /// Execute one architectural instruction, resolving the speculation
    /// the frontend performed around it.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] on unhandled faults, invalid
    /// instructions, or missing syscall wiring.
    pub fn step(&mut self) -> Result<StepOutcome, MachineError> {
        let pc = self.pc;

        // --- Instruction fetch (architectural). ---
        if let Err(fault) = self.arch_fetch(pc) {
            // handle_fault hands the caught fault back explicitly — no
            // re-reading `last_fault`, which a nested fault path could
            // in principle have rewritten between set and read.
            let caught = self.handle_fault(fault)?;
            self.emit(PipelineEvent::FaultCaught {
                pc,
                fault: caught,
                cycles: self.cycles,
            });
            return Ok(StepOutcome {
                pc,
                inst: Inst::Nop,
                transient: None,
                halted: false,
                caught_fault: Some(caught),
            });
        }

        // --- Decode and µop dispatch. ---
        let (inst, len) = self.decode_at(pc)?;
        self.uop_dispatch(pc);

        // --- Pre-decode prediction for this instruction's span. ---
        let pred = self.bpu.predict_window(pc, len, self.level, self.thread);

        // --- Resolve architectural branch semantics. ---
        let (taken, actual_target) = self.resolve_branch(&inst, pc)?;

        // --- Classify and run the wrong path. ---
        let verdict = match &pred {
            Some(p) => classify_predicted(p, &inst, actual_target, taken),
            None => classify_unpredicted(&inst, pc, taken),
        };
        let transient = match verdict {
            SpeculationVerdict::Mispredicted {
                resteer,
                transient_target,
            } => {
                self.emit(PipelineEvent::Resteer {
                    pc,
                    kind: resteer,
                    target: transient_target,
                });
                match resteer {
                    ResteerKind::Frontend => self.cycles += self.profile.frontend_resteer_latency,
                    ResteerKind::Backend => self.cycles += self.profile.backend_resteer_latency,
                }
                let window = self.window_for(&inst, pred.as_ref(), resteer);
                Some(match transient_target {
                    Some(target) => self.run_transient(target, window),
                    None => TransientReport {
                        window: Some(window),
                        ..TransientReport::none()
                    },
                })
            }
            _ => None,
        };

        // --- Architectural execute and retire. ---
        let halted = self.execute(inst, pc, len, taken, actual_target, pred.as_ref())?;
        self.cycles += 1;
        self.emit(PipelineEvent::Retired {
            pc,
            inst,
            cycles: self.cycles,
        });

        Ok(StepOutcome {
            pc,
            inst,
            transient,
            halted,
            caught_fault: None,
        })
    }

    /// Run until halt or `max_steps`.
    ///
    /// The hot loop first offers the remaining step budget to the trace
    /// engine (`Machine::try_trace_step`); a recorded superblock
    /// replays several instructions in one call with bit-identical
    /// observable state, and any condition replay can't honor bails
    /// back here to the generic [`Machine::step`].
    ///
    /// # Errors
    ///
    /// Propagates the first [`MachineError`] from [`Machine::step`].
    pub fn run(&mut self, max_steps: u64) -> Result<RunExit, MachineError> {
        let mut steps = 0u64;
        while steps < max_steps {
            if let Some(replay) = self.try_trace_step(max_steps - steps)? {
                steps += replay.steps;
                if replay.halted {
                    return Ok(RunExit::Halted);
                }
                continue;
            }
            let out = self.step()?;
            steps += 1;
            if out.halted {
                return Ok(RunExit::Halted);
            }
        }
        Ok(RunExit::StepLimit)
    }

    /// Run, collecting every transient report produced on the way.
    /// Trace-replayed spans contribute their reports in program order,
    /// exactly as the equivalent [`Machine::step`] sequence would.
    ///
    /// # Errors
    ///
    /// Propagates the first [`MachineError`] from [`Machine::step`].
    pub fn run_collecting(
        &mut self,
        max_steps: u64,
    ) -> Result<(RunExit, Vec<TransientReport>), MachineError> {
        let mut reports = Vec::new();
        let mut steps = 0u64;
        while steps < max_steps {
            if let Some(mut replay) = self.try_trace_step(max_steps - steps)? {
                steps += replay.steps;
                reports.append(&mut replay.transients);
                if replay.halted {
                    return Ok((RunExit::Halted, reports));
                }
                continue;
            }
            let out = self.step()?;
            steps += 1;
            if let Some(t) = out.transient {
                reports.push(t);
            }
            if out.halted {
                return Ok((RunExit::Halted, reports));
            }
        }
        Ok((RunExit::StepLimit, reports))
    }
}
