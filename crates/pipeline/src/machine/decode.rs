//! The decode stage: instruction decode, µop-cache dispatch, and the
//! transient-window policy (everything the decoder can gate).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use phantom_bpu::Prediction;
use phantom_isa::decode::decode;
use phantom_isa::{BranchKind, Inst};
use phantom_mem::{AccessKind, PhysAddr, PrivilegeLevel, VirtAddr};

use crate::events::PipelineEvent;
use crate::resteer::ResteerKind;
use crate::transient::TransientWindow;

use super::{Machine, MachineError};

/// Per-line decoded-instruction cache.
///
/// `decode_at` used to translate and read up to 15 code bytes per step
/// (and per transient µop); hot loops re-decode the same handful of
/// addresses millions of times. The cache memoizes `(pc, privilege) →
/// (inst, len)` — a pure function of the page table, physical memory
/// and privilege level — so a warm step skips translation and byte
/// reads entirely. It is invisible state: no timing, events or
/// architectural results depend on it.
///
/// Coherence: any path that can change code bytes or translations
/// invalidates. Architectural stores and `poke` check `code_frames`
/// (the physical frames backing cached decodes) so data writes stay
/// free; `unmap_range` and the raw `phys_mut`/`page_table_mut`
/// accessors clear conservatively. `map_range` does *not* invalidate:
/// it only maps fresh pages, which can't change a cached (successful)
/// decode — decode failures are never cached.
#[derive(Debug, Clone)]
pub(super) struct DecodeCache {
    /// `Arc`-backed so machine clones and snapshot/restore share the
    /// warm cache with pointer bumps; the first miss after a clone
    /// unshares. Invisible state either way — no timing depends on it.
    entries: Arc<HashMap<(u64, u8), (Inst, u64)>>,
    /// Physical frames backing at least one cached decode.
    code_frames: Arc<HashSet<u64>>,
    enabled: bool,
    hits: u64,
    misses: u64,
}

impl DecodeCache {
    pub(super) fn new() -> DecodeCache {
        DecodeCache {
            entries: Arc::new(HashMap::new()),
            code_frames: Arc::new(HashSet::new()),
            enabled: true,
            hits: 0,
            misses: 0,
        }
    }

    /// Drop every cached decode (counters survive).
    pub(super) fn invalidate(&mut self) {
        match Arc::get_mut(&mut self.entries) {
            Some(entries) => entries.clear(),
            None => self.entries = Arc::new(HashMap::new()),
        }
        match Arc::get_mut(&mut self.code_frames) {
            Some(frames) => frames.clear(),
            None => self.code_frames = Arc::new(HashSet::new()),
        }
    }

    pub(super) fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        self.invalidate();
    }

    pub(super) fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

pub(super) fn level_tag(level: PrivilegeLevel) -> u8 {
    match level {
        PrivilegeLevel::User => 0,
        PrivilegeLevel::Supervisor => 1,
    }
}

impl Machine {
    /// Decode the instruction at `pc` through the per-line cache.
    /// Returns `None` on truncated/unreadable code bytes. Timing- and
    /// event-neutral: hit or miss, the step's observable behaviour is
    /// identical.
    pub(super) fn cached_decode(&mut self, pc: VirtAddr) -> Option<(Inst, u64)> {
        let key = (pc.raw(), level_tag(self.level));
        if self.decode_cache.enabled {
            if let Some(&pair) = self.decode_cache.entries.get(&key) {
                self.decode_cache.hits += 1;
                return Some(pair);
            }
        }
        let bytes = self.read_code_bytes(pc, 15);
        let (inst, len) = decode(&bytes)?;
        let pair = (inst, len as u64);
        if self.decode_cache.enabled {
            self.decode_cache.misses += 1;
            // Remember the frames the decoded bytes live in, so
            // architectural stores into them invalidate. Both
            // translations succeeded inside read_code_bytes.
            for off in [0, bytes.len() as u64 - 1] {
                if let Ok(pa) = self.translate_fast(pc + off, AccessKind::Execute, self.level) {
                    Arc::make_mut(&mut self.decode_cache.code_frames).insert(pa.page_number());
                }
            }
            Arc::make_mut(&mut self.decode_cache.entries).insert(key, pair);
        }
        Some(pair)
    }

    /// Invalidate cached decodes (and overlapping trace blocks) if the
    /// write to `pa` hits a frame that backs one (self-modifying code);
    /// data writes don't pay.
    #[inline]
    pub(super) fn note_code_write(&mut self, pa: PhysAddr) {
        if self.decode_cache.code_frames.contains(&pa.page_number()) {
            self.decode_cache.invalidate();
        }
        self.trace_note_code_write(pa);
    }

    /// Decode-cache accounting for a trace-replayed µop. The replay
    /// already holds the validated `(inst, len)` for `pc`, so a present
    /// entry is a plain hit; an absent one goes through the real miss
    /// path (`cached_decode`) so counters, entries and code frames
    /// evolve exactly as a generic step's decode would.
    pub(super) fn replay_decode_account(&mut self, pc: VirtAddr, inst: Inst, len: u64) {
        if !self.decode_cache.enabled {
            return;
        }
        let key = (pc.raw(), level_tag(self.level));
        if self.decode_cache.entries.contains_key(&key) {
            self.decode_cache.hits += 1;
        } else {
            let _decoded = self.cached_decode(pc);
            debug_assert_eq!(
                _decoded,
                Some((inst, len)),
                "validated trace block disagrees with a fresh decode"
            );
        }
    }

    /// Decode the instruction at `pc`, rejecting truncated and invalid
    /// encodings. Returns the instruction and its length in bytes.
    pub(super) fn decode_at(&mut self, pc: VirtAddr) -> Result<(Inst, u64), MachineError> {
        let (inst, len) = match self.cached_decode(pc) {
            Some(pair) => pair,
            None => return Err(MachineError::TruncatedCode(pc)),
        };
        if let Inst::Invalid { byte } = inst {
            return Err(MachineError::InvalidInstruction { pc, byte });
        }
        Ok((inst, len))
    }

    /// Dispatch µops for `pc`: from the µop cache on a hit, or through
    /// the decoder (filling the µop cache and paying decode latency) on
    /// a miss.
    pub(super) fn uop_dispatch(&mut self, pc: VirtAddr) {
        if self.uop_cache.dispatch_lookup(pc.raw()) {
            self.emit(PipelineEvent::UopDispatch { pc, hit: true });
        } else {
            self.emit(PipelineEvent::UopDispatch { pc, hit: false });
            self.uop_cache.fill(pc.raw());
            self.emit(PipelineEvent::UopCacheFill {
                va: pc,
                transient: false,
            });
            self.cycles += self.profile.decode_latency;
            // SuppressBPOnNonBr makes the frontend wait for decode
            // confirmation before acting on a prediction at a block not
            // yet known to contain a branch — a small bubble on every
            // decoder-path (µop-cache-miss) fetch. This is the §6.3
            // performance cost (0.69% single-core on UnixBench).
            if self.bpu.msr().suppress_bp_on_non_br {
                self.cycles += 1;
            }
        }
    }

    /// Derive the transient window for a misprediction at `inst`, gated
    /// by the active mitigations.
    pub(super) fn window_for(
        &self,
        inst: &Inst,
        pred: Option<&Prediction>,
        resteer: ResteerKind,
    ) -> TransientWindow {
        // Intel jmp*-victim blind spot (§6): no IF/ID signal.
        if self.profile.indirect_victim_blind
            && inst.kind() == BranchKind::Indirect
            && pred.is_some()
        {
            return TransientWindow::suppressed(resteer);
        }
        let mut window = TransientWindow::for_resteer(&self.profile, resteer);
        // AutoIBRS: a restricted prediction may fetch and decode, never
        // execute (O5).
        if pred.is_some_and(|p| p.restricted) {
            window = window.without_execute();
        }
        // SuppressBPOnNonBr: gates execute only, and only when the victim
        // decodes as a non-branch (O4).
        if self.bpu.msr().suppress_bp_on_non_br
            && self.profile.supports_suppress_bp_on_non_br
            && inst.kind() == BranchKind::NotBranch
        {
            window = window.without_execute();
        }
        window
    }
}
