//! The decode stage: instruction decode, µop-cache dispatch, and the
//! transient-window policy (everything the decoder can gate).

use phantom_bpu::Prediction;
use phantom_isa::decode::decode;
use phantom_isa::{BranchKind, Inst};
use phantom_mem::VirtAddr;

use crate::events::PipelineEvent;
use crate::resteer::ResteerKind;
use crate::transient::TransientWindow;

use super::{Machine, MachineError};

impl Machine {
    /// Decode the instruction at `pc`, rejecting truncated and invalid
    /// encodings. Returns the instruction and its length in bytes.
    pub(super) fn decode_at(&self, pc: VirtAddr) -> Result<(Inst, u64), MachineError> {
        let bytes = self.read_code_bytes(pc, 15);
        let (inst, len) = match decode(&bytes) {
            Some(pair) => pair,
            None => return Err(MachineError::TruncatedCode(pc)),
        };
        if let Inst::Invalid { byte } = inst {
            return Err(MachineError::InvalidInstruction { pc, byte });
        }
        Ok((inst, len as u64))
    }

    /// Dispatch µops for `pc`: from the µop cache on a hit, or through
    /// the decoder (filling the µop cache and paying decode latency) on
    /// a miss.
    pub(super) fn uop_dispatch(&mut self, pc: VirtAddr) {
        if self.uop_cache.dispatch_lookup(pc.raw()) {
            self.emit(PipelineEvent::UopDispatch { pc, hit: true });
        } else {
            self.emit(PipelineEvent::UopDispatch { pc, hit: false });
            self.uop_cache.fill(pc.raw());
            self.emit(PipelineEvent::UopCacheFill {
                va: pc,
                transient: false,
            });
            self.cycles += self.profile.decode_latency;
            // SuppressBPOnNonBr makes the frontend wait for decode
            // confirmation before acting on a prediction at a block not
            // yet known to contain a branch — a small bubble on every
            // decoder-path (µop-cache-miss) fetch. This is the §6.3
            // performance cost (0.69% single-core on UnixBench).
            if self.bpu.msr().suppress_bp_on_non_br {
                self.cycles += 1;
            }
        }
    }

    /// Derive the transient window for a misprediction at `inst`, gated
    /// by the active mitigations.
    pub(super) fn window_for(
        &self,
        inst: &Inst,
        pred: Option<&Prediction>,
        resteer: ResteerKind,
    ) -> TransientWindow {
        // Intel jmp*-victim blind spot (§6): no IF/ID signal.
        if self.profile.indirect_victim_blind
            && inst.kind() == BranchKind::Indirect
            && pred.is_some()
        {
            return TransientWindow::suppressed(resteer);
        }
        let mut window = TransientWindow::for_resteer(&self.profile, resteer);
        // AutoIBRS: a restricted prediction may fetch and decode, never
        // execute (O5).
        if pred.is_some_and(|p| p.restricted) {
            window = window.without_execute();
        }
        // SuppressBPOnNonBr: gates execute only, and only when the victim
        // decodes as a non-branch (O4).
        if self.bpu.msr().suppress_bp_on_non_br
            && self.profile.supports_suppress_bp_on_non_br
            && inst.kind() == BranchKind::NotBranch
        {
            window = window.without_execute();
        }
        window
    }
}
