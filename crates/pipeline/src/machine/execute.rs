//! The execute stage: architectural instruction semantics, branch
//! resolution and predictor training.

use phantom_bpu::Prediction;
use phantom_isa::{BranchKind, Inst, Reg};
use phantom_mem::{AccessKind, FaultReason, PageFault, PrivilegeLevel, VirtAddr};

use crate::events::PipelineEvent;

use super::{Machine, MachineError};

impl Machine {
    /// Redirect to the registered user-mode fault handler, or surface
    /// the fault as a [`MachineError`]. On the handled path the caught
    /// fault is returned (and recorded in `last_fault`) so callers can
    /// report it without re-reading machine state.
    pub(super) fn handle_fault(&mut self, fault: PageFault) -> Result<PageFault, MachineError> {
        self.last_fault = Some(fault);
        if self.level == PrivilegeLevel::User {
            if let Some(handler) = self.fault_handler {
                self.pc = handler;
                // Signal delivery is expensive.
                self.cycles += 2000;
                return Ok(fault);
            }
        }
        Err(MachineError::Fault(fault))
    }

    /// A branch reached execute with no resolved target — only possible
    /// for hand-built instruction streams fed straight into
    /// [`Machine::execute`], since the decoder always materializes
    /// direct targets and the indirect/return paths resolve theirs from
    /// registers or the stack. Treat it as a fetch of an unrunnable
    /// instruction: a precise `NotExecutable` fault at the branch
    /// itself, through the normal fault machinery (handler redirect in
    /// user mode, [`MachineError::Fault`] otherwise) — never a panic.
    fn branch_without_target(&mut self, pc: VirtAddr) -> Result<bool, MachineError> {
        let fault = PageFault {
            addr: pc,
            access: AccessKind::Execute,
            reason: FaultReason::NotExecutable,
        };
        self.handle_fault(fault)?;
        Ok(false)
    }

    /// Resolve (taken, target) for the instruction before executing it.
    pub(super) fn resolve_branch(
        &mut self,
        inst: &Inst,
        pc: VirtAddr,
    ) -> Result<(bool, Option<VirtAddr>), MachineError> {
        Ok(match inst {
            Inst::Jmp { .. } | Inst::Call { .. } => {
                (true, inst.direct_target(pc.raw()).map(VirtAddr::new))
            }
            Inst::Jcc { cond, .. } => {
                let taken = cond.eval(self.zf, self.sf, self.cf);
                let target = if taken {
                    inst.direct_target(pc.raw()).map(VirtAddr::new)
                } else {
                    None
                };
                (taken, target)
            }
            Inst::JmpInd { src } | Inst::CallInd { src } => {
                (true, Some(VirtAddr::new(self.reg(*src))))
            }
            Inst::Ret => {
                // Architectural return address from the stack. The
                // virtual-boundary read matters: a stack pointer a few
                // bytes below an unmapped page must resolve as a fault
                // at execute, not a silent straddle into whatever frame
                // happens to sit next door physically.
                let sp = VirtAddr::new(self.reg(Reg::SP));
                match self.read_u64_virt(sp, AccessKind::Read, self.level) {
                    Ok(ret) => (true, Some(VirtAddr::new(ret))),
                    Err(_) => (true, None), // stack fault resolves at execute
                }
            }
            _ => (false, None),
        })
    }

    /// Architecturally execute `inst`. Returns whether the machine
    /// halted.
    pub(super) fn execute(
        &mut self,
        inst: Inst,
        pc: VirtAddr,
        len: u64,
        taken: bool,
        actual_target: Option<VirtAddr>,
        pred: Option<&Prediction>,
    ) -> Result<bool, MachineError> {
        let mut next = pc + len;
        match inst {
            Inst::Nop | Inst::NopN { .. } => {}
            Inst::MovImm { dst, imm } => self.set_reg(dst, imm),
            Inst::MovReg { dst, src } => self.set_reg(dst, self.reg(src)),
            Inst::Alu { op, dst, src } => {
                let v = op.apply(self.reg(dst), self.reg(src));
                self.set_reg(dst, v);
            }
            Inst::Shr { dst, amount } => self.set_reg(dst, self.reg(dst) >> amount),
            Inst::Shl { dst, amount } => self.set_reg(dst, self.reg(dst) << amount),
            Inst::AndImm { dst, imm } => self.set_reg(dst, self.reg(dst) & u64::from(imm)),
            Inst::Cmp { a, b } => {
                let (av, bv) = (self.reg(a), self.reg(b));
                self.zf = av == bv;
                self.cf = av < bv;
                self.sf = (av.wrapping_sub(bv) as i64) < 0;
            }
            Inst::Load { dst, base, disp } => {
                let addr = VirtAddr::new(self.reg(base).wrapping_add(disp as i64 as u64));
                match self.translate_charged(addr, AccessKind::Read) {
                    Ok(pa) => {
                        let (lvl, lat) = self.caches.access_data(pa.raw());
                        self.emit(PipelineEvent::DataAccess {
                            va: addr,
                            level: lvl,
                        });
                        self.cycles += lat;
                        let v = self.phys.read_u64(pa);
                        self.set_reg(dst, v);
                    }
                    Err(fault) => {
                        self.handle_fault(fault)?;
                        return Ok(false);
                    }
                }
            }
            Inst::Store { base, disp, src } => {
                let addr = VirtAddr::new(self.reg(base).wrapping_add(disp as i64 as u64));
                match self.translate_charged(addr, AccessKind::Write) {
                    Ok(pa) => {
                        let (lvl, lat) = self.caches.access_data(pa.raw());
                        self.emit(PipelineEvent::DataAccess {
                            va: addr,
                            level: lvl,
                        });
                        self.cycles += lat;
                        let v = self.reg(src);
                        self.note_code_write(pa);
                        self.phys.write_u64(pa, v);
                    }
                    Err(fault) => {
                        self.handle_fault(fault)?;
                        return Ok(false);
                    }
                }
            }
            Inst::Clflush { addr } => {
                let va = VirtAddr::new(self.reg(addr));
                match self.translate_fast(va, AccessKind::Read, self.level) {
                    Ok(pa) => {
                        self.caches.flush_line(pa.raw());
                        self.cycles += 40;
                    }
                    Err(fault) => {
                        self.handle_fault(fault)?;
                        return Ok(false);
                    }
                }
            }
            Inst::Lfence | Inst::Mfence => self.cycles += 8,
            Inst::Jmp { .. } => {
                let Some(target) = actual_target else {
                    return self.branch_without_target(pc);
                };
                self.bpu
                    .train_smt(pc, BranchKind::Direct, target, self.level, self.thread);
                self.bpu.record_edge(pc, target);
                next = target;
            }
            Inst::Jcc { .. } => {
                self.bpu.train_direction(pc, taken);
                if taken {
                    let Some(target) = actual_target else {
                        return self.branch_without_target(pc);
                    };
                    self.bpu
                        .train_smt(pc, BranchKind::Cond, target, self.level, self.thread);
                    self.bpu.record_edge(pc, target);
                    next = target;
                }
            }
            Inst::JmpInd { .. } => {
                let Some(target) = actual_target else {
                    return self.branch_without_target(pc);
                };
                self.bpu
                    .train_smt(pc, BranchKind::Indirect, target, self.level, self.thread);
                self.bpu.record_edge(pc, target);
                next = target;
            }
            Inst::Call { .. } => {
                let Some(target) = actual_target else {
                    return self.branch_without_target(pc);
                };
                self.bpu
                    .train_smt(pc, BranchKind::Call, target, self.level, self.thread);
                self.push_return(pc + len)?;
                self.bpu.rsb_mut().push(pc + len);
                next = target;
            }
            Inst::CallInd { .. } => {
                let Some(target) = actual_target else {
                    return self.branch_without_target(pc);
                };
                self.bpu
                    .train_smt(pc, BranchKind::CallInd, target, self.level, self.thread);
                self.push_return(pc + len)?;
                self.bpu.rsb_mut().push(pc + len);
                next = target;
            }
            Inst::Ret => {
                let sp = VirtAddr::new(self.reg(Reg::SP));
                match self.read_u64_virt(sp, AccessKind::Read, self.level) {
                    Ok(ret) => {
                        let target = VirtAddr::new(ret);
                        self.set_reg(Reg::SP, sp.raw() + 8);
                        self.bpu
                            .train_smt(pc, BranchKind::Ret, target, self.level, self.thread);
                        // Keep the RSB in sync if the predictor did not
                        // already pop for this return.
                        if !matches!(pred, Some(p) if p.kind == BranchKind::Ret) {
                            self.bpu.rsb_mut().pop();
                        }
                        next = target;
                    }
                    Err(fault) => {
                        self.handle_fault(fault)?;
                        return Ok(false);
                    }
                }
            }
            Inst::Syscall => {
                let entry = self.syscall_entry.ok_or(MachineError::NoSyscallEntry)?;
                self.syscall_return = Some((pc + len, self.level));
                self.level = PrivilegeLevel::Supervisor;
                self.cycles += 100; // mode switch cost
                next = entry;
            }
            Inst::Sysret => {
                let (ret, lvl) = self
                    .syscall_return
                    .take()
                    .ok_or(MachineError::SysretWithoutSyscall)?;
                self.level = lvl;
                self.cycles += 100;
                next = ret;
            }
            Inst::Halt => {
                self.halted = true;
                return Ok(true);
            }
            Inst::Invalid { .. } => unreachable!("rejected before execute"),
        }
        self.pc = next;
        Ok(false)
    }

    fn push_return(&mut self, ret: VirtAddr) -> Result<(), MachineError> {
        let sp = VirtAddr::new(self.reg(Reg::SP).wrapping_sub(8));
        match self.translate_fast(sp, AccessKind::Write, self.level) {
            Ok(pa) => {
                self.note_code_write(pa);
                self.phys.write_u64(pa, ret.raw());
                self.set_reg(Reg::SP, sp.raw());
                Ok(())
            }
            Err(fault) => {
                self.handle_fault(fault)?;
                Ok(())
            }
        }
    }
}
