//! Memory setup helpers and architectural translation timing.

use phantom_isa::asm::Blob;
use phantom_mem::{AccessKind, PageFlags, PrivilegeLevel, VirtAddr, PAGE_SIZE};

use super::{Machine, MachineError};

impl Machine {
    /// Page-walk cost charged on a TLB miss, in cycles.
    pub const PAGE_WALK_CYCLES: u64 = 20;

    /// Charge TLB lookup/fill timing for an architectural access to
    /// `va` that resolved to `pa` (ASID 0 = user, 1 = supervisor).
    pub(super) fn charge_tlb(&mut self, va: VirtAddr, pa: phantom_mem::PhysAddr) {
        let asid = match self.level {
            PrivilegeLevel::User => 0,
            PrivilegeLevel::Supervisor => 1,
        };
        if self.tlb.lookup(va, asid).is_none() {
            self.cycles += Self::PAGE_WALK_CYCLES;
            let flags = self.page_table.flags_of(va).unwrap_or(PageFlags::NONE);
            self.tlb.insert(va, pa, flags, asid);
        }
    }

    /// Map `[va, va+len)` with fresh frames and the given flags. Pages
    /// already mapped are left as they are.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfMemory`] if physical memory runs out.
    pub fn map_range(
        &mut self,
        va: VirtAddr,
        len: u64,
        flags: PageFlags,
    ) -> Result<(), MachineError> {
        let start = va.page_base();
        let end = (va + len + PAGE_SIZE - 1).page_base();
        let mut page = start;
        while page < end {
            if self.page_table.flags_of(page).is_none() {
                let frame = self.phys.alloc_frame()?;
                self.page_table.map_4k(page, frame, flags);
            }
            page = page + PAGE_SIZE;
        }
        Ok(())
    }

    /// Load an assembled blob: map its pages with `flags` and copy the
    /// bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfMemory`] if physical memory runs out.
    pub fn load_blob(&mut self, blob: &Blob, flags: PageFlags) -> Result<(), MachineError> {
        self.map_range(
            VirtAddr::new(blob.base),
            blob.bytes.len().max(1) as u64,
            flags,
        )?;
        self.poke(VirtAddr::new(blob.base), &blob.bytes);
        Ok(())
    }

    /// Write bytes through the page table, ignoring permission bits
    /// (setup/debug only — not an architectural store).
    ///
    /// # Panics
    ///
    /// Panics if any page in the range is unmapped.
    pub fn poke(&mut self, va: VirtAddr, bytes: &[u8]) {
        // Translate once per page and write page-sized chunks.
        let mut off = 0usize;
        while off < bytes.len() {
            let addr = va + off as u64;
            let pa = self
                .page_table
                .translate(addr, AccessKind::Read, PrivilegeLevel::Supervisor)
                .unwrap_or_else(|e| panic!("poke at unmapped {addr}: {e}"));
            let in_page = (PAGE_SIZE - addr.page_offset()) as usize;
            let chunk = in_page.min(bytes.len() - off);
            self.phys.write_bytes(pa, &bytes[off..off + chunk]);
            off += chunk;
        }
    }

    /// Read bytes through the page table, ignoring permission bits
    /// (setup/debug only).
    ///
    /// # Panics
    ///
    /// Panics if any page in the range is unmapped.
    pub fn peek(&self, va: VirtAddr, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let addr = va + out.len() as u64;
            let pa = self
                .page_table
                .translate(addr, AccessKind::Read, PrivilegeLevel::Supervisor)
                .unwrap_or_else(|e| panic!("peek at unmapped {addr}: {e}"));
            let in_page = (PAGE_SIZE - addr.page_offset()) as usize;
            let chunk = in_page.min(len - out.len());
            out.extend(self.phys.read_bytes(pa, chunk));
        }
        out
    }

    /// Write a u64 via [`Machine::poke`].
    pub fn poke_u64(&mut self, va: VirtAddr, value: u64) {
        self.poke(va, &value.to_le_bytes());
    }

    /// Read a u64 via [`Machine::peek`].
    pub fn peek_u64(&self, va: VirtAddr) -> u64 {
        u64::from_le_bytes(self.peek(va, 8).try_into().expect("8 bytes"))
    }
}
