//! Memory setup helpers, architectural translation timing, and the
//! TLB-backed translation fast paths.

use phantom_isa::asm::Blob;
use phantom_mem::{
    AccessKind, FaultReason, PageFault, PageFlags, PhysAddr, PrivilegeLevel, TlbEntry, VirtAddr,
    PAGE_SIZE,
};

use super::{Machine, MachineError};

/// ASID for `level` (0 = user, 1 = supervisor).
fn asid_for(level: PrivilegeLevel) -> u16 {
    match level {
        PrivilegeLevel::User => 0,
        PrivilegeLevel::Supervisor => 1,
    }
}

/// Translate through a trusted (version-current) TLB entry, applying
/// exactly the permission rules and fault precedence of
/// [`phantom_mem::PageTable::translate`]. The entry's cached flags
/// equal the table's (same version ⇒ unchanged table), so the outcome
/// — physical address or precise fault — is identical to a walk.
fn entry_translate(
    entry: &TlbEntry,
    va: VirtAddr,
    access: AccessKind,
    level: PrivilegeLevel,
) -> Result<PhysAddr, PageFault> {
    let fault = |reason| PageFault {
        addr: va,
        access,
        reason,
    };
    let flags = entry.flags;
    if !flags.contains(PageFlags::PRESENT) {
        return Err(fault(FaultReason::NotPresent));
    }
    if level == PrivilegeLevel::User && !flags.contains(PageFlags::USER) {
        return Err(fault(FaultReason::Privilege));
    }
    match access {
        AccessKind::Read => {}
        AccessKind::Write => {
            if !flags.contains(PageFlags::WRITE) {
                return Err(fault(FaultReason::NotWritable));
            }
        }
        AccessKind::Execute => {
            if !flags.contains(PageFlags::EXEC) {
                return Err(fault(FaultReason::NotExecutable));
            }
        }
    }
    // TLB entries are 4 KiB-granular even under a huge mapping (the
    // frame is the page base of the fill translation), so the page
    // offset reconstructs the walk's result for either page size.
    Ok(entry.frame + va.page_offset())
}

impl Machine {
    /// Page-walk cost charged on a TLB miss, in cycles.
    pub const PAGE_WALK_CYCLES: u64 = 20;

    /// Translate `va` without charging timing or touching TLB state:
    /// a non-perturbing [`Tlb::peek`](phantom_mem::Tlb::peek) serves
    /// version-current entries, everything else falls back to the
    /// `BTreeMap` page walk. Observationally identical to calling
    /// `page_table.translate` directly — for the uncharged call sites
    /// (setup pokes, wrong-path probes, return-address resolution).
    pub(super) fn translate_fast(
        &self,
        va: VirtAddr,
        access: AccessKind,
        level: PrivilegeLevel,
    ) -> Result<PhysAddr, PageFault> {
        if let Some(entry) = self.tlb.peek(va, asid_for(level)) {
            if entry.pt_version == self.page_table.version() {
                return entry_translate(entry, va, access, level);
            }
        }
        self.page_table.translate(va, access, level)
    }

    /// Translate `va` for an architectural access at the current
    /// privilege level, charging TLB hit/miss timing. State evolution
    /// (cycle counter, TLB hit/miss counters, LRU order, fills) is
    /// bit-identical to the pre-fast-path sequence `page_table.translate`
    /// then lookup-and-fill-on-miss; the page walk itself only runs when
    /// no version-current TLB entry covers `va`.
    ///
    /// # Errors
    ///
    /// Returns the precise [`PageFault`] of the failed translation; the
    /// fault path leaves TLB state and the cycle counter untouched, as
    /// the walk-first ordering did.
    pub(super) fn translate_charged(
        &mut self,
        va: VirtAddr,
        access: AccessKind,
    ) -> Result<PhysAddr, PageFault> {
        let level = self.level;
        let asid = asid_for(level);
        let version = self.page_table.version();
        if let Some(entry) = self.tlb.peek(va, asid) {
            if entry.pt_version == version {
                let resolved = entry_translate(entry, va, access, level);
                if resolved.is_ok() {
                    // The walk would have succeeded and the charged
                    // lookup would have hit: count the hit and refresh
                    // LRU, exactly as before.
                    self.tlb.lookup(va, asid);
                }
                // On a fault the walk failed *before* any TLB charge, so
                // the fault path touches nothing.
                return resolved;
            }
        }
        let pa = self.page_table.translate(va, access, level)?;
        if self.tlb.lookup(va, asid).is_none() {
            self.cycles += Self::PAGE_WALK_CYCLES;
            let flags = self.page_table.flags_of(va).unwrap_or(PageFlags::NONE);
            self.tlb.insert(va, pa, flags, asid, version);
        } else {
            // A resident entry whose fill predates the last page-table
            // mutation: the hit (and its timing) is architecturally
            // real, but the cached translation must be revalidated
            // before the fast path may trust it. Content-only update —
            // no counter, clock or LRU movement.
            let flags = self.page_table.flags_of(va).unwrap_or(PageFlags::NONE);
            self.tlb.refresh(va, asid, pa, flags, version);
        }
        Ok(pa)
    }

    /// Map `[va, va+len)` with fresh frames and the given flags.
    ///
    /// Idempotent over pages already mapped with the *same* flags; a
    /// page mapped with *different* flags is an error — silently keeping
    /// the old flags would blur the X-vs-NX distinction primitives
    /// P1/P2 depend on. The range is validated before any page is
    /// mapped, so a flag mismatch leaves the machine unchanged. Use
    /// [`phantom_mem::PageTable::set_flags`] (via
    /// [`Machine::page_table_mut`]) to change flags deliberately.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfMemory`] if physical memory runs
    /// out, or [`MachineError::FlagMismatch`] if any page in the range
    /// is already mapped with different flags.
    pub fn map_range(
        &mut self,
        va: VirtAddr,
        len: u64,
        flags: PageFlags,
    ) -> Result<(), MachineError> {
        let start = va.page_base();
        let end = (va + len + PAGE_SIZE - 1).page_base();
        let mut page = start;
        while page < end {
            if let Some(existing) = self.page_table.flags_of(page) {
                if existing != flags {
                    return Err(MachineError::FlagMismatch {
                        va: page,
                        existing,
                        requested: flags,
                    });
                }
            }
            page = page + PAGE_SIZE;
        }
        let mut page = start;
        while page < end {
            if self.page_table.flags_of(page).is_none() {
                let frame = self.phys.alloc_frame()?;
                self.page_table.map_4k(page, frame, flags);
            }
            page = page + PAGE_SIZE;
        }
        // No decode/trace invalidation: mapping *fresh* (zero) pages
        // cannot change any successful decode — a decoded instruction
        // depends only on its own bytes (decoding is prefix-closed, so
        // newly readable bytes past a former truncation point can't
        // reinterpret it), and those bytes' translations are unchanged.
        // Trace blocks additionally revalidate against the page-table
        // version bump on their next lookup.
        Ok(())
    }

    /// Unmap every 4 KiB page of `[va, va+len)` that is mapped,
    /// dropping the mappings and their TLB entries. Frames are not
    /// reused (the allocator is a bump allocator), but the virtual
    /// range becomes free for remapping. Returns the number of pages
    /// unmapped.
    pub fn unmap_range(&mut self, va: VirtAddr, len: u64) -> usize {
        let start = va.page_base();
        let end = (va + len + PAGE_SIZE - 1).page_base();
        let mut page = start;
        let mut unmapped = 0;
        while page < end {
            if self.page_table.unmap_4k(page).is_some() {
                unmapped += 1;
                for asid in [0, 1] {
                    self.tlb.invalidate_page(page, asid);
                }
            }
            page = page + PAGE_SIZE;
        }
        if unmapped > 0 {
            self.decode_cache.invalidate();
        }
        unmapped
    }

    /// Load an assembled blob: map its pages with `flags` and copy the
    /// bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfMemory`] if physical memory runs out.
    pub fn load_blob(&mut self, blob: &Blob, flags: PageFlags) -> Result<(), MachineError> {
        self.map_range(
            VirtAddr::new(blob.base),
            blob.bytes.len().max(1) as u64,
            flags,
        )?;
        self.poke(VirtAddr::new(blob.base), &blob.bytes);
        Ok(())
    }

    /// Write bytes through the page table, ignoring permission bits
    /// (setup/debug only — not an architectural store).
    ///
    /// Chunks that match the current contents byte-for-byte are skipped
    /// entirely: no write, no copy-on-write fault, no cache
    /// invalidation. Re-poking identical setup bytes every trial (the
    /// campaign training loop does) therefore keeps decoded state —
    /// decode cache, trace blocks — warm, soundly: their validity is a
    /// pure function of the bytes and translations, both unchanged.
    /// Chunks that *do* change go through `note_code_write`-style
    /// frame-precise invalidation of the decode and trace caches (the
    /// self-modifying-code hook in `decode.rs`).
    ///
    /// # Panics
    ///
    /// Panics if any page in the range is unmapped.
    pub fn poke(&mut self, va: VirtAddr, bytes: &[u8]) {
        // Translate once per page and write page-sized chunks.
        let mut off = 0usize;
        while off < bytes.len() {
            let addr = va + off as u64;
            let pa = self
                .translate_fast(addr, AccessKind::Read, PrivilegeLevel::Supervisor)
                .unwrap_or_else(|e| panic!("poke at unmapped {addr}: {e}"));
            let in_page = (PAGE_SIZE - addr.page_offset()) as usize;
            let chunk = &bytes[off..off + in_page.min(bytes.len() - off)];
            if self.phys.read_bytes(pa, chunk.len()) != chunk {
                self.note_code_write(pa);
                self.phys.write_bytes(pa, chunk);
            }
            off += chunk.len();
        }
    }

    /// Read bytes through the page table, ignoring permission bits
    /// (setup/debug only), faulting precisely at the first unreadable
    /// page — a range straddling into an unmapped page never silently
    /// joins bytes from a physically adjacent frame.
    ///
    /// # Errors
    ///
    /// Returns the [`PageFault`] of the first untranslatable page.
    pub fn try_peek(&self, va: VirtAddr, len: usize) -> Result<Vec<u8>, PageFault> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let addr = va + out.len() as u64;
            let pa = self.translate_fast(addr, AccessKind::Read, PrivilegeLevel::Supervisor)?;
            let in_page = (PAGE_SIZE - addr.page_offset()) as usize;
            let chunk = in_page.min(len - out.len());
            out.extend(self.phys.read_bytes(pa, chunk));
        }
        Ok(out)
    }

    /// Read bytes through the page table, ignoring permission bits
    /// (setup/debug only).
    ///
    /// # Panics
    ///
    /// Panics if any page in the range is unmapped.
    pub fn peek(&self, va: VirtAddr, len: usize) -> Vec<u8> {
        self.try_peek(va, len)
            .unwrap_or_else(|e| panic!("peek at unmapped {}: {e}", e.addr))
    }

    /// Write a u64 via [`Machine::poke`].
    pub fn poke_u64(&mut self, va: VirtAddr, value: u64) {
        self.poke(va, &value.to_le_bytes());
    }

    /// Read a u64 via [`Machine::try_peek`], faulting if either page the
    /// read touches is unmapped.
    ///
    /// # Errors
    ///
    /// Returns the [`PageFault`] of the first untranslatable page.
    pub fn try_peek_u64(&self, va: VirtAddr) -> Result<u64, PageFault> {
        Ok(u64::from_le_bytes(
            self.try_peek(va, 8)?.try_into().expect("len-8 peek"),
        ))
    }

    /// Read a u64 via [`Machine::peek`].
    ///
    /// # Panics
    ///
    /// Panics if either page the read touches is unmapped.
    pub fn peek_u64(&self, va: VirtAddr) -> u64 {
        self.try_peek_u64(va)
            .unwrap_or_else(|e| panic!("peek at unmapped {}: {e}", e.addr))
    }

    /// Architectural u64 read at `va` honoring *virtual* page
    /// boundaries: the bytes come from the pages `va` maps through, and
    /// a read straddling into an unmapped or protected page faults
    /// precisely instead of silently reading the physically adjacent
    /// frame (`PhysMemory::read_u64` knows only frame adjacency). This
    /// is the `Ret` stack-read path — a stack pointer parked 4 bytes
    /// below an unmapped page must fault, not return a garbage target.
    /// Non-perturbing: uses [`translate_fast`](Machine::translate_fast)
    /// only.
    pub(super) fn read_u64_virt(
        &self,
        va: VirtAddr,
        access: AccessKind,
        level: PrivilegeLevel,
    ) -> Result<u64, PageFault> {
        let pa = self.translate_fast(va, access, level)?;
        let in_page = (PAGE_SIZE - va.page_offset()) as usize;
        if in_page >= 8 {
            return Ok(self.phys.read_u64(pa));
        }
        let pa2 = self.translate_fast((va + 8u64).page_base(), access, level)?;
        let mut bytes = self.phys.read_bytes(pa, in_page);
        bytes.extend(self.phys.read_bytes(pa2, 8 - in_page));
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }
}
