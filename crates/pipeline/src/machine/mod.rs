//! The simulated CPU: architectural execution with pre-decode
//! speculation modeling.
//!
//! The machine is split along pipeline stages, each in its own module;
//! every stage reports what it does through the typed event bus in
//! [`crate::events`]:
//!
//! * `fetch` — architectural and wrong-path instruction fetch,
//!   I-cache/TLB timing.
//! * `decode` — instruction decode, µop-cache dispatch, and the
//!   transient-window policy derived from decode-time information.
//! * `execute` — architectural semantics, branch resolution and
//!   predictor training.
//! * `wrongpath` — the squashed speculative path (transient fetch,
//!   decode and bounded execute, with nested phantom steering).
//! * `commit` — the step loop tying the stages together and retiring
//!   instructions.
//! * `snapshot` — cheap whole-machine checkpoints for trial runners.

mod commit;
mod decode;
mod execute;
mod fetch;
mod memory;
mod snapshot;
mod trace;
mod wrongpath;

pub use snapshot::{Checkpoint, MachineSnapshot};

use phantom_bpu::{Bpu, MsrState};
use phantom_cache::{CacheHierarchy, PerfCounters, UopCache};
use phantom_isa::{Inst, Reg};
use phantom_mem::phys::OutOfFrames;
use phantom_mem::{PageFault, PageTable, PhysMemory, PrivilegeLevel, Tlb, VirtAddr};

use crate::events::{EventBus, EventSink, PipelineEvent, SinkId};
use crate::profile::UarchProfile;
use crate::transient::TransientReport;

/// Fatal machine conditions (as opposed to architectural page faults,
/// which a registered handler can catch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// An unhandled page fault (no fault handler registered, or the
    /// fault occurred in supervisor mode).
    Fault(PageFault),
    /// Decoded an [`Inst::Invalid`] byte.
    InvalidInstruction {
        /// Where.
        pc: VirtAddr,
        /// The offending byte.
        byte: u8,
    },
    /// `syscall` executed but no kernel entry point is configured.
    NoSyscallEntry,
    /// `sysret` without a pending `syscall`.
    SysretWithoutSyscall,
    /// Physical memory exhausted while mapping.
    OutOfMemory(OutOfFrames),
    /// The code bytes at PC were truncated (ran off a mapping).
    TruncatedCode(VirtAddr),
    /// [`Machine::map_range`] hit a page already mapped with different
    /// flags. Remapping NX memory as executable (or vice versa) is
    /// exactly the X-vs-NX distinction primitives P1/P2 probe, so it
    /// must never happen silently.
    FlagMismatch {
        /// First mismatching page.
        va: VirtAddr,
        /// Flags the page is currently mapped with.
        existing: phantom_mem::PageFlags,
        /// Flags the caller asked for.
        requested: phantom_mem::PageFlags,
    },
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::Fault(pf) => write!(f, "unhandled {pf}"),
            MachineError::InvalidInstruction { pc, byte } => {
                write!(f, "invalid instruction byte {byte:#04x} at {pc}")
            }
            MachineError::NoSyscallEntry => f.write_str("syscall with no kernel entry configured"),
            MachineError::SysretWithoutSyscall => f.write_str("sysret without pending syscall"),
            MachineError::OutOfMemory(e) => write!(f, "{e}"),
            MachineError::TruncatedCode(pc) => write!(f, "truncated code bytes at {pc}"),
            MachineError::FlagMismatch {
                va,
                existing,
                requested,
            } => write!(
                f,
                "page {va} already mapped with flags {existing} (requested {requested})"
            ),
        }
    }
}

impl std::error::Error for MachineError {}

impl From<OutOfFrames> for MachineError {
    fn from(e: OutOfFrames) -> Self {
        MachineError::OutOfMemory(e)
    }
}

/// The result of one architectural step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepOutcome {
    /// PC of the stepped instruction.
    pub pc: VirtAddr,
    /// The instruction.
    pub inst: Inst,
    /// The transient (wrong-path) activity this step triggered, if any.
    pub transient: Option<TransientReport>,
    /// Whether the machine halted.
    pub halted: bool,
    /// An architectural fault that was *caught* by the registered
    /// handler this step (the handler is now the PC).
    pub caught_fault: Option<PageFault>,
}

/// Why [`Machine::run`] returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunExit {
    /// A `hlt` retired.
    Halted,
    /// The step budget was exhausted.
    StepLimit,
}

/// The simulated CPU.
///
/// See the [crate-level docs](crate) for the speculation model and an
/// example. Cloning a machine copies all architectural and
/// microarchitectural state but none of the attached event sinks (see
/// [`EventBus`]); [`Machine::snapshot`] has the same semantics.
#[derive(Debug, Clone)]
pub struct Machine {
    profile: UarchProfile,
    bpu: Bpu,
    caches: CacheHierarchy,
    uop_cache: UopCache,
    pmu: PerfCounters,
    phys: PhysMemory,
    page_table: PageTable,
    /// Timing-only TLB: translation correctness always comes from the
    /// page table; a TLB miss just charges page-walk latency. (This is
    /// deliberately conservative — stale-entry semantics cannot arise.)
    tlb: Tlb,
    regs: [u64; 16],
    zf: bool,
    sf: bool,
    cf: bool,
    pc: VirtAddr,
    level: PrivilegeLevel,
    thread: u8,
    cycles: u64,
    syscall_entry: Option<VirtAddr>,
    syscall_return: Option<(VirtAddr, PrivilegeLevel)>,
    fault_handler: Option<VirtAddr>,
    last_fault: Option<PageFault>,
    halted: bool,
    bus: EventBus,
    /// Memoized `(pc, privilege) → (inst, len)` decodes; timing- and
    /// event-invisible (see [`decode`]).
    decode_cache: decode::DecodeCache,
    /// Recorded hot superblocks replayed straight-line by the run loop;
    /// timing- and event-invisible like the decode cache (see
    /// [`trace`]).
    trace_cache: trace::TraceCache,
    /// Host-side warm-fork toggle: eagerly re-materialize the frames a
    /// rewind copied (they are exactly the previous trial's dirty set,
    /// so the next trial almost certainly writes them again). Timing-
    /// and counter-invisible; defaults off.
    warm_fork: bool,
    /// Probe-arena re-arms (see `phantom_sidechannel::ProbeArena`):
    /// host instrumentation, deliberately preserved across [`restore`]
    /// like the trace/decode caches' stats.
    ///
    /// [`restore`]: Machine::restore
    probe_rearms: u64,
}

impl Machine {
    /// Create a machine with `phys_bytes` of physical memory, all
    /// mitigation MSRs off. Cache shapes and latencies come from the
    /// profile (`profile.cache`, `profile.uop_geometry`), so a machine
    /// built from a custom [`UarchSpec`](crate::spec::UarchSpec) models
    /// that spec's hierarchy everywhere.
    pub fn new(profile: UarchProfile, phys_bytes: u64) -> Machine {
        let bpu = Bpu::with_schemes(
            profile.btb_scheme.clone(),
            profile.cbp_scheme.clone(),
            MsrState::none(),
        );
        let caches = CacheHierarchy::new(profile.cache);
        let uop_cache = UopCache::with_geometry(profile.uop_geometry);
        Machine {
            profile,
            bpu,
            caches,
            uop_cache,
            pmu: PerfCounters::new(),
            phys: PhysMemory::new(phys_bytes),
            page_table: PageTable::new(),
            tlb: Tlb::new(64, 8),
            regs: [0; 16],
            zf: false,
            sf: false,
            cf: false,
            pc: VirtAddr::new(0),
            level: PrivilegeLevel::User,
            thread: 0,
            cycles: 0,
            syscall_entry: None,
            syscall_return: None,
            fault_handler: None,
            last_fault: None,
            halted: false,
            bus: EventBus::new(),
            decode_cache: decode::DecodeCache::new(),
            // Trace replay defaults on; `PHANTOM_TRACE_CACHE=0` forces
            // it off for A/B runs (results are bit-identical either
            // way — see the parity gate in CI).
            trace_cache: trace::TraceCache::new(
                std::env::var("PHANTOM_TRACE_CACHE").map_or(true, |v| v != "0"),
            ),
            // Warm forks default off: the canonical bench and campaign
            // paths never enable them, so A/B arms stay comparable.
            warm_fork: std::env::var("PHANTOM_WARM_FORK").is_ok_and(|v| v != "0"),
            probe_rearms: 0,
        }
    }

    /// Create a machine from a declarative spec: validates, compiles
    /// the profile, and delegates to [`Machine::new`].
    ///
    /// # Errors
    ///
    /// Returns the spec's first validation failure.
    pub fn from_spec(
        spec: &crate::spec::UarchSpec,
        phys_bytes: u64,
    ) -> Result<Machine, crate::spec::SpecError> {
        spec.validate()?;
        Ok(Machine::new(spec.profile(), phys_bytes))
    }

    // ----- event bus ---------------------------------------------------

    /// Attach an observation sink; every [`PipelineEvent`] the pipeline
    /// emits is delivered to it until detached.
    pub fn attach_sink<S: EventSink>(&mut self, sink: S) -> SinkId {
        self.bus.attach(Box::new(sink))
    }

    /// [`Machine::attach_sink`] for an already-boxed sink.
    pub fn attach_boxed_sink(&mut self, sink: Box<dyn EventSink>) -> SinkId {
        self.bus.attach(sink)
    }

    /// Detach the sink behind `id`, if attached.
    pub fn detach_sink(&mut self, id: SinkId) -> Option<Box<dyn EventSink>> {
        self.bus.detach(id)
    }

    /// Detach the sink behind `id` and downcast it to its concrete
    /// type. Returns `None` if `id` is not attached or the type does
    /// not match.
    pub fn detach_sink_as<S: EventSink>(&mut self, id: SinkId) -> Option<Box<S>> {
        let sink = self.bus.detach(id)?;
        let any: Box<dyn std::any::Any> = sink;
        any.downcast::<S>().ok()
    }

    /// Number of attached sinks.
    pub fn sink_count(&self) -> usize {
        self.bus.len()
    }

    /// Emit one event: applies the PMU counter policy, then fans out to
    /// every attached sink. The common case — no sinks attached — skips
    /// the dynamic dispatch loop entirely.
    #[inline]
    pub(crate) fn emit(&mut self, event: PipelineEvent) {
        crate::events::count(&mut self.pmu, &event);
        if !self.bus.is_empty() {
            self.bus.dispatch(&event);
        }
    }

    // ----- accessors -------------------------------------------------

    /// The active microarchitecture profile.
    pub fn profile(&self) -> &UarchProfile {
        &self.profile
    }

    /// The branch prediction unit.
    pub fn bpu(&self) -> &Bpu {
        &self.bpu
    }

    /// The branch prediction unit, mutably (training, IBPB, MSRs).
    pub fn bpu_mut(&mut self) -> &mut Bpu {
        &mut self.bpu
    }

    /// The cache hierarchy.
    pub fn caches(&self) -> &CacheHierarchy {
        &self.caches
    }

    /// The cache hierarchy, mutably (priming, flushing, probing).
    pub fn caches_mut(&mut self) -> &mut CacheHierarchy {
        &mut self.caches
    }

    /// The µop cache.
    pub fn uop_cache(&self) -> &UopCache {
        &self.uop_cache
    }

    /// The µop cache, mutably.
    pub fn uop_cache_mut(&mut self) -> &mut UopCache {
        &mut self.uop_cache
    }

    /// Performance counters.
    pub fn pmu(&self) -> &PerfCounters {
        &self.pmu
    }

    /// Performance counters, mutably (reset between samples).
    pub fn pmu_mut(&mut self) -> &mut PerfCounters {
        &mut self.pmu
    }

    /// Physical memory.
    pub fn phys(&self) -> &PhysMemory {
        &self.phys
    }

    /// Enable or disable warm forks: when on, a rewind eagerly
    /// re-materializes private copies of exactly the frames it copied
    /// back, flattening the cold-step CoW tail of the next trial.
    /// Contents, timing and guest-visible counters are unaffected.
    pub fn set_warm_fork(&mut self, enabled: bool) {
        self.warm_fork = enabled;
    }

    /// Probe-arena re-arms performed on this machine (its forks start
    /// from the fork point's count; rewinds preserve it).
    pub fn probe_rearms(&self) -> u64 {
        self.probe_rearms
    }

    /// Record one probe-arena re-arm. Called by
    /// `phantom_sidechannel::ProbeArena::arm`; host instrumentation
    /// only.
    pub fn count_probe_rearm(&mut self) {
        self.probe_rearms += 1;
    }

    /// Physical memory, mutably. Conservatively invalidates the decode
    /// and trace caches: raw writes could rewrite code bytes.
    pub fn phys_mut(&mut self) -> &mut PhysMemory {
        self.decode_cache.invalidate();
        self.trace_invalidate_all();
        &mut self.phys
    }

    /// The page table.
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// The page table, mutably (the §6.2 PTE-flag tricks).
    /// Conservatively invalidates the decode and trace caches: mapping
    /// or flag changes can alter what decodes.
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        self.decode_cache.invalidate();
        self.trace_invalidate_all();
        &mut self.page_table
    }

    /// The (timing-only) TLB.
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    /// The TLB, mutably (flushes on context switches in experiments).
    pub fn tlb_mut(&mut self) -> &mut Tlb {
        &mut self.tlb
    }

    /// Elapsed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Charge extra cycles (harness-level costs like reboots).
    pub fn add_cycles(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Current program counter.
    pub fn pc(&self) -> VirtAddr {
        self.pc
    }

    /// Set the program counter.
    pub fn set_pc(&mut self, pc: VirtAddr) {
        self.pc = pc;
        self.halted = false;
    }

    /// Current privilege level.
    pub fn level(&self) -> PrivilegeLevel {
        self.level
    }

    /// Force the privilege level (test setup).
    pub fn set_level(&mut self, level: PrivilegeLevel) {
        self.level = level;
    }

    /// Current SMT thread id.
    pub fn thread(&self) -> u8 {
        self.thread
    }

    /// Switch the SMT thread id.
    pub fn set_thread(&mut self, thread: u8) {
        self.thread = thread;
    }

    /// Read a register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[usize::from(r.index())]
    }

    /// Write a register.
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        self.regs[usize::from(r.index())] = value;
    }

    /// The most recent architectural fault (caught or not).
    pub fn last_fault(&self) -> Option<PageFault> {
        self.last_fault
    }

    /// The current flags `(zf, sf, cf)`.
    pub fn flags(&self) -> (bool, bool, bool) {
        (self.zf, self.sf, self.cf)
    }

    /// Force the flags (test/experiment setup; architecturally flags are
    /// produced by `cmp`).
    pub fn set_flags(&mut self, zf: bool, sf: bool, cf: bool) {
        self.zf = zf;
        self.sf = sf;
        self.cf = cf;
    }

    /// Register a user-mode fault handler (the attacker's SIGSEGV
    /// handler, used to survive training branches into the kernel).
    pub fn set_fault_handler(&mut self, handler: Option<VirtAddr>) {
        self.fault_handler = handler;
    }

    /// Configure the kernel entry point `syscall` jumps to.
    pub fn set_syscall_entry(&mut self, entry: Option<VirtAddr>) {
        self.syscall_entry = entry;
    }

    /// Write the mitigation MSRs. Unsupported bits are clamped off, as on
    /// real parts (`SuppressBPOnNonBr` does not exist on Zen 1, AutoIBRS
    /// only on Zen 4). Returns the effective state.
    pub fn write_msr(&mut self, requested: MsrState) -> MsrState {
        let effective = MsrState {
            suppress_bp_on_non_br: requested.suppress_bp_on_non_br
                && self.profile.supports_suppress_bp_on_non_br,
            auto_ibrs: requested.auto_ibrs && self.profile.supports_auto_ibrs,
            eibrs_tagging: requested.eibrs_tagging
                && self.profile.vendor == crate::profile::Vendor::Intel,
            stibp: requested.stibp,
        };
        self.bpu.set_msr(effective);
        effective
    }

    // ----- decode cache ----------------------------------------------

    /// Decode-cache `(hits, misses)` since construction. Hits are steps
    /// (architectural or transient) that skipped code-byte translation
    /// and decode entirely.
    pub fn decode_cache_stats(&self) -> (u64, u64) {
        self.decode_cache.stats()
    }

    /// Enable or disable the decoded-instruction cache (enabled by
    /// default). Disabling exists for A/B benchmarking — results are
    /// identical either way, only host wall-clock changes.
    pub fn set_decode_cache_enabled(&mut self, enabled: bool) {
        self.decode_cache.set_enabled(enabled);
    }
}

#[cfg(test)]
mod tests;
