//! Machine tests: architectural semantics, speculation classification and
//! transient side effects.

use phantom_isa::asm::Assembler;
use phantom_isa::{Inst, Reg};
use phantom_mem::{AccessKind, FaultReason, PageFlags, PrivilegeLevel, VirtAddr};

use crate::machine::{Machine, MachineError, RunExit};
use crate::profile::UarchProfile;
use crate::resteer::ResteerKind;

fn machine(profile: UarchProfile) -> Machine {
    Machine::new(profile, 1 << 26)
}

fn load_user(m: &mut Machine, asm: &Assembler) -> phantom_isa::asm::Blob {
    let blob = asm.finish().expect("assemble");
    m.load_blob(&blob, PageFlags::USER_TEXT | PageFlags::WRITE)
        .expect("load");
    blob
}

/// Set up a user stack and return its top.
fn with_stack(m: &mut Machine) -> u64 {
    let stack_base = VirtAddr::new(0x7000_0000);
    m.map_range(stack_base, 0x4000, PageFlags::USER_DATA)
        .unwrap();
    let top = 0x7000_4000 - 64;
    m.set_reg(Reg::SP, top);
    top
}

#[test]
fn arithmetic_and_moves_execute() {
    let mut m = machine(UarchProfile::zen2());
    let mut a = Assembler::new(0x40_0000);
    a.push(Inst::MovImm {
        dst: Reg::R0,
        imm: 10,
    });
    a.push(Inst::MovImm {
        dst: Reg::R1,
        imm: 32,
    });
    a.push(Inst::Alu {
        op: phantom_isa::inst::AluOp::Add,
        dst: Reg::R0,
        src: Reg::R1,
    });
    a.push(Inst::Shl {
        dst: Reg::R0,
        amount: 1,
    });
    a.push(Inst::Halt);
    let blob = load_user(&mut m, &a);
    m.set_pc(VirtAddr::new(blob.base));
    assert_eq!(m.run(100).unwrap(), RunExit::Halted);
    assert_eq!(m.reg(Reg::R0), 84);
}

#[test]
fn loads_and_stores_roundtrip_through_memory() {
    let mut m = machine(UarchProfile::zen3());
    let data = VirtAddr::new(0x50_0000);
    m.map_range(data, 0x1000, PageFlags::USER_DATA).unwrap();
    let mut a = Assembler::new(0x40_0000);
    a.push(Inst::MovImm {
        dst: Reg::R1,
        imm: data.raw(),
    });
    a.push(Inst::MovImm {
        dst: Reg::R2,
        imm: 0xdead_beef,
    });
    a.push(Inst::Store {
        base: Reg::R1,
        disp: 0x10,
        src: Reg::R2,
    });
    a.push(Inst::Load {
        dst: Reg::R3,
        base: Reg::R1,
        disp: 0x10,
    });
    a.push(Inst::Halt);
    let blob = load_user(&mut m, &a);
    m.set_pc(VirtAddr::new(blob.base));
    m.run(100).unwrap();
    assert_eq!(m.reg(Reg::R3), 0xdead_beef);
    assert_eq!(m.peek_u64(data + 0x10), 0xdead_beef);
}

#[test]
fn call_and_ret_use_the_stack() {
    let mut m = machine(UarchProfile::zen2());
    let mut a = Assembler::new(0x40_0000);
    a.call("fun");
    a.push(Inst::MovImm {
        dst: Reg::R0,
        imm: 7,
    });
    a.push(Inst::Halt);
    a.label("fun");
    a.push(Inst::MovImm {
        dst: Reg::R1,
        imm: 9,
    });
    a.push(Inst::Ret);
    let blob = load_user(&mut m, &a);
    with_stack(&mut m);
    m.set_pc(VirtAddr::new(blob.base));
    assert_eq!(m.run(100).unwrap(), RunExit::Halted);
    assert_eq!(m.reg(Reg::R0), 7);
    assert_eq!(m.reg(Reg::R1), 9);
}

#[test]
fn conditional_branches_follow_flags() {
    let mut m = machine(UarchProfile::zen4());
    let mut a = Assembler::new(0x40_0000);
    a.push(Inst::MovImm {
        dst: Reg::R0,
        imm: 1,
    });
    a.push(Inst::MovImm {
        dst: Reg::R1,
        imm: 2,
    });
    a.push(Inst::Cmp {
        a: Reg::R0,
        b: Reg::R1,
    });
    a.jb("less");
    a.push(Inst::MovImm {
        dst: Reg::R2,
        imm: 111,
    });
    a.push(Inst::Halt);
    a.label("less");
    a.push(Inst::MovImm {
        dst: Reg::R2,
        imm: 222,
    });
    a.push(Inst::Halt);
    let blob = load_user(&mut m, &a);
    m.set_pc(VirtAddr::new(blob.base));
    m.run(100).unwrap();
    assert_eq!(m.reg(Reg::R2), 222, "1 < 2 takes the branch");
}

#[test]
fn syscall_round_trip() {
    let mut m = machine(UarchProfile::zen3());
    // Kernel: set R5 and sysret.
    let mut k = Assembler::new(0xffff_ffff_8100_0000);
    k.push(Inst::MovImm {
        dst: Reg::R5,
        imm: 0x1234,
    });
    k.push(Inst::Sysret);
    let kblob = k.finish().unwrap();
    m.load_blob(&kblob, PageFlags::KERNEL_TEXT).unwrap();
    m.set_syscall_entry(Some(VirtAddr::new(kblob.base)));

    let mut a = Assembler::new(0x40_0000);
    a.push(Inst::Syscall);
    a.push(Inst::MovImm {
        dst: Reg::R6,
        imm: 1,
    });
    a.push(Inst::Halt);
    let blob = load_user(&mut m, &a);
    m.set_pc(VirtAddr::new(blob.base));
    assert_eq!(m.run(100).unwrap(), RunExit::Halted);
    assert_eq!(m.reg(Reg::R5), 0x1234, "kernel ran");
    assert_eq!(m.reg(Reg::R6), 1, "returned to user");
    assert_eq!(m.level(), PrivilegeLevel::User);
}

#[test]
fn user_cannot_execute_kernel_text() {
    let mut m = machine(UarchProfile::zen3());
    let mut k = Assembler::new(0xffff_ffff_8100_0000);
    k.push(Inst::Halt);
    let kblob = k.finish().unwrap();
    m.load_blob(&kblob, PageFlags::KERNEL_TEXT).unwrap();
    m.set_pc(VirtAddr::new(kblob.base));
    m.set_level(PrivilegeLevel::User);
    let err = m.run(10).unwrap_err();
    match err {
        MachineError::Fault(f) => assert_eq!(f.reason, FaultReason::Privilege),
        other => panic!("expected fault, got {other:?}"),
    }
}

#[test]
fn fault_handler_catches_user_faults() {
    let mut m = machine(UarchProfile::zen2());
    let mut a = Assembler::new(0x40_0000);
    // Jump into unmapped space; the handler should catch it.
    a.push(Inst::MovImm {
        dst: Reg::R0,
        imm: 0xdead_0000,
    });
    a.push(Inst::JmpInd { src: Reg::R0 });
    a.org(0x40_0100);
    a.label("handler");
    a.push(Inst::MovImm {
        dst: Reg::R1,
        imm: 0x5151,
    });
    a.push(Inst::Halt);
    let blob = load_user(&mut m, &a);
    m.set_fault_handler(Some(VirtAddr::new(blob.addr("handler"))));
    m.set_pc(VirtAddr::new(blob.base));
    assert_eq!(m.run(100).unwrap(), RunExit::Halted);
    assert_eq!(m.reg(Reg::R1), 0x5151);
    assert!(m.last_fault().is_some());
}

#[test]
fn faulting_branch_still_trains_the_btb() {
    // The §6.2 page-fault training technique: jmp* to a kernel address
    // from user mode faults, but the BTB keeps the edge.
    let mut m = machine(UarchProfile::zen3());
    let kernel_target = VirtAddr::new(0xffff_ffff_8100_0ac0);
    let mut a = Assembler::new(0x40_0000);
    a.push(Inst::MovImm {
        dst: Reg::R0,
        imm: kernel_target.raw(),
    });
    a.label("branch");
    a.push(Inst::JmpInd { src: Reg::R0 });
    a.org(0x40_0100);
    a.label("handler");
    a.push(Inst::Halt);
    let blob = load_user(&mut m, &a);
    m.set_fault_handler(Some(VirtAddr::new(blob.addr("handler"))));
    m.set_pc(VirtAddr::new(blob.base));
    m.run(100).unwrap();
    let hit = m.bpu().btb().lookup(VirtAddr::new(blob.addr("branch")));
    let hit = hit.expect("BTB trained despite fault");
    assert_eq!(hit.target, Some(kernel_target));
}

// ---------------------------------------------------------------------
// Speculation behavior.
// ---------------------------------------------------------------------

/// Build the Figure 4/5 experiment: training run executes `jmp* -> C`,
/// victim run executes nops at an aliasing address (same address here;
/// same-address aliasing is the simplest class member).
fn phantom_on_nop(profile: UarchProfile) -> (Machine, crate::transient::TransientReport) {
    let mut m = machine(profile);
    let a_branch = 0x40_0ac0u64; // branch source A
    let c_target = 0x44_0b00u64; // target C

    // Code at A: jmp* r0 -> C (training), then halt at fallthrough.
    let mut a = Assembler::new(0x40_0a00);
    a.org(a_branch);
    a.push(Inst::JmpInd { src: Reg::R0 });
    a.push(Inst::Halt);
    let blob = a.finish().unwrap();
    let m2 = &mut m;
    m2.load_blob(&blob, PageFlags::USER_TEXT).unwrap();

    // Target C: a load (the EX signal) then halt.
    let mut c = Assembler::new(c_target);
    c.push(Inst::Load {
        dst: Reg::R9,
        base: Reg::R8,
        disp: 0,
    });
    c.push(Inst::Halt);
    let cblob = c.finish().unwrap();
    m.load_blob(&cblob, PageFlags::USER_TEXT).unwrap();

    // Data the load in C touches.
    let probe = VirtAddr::new(0x60_0000);
    m.map_range(probe, 0x1000, PageFlags::USER_DATA).unwrap();
    m.set_reg(Reg::R8, probe.raw());

    // Victim code B: nops at the SAME alias class (same address, fresh
    // semantics thanks to poke). First, train: run the jmp*.
    m.set_reg(Reg::R0, c_target);
    m.set_pc(VirtAddr::new(a_branch));
    m.run(10).unwrap();

    // Replace the branch with nops: the victim instruction is a non
    // branch, but the BTB still predicts jmp* -> C.
    m.poke(VirtAddr::new(a_branch), &[0x90, 0x90, 0xf4]); // nop nop hlt

    // Flush target cache state so transient effects are visible.
    m.caches_mut().flush_all();
    m.uop_cache_mut().flush_all();

    // Victim run.
    m.set_pc(VirtAddr::new(a_branch));
    let (_, reports) = m.run_collecting(10).unwrap();
    let report = reports.into_iter().next().expect("misprediction observed");
    (m, report)
}

#[test]
fn phantom_fetch_and_decode_on_all_uarchs() {
    for profile in UarchProfile::all() {
        let name = profile.name.clone();
        let (m, report) = phantom_on_nop(profile);
        assert!(report.fetched, "O1: transient fetch on {name}");
        assert!(report.decoded, "O2: transient decode on {name}");
        // The I-cache now holds C's line; the µop cache holds its set.
        let c_pa = m
            .page_table()
            .translate(
                VirtAddr::new(0x44_0b00),
                phantom_mem::AccessKind::Execute,
                PrivilegeLevel::Supervisor,
            )
            .unwrap();
        assert!(m.caches().probe_l1i(c_pa.raw()), "I-cache filled on {name}");
        assert!(
            m.uop_cache().lookup(0x44_0b00),
            "uop cache filled on {name}"
        );
    }
}

#[test]
fn phantom_execute_only_on_zen1_and_zen2() {
    for profile in UarchProfile::all() {
        let name = profile.name.clone();
        let expect_exec = matches!(name.as_str(), "Zen" | "Zen 2");
        let (m, report) = phantom_on_nop(profile);
        assert_eq!(
            !report.loads_dispatched.is_empty(),
            expect_exec,
            "O3: transient execute on {name}"
        );
        if expect_exec {
            assert_eq!(report.loads_dispatched[0], VirtAddr::new(0x60_0000));
            let pa = m
                .page_table()
                .translate(
                    VirtAddr::new(0x60_0000),
                    phantom_mem::AccessKind::Read,
                    PrivilegeLevel::Supervisor,
                )
                .unwrap();
            assert!(m.caches().probe_l1d(pa.raw()), "D-cache filled on {name}");
        }
    }
}

#[test]
fn suppress_bp_on_non_br_gates_execute_only() {
    // O4: with the MSR set on Zen 2, non-branch victims no longer
    // execute the target, but IF and ID still happen.
    let mut profile = UarchProfile::zen2();
    profile.name = "Zen 2".into(); // unchanged; explicitness
    let (_, baseline) = phantom_on_nop(profile.clone());
    assert!(!baseline.loads_dispatched.is_empty());

    // Re-run with the bit set. Build the same experiment inline.
    let mut m = machine(UarchProfile::zen2());
    m.write_msr(phantom_bpu::MsrState {
        suppress_bp_on_non_br: true,
        ..Default::default()
    });
    let a_branch = 0x40_0ac0u64;
    let c_target = 0x44_0b00u64;
    let mut a = Assembler::new(0x40_0a00);
    a.org(a_branch);
    a.push(Inst::JmpInd { src: Reg::R0 });
    a.push(Inst::Halt);
    m.load_blob(&a.finish().unwrap(), PageFlags::USER_TEXT)
        .unwrap();
    let mut c = Assembler::new(c_target);
    c.push(Inst::Load {
        dst: Reg::R9,
        base: Reg::R8,
        disp: 0,
    });
    c.push(Inst::Halt);
    m.load_blob(&c.finish().unwrap(), PageFlags::USER_TEXT)
        .unwrap();
    m.map_range(VirtAddr::new(0x60_0000), 0x1000, PageFlags::USER_DATA)
        .unwrap();
    m.set_reg(Reg::R8, 0x60_0000);
    m.set_reg(Reg::R0, c_target);
    m.set_pc(VirtAddr::new(a_branch));
    m.run(10).unwrap();
    m.poke(VirtAddr::new(a_branch), &[0x90, 0x90, 0xf4]);
    m.caches_mut().flush_all();
    m.set_pc(VirtAddr::new(a_branch));
    let (_, reports) = m.run_collecting(10).unwrap();
    let report = &reports[0];
    assert!(report.fetched && report.decoded, "O4: IF/ID not prevented");
    assert!(report.loads_dispatched.is_empty(), "O4: EX prevented");
}

#[test]
fn suppress_bit_does_not_exist_on_zen1() {
    let mut m = machine(UarchProfile::zen1());
    let effective = m.write_msr(phantom_bpu::MsrState {
        suppress_bp_on_non_br: true,
        ..Default::default()
    });
    assert!(
        !effective.suppress_bp_on_non_br,
        "§8.1: not supported on Zen 1"
    );
}

#[test]
fn correct_predictions_cause_no_transient_path() {
    // A stable jmp* repeatedly jumping to the same target: after
    // training, no mispredictions.
    let mut m = machine(UarchProfile::zen2());
    let mut a = Assembler::new(0x40_0000);
    a.push(Inst::JmpInd { src: Reg::R0 });
    a.label("next");
    a.push(Inst::Halt);
    let blob = load_user(&mut m, &a);
    m.set_reg(Reg::R0, blob.addr("next"));
    // Training run (misfetch on first encounter is fine).
    m.set_pc(VirtAddr::new(blob.base));
    m.run(10).unwrap();
    // Trained run: no misprediction events.
    let before = m.pmu().read(phantom_cache::Event::BranchMispredict);
    m.set_pc(VirtAddr::new(blob.base));
    let (_, reports) = m.run_collecting(10).unwrap();
    assert_eq!(m.pmu().read(phantom_cache::Event::BranchMispredict), before);
    assert!(reports.is_empty());
}

#[test]
fn wrong_indirect_target_is_a_spectre_window() {
    // Train jmp* to T1, then run it with T2 in the register: backend
    // resteer, wide window, transient execution at T1 on EVERY uarch.
    for profile in UarchProfile::all() {
        let name = profile.name.clone();
        let is_intel_blind = profile.indirect_victim_blind;
        let mut m = machine(profile);
        let mut a = Assembler::new(0x40_0000);
        a.push(Inst::JmpInd { src: Reg::R0 });
        a.label("t2");
        a.push(Inst::Halt);
        a.org(0x40_0800);
        a.label("t1");
        a.push(Inst::Load {
            dst: Reg::R9,
            base: Reg::R8,
            disp: 0,
        });
        a.push(Inst::Halt);
        let blob = load_user(&mut m, &a);
        m.map_range(VirtAddr::new(0x60_0000), 0x1000, PageFlags::USER_DATA)
            .unwrap();
        m.set_reg(Reg::R8, 0x60_0000);
        // Train to t1.
        m.set_reg(Reg::R0, blob.addr("t1"));
        m.set_pc(VirtAddr::new(blob.base));
        m.run(10).unwrap();
        // Victim run to t2: prediction says t1.
        m.caches_mut().flush_all();
        m.set_reg(Reg::R0, blob.addr("t2"));
        m.set_pc(VirtAddr::new(blob.base));
        let (_, reports) = m.run_collecting(10).unwrap();
        if is_intel_blind {
            // The blind spot applies to jmp* victims on old Intel parts.
            continue;
        }
        let report = reports.first().expect("misprediction");
        assert_eq!(
            report.window.unwrap().resteer,
            ResteerKind::Backend,
            "{name}"
        );
        assert!(
            !report.loads_dispatched.is_empty(),
            "Spectre executes on {name}"
        );
    }
}

#[test]
fn straight_line_speculation_past_a_return() {
    // ret trained as non-branch (i.e. untrained): sequential bytes after
    // the ret are transiently fetched/decoded.
    let mut m = machine(UarchProfile::zen1());
    let mut a = Assembler::new(0x40_0000);
    a.call("fun");
    a.push(Inst::Halt);
    a.org(0x40_0200);
    a.label("fun");
    a.push(Inst::Ret);
    // Sequential bytes after ret: a load that should NOT architecturally
    // run.
    a.push(Inst::Load {
        dst: Reg::R9,
        base: Reg::R8,
        disp: 0,
    });
    a.push(Inst::Halt);
    let blob = load_user(&mut m, &a);
    with_stack(&mut m);
    m.map_range(VirtAddr::new(0x61_0000), 0x1000, PageFlags::USER_DATA)
        .unwrap();
    m.set_reg(Reg::R8, 0x61_0000);
    m.set_pc(VirtAddr::new(blob.base));
    let (_, reports) = m.run_collecting(20).unwrap();
    // The first ret encounter has no prediction: SLS fires.
    let sls = reports
        .iter()
        .find(|r| r.target == Some(VirtAddr::new(blob.addr("fun") + 1)))
        .expect("SLS report");
    assert!(sls.fetched && sls.decoded);
    // Zen 1 executes the straight line: the load dispatches.
    assert!(!sls.loads_dispatched.is_empty(), "SLS executes on Zen 1");
    // Architecturally R9 must be untouched.
    assert_eq!(m.reg(Reg::R9), 0);
}

#[test]
fn transient_fetch_fails_on_nx_target() {
    // P1's discriminator: a phantom steer to a mapped but non-executable
    // target fills nothing.
    let mut m = machine(UarchProfile::zen2());
    let a_branch = 0x40_0ac0u64;
    let nx_target = 0x58_0000u64;
    let mut a = Assembler::new(a_branch);
    a.push(Inst::JmpInd { src: Reg::R0 });
    a.push(Inst::Halt);
    m.load_blob(&a.finish().unwrap(), PageFlags::USER_TEXT)
        .unwrap();
    m.map_range(VirtAddr::new(nx_target), 0x1000, PageFlags::USER_DATA)
        .unwrap(); // NX

    // Train by jumping to an executable trampoline first? No — train the
    // BTB directly: branch to the NX target faults at fetch, but trains.
    let mut h = Assembler::new(0x40_2000);
    h.push(Inst::Halt);
    let hblob = h.finish().unwrap();
    m.load_blob(&hblob, PageFlags::USER_TEXT).unwrap();
    m.set_fault_handler(Some(VirtAddr::new(hblob.base)));
    m.set_reg(Reg::R0, nx_target);
    m.set_pc(VirtAddr::new(a_branch));
    m.run(10).unwrap();

    // Victim: nops at the branch address.
    m.poke(VirtAddr::new(a_branch), &[0x90, 0x90, 0xf4]);
    m.caches_mut().flush_all();
    m.set_pc(VirtAddr::new(a_branch));
    let (_, reports) = m.run_collecting(10).unwrap();
    let report = &reports[0];
    assert!(!report.fetched, "NX target cannot be transiently fetched");
    let pa = m
        .page_table()
        .translate(
            VirtAddr::new(nx_target),
            phantom_mem::AccessKind::Read,
            PrivilegeLevel::Supervisor,
        )
        .unwrap();
    assert!(!m.caches().probe_l1i(pa.raw()), "I-cache unaffected");
}

#[test]
fn run_exits_on_step_limit() {
    let mut m = machine(UarchProfile::zen2());
    let mut a = Assembler::new(0x40_0000);
    a.label("spin");
    a.jmp("spin");
    let blob = load_user(&mut m, &a);
    m.set_pc(VirtAddr::new(blob.base));
    assert_eq!(m.run(50).unwrap(), RunExit::StepLimit);
}

#[test]
fn invalid_bytes_error() {
    let mut m = machine(UarchProfile::zen2());
    m.map_range(VirtAddr::new(0x40_0000), 0x1000, PageFlags::USER_TEXT)
        .unwrap();
    m.poke(VirtAddr::new(0x40_0000), &[0xCC]);
    m.set_pc(VirtAddr::new(0x40_0000));
    assert!(matches!(
        m.run(10),
        Err(MachineError::InvalidInstruction { byte: 0xCC, .. })
    ));
}

#[test]
fn cycles_advance_monotonically() {
    let mut m = machine(UarchProfile::zen2());
    let mut a = Assembler::new(0x40_0000);
    a.nops(10);
    a.push(Inst::Halt);
    let blob = load_user(&mut m, &a);
    m.set_pc(VirtAddr::new(blob.base));
    let c0 = m.cycles();
    m.run(100).unwrap();
    assert!(m.cycles() > c0 + 10);
}

#[test]
fn truncated_code_at_mapping_edge_errors() {
    // A multi-byte instruction whose tail runs off the last mapped page.
    let mut m = machine(UarchProfile::zen2());
    m.map_range(
        VirtAddr::new(0x40_0000),
        0x1000,
        PageFlags::USER_TEXT | PageFlags::WRITE,
    )
    .unwrap();
    // MovImm is 10 bytes; place its opcode 2 bytes before the page end.
    m.poke(VirtAddr::new(0x40_0ffe), &[0xB8, 0x00]);
    m.set_pc(VirtAddr::new(0x40_0ffe));
    assert!(matches!(m.run(4), Err(MachineError::TruncatedCode(_))));
}

#[test]
fn sysret_without_syscall_errors() {
    let mut m = machine(UarchProfile::zen2());
    m.map_range(
        VirtAddr::new(0x40_0000),
        0x1000,
        PageFlags::USER_TEXT | PageFlags::WRITE,
    )
    .unwrap();
    m.poke(VirtAddr::new(0x40_0000), &[0x07]); // sysret
    m.set_pc(VirtAddr::new(0x40_0000));
    assert!(matches!(m.run(4), Err(MachineError::SysretWithoutSyscall)));
}

#[test]
fn syscall_without_entry_errors() {
    let mut m = machine(UarchProfile::zen2());
    m.map_range(
        VirtAddr::new(0x40_0000),
        0x1000,
        PageFlags::USER_TEXT | PageFlags::WRITE,
    )
    .unwrap();
    m.poke(VirtAddr::new(0x40_0000), &[0x05]); // syscall
    m.set_pc(VirtAddr::new(0x40_0000));
    assert!(matches!(m.run(4), Err(MachineError::NoSyscallEntry)));
}

#[test]
fn map_range_same_flags_is_idempotent() {
    let mut m = machine(UarchProfile::zen2());
    let va = VirtAddr::new(0x40_0000);
    m.map_range(va, 0x2000, PageFlags::USER_DATA).unwrap();
    m.poke_u64(va, 0xfeed);
    let frames = m.phys().resident_frames();
    // Overlapping remap with identical flags: a no-op, data survives.
    m.map_range(va, 0x2000, PageFlags::USER_DATA).unwrap();
    assert_eq!(m.peek_u64(va), 0xfeed);
    assert_eq!(m.phys().resident_frames(), frames);
}

#[test]
fn map_range_flag_mismatch_errors_and_keeps_old_flags() {
    let mut m = machine(UarchProfile::zen2());
    let va = VirtAddr::new(0x40_0000);
    // An NX data page must not silently become executable: that is the
    // exact X-vs-NX distinction primitives P1/P2 measure.
    m.map_range(va, 0x1000, PageFlags::USER_DATA).unwrap();
    let err = m.map_range(va, 0x1000, PageFlags::USER_TEXT).unwrap_err();
    match err {
        MachineError::FlagMismatch {
            va: at,
            existing,
            requested,
        } => {
            assert_eq!(at, va);
            assert_eq!(existing, PageFlags::USER_DATA);
            assert_eq!(requested, PageFlags::USER_TEXT);
        }
        other => panic!("expected FlagMismatch, got {other:?}"),
    }
    assert_eq!(m.page_table().flags_of(va), Some(PageFlags::USER_DATA));
}

#[test]
fn map_range_flag_mismatch_is_atomic() {
    let mut m = machine(UarchProfile::zen2());
    // Pre-map only the *second* page of a two-page range with other
    // flags: the whole map_range must fail without mapping page one.
    let first = VirtAddr::new(0x40_0000);
    let second = VirtAddr::new(0x40_1000);
    m.map_range(second, 0x1000, PageFlags::USER_TEXT).unwrap();
    assert!(matches!(
        m.map_range(first, 0x2000, PageFlags::USER_DATA),
        Err(MachineError::FlagMismatch { .. })
    ));
    assert_eq!(m.page_table().flags_of(first), None, "nothing half-mapped");
}

#[test]
fn unmap_range_frees_the_virtual_range_for_remapping() {
    let mut m = machine(UarchProfile::zen2());
    let va = VirtAddr::new(0x40_0000);
    m.map_range(va, 0x2000, PageFlags::USER_DATA).unwrap();
    assert_eq!(m.unmap_range(va, 0x2000), 2);
    assert_eq!(m.page_table().flags_of(va), None);
    // The range can now be remapped with different flags.
    m.map_range(va, 0x2000, PageFlags::USER_TEXT).unwrap();
    assert_eq!(m.page_table().flags_of(va), Some(PageFlags::USER_TEXT));
    assert_eq!(m.unmap_range(VirtAddr::new(0x9000_0000), 0x1000), 0);
}

#[test]
fn decode_cache_hits_do_not_change_results_or_timing() {
    // Run the same loop twice, cache on and off: identical registers,
    // cycles and PMU state, but the cached run decodes each pc once.
    let run = |cached: bool| -> (u64, u64, (u64, u64)) {
        let mut m = machine(UarchProfile::zen2());
        m.set_decode_cache_enabled(cached);
        let mut a = Assembler::new(0x40_0000);
        a.push(Inst::MovImm {
            dst: Reg::R0,
            imm: 0,
        });
        a.push(Inst::MovImm {
            dst: Reg::R1,
            imm: 1,
        });
        a.label("loop_top");
        a.push(Inst::Alu {
            op: phantom_isa::inst::AluOp::Add,
            dst: Reg::R0,
            src: Reg::R1,
        });
        a.jmp("loop_top");
        let blob = load_user(&mut m, &a);
        m.set_pc(VirtAddr::new(blob.base));
        m.run(1000).unwrap();
        (m.reg(Reg::R0), m.cycles(), m.decode_cache_stats())
    };
    let (r_off, cycles_off, stats_off) = run(false);
    let (r_on, cycles_on, stats_on) = run(true);
    assert_eq!(r_off, r_on);
    assert_eq!(cycles_off, cycles_on);
    assert_eq!(stats_off, (0, 0), "disabled cache never counts");
    let (hits, misses) = stats_on;
    assert!(
        hits > 900,
        "hot loop mostly hits: {hits} hits, {misses} misses"
    );
    // One miss per distinct pc, plus at most a few wrong-path decodes.
    assert!(misses <= 8, "misses bounded by distinct pcs: {misses}");
}

#[test]
fn decode_cache_invalidates_on_self_modifying_store() {
    // Store over the instruction stream: the next decode must see the
    // new bytes, not a stale cached instruction.
    let mut m = machine(UarchProfile::zen2());
    let code = VirtAddr::new(0x40_0000);
    m.map_range(code, 0x1000, PageFlags::USER_TEXT | PageFlags::WRITE)
        .unwrap();
    // Target instruction at code+0x100: mov r0, 1 — warm the cache.
    let mut warm = Vec::new();
    phantom_isa::encode::encode_into(
        &Inst::MovImm {
            dst: Reg::R0,
            imm: 1,
        },
        &mut warm,
    )
    .unwrap();
    warm.push(0xF4); // hlt
    m.poke(code + 0x100, &warm);
    m.set_pc(code + 0x100);
    m.run(4).unwrap();
    assert_eq!(m.reg(Reg::R0), 1);

    // Overwrite the target with `mov r0, 2` via an architectural store
    // of the first 8 encoded bytes.
    let mut new_bytes = Vec::new();
    phantom_isa::encode::encode_into(
        &Inst::MovImm {
            dst: Reg::R0,
            imm: 2,
        },
        &mut new_bytes,
    )
    .unwrap();
    new_bytes.push(0xF4);
    new_bytes.resize(8, 0x90);
    let patch = u64::from_le_bytes(new_bytes[..8].try_into().unwrap());
    let mut a = Assembler::new(code.raw());
    a.push(Inst::MovImm {
        dst: Reg::R1,
        imm: patch,
    });
    a.push(Inst::MovImm {
        dst: Reg::R2,
        imm: code.raw() + 0x100,
    });
    a.push(Inst::Store {
        base: Reg::R2,
        disp: 0,
        src: Reg::R1,
    });
    a.push(Inst::Halt);
    let blob = a.finish().unwrap();
    m.poke(VirtAddr::new(blob.base), &blob.bytes);
    m.set_pc(VirtAddr::new(blob.base));
    m.run(10).unwrap();

    // Re-run the patched instruction: must observe the new immediate.
    m.set_pc(code + 0x100);
    m.run(4).unwrap();
    assert_eq!(m.reg(Reg::R0), 2, "stale decode survived a code store");
}

#[test]
fn decode_cache_is_privilege_aware() {
    // The same pc decodes differently per privilege level only through
    // translation; caching keys on (pc, level) so a supervisor decode
    // is never served to user mode.
    let mut m = machine(UarchProfile::zen2());
    let code = VirtAddr::new(0x40_0000);
    m.map_range(code, 0x1000, PageFlags::KERNEL_TEXT).unwrap();
    m.poke(code, &[0xF4]); // hlt
    m.set_level(PrivilegeLevel::Supervisor);
    m.set_pc(code);
    m.run(2).unwrap(); // caches (code, supervisor)
    m.set_level(PrivilegeLevel::User);
    m.set_pc(code);
    // User fetch of supervisor-only page faults (no handler => error),
    // it must NOT be served from the supervisor's cached decode.
    assert!(matches!(m.run(2), Err(MachineError::Fault(_))));
}

#[test]
fn sinks_stay_attached_and_observing_across_restore() {
    use crate::events::{EventSink, PipelineEvent};

    struct CountRetired(u64);
    impl EventSink for CountRetired {
        fn on_event(&mut self, event: &PipelineEvent) {
            if matches!(event, PipelineEvent::Retired { .. }) {
                self.0 += 1;
            }
        }
    }

    let mut m = machine(UarchProfile::zen2());
    let mut a = Assembler::new(0x40_0000);
    a.push(Inst::MovImm {
        dst: Reg::R0,
        imm: 7,
    });
    a.push(Inst::Halt);
    let blob = load_user(&mut m, &a);
    m.set_pc(VirtAddr::new(blob.base));

    let id = m.attach_sink(CountRetired(0));
    let snap = m.snapshot();
    m.run(4).unwrap();
    m.restore(&snap);
    // The sink survives the rewind and keeps observing the replay.
    m.run(4).unwrap();
    let sink = m
        .detach_sink_as::<CountRetired>(id)
        .expect("still attached");
    assert_eq!(sink.0, 4, "retirements observed before AND after restore");
}

#[test]
fn restore_rewinds_memory_written_after_the_checkpoint() {
    let mut m = machine(UarchProfile::zen2());
    let data = VirtAddr::new(0x6000_0000);
    m.map_range(data, 0x3000, PageFlags::USER_DATA).unwrap();
    m.poke_u64(data, 0x1111);

    let snap = m.snapshot();
    // Dirty one page after the checkpoint, leave the others shared.
    m.poke_u64(data, 0x2222);
    m.poke_u64(data + 0x2000, 0x3333);
    m.restore(&snap);

    assert_eq!(m.peek_u64(data), 0x1111);
    assert_eq!(m.peek_u64(data + 0x2000), 0);
    // Restore copies back only the dirtied frames.
    assert!(m.phys().restore_frames_copied() >= 2);

    // A second divergence from the same snapshot also rewinds.
    m.poke_u64(data + 0x1000, 0x4444);
    m.restore(&snap);
    assert_eq!(m.peek_u64(data + 0x1000), 0);
    assert_eq!(m.peek_u64(data), 0x1111);
}

/// A machine (and therefore a checkpoint) can be shared by reference
/// across threads — the foundation of the fork-per-worker runner.
#[test]
fn machine_and_checkpoint_are_sync() {
    fn assert_sync<T: Sync>() {}
    assert_sync::<Machine>();
    assert_sync::<crate::machine::Checkpoint>();
}

#[test]
fn forks_share_the_base_and_diverge_privately() {
    let mut m = machine(UarchProfile::zen2());
    let data = VirtAddr::new(0x6000_0000);
    m.map_range(data, 0x2000, PageFlags::USER_DATA).unwrap();
    m.poke_u64(data, 0xba5e);
    let ck = m.into_checkpoint();

    let mut a = ck.fork();
    let mut b = ck.fork();
    assert_eq!(a.peek_u64(data), 0xba5e, "forks see the base state");
    a.poke_u64(data, 0xaaaa);
    b.poke_u64(data, 0xbbbb);
    assert_eq!(a.peek_u64(data), 0xaaaa);
    assert_eq!(b.peek_u64(data), 0xbbbb, "sibling writes never alias");
    assert!(
        a.phys().cow_faults() >= 1,
        "the fork's write unshared a frame"
    );

    // Rewind either fork and the base state is back — O(dirty frames).
    ck.rewind(&mut a);
    assert_eq!(a.peek_u64(data), 0xba5e);
    assert_eq!(
        b.peek_u64(data),
        0xbbbb,
        "rewinding one fork leaves siblings"
    );
}

#[test]
fn forks_probe_identically_across_worker_threads() {
    let mut m = machine(UarchProfile::zen2());
    let mut asm = Assembler::new(0x40_0000);
    asm.push(Inst::MovImm {
        dst: Reg::R0,
        imm: 5,
    });
    asm.push(Inst::MovImm {
        dst: Reg::R1,
        imm: 37,
    });
    asm.push(Inst::Alu {
        op: phantom_isa::inst::AluOp::Add,
        dst: Reg::R0,
        src: Reg::R1,
    });
    asm.push(Inst::Halt);
    let blob = load_user(&mut m, &asm);
    m.set_pc(VirtAddr::new(blob.base));
    let ck = m.into_checkpoint();

    let outcomes: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    let mut fork = ck.fork();
                    fork.run(100).expect("fork runs");
                    (fork.reg(Reg::R0), fork.cycles())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (r0, cycles) in &outcomes {
        assert_eq!(*r0, 42);
        assert_eq!(*cycles, outcomes[0].1, "forks are cycle-identical");
    }
}

// ---------------------------------------------------------------------
// Panic-path hardening: unresolved branch targets, straddling stack
// reads, and consecutive-fault reporting must fault, never panic.
// ---------------------------------------------------------------------

#[test]
fn branch_without_a_resolved_target_faults_instead_of_panicking() {
    // Only hand-built streams fed straight into `execute` can reach a
    // branch with `actual_target: None` — the decoder materializes
    // direct targets and the indirect/return paths resolve theirs.
    // Each of the five branch kinds must surface a precise
    // `NotExecutable` fault at the branch, not a panic.
    use phantom_isa::Cond;
    let branches = [
        Inst::Jmp { disp: 0 },
        Inst::Jcc {
            cond: Cond::Eq,
            disp: 0,
        },
        Inst::JmpInd { src: Reg::R0 },
        Inst::Call { disp: 0 },
        Inst::CallInd { src: Reg::R0 },
    ];
    let pc = VirtAddr::new(0x40_0000);
    for inst in branches {
        let mut m = machine(UarchProfile::zen2());
        let err = m
            .execute(inst, pc, inst.len() as u64, true, None, None)
            .expect_err("no handler: the fault surfaces as an error");
        match err {
            MachineError::Fault(f) => {
                assert_eq!(f.addr, pc, "{inst:?} faults at the branch itself");
                assert_eq!(f.access, AccessKind::Execute);
                assert_eq!(f.reason, FaultReason::NotExecutable);
            }
            other => panic!("{inst:?}: expected fault, got {other:?}"),
        }
    }

    // With a user-mode handler registered the same condition is
    // recoverable: redirect, record, keep running.
    let mut m = machine(UarchProfile::zen2());
    let handler = VirtAddr::new(0x41_0000);
    m.set_level(PrivilegeLevel::User);
    m.set_fault_handler(Some(handler));
    let halted = m
        .execute(Inst::Jmp { disp: 0 }, pc, 5, true, None, None)
        .expect("handled fault is not an error");
    assert!(!halted);
    assert_eq!(m.pc(), handler, "redirected to the handler");
    assert_eq!(m.last_fault().unwrap().addr, pc);
}

#[test]
fn ret_straddling_into_an_unmapped_page_faults_at_the_page_start() {
    // SP sits 4 bytes below an unmapped page, so the 8-byte
    // return-address read straddles the virtual boundary. It must
    // resolve as a fault naming the unmapped page — not silently read
    // whatever physical frame happens to follow the mapped one.
    let mut m = machine(UarchProfile::zen2());
    let mut a = Assembler::new(0x40_0000);
    a.push(Inst::Ret);
    a.org(0x40_0100);
    a.label("handler");
    a.push(Inst::Halt);
    let blob = load_user(&mut m, &a);
    let stack = VirtAddr::new(0x7000_0000);
    m.map_range(stack, 0x1000, PageFlags::USER_DATA).unwrap();
    m.set_reg(Reg::SP, 0x7000_1000 - 4);
    m.set_fault_handler(Some(VirtAddr::new(blob.addr("handler"))));
    m.set_pc(VirtAddr::new(blob.base));
    assert_eq!(m.run(10).unwrap(), RunExit::Halted);
    let fault = m.last_fault().expect("straddling ret faulted");
    assert_eq!(
        fault.addr,
        VirtAddr::new(0x7000_1000),
        "fault names the unmapped page, not the (mapped) stack pointer"
    );
    assert_eq!(fault.reason, FaultReason::NotPresent);
}

#[test]
fn consecutive_fetch_faults_report_the_most_recent_fault() {
    // The fault handler itself is unmapped, so every handler redirect
    // immediately faults again on fetch. The machine must keep
    // redirecting (no panic, no stale report): the caught fault handed
    // back by `handle_fault` — and `last_fault` — always name the most
    // recent faulting address.
    let mut m = machine(UarchProfile::zen2());
    let mut a = Assembler::new(0x40_0000);
    a.push(Inst::MovImm {
        dst: Reg::R0,
        imm: 0xdead_0000,
    });
    a.push(Inst::JmpInd { src: Reg::R0 });
    let blob = load_user(&mut m, &a);
    let handler = VirtAddr::new(0x66_0000); // never mapped
    m.set_fault_handler(Some(handler));
    m.set_pc(VirtAddr::new(blob.base));
    assert_eq!(m.run(6).unwrap(), RunExit::StepLimit);
    let fault = m.last_fault().unwrap();
    assert_eq!(fault.addr, handler, "second fault replaced the first");
    assert_eq!(fault.access, AccessKind::Execute);
    assert_eq!(m.pc(), handler, "still parked on the handler redirect");
}

// ---------------------------------------------------------------------
// Trace engine: self-modifying-code coherence and bit-identity.
// ---------------------------------------------------------------------

/// Record every pipeline event verbatim (cycle stamps included), for
/// byte-identical stream comparison across machine configurations.
struct RecordEvents(Vec<crate::events::PipelineEvent>);
impl crate::events::EventSink for RecordEvents {
    fn on_event(&mut self, event: &crate::events::PipelineEvent) {
        self.0.push(*event);
    }
}

/// A program whose hot inner function gets patched by its own store
/// mid-run: call `f` (returns 1 in r0) 24 times accumulating into r3,
/// overwrite `f`'s immediate with 2 through an architectural store,
/// call it 24 more times, halt. Correct final r3 is 24*1 + 24*2 = 72 —
/// any stale decode or stale trace block yields 48.
fn self_modifying_program(m: &mut Machine) {
    let f_addr = 0x40_0200u64;
    let mut patch = Vec::new();
    phantom_isa::encode::encode_into(
        &Inst::MovImm {
            dst: Reg::R0,
            imm: 2,
        },
        &mut patch,
    )
    .unwrap();
    phantom_isa::encode::encode_into(&Inst::Ret, &mut patch).unwrap();
    patch.resize(8, 0x90);
    let patch = u64::from_le_bytes(patch[..8].try_into().unwrap());

    let mut a = Assembler::new(0x40_0000);
    a.push(Inst::MovImm {
        dst: Reg::R6,
        imm: 1,
    });
    a.push(Inst::MovImm {
        dst: Reg::R5,
        imm: 24,
    });
    a.push(Inst::MovImm {
        dst: Reg::R4,
        imm: 0,
    });
    a.label("loop1");
    a.call("f");
    a.push(Inst::Alu {
        op: phantom_isa::inst::AluOp::Add,
        dst: Reg::R3,
        src: Reg::R0,
    });
    a.push(Inst::Alu {
        op: phantom_isa::inst::AluOp::Add,
        dst: Reg::R4,
        src: Reg::R6,
    });
    a.push(Inst::Cmp {
        a: Reg::R4,
        b: Reg::R5,
    });
    a.jb("loop1");
    // Patch f's `mov r0, 1` to `mov r0, 2` with one 8-byte store.
    a.push(Inst::MovImm {
        dst: Reg::R1,
        imm: patch,
    });
    a.push(Inst::MovImm {
        dst: Reg::R2,
        imm: f_addr,
    });
    a.push(Inst::Store {
        base: Reg::R2,
        disp: 0,
        src: Reg::R1,
    });
    a.push(Inst::MovImm {
        dst: Reg::R4,
        imm: 0,
    });
    a.label("loop2");
    a.call("f");
    a.push(Inst::Alu {
        op: phantom_isa::inst::AluOp::Add,
        dst: Reg::R3,
        src: Reg::R0,
    });
    a.push(Inst::Alu {
        op: phantom_isa::inst::AluOp::Add,
        dst: Reg::R4,
        src: Reg::R6,
    });
    a.push(Inst::Cmp {
        a: Reg::R4,
        b: Reg::R5,
    });
    a.jb("loop2");
    a.push(Inst::Halt);
    a.org(f_addr);
    a.label("f");
    a.push(Inst::MovImm {
        dst: Reg::R0,
        imm: 1,
    });
    a.push(Inst::Ret);
    a.push(Inst::NopN { len: 8 }); // patch slot slack past the ret
    let blob = load_user(m, &a);
    with_stack(m);
    m.set_pc(VirtAddr::new(blob.base));
}

#[test]
fn smc_over_a_hot_traced_loop_stays_coherent_and_bit_identical() {
    // The self-modifying program must (a) observe its own store — both
    // the decode cache and the trace cache drop the patched code — and
    // (b) produce a byte-identical event stream, cycle count and PMU
    // state whether the trace engine is on or off.
    let run = |trace: bool| {
        let mut m = machine(UarchProfile::zen2());
        m.set_trace_cache_enabled(trace);
        self_modifying_program(&mut m);
        let id = m.attach_sink(RecordEvents(Vec::new()));
        assert_eq!(m.run(100_000).unwrap(), RunExit::Halted);
        let events = m.detach_sink_as::<RecordEvents>(id).unwrap().0;
        (
            m.reg(Reg::R3),
            m.cycles(),
            m.pmu().clone(),
            events,
            m.trace_stats(),
        )
    };
    let (r3_off, cycles_off, pmu_off, events_off, stats_off) = run(false);
    let (r3_on, cycles_on, pmu_on, events_on, stats_on) = run(true);

    assert_eq!(r3_off, 72, "untraced machine observes the patch");
    assert_eq!(r3_on, 72, "traced machine observes the patch");
    assert_eq!(cycles_off, cycles_on, "cycle-identical");
    assert_eq!(pmu_off, pmu_on, "PMU-identical");
    assert_eq!(events_off, events_on, "event-stream-identical");
    assert_eq!(stats_off, (0, 0, 0), "disabled engine never counts");
    let (hits, _bailouts, invalidations) = stats_on;
    assert!(hits > 0, "hot loops replayed from the trace cache");
    assert!(
        invalidations >= 1,
        "the store over f invalidated its trace block"
    );
}

#[test]
fn trace_engine_is_invisible_across_snapshot_restore() {
    // Snapshot mid-loop, run on, rewind, run to completion — with the
    // trace engine on and off. Registers, cycles, PMU and the full
    // event stream must match bit for bit; the surviving trace blocks
    // revalidate against the restored memory rather than replaying
    // stale state.
    let run = |trace: bool| {
        let mut m = machine(UarchProfile::zen2());
        m.set_trace_cache_enabled(trace);
        let mut a = Assembler::new(0x40_0000);
        a.push(Inst::MovImm {
            dst: Reg::R0,
            imm: 0,
        });
        a.push(Inst::MovImm {
            dst: Reg::R1,
            imm: 1,
        });
        a.push(Inst::MovImm {
            dst: Reg::R2,
            imm: 64,
        });
        a.label("loop_top");
        a.push(Inst::Alu {
            op: phantom_isa::inst::AluOp::Add,
            dst: Reg::R0,
            src: Reg::R1,
        });
        a.push(Inst::Cmp {
            a: Reg::R0,
            b: Reg::R2,
        });
        a.jb("loop_top");
        a.push(Inst::Halt);
        let blob = load_user(&mut m, &a);
        m.set_pc(VirtAddr::new(blob.base));

        let id = m.attach_sink(RecordEvents(Vec::new()));
        m.run(40).unwrap(); // get the loop hot
        let snap = m.snapshot();
        m.run(50).unwrap(); // diverge past the checkpoint
        m.restore(&snap);
        assert_eq!(m.run(100_000).unwrap(), RunExit::Halted);
        let events = m.detach_sink_as::<RecordEvents>(id).unwrap().0;
        (
            m.reg(Reg::R0),
            m.cycles(),
            m.pmu().clone(),
            events,
            m.trace_stats(),
        )
    };
    let (r0_off, cycles_off, pmu_off, events_off, _) = run(false);
    let (r0_on, cycles_on, pmu_on, events_on, stats_on) = run(true);
    assert_eq!(r0_off, 64);
    assert_eq!(r0_on, 64);
    assert_eq!(cycles_off, cycles_on, "cycle-identical across rewind");
    assert_eq!(pmu_off, pmu_on, "PMU-identical across rewind");
    assert_eq!(
        events_off, events_on,
        "event-stream-identical across rewind"
    );
    assert!(stats_on.0 > 0, "the hot loop replayed from the trace cache");
}
