//! The fetch stage: architectural and wrong-path instruction fetch.

use std::collections::HashSet;

use phantom_mem::{AccessKind, PageFault, VirtAddr};

use crate::events::PipelineEvent;

use super::Machine;

impl Machine {
    /// Architecturally fetch the line at `pc`: translate with execute
    /// permission, charge TLB and I-cache timing, and emit
    /// [`PipelineEvent::FetchLine`]. A translation fault is returned to
    /// the caller (the commit stage decides whether it is caught).
    pub(super) fn arch_fetch(&mut self, pc: VirtAddr) -> Result<(), PageFault> {
        let pa = self.translate_charged(pc, AccessKind::Execute)?;
        let (level, lat) = self.caches.access_inst(pa.raw());
        self.cycles += lat;
        self.emit(PipelineEvent::FetchLine {
            va: pc,
            level,
            transient: false,
        });
        Ok(())
    }

    /// Read up to `n` code bytes at `va` with execute permission at the
    /// current privilege level, stopping at the first fault.
    pub(super) fn read_code_bytes(&self, va: VirtAddr, n: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            match self.translate_fast(va + i as u64, AccessKind::Execute, self.level) {
                Ok(pa) => out.push(self.phys.read_u8(pa)),
                Err(_) => break,
            }
        }
        out
    }

    /// Transiently touch the cache line holding `va`: fetch it into the
    /// I-cache and, when `decode_stage` is set, fill the µop cache for
    /// it. `lines` de-duplicates per-window touches. Returns whether
    /// the address was accessible — an inaccessible target (unmapped /
    /// NX / supervisor-only from user) fills nothing, which is
    /// primitive P1's signal.
    pub(super) fn transient_touch(
        &mut self,
        va: VirtAddr,
        decode_stage: bool,
        lines: &mut HashSet<u64>,
    ) -> bool {
        let line = va.raw() & !63;
        if !lines.insert(line) {
            return true;
        }
        match self.translate_fast(va, AccessKind::Execute, self.level) {
            Ok(pa) => {
                let (level, _) = self.caches.access_inst(pa.raw());
                self.emit(PipelineEvent::FetchLine {
                    va,
                    level,
                    transient: true,
                });
                if decode_stage {
                    self.uop_cache.fill(va.raw());
                    self.emit(PipelineEvent::UopCacheFill {
                        va,
                        transient: true,
                    });
                }
                true
            }
            Err(_) => false,
        }
    }
}
