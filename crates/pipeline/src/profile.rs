//! Per-microarchitecture profiles.
//!
//! Each profile bundles a BTB indexing scheme, cache geometry, stage
//! latencies, mitigation support and a clock frequency. Table 1 of the
//! paper emerges from these parameters: every tested part fetches and
//! decodes phantom targets (fetch/decode latencies beat the earliest
//! resteer), while only Zen 1/2 have a decoder-resteer latency slow
//! enough for target µops to dispatch a load (`phantom_exec_uops > 0`).
//!
//! A profile is *compiled* from a declarative [`UarchSpec`]
//! (see [`crate::spec`]): the builtin constructors here delegate to the
//! builtin specs, and [`UarchProfile::all`] is served by the
//! [`UarchRegistry`].

use phantom_bpu::{BtbScheme, CbpScheme};
use phantom_cache::{CacheGeometry, HierarchyConfig};

use crate::intern::IStr;
use crate::spec::{UarchRegistry, UarchSpec};

/// CPU vendor, for reporting and for behavior that splits by vendor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// Advanced Micro Devices.
    Amd,
    /// Intel.
    Intel,
}

impl std::fmt::Display for Vendor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Vendor::Amd => f.write_str("AMD"),
            Vendor::Intel => f.write_str("Intel"),
        }
    }
}

/// A microarchitecture configuration for the [`Machine`](crate::Machine).
///
/// # Examples
///
/// ```
/// use phantom_pipeline::UarchProfile;
/// let zen2 = UarchProfile::zen2();
/// assert!(zen2.phantom_exec_uops > 0, "Zen 2 executes phantom targets");
/// let zen4 = UarchProfile::zen4();
/// assert_eq!(zen4.phantom_exec_uops, 0, "Zen 4 squashes before execute");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UarchProfile {
    /// Human-readable name ("Zen 2", "Intel 12th gen (P core)").
    /// Interned so runtime-defined uarches cost one allocation
    /// process-wide, however many trials clone the profile.
    pub name: IStr,
    /// The representative retail part the paper tested.
    pub model: IStr,
    /// Vendor.
    pub vendor: Vendor,
    /// BTB alias scheme.
    pub btb_scheme: BtbScheme,
    /// Conditional-branch-predictor indexing scheme.
    pub cbp_scheme: CbpScheme,
    /// Cache-hierarchy geometry and latencies.
    pub cache: HierarchyConfig,
    /// µop-cache shape (64 sets × 8 ways × 64 B on every paper part).
    pub uop_geometry: CacheGeometry,
    /// Fetch window in bytes (typically 32).
    pub fetch_block: u64,
    /// Cycles for the fetch unit to request the predicted target
    /// (pipeline distance from prediction to I-cache access).
    pub fetch_latency: u64,
    /// Cycles from fetched bytes to decoded µops.
    pub decode_latency: u64,
    /// Cycles between the decoder spotting a mismatch and the squash
    /// taking effect at the frontend (the PHANTOM window ends here).
    pub frontend_resteer_latency: u64,
    /// Cycles for an execute-dependent branch to resolve in the backend
    /// (the conventional Spectre window ends here).
    pub backend_resteer_latency: u64,
    /// µop budget a *frontend-resteered* (phantom) target can dispatch
    /// before the squash: nonzero only where decode-resteer is slower
    /// than dispatch (Zen 1/2 — observation O3).
    pub phantom_exec_uops: u32,
    /// µop budget for a *backend-resteered* (Spectre) path.
    pub spectre_exec_uops: u32,
    /// Whether the `SuppressBPOnNonBr` MSR bit exists (Zen 2+; §8.1 notes
    /// it is absent on Zen 1).
    pub supports_suppress_bp_on_non_br: bool,
    /// Whether AutoIBRS exists (Zen 4).
    pub supports_auto_ibrs: bool,
    /// Intel blind spot from §6: with a `jmp*` *victim*, some Intel parts
    /// showed no ID (and sometimes no IF) signal. Modeled as the BPU
    /// declining to steer on these parts when the victim alias class was
    /// most recently a kernel-observed indirect site is beyond reach of
    /// the model, so we gate purely by victim decode kind at resteer
    /// bookkeeping time.
    pub indirect_victim_blind: bool,
    /// Nominal frequency (GHz) used to convert cycles to wall-clock
    /// seconds for leak-rate reporting.
    pub freq_ghz: f64,
}

impl UarchProfile {
    /// AMD Zen 1 (Ryzen 5 1600X in the paper).
    pub fn zen1() -> UarchProfile {
        UarchSpec::zen1().profile()
    }

    /// AMD Zen 2 (EPYC 7252 in the paper).
    pub fn zen2() -> UarchProfile {
        UarchSpec::zen2().profile()
    }

    /// AMD Zen 3 (Ryzen 5 5600G in the paper). First part with the
    /// `b47`-folded cross-privilege BTB functions of Figure 7.
    pub fn zen3() -> UarchProfile {
        UarchSpec::zen3().profile()
    }

    /// AMD Zen 4 (Ryzen 7 7700X in the paper). Adds AutoIBRS.
    pub fn zen4() -> UarchProfile {
        UarchSpec::zen4().profile()
    }

    /// Intel 9th generation (Coffee Lake Refresh).
    pub fn intel9() -> UarchProfile {
        UarchSpec::intel9().profile()
    }

    /// Intel 11th generation (Rocket Lake).
    pub fn intel11() -> UarchProfile {
        UarchSpec::intel11().profile()
    }

    /// Intel 12th generation P core (Golden Cove).
    pub fn intel12() -> UarchProfile {
        UarchSpec::intel12().profile()
    }

    /// Intel 13th generation P core (Raptor Cove).
    pub fn intel13() -> UarchProfile {
        UarchSpec::intel13().profile()
    }

    /// All eight profiles evaluated in Table 1, in the paper's order,
    /// compiled from the builtin spec registry.
    pub fn all() -> Vec<UarchProfile> {
        UarchRegistry::builtin().profiles()
    }

    /// The four AMD profiles (the exploitation targets).
    pub fn amd() -> Vec<UarchProfile> {
        vec![
            UarchProfile::zen1(),
            UarchProfile::zen2(),
            UarchProfile::zen3(),
            UarchProfile::zen4(),
        ]
    }

    /// Convert a cycle count to seconds at this profile's frequency.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_ghz * 1e9)
    }
}

impl std::fmt::Display for UarchProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.name, self.model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_profiles_in_paper_order() {
        let all = UarchProfile::all();
        assert_eq!(all.len(), 8);
        assert_eq!(all[0].name, "Zen");
        assert_eq!(all[3].name, "Zen 4");
        assert_eq!(all[4].vendor, Vendor::Intel);
    }

    #[test]
    fn only_zen12_execute_phantom_targets() {
        for p in UarchProfile::all() {
            let should_exec = matches!(p.name.as_str(), "Zen" | "Zen 2");
            assert_eq!(p.phantom_exec_uops > 0, should_exec, "{p}");
        }
    }

    #[test]
    fn stage_latencies_order_correctly() {
        for p in UarchProfile::all() {
            // Fetch always completes before the frontend resteer lands:
            // transient fetch on every part (O1).
            assert!(p.fetch_latency < p.frontend_resteer_latency, "{p}");
            // Decode of the target also beats the resteer (O2).
            assert!(
                p.fetch_latency + p.decode_latency <= p.frontend_resteer_latency,
                "{p}"
            );
            // Backend windows dwarf frontend windows.
            assert!(
                p.backend_resteer_latency > 4 * p.frontend_resteer_latency,
                "{p}"
            );
        }
    }

    #[test]
    fn mitigation_support_matrix() {
        assert!(
            !UarchProfile::zen1().supports_suppress_bp_on_non_br,
            "§8.1: not on Zen 1"
        );
        assert!(UarchProfile::zen2().supports_suppress_bp_on_non_br);
        assert!(UarchProfile::zen4().supports_auto_ibrs);
        assert!(!UarchProfile::zen3().supports_auto_ibrs);
        for p in [UarchProfile::intel9(), UarchProfile::intel13()] {
            assert!(p.btb_scheme.privilege_tagged, "{p}");
        }
    }

    #[test]
    fn builtin_profiles_carry_the_legacy_cbp() {
        for p in UarchProfile::all() {
            assert_eq!(p.cbp_scheme, CbpScheme::legacy(), "{p}");
        }
    }

    #[test]
    fn profiles_carry_the_paper_cache_shape() {
        for p in UarchProfile::all() {
            assert_eq!(p.cache, HierarchyConfig::default(), "{p}");
            assert_eq!(p.uop_geometry, CacheGeometry::uop_cache(), "{p}");
        }
    }

    #[test]
    fn cycles_to_seconds_scales_by_frequency() {
        let p = UarchProfile::zen3(); // 3.9 GHz
        let s = p.cycles_to_seconds(3_900_000_000);
        assert!((s - 1.0).abs() < 1e-9);
    }
}
