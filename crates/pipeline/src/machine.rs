//! The simulated CPU: architectural execution with pre-decode
//! speculation modeling.

use phantom_bpu::{Bpu, MsrState, Prediction};
use phantom_cache::{CacheHierarchy, Event, HierarchyConfig, Level, PerfCounters, UopCache};
use phantom_isa::asm::Blob;
use phantom_isa::decode::decode;
use phantom_isa::{BranchKind, Inst, Reg};
use phantom_mem::phys::OutOfFrames;
use phantom_mem::{AccessKind, PageFault, PageFlags, PageTable, PhysMemory, PrivilegeLevel, Tlb, VirtAddr, PAGE_SIZE};

use crate::profile::UarchProfile;
use crate::resteer::{classify_predicted, classify_unpredicted, ResteerKind, SpeculationVerdict};
use crate::transient::{TransientReport, TransientWindow};

/// Fatal machine conditions (as opposed to architectural page faults,
/// which a registered handler can catch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// An unhandled page fault (no fault handler registered, or the
    /// fault occurred in supervisor mode).
    Fault(PageFault),
    /// Decoded an [`Inst::Invalid`] byte.
    InvalidInstruction {
        /// Where.
        pc: VirtAddr,
        /// The offending byte.
        byte: u8,
    },
    /// `syscall` executed but no kernel entry point is configured.
    NoSyscallEntry,
    /// `sysret` without a pending `syscall`.
    SysretWithoutSyscall,
    /// Physical memory exhausted while mapping.
    OutOfMemory(OutOfFrames),
    /// The code bytes at PC were truncated (ran off a mapping).
    TruncatedCode(VirtAddr),
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::Fault(pf) => write!(f, "unhandled {pf}"),
            MachineError::InvalidInstruction { pc, byte } => {
                write!(f, "invalid instruction byte {byte:#04x} at {pc}")
            }
            MachineError::NoSyscallEntry => f.write_str("syscall with no kernel entry configured"),
            MachineError::SysretWithoutSyscall => f.write_str("sysret without pending syscall"),
            MachineError::OutOfMemory(e) => write!(f, "{e}"),
            MachineError::TruncatedCode(pc) => write!(f, "truncated code bytes at {pc}"),
        }
    }
}

impl std::error::Error for MachineError {}

impl From<OutOfFrames> for MachineError {
    fn from(e: OutOfFrames) -> Self {
        MachineError::OutOfMemory(e)
    }
}

/// The result of one architectural step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepOutcome {
    /// PC of the stepped instruction.
    pub pc: VirtAddr,
    /// The instruction.
    pub inst: Inst,
    /// The transient (wrong-path) activity this step triggered, if any.
    pub transient: Option<TransientReport>,
    /// Whether the machine halted.
    pub halted: bool,
    /// An architectural fault that was *caught* by the registered
    /// handler this step (the handler is now the PC).
    pub caught_fault: Option<PageFault>,
}

/// Why [`Machine::run`] returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunExit {
    /// A `hlt` retired.
    Halted,
    /// The step budget was exhausted.
    StepLimit,
}

/// The simulated CPU.
///
/// See the [crate-level docs](crate) for the speculation model and an
/// example.
#[derive(Debug, Clone)]
pub struct Machine {
    profile: UarchProfile,
    bpu: Bpu,
    caches: CacheHierarchy,
    uop_cache: UopCache,
    pmu: PerfCounters,
    phys: PhysMemory,
    page_table: PageTable,
    /// Timing-only TLB: translation correctness always comes from the
    /// page table; a TLB miss just charges page-walk latency. (This is
    /// deliberately conservative — stale-entry semantics cannot arise.)
    tlb: Tlb,
    regs: [u64; 16],
    zf: bool,
    sf: bool,
    cf: bool,
    pc: VirtAddr,
    level: PrivilegeLevel,
    thread: u8,
    cycles: u64,
    syscall_entry: Option<VirtAddr>,
    syscall_return: Option<(VirtAddr, PrivilegeLevel)>,
    fault_handler: Option<VirtAddr>,
    last_fault: Option<PageFault>,
    halted: bool,
}

impl Machine {
    /// Create a machine with `phys_bytes` of physical memory, all
    /// mitigation MSRs off.
    pub fn new(profile: UarchProfile, phys_bytes: u64) -> Machine {
        let bpu = Bpu::new(profile.btb_scheme.clone(), MsrState::none());
        Machine {
            profile,
            bpu,
            caches: CacheHierarchy::new(HierarchyConfig::default()),
            uop_cache: UopCache::new(),
            pmu: PerfCounters::new(),
            phys: PhysMemory::new(phys_bytes),
            page_table: PageTable::new(),
            tlb: Tlb::new(64, 8),
            regs: [0; 16],
            zf: false,
            sf: false,
            cf: false,
            pc: VirtAddr::new(0),
            level: PrivilegeLevel::User,
            thread: 0,
            cycles: 0,
            syscall_entry: None,
            syscall_return: None,
            fault_handler: None,
            last_fault: None,
            halted: false,
        }
    }

    // ----- accessors -------------------------------------------------

    /// The active microarchitecture profile.
    pub fn profile(&self) -> &UarchProfile {
        &self.profile
    }

    /// The branch prediction unit.
    pub fn bpu(&self) -> &Bpu {
        &self.bpu
    }

    /// The branch prediction unit, mutably (training, IBPB, MSRs).
    pub fn bpu_mut(&mut self) -> &mut Bpu {
        &mut self.bpu
    }

    /// The cache hierarchy.
    pub fn caches(&self) -> &CacheHierarchy {
        &self.caches
    }

    /// The cache hierarchy, mutably (priming, flushing, probing).
    pub fn caches_mut(&mut self) -> &mut CacheHierarchy {
        &mut self.caches
    }

    /// The µop cache.
    pub fn uop_cache(&self) -> &UopCache {
        &self.uop_cache
    }

    /// The µop cache, mutably.
    pub fn uop_cache_mut(&mut self) -> &mut UopCache {
        &mut self.uop_cache
    }

    /// Performance counters.
    pub fn pmu(&self) -> &PerfCounters {
        &self.pmu
    }

    /// Performance counters, mutably (reset between samples).
    pub fn pmu_mut(&mut self) -> &mut PerfCounters {
        &mut self.pmu
    }

    /// Physical memory.
    pub fn phys(&self) -> &PhysMemory {
        &self.phys
    }

    /// Physical memory, mutably.
    pub fn phys_mut(&mut self) -> &mut PhysMemory {
        &mut self.phys
    }

    /// The page table.
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// The page table, mutably (the §6.2 PTE-flag tricks).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    /// The (timing-only) TLB.
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    /// The TLB, mutably (flushes on context switches in experiments).
    pub fn tlb_mut(&mut self) -> &mut Tlb {
        &mut self.tlb
    }

    /// Page-walk cost charged on a TLB miss, in cycles.
    pub const PAGE_WALK_CYCLES: u64 = 20;

    /// Charge TLB lookup/fill timing for an architectural access to
    /// `va` that resolved to `pa` (ASID 0 = user, 1 = supervisor).
    fn charge_tlb(&mut self, va: VirtAddr, pa: phantom_mem::PhysAddr) {
        let asid = match self.level {
            PrivilegeLevel::User => 0,
            PrivilegeLevel::Supervisor => 1,
        };
        if self.tlb.lookup(va, asid).is_none() {
            self.cycles += Self::PAGE_WALK_CYCLES;
            let flags = self.page_table.flags_of(va).unwrap_or(PageFlags::NONE);
            self.tlb.insert(va, pa, flags, asid);
        }
    }

    /// Elapsed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Charge extra cycles (harness-level costs like reboots).
    pub fn add_cycles(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Current program counter.
    pub fn pc(&self) -> VirtAddr {
        self.pc
    }

    /// Set the program counter.
    pub fn set_pc(&mut self, pc: VirtAddr) {
        self.pc = pc;
        self.halted = false;
    }

    /// Current privilege level.
    pub fn level(&self) -> PrivilegeLevel {
        self.level
    }

    /// Force the privilege level (test setup).
    pub fn set_level(&mut self, level: PrivilegeLevel) {
        self.level = level;
    }

    /// Current SMT thread id.
    pub fn thread(&self) -> u8 {
        self.thread
    }

    /// Switch the SMT thread id.
    pub fn set_thread(&mut self, thread: u8) {
        self.thread = thread;
    }

    /// Read a register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[usize::from(r.index())]
    }

    /// Write a register.
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        self.regs[usize::from(r.index())] = value;
    }

    /// The most recent architectural fault (caught or not).
    pub fn last_fault(&self) -> Option<PageFault> {
        self.last_fault
    }

    /// The current flags `(zf, sf, cf)`.
    pub fn flags(&self) -> (bool, bool, bool) {
        (self.zf, self.sf, self.cf)
    }

    /// Force the flags (test/experiment setup; architecturally flags are
    /// produced by `cmp`).
    pub fn set_flags(&mut self, zf: bool, sf: bool, cf: bool) {
        self.zf = zf;
        self.sf = sf;
        self.cf = cf;
    }

    /// Register a user-mode fault handler (the attacker's SIGSEGV
    /// handler, used to survive training branches into the kernel).
    pub fn set_fault_handler(&mut self, handler: Option<VirtAddr>) {
        self.fault_handler = handler;
    }

    /// Configure the kernel entry point `syscall` jumps to.
    pub fn set_syscall_entry(&mut self, entry: Option<VirtAddr>) {
        self.syscall_entry = entry;
    }

    /// Write the mitigation MSRs. Unsupported bits are clamped off, as on
    /// real parts (`SuppressBPOnNonBr` does not exist on Zen 1, AutoIBRS
    /// only on Zen 4). Returns the effective state.
    pub fn write_msr(&mut self, requested: MsrState) -> MsrState {
        let effective = MsrState {
            suppress_bp_on_non_br: requested.suppress_bp_on_non_br
                && self.profile.supports_suppress_bp_on_non_br,
            auto_ibrs: requested.auto_ibrs && self.profile.supports_auto_ibrs,
            eibrs_tagging: requested.eibrs_tagging
                && self.profile.vendor == crate::profile::Vendor::Intel,
            stibp: requested.stibp,
        };
        self.bpu.set_msr(effective);
        effective
    }

    // ----- memory setup helpers --------------------------------------

    /// Map `[va, va+len)` with fresh frames and the given flags. Pages
    /// already mapped are left as they are.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfMemory`] if physical memory runs out.
    pub fn map_range(&mut self, va: VirtAddr, len: u64, flags: PageFlags) -> Result<(), MachineError> {
        let start = va.page_base();
        let end = (va + len + PAGE_SIZE - 1).page_base();
        let mut page = start;
        while page < end {
            if self.page_table.flags_of(page).is_none() {
                let frame = self.phys.alloc_frame()?;
                self.page_table.map_4k(page, frame, flags);
            }
            page = page + PAGE_SIZE;
        }
        Ok(())
    }

    /// Load an assembled blob: map its pages with `flags` and copy the
    /// bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfMemory`] if physical memory runs out.
    pub fn load_blob(&mut self, blob: &Blob, flags: PageFlags) -> Result<(), MachineError> {
        self.map_range(VirtAddr::new(blob.base), blob.bytes.len().max(1) as u64, flags)?;
        self.poke(VirtAddr::new(blob.base), &blob.bytes);
        Ok(())
    }

    /// Write bytes through the page table, ignoring permission bits
    /// (setup/debug only — not an architectural store).
    ///
    /// # Panics
    ///
    /// Panics if any page in the range is unmapped.
    pub fn poke(&mut self, va: VirtAddr, bytes: &[u8]) {
        // Translate once per page and write page-sized chunks.
        let mut off = 0usize;
        while off < bytes.len() {
            let addr = va + off as u64;
            let pa = self
                .page_table
                .translate(addr, AccessKind::Read, PrivilegeLevel::Supervisor)
                .unwrap_or_else(|e| panic!("poke at unmapped {addr}: {e}"));
            let in_page = (PAGE_SIZE - addr.page_offset()) as usize;
            let chunk = in_page.min(bytes.len() - off);
            self.phys.write_bytes(pa, &bytes[off..off + chunk]);
            off += chunk;
        }
    }

    /// Read bytes through the page table, ignoring permission bits
    /// (setup/debug only).
    ///
    /// # Panics
    ///
    /// Panics if any page in the range is unmapped.
    pub fn peek(&self, va: VirtAddr, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let addr = va + out.len() as u64;
            let pa = self
                .page_table
                .translate(addr, AccessKind::Read, PrivilegeLevel::Supervisor)
                .unwrap_or_else(|e| panic!("peek at unmapped {addr}: {e}"));
            let in_page = (PAGE_SIZE - addr.page_offset()) as usize;
            let chunk = in_page.min(len - out.len());
            out.extend(self.phys.read_bytes(pa, chunk));
        }
        out
    }

    /// Write a u64 via [`Machine::poke`].
    pub fn poke_u64(&mut self, va: VirtAddr, value: u64) {
        self.poke(va, &value.to_le_bytes());
    }

    /// Read a u64 via [`Machine::peek`].
    pub fn peek_u64(&self, va: VirtAddr) -> u64 {
        u64::from_le_bytes(self.peek(va, 8).try_into().expect("8 bytes"))
    }

    // ----- fetch helpers ----------------------------------------------

    /// Read up to `n` code bytes at `va` with execute permission at the
    /// current privilege level, stopping at the first fault.
    fn read_code_bytes(&self, va: VirtAddr, n: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            match self
                .page_table
                .translate(va + i as u64, AccessKind::Execute, self.level)
            {
                Ok(pa) => out.push(self.phys.read_u8(pa)),
                Err(_) => break,
            }
        }
        out
    }

    fn handle_fault(&mut self, fault: PageFault) -> Result<(), MachineError> {
        self.last_fault = Some(fault);
        if self.level == PrivilegeLevel::User {
            if let Some(handler) = self.fault_handler {
                self.pc = handler;
                // Signal delivery is expensive.
                self.cycles += 2000;
                return Ok(());
            }
        }
        Err(MachineError::Fault(fault))
    }

    // ----- the step ----------------------------------------------------

    /// Execute one architectural instruction, resolving the speculation
    /// the frontend performed around it.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] on unhandled faults, invalid
    /// instructions, or missing syscall wiring.
    pub fn step(&mut self) -> Result<StepOutcome, MachineError> {
        let pc = self.pc;

        // --- Instruction fetch (architectural). ---
        match self.page_table.translate(pc, AccessKind::Execute, self.level) {
            Ok(pa) => {
                self.charge_tlb(pc, pa);
                let (lvl, lat) = self.caches.access_inst(pa.raw());
                if lvl == Level::Memory {
                    self.pmu.bump(Event::IcacheMiss);
                }
                self.cycles += lat;
            }
            Err(fault) => {
                self.handle_fault(fault)?;
                return Ok(StepOutcome {
                    pc,
                    inst: Inst::Nop,
                    transient: None,
                    halted: false,
                    caught_fault: Some(self.last_fault.expect("just set")),
                });
            }
        }

        let bytes = self.read_code_bytes(pc, 15);
        let (inst, len) = match decode(&bytes) {
            Some(pair) => pair,
            None => return Err(MachineError::TruncatedCode(pc)),
        };
        if let Inst::Invalid { byte } = inst {
            return Err(MachineError::InvalidInstruction { pc, byte });
        }
        let len = len as u64;

        // --- µop cache dispatch. ---
        if self.uop_cache.dispatch_lookup(pc.raw()) {
            self.pmu.bump(Event::OpCacheHit);
            self.pmu.bump(Event::UopsFromOpCache);
        } else {
            self.pmu.bump(Event::OpCacheMiss);
            self.pmu.bump(Event::UopsFromDecoder);
            self.uop_cache.fill(pc.raw());
            self.cycles += self.profile.decode_latency;
            // SuppressBPOnNonBr makes the frontend wait for decode
            // confirmation before acting on a prediction at a block not
            // yet known to contain a branch — a small bubble on every
            // decoder-path (µop-cache-miss) fetch. This is the §6.3
            // performance cost (0.69% single-core on UnixBench).
            if self.bpu.msr().suppress_bp_on_non_br {
                self.cycles += 1;
            }
        }

        // --- Pre-decode prediction for this instruction's span. ---
        let pred = self.bpu.predict_window(pc, len, self.level, self.thread);

        // --- Resolve architectural branch semantics. ---
        let (taken, actual_target) = self.resolve_branch(&inst, pc)?;

        // --- Classify and run the wrong path. ---
        let verdict = match &pred {
            Some(p) => classify_predicted(p, &inst, actual_target, taken),
            None => classify_unpredicted(&inst, pc, taken),
        };
        let transient = match verdict {
            SpeculationVerdict::Mispredicted { resteer, transient_target } => {
                self.pmu.bump(Event::BranchMispredict);
                match resteer {
                    ResteerKind::Frontend => {
                        self.pmu.bump(Event::ResteerFrontend);
                        self.cycles += self.profile.frontend_resteer_latency;
                    }
                    ResteerKind::Backend => {
                        self.pmu.bump(Event::ResteerBackend);
                        self.cycles += self.profile.backend_resteer_latency;
                    }
                }
                let window = self.window_for(&inst, pred.as_ref(), resteer);
                Some(match transient_target {
                    Some(target) => self.run_transient(target, window),
                    None => TransientReport { window: Some(window), ..TransientReport::none() },
                })
            }
            _ => None,
        };

        // --- Architectural execute. ---
        let outcome = self.execute(inst, pc, len, taken, actual_target, pred.as_ref())?;
        self.cycles += 1;
        self.pmu.bump(Event::InstRetired);

        Ok(StepOutcome { pc, inst, transient, halted: outcome, caught_fault: None })
    }

    /// Resolve (taken, target) for the instruction before executing it.
    fn resolve_branch(
        &mut self,
        inst: &Inst,
        pc: VirtAddr,
    ) -> Result<(bool, Option<VirtAddr>), MachineError> {
        Ok(match inst {
            Inst::Jmp { .. } | Inst::Call { .. } => {
                (true, inst.direct_target(pc.raw()).map(VirtAddr::new))
            }
            Inst::Jcc { cond, .. } => {
                let taken = cond.eval(self.zf, self.sf, self.cf);
                let target = if taken {
                    inst.direct_target(pc.raw()).map(VirtAddr::new)
                } else {
                    None
                };
                (taken, target)
            }
            Inst::JmpInd { src } | Inst::CallInd { src } => {
                (true, Some(VirtAddr::new(self.reg(*src))))
            }
            Inst::Ret => {
                // Architectural return address from the stack.
                let sp = VirtAddr::new(self.reg(Reg::SP));
                match self.page_table.translate(sp, AccessKind::Read, self.level) {
                    Ok(pa) => (true, Some(VirtAddr::new(self.phys.read_u64(pa)))),
                    Err(_) => (true, None), // stack fault resolves at execute
                }
            }
            _ => (false, None),
        })
    }

    /// Derive the transient window for a misprediction at `inst`, gated
    /// by the active mitigations.
    fn window_for(
        &self,
        inst: &Inst,
        pred: Option<&Prediction>,
        resteer: ResteerKind,
    ) -> TransientWindow {
        // Intel jmp*-victim blind spot (§6): no IF/ID signal.
        if self.profile.indirect_victim_blind
            && inst.kind() == BranchKind::Indirect
            && pred.is_some()
        {
            return TransientWindow::suppressed(resteer);
        }
        let mut window = TransientWindow::for_resteer(&self.profile, resteer);
        // AutoIBRS: a restricted prediction may fetch and decode, never
        // execute (O5).
        if pred.is_some_and(|p| p.restricted) {
            window = window.without_execute();
        }
        // SuppressBPOnNonBr: gates execute only, and only when the victim
        // decodes as a non-branch (O4).
        if self.bpu.msr().suppress_bp_on_non_br
            && self.profile.supports_suppress_bp_on_non_br
            && inst.kind() == BranchKind::NotBranch
        {
            window = window.without_execute();
        }
        window
    }

    /// Simulate the squashed wrong path: transient fetch, decode and a
    /// bounded number of µops, with nested phantom steering.
    pub fn run_transient(&mut self, start: VirtAddr, window: TransientWindow) -> TransientReport {
        let mut report = TransientReport {
            target: Some(start),
            window: Some(window),
            ..TransientReport::none()
        };
        if !window.fetch {
            return report;
        }

        // Transient fetch of the target line. An inaccessible target
        // (unmapped / NX / supervisor-only from user) fills nothing —
        // primitive P1's signal.
        let mut visited_lines = std::collections::HashSet::new();
        let visit =
            |m: &mut Machine, va: VirtAddr, decode_stage: bool, lines: &mut std::collections::HashSet<u64>| -> bool {
                let line = va.raw() & !63;
                if !lines.insert(line) {
                    return true;
                }
                match m.page_table.translate(va, AccessKind::Execute, m.level) {
                    Ok(pa) => {
                        let (lvl, _) = m.caches.access_inst(pa.raw());
                        if lvl == Level::Memory {
                            m.pmu.bump(Event::IcacheMiss);
                        }
                        if decode_stage {
                            m.uop_cache.fill(va.raw());
                            m.pmu.bump(Event::UopsFromDecoder);
                        }
                        true
                    }
                    Err(_) => false,
                }
            };

        if !visit(self, start, window.decode, &mut visited_lines) {
            return report;
        }
        report.fetched = true;
        if !window.decode {
            return report;
        }
        report.decoded = true;

        // Decode the first fetch block's worth of lines at the target.
        let block = self.profile.fetch_block;
        let mut off = 64 - (start.raw() & 63);
        while off < block {
            visit(self, start + off, true, &mut visited_lines);
            off += 64;
        }

        if window.exec_uops == 0 {
            return report;
        }

        // Transient execution over a copy of the register file — the
        // wrong path sees the victim's live registers (that is P3).
        let mut tregs = self.regs;
        let (mut tzf, mut tsf, mut tcf) = (self.zf, self.sf, self.cf);
        let mut tpc = start;
        let mut budget = window.exec_uops;

        while budget > 0 {
            if !visit(self, tpc, true, &mut visited_lines) {
                break;
            }
            let bytes = self.read_code_bytes(tpc, 15);
            let (inst, len) = match decode(&bytes) {
                Some(pair) => pair,
                None => break,
            };
            budget -= 1;

            // Nested phantom steer: the BTB may claim this transient
            // instruction is a branch of a different kind (§7.4 nests
            // PHANTOM inside a Spectre window this way).
            if let Some(hit) = self.bpu.btb().lookup(tpc) {
                if hit.kind != inst.kind() {
                    if let Some(nested_target) = hit.target {
                        report.nested_phantom = true;
                        // The inner window is a frontend resteer: fetch +
                        // decode always; execute only with a phantom
                        // budget (Zen 1/2).
                        visit(self, nested_target, true, &mut visited_lines);
                        if self.profile.phantom_exec_uops == 0 {
                            break;
                        }
                        budget = budget.min(self.profile.phantom_exec_uops);
                        tpc = nested_target;
                        continue;
                    }
                }
            }

            report.executed_uops += 1;
            self.pmu.bump(Event::WrongPathUops);
            match inst {
                Inst::Nop | Inst::NopN { .. } => tpc = tpc + len as u64,
                Inst::MovImm { dst, imm } => {
                    tregs[usize::from(dst.index())] = imm;
                    tpc = tpc + len as u64;
                }
                Inst::MovReg { dst, src } => {
                    tregs[usize::from(dst.index())] = tregs[usize::from(src.index())];
                    tpc = tpc + len as u64;
                }
                Inst::Alu { op, dst, src } => {
                    let d = usize::from(dst.index());
                    tregs[d] = op.apply(tregs[d], tregs[usize::from(src.index())]);
                    tpc = tpc + len as u64;
                }
                Inst::Shr { dst, amount } => {
                    let d = usize::from(dst.index());
                    tregs[d] >>= amount;
                    tpc = tpc + len as u64;
                }
                Inst::Shl { dst, amount } => {
                    let d = usize::from(dst.index());
                    tregs[d] <<= amount;
                    tpc = tpc + len as u64;
                }
                Inst::AndImm { dst, imm } => {
                    let d = usize::from(dst.index());
                    tregs[d] &= u64::from(imm);
                    tpc = tpc + len as u64;
                }
                Inst::Cmp { a, b } => {
                    let (av, bv) = (tregs[usize::from(a.index())], tregs[usize::from(b.index())]);
                    tzf = av == bv;
                    tcf = av < bv;
                    tsf = (av.wrapping_sub(bv) as i64) < 0;
                    tpc = tpc + len as u64;
                }
                Inst::Load { dst, base, disp } => {
                    let addr = VirtAddr::new(
                        tregs[usize::from(base.index())].wrapping_add(disp as i64 as u64),
                    );
                    // A dispatched load cannot be aborted: it fills the
                    // D-cache even though the path is squashed.
                    match self.page_table.translate(addr, AccessKind::Read, self.level) {
                        Ok(pa) => {
                            let (lvl, _) = self.caches.access_data(pa.raw());
                            if lvl == Level::Memory {
                                self.pmu.bump(Event::DcacheMiss);
                            }
                            self.pmu.bump(Event::LoadsDispatched);
                            report.loads_dispatched.push(addr);
                            tregs[usize::from(dst.index())] = self.phys.read_u64(pa);
                        }
                        Err(_) => {
                            // Faulting transient loads return no data and
                            // fill nothing.
                            tregs[usize::from(dst.index())] = 0;
                        }
                    }
                    tpc = tpc + len as u64;
                }
                Inst::Store { .. } => {
                    // Stores never commit transiently; they occupy the
                    // store buffer and are dropped at squash.
                    tpc = tpc + len as u64;
                }
                Inst::Jmp { .. } => {
                    tpc = VirtAddr::new(inst.direct_target(tpc.raw()).expect("direct"));
                }
                Inst::Call { .. } => {
                    tpc = VirtAddr::new(inst.direct_target(tpc.raw()).expect("direct"));
                }
                Inst::Jcc { cond, .. } => {
                    if cond.eval(tzf, tsf, tcf) {
                        tpc = VirtAddr::new(inst.direct_target(tpc.raw()).expect("direct"));
                    } else {
                        tpc = tpc + len as u64;
                    }
                }
                Inst::JmpInd { src } | Inst::CallInd { src } => {
                    tpc = VirtAddr::new(tregs[usize::from(src.index())]);
                }
                // Barriers, privilege transitions and everything else end
                // the transient path.
                Inst::Ret
                | Inst::Lfence
                | Inst::Mfence
                | Inst::Clflush { .. }
                | Inst::Syscall
                | Inst::Sysret
                | Inst::Halt
                | Inst::Invalid { .. } => break,
            }
        }
        report
    }

    /// Architecturally execute `inst`. Returns whether the machine
    /// halted.
    fn execute(
        &mut self,
        inst: Inst,
        pc: VirtAddr,
        len: u64,
        taken: bool,
        actual_target: Option<VirtAddr>,
        pred: Option<&Prediction>,
    ) -> Result<bool, MachineError> {
        let mut next = pc + len;
        match inst {
            Inst::Nop | Inst::NopN { .. } => {}
            Inst::MovImm { dst, imm } => self.set_reg(dst, imm),
            Inst::MovReg { dst, src } => self.set_reg(dst, self.reg(src)),
            Inst::Alu { op, dst, src } => {
                let v = op.apply(self.reg(dst), self.reg(src));
                self.set_reg(dst, v);
            }
            Inst::Shr { dst, amount } => self.set_reg(dst, self.reg(dst) >> amount),
            Inst::Shl { dst, amount } => self.set_reg(dst, self.reg(dst) << amount),
            Inst::AndImm { dst, imm } => self.set_reg(dst, self.reg(dst) & u64::from(imm)),
            Inst::Cmp { a, b } => {
                let (av, bv) = (self.reg(a), self.reg(b));
                self.zf = av == bv;
                self.cf = av < bv;
                self.sf = (av.wrapping_sub(bv) as i64) < 0;
            }
            Inst::Load { dst, base, disp } => {
                let addr = VirtAddr::new(self.reg(base).wrapping_add(disp as i64 as u64));
                match self.page_table.translate(addr, AccessKind::Read, self.level) {
                    Ok(pa) => {
                        self.charge_tlb(addr, pa);
                        let (lvl, lat) = self.caches.access_data(pa.raw());
                        if lvl == Level::Memory {
                            self.pmu.bump(Event::DcacheMiss);
                        }
                        self.cycles += lat;
                        let v = self.phys.read_u64(pa);
                        self.set_reg(dst, v);
                    }
                    Err(fault) => {
                        self.handle_fault(fault)?;
                        return Ok(false);
                    }
                }
            }
            Inst::Store { base, disp, src } => {
                let addr = VirtAddr::new(self.reg(base).wrapping_add(disp as i64 as u64));
                match self.page_table.translate(addr, AccessKind::Write, self.level) {
                    Ok(pa) => {
                        self.charge_tlb(addr, pa);
                        let (lvl, lat) = self.caches.access_data(pa.raw());
                        if lvl == Level::Memory {
                            self.pmu.bump(Event::DcacheMiss);
                        }
                        self.cycles += lat;
                        let v = self.reg(src);
                        self.phys.write_u64(pa, v);
                    }
                    Err(fault) => {
                        self.handle_fault(fault)?;
                        return Ok(false);
                    }
                }
            }
            Inst::Clflush { addr } => {
                let va = VirtAddr::new(self.reg(addr));
                match self.page_table.translate(va, AccessKind::Read, self.level) {
                    Ok(pa) => {
                        self.caches.flush_line(pa.raw());
                        self.cycles += 40;
                    }
                    Err(fault) => {
                        self.handle_fault(fault)?;
                        return Ok(false);
                    }
                }
            }
            Inst::Lfence | Inst::Mfence => self.cycles += 8,
            Inst::Jmp { .. } => {
                let target = actual_target.expect("direct target");
                self.bpu
                    .train_smt(pc, BranchKind::Direct, target, self.level, self.thread);
                self.bpu.record_edge(pc, target);
                next = target;
            }
            Inst::Jcc { .. } => {
                self.bpu.train_direction(pc, taken);
                if taken {
                    let target = actual_target.expect("taken target");
                    self.bpu
                        .train_smt(pc, BranchKind::Cond, target, self.level, self.thread);
                    self.bpu.record_edge(pc, target);
                    next = target;
                }
            }
            Inst::JmpInd { .. } => {
                let target = actual_target.expect("indirect target");
                self.bpu
                    .train_smt(pc, BranchKind::Indirect, target, self.level, self.thread);
                self.bpu.record_edge(pc, target);
                next = target;
            }
            Inst::Call { .. } => {
                let target = actual_target.expect("call target");
                self.bpu
                    .train_smt(pc, BranchKind::Call, target, self.level, self.thread);
                self.push_return(pc + len)?;
                self.bpu.rsb_mut().push(pc + len);
                next = target;
            }
            Inst::CallInd { .. } => {
                let target = actual_target.expect("call* target");
                self.bpu
                    .train_smt(pc, BranchKind::CallInd, target, self.level, self.thread);
                self.push_return(pc + len)?;
                self.bpu.rsb_mut().push(pc + len);
                next = target;
            }
            Inst::Ret => {
                let sp = VirtAddr::new(self.reg(Reg::SP));
                match self.page_table.translate(sp, AccessKind::Read, self.level) {
                    Ok(pa) => {
                        let target = VirtAddr::new(self.phys.read_u64(pa));
                        self.set_reg(Reg::SP, sp.raw() + 8);
                        self.bpu
                            .train_smt(pc, BranchKind::Ret, target, self.level, self.thread);
                        // Keep the RSB in sync if the predictor did not
                        // already pop for this return.
                        if !matches!(pred, Some(p) if p.kind == BranchKind::Ret) {
                            self.bpu.rsb_mut().pop();
                        }
                        next = target;
                    }
                    Err(fault) => {
                        self.handle_fault(fault)?;
                        return Ok(false);
                    }
                }
            }
            Inst::Syscall => {
                let entry = self.syscall_entry.ok_or(MachineError::NoSyscallEntry)?;
                self.syscall_return = Some((pc + len, self.level));
                self.level = PrivilegeLevel::Supervisor;
                self.cycles += 100; // mode switch cost
                next = entry;
            }
            Inst::Sysret => {
                let (ret, lvl) = self
                    .syscall_return
                    .take()
                    .ok_or(MachineError::SysretWithoutSyscall)?;
                self.level = lvl;
                self.cycles += 100;
                next = ret;
            }
            Inst::Halt => {
                self.halted = true;
                return Ok(true);
            }
            Inst::Invalid { .. } => unreachable!("rejected before execute"),
        }
        self.pc = next;
        Ok(false)
    }

    fn push_return(&mut self, ret: VirtAddr) -> Result<(), MachineError> {
        let sp = VirtAddr::new(self.reg(Reg::SP).wrapping_sub(8));
        match self.page_table.translate(sp, AccessKind::Write, self.level) {
            Ok(pa) => {
                self.phys.write_u64(pa, ret.raw());
                self.set_reg(Reg::SP, sp.raw());
                Ok(())
            }
            Err(fault) => {
                self.handle_fault(fault)?;
                Ok(())
            }
        }
    }

    /// Run until halt or `max_steps`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`MachineError`] from [`Machine::step`].
    pub fn run(&mut self, max_steps: u64) -> Result<RunExit, MachineError> {
        for _ in 0..max_steps {
            let out = self.step()?;
            if out.halted {
                return Ok(RunExit::Halted);
            }
        }
        Ok(RunExit::StepLimit)
    }

    /// Run, collecting every transient report produced on the way.
    ///
    /// # Errors
    ///
    /// Propagates the first [`MachineError`] from [`Machine::step`].
    pub fn run_collecting(
        &mut self,
        max_steps: u64,
    ) -> Result<(RunExit, Vec<TransientReport>), MachineError> {
        let mut reports = Vec::new();
        for _ in 0..max_steps {
            let out = self.step()?;
            if let Some(t) = out.transient {
                reports.push(t);
            }
            if out.halted {
                return Ok((RunExit::Halted, reports));
            }
        }
        Ok((RunExit::StepLimit, reports))
    }
}

#[cfg(test)]
mod tests;
