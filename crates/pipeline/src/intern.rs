//! Interned strings for profile names and models.
//!
//! [`UarchProfile`](crate::UarchProfile) names used to be `&'static
//! str` literals, which ruled out uarches defined at runtime (the spec
//! layer, [`crate::spec`]). An [`IStr`] is a cheaply clonable
//! `Arc<str>` deduplicated through a global pool, so the thousands of
//! profile clones the trial runners make share one allocation per
//! distinct name and equality is almost always a pointer compare.

use std::borrow::Borrow;
use std::collections::HashSet;
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

/// An interned, immutable string. Dereferences to `str`; equal values
/// share one allocation process-wide.
///
/// # Examples
///
/// ```
/// use phantom_pipeline::IStr;
/// let a = IStr::new("Zen 2");
/// let b: IStr = "Zen 2".into();
/// assert_eq!(a, b);
/// assert_eq!(a, "Zen 2");
/// assert_eq!(a.len(), 5); // str methods via Deref
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IStr(Arc<str>);

fn pool() -> &'static Mutex<HashSet<Arc<str>>> {
    static POOL: OnceLock<Mutex<HashSet<Arc<str>>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(HashSet::new()))
}

impl IStr {
    /// Intern `s`, reusing the pooled allocation if it was seen before.
    pub fn new(s: &str) -> IStr {
        let mut pool = pool().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = pool.get(s) {
            return IStr(Arc::clone(existing));
        }
        let arc: Arc<str> = Arc::from(s);
        pool.insert(Arc::clone(&arc));
        IStr(arc)
    }

    /// The string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for IStr {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for IStr {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for IStr {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl From<&str> for IStr {
    fn from(s: &str) -> IStr {
        IStr::new(s)
    }
}

impl From<&String> for IStr {
    fn from(s: &String) -> IStr {
        IStr::new(s)
    }
}

impl From<String> for IStr {
    fn from(s: String) -> IStr {
        IStr::new(&s)
    }
}

impl PartialEq<str> for IStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for IStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<IStr> for &str {
    fn eq(&self, other: &IStr) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<String> for IStr {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other
    }
}

impl fmt::Display for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_the_allocation() {
        let a = IStr::new("phantom-intern-test-shared");
        let b = IStr::new("phantom-intern-test-shared");
        assert!(Arc::ptr_eq(&a.0, &b.0), "same string, same allocation");
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_strings_stay_distinct() {
        let a = IStr::new("phantom-intern-test-a");
        let b = IStr::new("phantom-intern-test-b");
        assert_ne!(a, b);
        assert_eq!(a, "phantom-intern-test-a");
        assert_eq!("phantom-intern-test-b", b);
    }

    #[test]
    fn str_interop() {
        let a = IStr::new("Zen 2");
        assert_eq!(a.to_string(), "Zen 2");
        assert_eq!(format!("{a:?}"), "\"Zen 2\"");
        assert!(a.starts_with("Zen"));
        let sum: u64 = a.bytes().map(u64::from).sum();
        assert!(sum > 0);
    }

    #[test]
    fn usable_across_threads() {
        let a = IStr::new("phantom-intern-test-threads");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let a = a.clone();
                std::thread::spawn(move || IStr::new(a.as_str()))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), a);
        }
    }
}
