//! Classifying speculation outcomes: who detects a misprediction, and
//! how wide the squash window is.
//!
//! The decoder can finalize the next PC for anything whose target is in
//! the instruction bytes (direct jumps/calls, and the *existence* and
//! kind of any branch). It cannot finalize execute-dependent information:
//! indirect targets, conditional directions, return addresses (§2.2).
//! A misprediction therefore resolves at one of two places:
//!
//! * [`ResteerKind::Frontend`] — decode contradicts the prediction
//!   (kind mismatch, wrong direct displacement, taken branch fetched
//!   straight-line). Short window: **PHANTOM**.
//! * [`ResteerKind::Backend`] — only execute can contradict it (wrong
//!   indirect target, wrong direction, wrong return address). Long
//!   window: conventional **Spectre**.

use phantom_bpu::Prediction;
use phantom_isa::{BranchKind, Inst};
use phantom_mem::VirtAddr;

/// Where a misprediction is detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResteerKind {
    /// Detected by the decoder; squash after
    /// [`frontend_resteer_latency`](crate::UarchProfile::frontend_resteer_latency)
    /// cycles.
    Frontend,
    /// Detected at execute; squash after
    /// [`backend_resteer_latency`](crate::UarchProfile::backend_resteer_latency)
    /// cycles.
    Backend,
}

impl std::fmt::Display for ResteerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResteerKind::Frontend => f.write_str("frontend (decoder-detectable)"),
            ResteerKind::Backend => f.write_str("backend (execute-detectable)"),
        }
    }
}

/// The verdict on one prediction (or absence of one) against the decoded
/// and resolved reality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpeculationVerdict {
    /// The prediction matched reality; the steer was correct.
    Correct,
    /// Mispredicted: the transient path starts at `transient_target` and
    /// is squashed by a `resteer` of the given kind.
    Mispredicted {
        /// Who detects it.
        resteer: ResteerKind,
        /// Where the wrong-path fetch went (`None` if the prediction had
        /// no target to offer, e.g. RSB underflow — nothing is fetched).
        transient_target: Option<VirtAddr>,
    },
    /// No prediction and none was needed (sequential fetch was right).
    NoSpeculation,
}

impl SpeculationVerdict {
    /// Whether a wrong path was steered at all.
    pub fn is_misprediction(&self) -> bool {
        matches!(self, SpeculationVerdict::Mispredicted { .. })
    }
}

/// Classify a *served* prediction against the decoded instruction and its
/// architectural resolution.
///
/// `actual_target` is the architecturally resolved target if the
/// instruction is a taken branch (`None` for non-branches and non-taken
/// conditionals); `taken` is the resolved direction (`true` for all
/// unconditional branches).
///
/// # Examples
///
/// ```
/// use phantom_bpu::Prediction;
/// use phantom_isa::{BranchKind, Inst};
/// use phantom_mem::{PrivilegeLevel, VirtAddr};
/// use phantom_pipeline::resteer::{classify_predicted, ResteerKind, SpeculationVerdict};
///
/// // A nop predicted as an indirect branch: decoder-detectable.
/// let pred = Prediction {
///     source: VirtAddr::new(0x1000),
///     kind: BranchKind::Indirect,
///     target: Some(VirtAddr::new(0x9000)),
///     trained_at: PrivilegeLevel::User,
///     restricted: false,
/// };
/// let v = classify_predicted(&pred, &Inst::Nop, None, false);
/// assert_eq!(
///     v,
///     SpeculationVerdict::Mispredicted {
///         resteer: ResteerKind::Frontend,
///         transient_target: Some(VirtAddr::new(0x9000)),
///     }
/// );
/// ```
pub fn classify_predicted(
    pred: &Prediction,
    inst: &Inst,
    actual_target: Option<VirtAddr>,
    taken: bool,
) -> SpeculationVerdict {
    let actual_kind = inst.kind();

    // Asymmetric combination: the decoder sees an instruction of a
    // different type than the BTB promised (including "no branch at
    // all"). This is PHANTOM speculation.
    if pred.kind != actual_kind {
        return SpeculationVerdict::Mispredicted {
            resteer: ResteerKind::Frontend,
            transient_target: pred.target,
        };
    }

    match actual_kind {
        // Direct control flow: the decoder recomputes the target from the
        // displacement bytes and can immediately contradict the BTB.
        BranchKind::Direct | BranchKind::Call => {
            if pred.target == actual_target {
                SpeculationVerdict::Correct
            } else {
                SpeculationVerdict::Mispredicted {
                    resteer: ResteerKind::Frontend,
                    transient_target: pred.target,
                }
            }
        }
        // Conditional: the displacement is decodable, so a *taken*
        // prediction with the right target is confirmed by a taken
        // outcome; a not-taken outcome is only discovered at execute.
        BranchKind::Cond => {
            if taken && pred.target == actual_target {
                SpeculationVerdict::Correct
            } else if taken {
                // Taken, but BTB steered somewhere else: decode catches it.
                SpeculationVerdict::Mispredicted {
                    resteer: ResteerKind::Frontend,
                    transient_target: pred.target,
                }
            } else {
                SpeculationVerdict::Mispredicted {
                    resteer: ResteerKind::Backend,
                    transient_target: pred.target,
                }
            }
        }
        // Execute-dependent targets: only the backend can disagree.
        BranchKind::Indirect | BranchKind::CallInd | BranchKind::Ret => {
            if pred.target == actual_target {
                SpeculationVerdict::Correct
            } else {
                SpeculationVerdict::Mispredicted {
                    resteer: ResteerKind::Backend,
                    transient_target: pred.target,
                }
            }
        }
        BranchKind::NotBranch => unreachable!("kind mismatch handled above"),
    }
}

/// Classify the *absence* of a prediction: the frontend fetched
/// sequentially past the instruction. Wrong whenever the instruction is
/// a taken branch; the transient path is the straight line after it.
///
/// For unconditional branches the decoder itself notices that sequential
/// fetch was wrong (it decoded a branch that is always taken) — a
/// frontend resteer, which is why straight-line speculation is short.
/// A taken conditional predicted not-taken resolves only at execute.
///
/// # Examples
///
/// ```
/// use phantom_isa::{Inst, Reg};
/// use phantom_mem::VirtAddr;
/// use phantom_pipeline::resteer::{classify_unpredicted, ResteerKind, SpeculationVerdict};
///
/// // Straight-line speculation past an unmispredicted jmp*.
/// let v = classify_unpredicted(&Inst::JmpInd { src: Reg::R0 }, VirtAddr::new(0x1000), true);
/// assert!(matches!(
///     v,
///     SpeculationVerdict::Mispredicted { resteer: ResteerKind::Frontend, .. }
/// ));
/// ```
pub fn classify_unpredicted(inst: &Inst, pc: VirtAddr, taken: bool) -> SpeculationVerdict {
    let sequential = pc + inst.len() as u64;
    match inst.kind() {
        BranchKind::NotBranch => SpeculationVerdict::NoSpeculation,
        // Always-taken branches: decode discovers the straight line was
        // wrong (SLS window).
        BranchKind::Direct
        | BranchKind::Call
        | BranchKind::Indirect
        | BranchKind::CallInd
        | BranchKind::Ret => SpeculationVerdict::Mispredicted {
            resteer: ResteerKind::Frontend,
            transient_target: Some(sequential),
        },
        BranchKind::Cond => {
            if taken {
                // Predicted (by default) not-taken, actually taken: the
                // classic Spectre-PHT window on the sequential path.
                SpeculationVerdict::Mispredicted {
                    resteer: ResteerKind::Backend,
                    transient_target: Some(sequential),
                }
            } else {
                SpeculationVerdict::NoSpeculation
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phantom_isa::{Cond, Reg};
    use phantom_mem::PrivilegeLevel;

    fn pred(kind: BranchKind, target: u64) -> Prediction {
        Prediction {
            source: VirtAddr::new(0x1000),
            kind,
            target: Some(VirtAddr::new(target)),
            trained_at: PrivilegeLevel::User,
            restricted: false,
        }
    }

    #[test]
    fn kind_mismatch_is_always_frontend() {
        // Every asymmetric pair resolves at the decoder.
        let victims: [(Inst, BranchKind); 5] = [
            (Inst::Nop, BranchKind::NotBranch),
            (Inst::Jmp { disp: 4 }, BranchKind::Direct),
            (Inst::JmpInd { src: Reg::R0 }, BranchKind::Indirect),
            (
                Inst::Jcc {
                    cond: Cond::Eq,
                    disp: 4,
                },
                BranchKind::Cond,
            ),
            (Inst::Ret, BranchKind::Ret),
        ];
        for (inst, actual_kind) in &victims {
            for trained in [
                BranchKind::Direct,
                BranchKind::Indirect,
                BranchKind::Cond,
                BranchKind::Ret,
            ] {
                if trained == *actual_kind {
                    continue;
                }
                let v = classify_predicted(&pred(trained, 0x9000), inst, None, false);
                assert!(
                    matches!(
                        v,
                        SpeculationVerdict::Mispredicted {
                            resteer: ResteerKind::Frontend,
                            ..
                        }
                    ),
                    "training {trained} on victim {inst} must be decoder-detectable"
                );
            }
        }
    }

    #[test]
    fn correct_direct_prediction() {
        let inst = Inst::Jmp { disp: 0x10 };
        let target = inst.direct_target(0x1000).unwrap();
        let v = classify_predicted(
            &pred(BranchKind::Direct, target),
            &inst,
            Some(VirtAddr::new(target)),
            true,
        );
        assert_eq!(v, SpeculationVerdict::Correct);
    }

    #[test]
    fn wrong_displacement_direct_is_frontend() {
        // Training jmp with a different displacement than the victim jmp:
        // the paper counts this as asymmetric too (§5.2).
        let inst = Inst::Jmp { disp: 0x10 };
        let actual = inst.direct_target(0x1000).unwrap();
        let v = classify_predicted(
            &pred(BranchKind::Direct, actual + 0x40),
            &inst,
            Some(VirtAddr::new(actual)),
            true,
        );
        assert!(matches!(
            v,
            SpeculationVerdict::Mispredicted {
                resteer: ResteerKind::Frontend,
                ..
            }
        ));
    }

    #[test]
    fn wrong_indirect_target_is_backend_spectre() {
        let inst = Inst::JmpInd { src: Reg::R0 };
        let v = classify_predicted(
            &pred(BranchKind::Indirect, 0x9000),
            &inst,
            Some(VirtAddr::new(0x5000)),
            true,
        );
        assert_eq!(
            v,
            SpeculationVerdict::Mispredicted {
                resteer: ResteerKind::Backend,
                transient_target: Some(VirtAddr::new(0x9000)),
            }
        );
        // Correct indirect prediction: no squash.
        let v2 = classify_predicted(
            &pred(BranchKind::Indirect, 0x5000),
            &inst,
            Some(VirtAddr::new(0x5000)),
            true,
        );
        assert_eq!(v2, SpeculationVerdict::Correct);
    }

    #[test]
    fn not_taken_conditional_predicted_taken_is_backend() {
        let inst = Inst::Jcc {
            cond: Cond::Eq,
            disp: 0x20,
        };
        let v = classify_predicted(&pred(BranchKind::Cond, 0x1026), &inst, None, false);
        assert!(matches!(
            v,
            SpeculationVerdict::Mispredicted {
                resteer: ResteerKind::Backend,
                ..
            }
        ));
    }

    #[test]
    fn ret_with_wrong_rsb_is_backend() {
        let v = classify_predicted(
            &pred(BranchKind::Ret, 0x7777),
            &Inst::Ret,
            Some(VirtAddr::new(0x1234)),
            true,
        );
        assert!(matches!(
            v,
            SpeculationVerdict::Mispredicted {
                resteer: ResteerKind::Backend,
                ..
            }
        ));
    }

    #[test]
    fn straight_line_speculation_classification() {
        // Non-branch: sequential fetch is architecture.
        assert_eq!(
            classify_unpredicted(&Inst::Nop, VirtAddr::new(0x1000), false),
            SpeculationVerdict::NoSpeculation
        );
        // Unpredicted ret: SLS, frontend window, sequential transient path.
        let v = classify_unpredicted(&Inst::Ret, VirtAddr::new(0x1000), true);
        assert_eq!(
            v,
            SpeculationVerdict::Mispredicted {
                resteer: ResteerKind::Frontend,
                transient_target: Some(VirtAddr::new(0x1001)),
            }
        );
        // Taken jcc predicted (by absence) not-taken: backend.
        let jcc = Inst::Jcc {
            cond: Cond::Eq,
            disp: 0x20,
        };
        let v2 = classify_unpredicted(&jcc, VirtAddr::new(0x1000), true);
        assert!(matches!(
            v2,
            SpeculationVerdict::Mispredicted {
                resteer: ResteerKind::Backend,
                ..
            }
        ));
        // Not-taken jcc: correct by default.
        assert_eq!(
            classify_unpredicted(&jcc, VirtAddr::new(0x1000), false),
            SpeculationVerdict::NoSpeculation
        );
    }
}
