//! Pipeline event tracing: a bounded record of what the frontend
//! believed, what the decoder found, and what got squashed.
//!
//! [`TraceSink`] is an [`EventSink`]: it listens to the machine's event
//! bus and distills the raw [`PipelineEvent`] stream into one
//! [`TraceEvent`] per retirement. [`Tracer`] is the convenience wrapper
//! that attaches the sink around [`Machine::step`](crate::Machine::step)
//! calls. Useful for debugging experiments and for teaching — the
//! `pipeline_trace` example renders a phantom misprediction instruction
//! by instruction.

use std::collections::VecDeque;

use phantom_isa::Inst;
use phantom_mem::VirtAddr;

use crate::events::{EventSink, PipelineEvent};
use crate::machine::{Machine, MachineError, StepOutcome};
use crate::resteer::ResteerKind;

/// One distilled pipeline step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sequence number.
    pub seq: u64,
    /// Architectural PC.
    pub pc: VirtAddr,
    /// The decoded instruction.
    pub inst: Inst,
    /// Cycle count after the step.
    pub cycles: u64,
    /// Misprediction squashed this step, if any.
    pub resteer: Option<ResteerKind>,
    /// Where the wrong path went.
    pub transient_target: Option<VirtAddr>,
    /// Deepest stage the wrong path reached ("-", "IF", "ID", "EX").
    pub transient_stage: &'static str,
    /// Wrong-path loads dispatched.
    pub transient_loads: usize,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:>4}] {} {:<24}",
            self.seq,
            self.pc,
            self.inst.to_string()
        )?;
        match (self.resteer, self.transient_target) {
            (Some(kind), Some(target)) => write!(
                f,
                " !! {} resteer; wrong path -> {} reached {} ({} loads)",
                match kind {
                    ResteerKind::Frontend => "frontend",
                    ResteerKind::Backend => "backend",
                },
                target,
                self.transient_stage,
                self.transient_loads
            ),
            (Some(kind), None) => write!(
                f,
                " !! {} resteer; no target served",
                match kind {
                    ResteerKind::Frontend => "frontend",
                    ResteerKind::Backend => "backend",
                }
            ),
            _ => Ok(()),
        }
    }
}

/// Per-step speculation facts accumulated between retirements.
#[derive(Debug, Clone, Default)]
struct Pending {
    resteer: Option<ResteerKind>,
    target: Option<VirtAddr>,
    fetched: bool,
    decoded: bool,
    executed: bool,
    loads: usize,
}

impl Pending {
    fn stage(&self) -> &'static str {
        if self.executed || self.loads > 0 {
            "EX"
        } else if self.decoded {
            "ID"
        } else if self.fetched {
            "IF"
        } else {
            "-"
        }
    }
}

/// An [`EventSink`] that folds the pipeline event stream into
/// [`TraceEvent`]s, one per retirement (or caught fetch fault).
///
/// A `capacity` of zero means unbounded; otherwise the sink keeps the
/// most recent `capacity` events as a ring.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    seq: u64,
    pending: Pending,
}

impl TraceSink {
    /// An unbounded trace sink.
    pub fn new() -> TraceSink {
        TraceSink::default()
    }

    /// A sink keeping only the most recent `capacity` events.
    pub fn with_capacity(capacity: usize) -> TraceSink {
        TraceSink {
            capacity,
            ..TraceSink::default()
        }
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter()
    }

    /// Drop recorded events (sequence numbers keep counting).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    fn flush(&mut self, pc: VirtAddr, inst: Inst, cycles: u64) {
        let pending = std::mem::take(&mut self.pending);
        if self.capacity > 0 && self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(TraceEvent {
            seq: self.seq,
            pc,
            inst,
            cycles,
            resteer: pending.resteer,
            transient_target: pending.target,
            transient_stage: pending.stage(),
            transient_loads: pending.loads,
        });
        self.seq += 1;
    }
}

impl EventSink for TraceSink {
    fn on_event(&mut self, event: &PipelineEvent) {
        match *event {
            PipelineEvent::Resteer { kind, target, .. } => {
                self.pending.resteer = Some(kind);
                self.pending.target = target;
            }
            PipelineEvent::FetchLine {
                transient: true, ..
            } => self.pending.fetched = true,
            PipelineEvent::UopCacheFill {
                transient: true, ..
            } => self.pending.decoded = true,
            PipelineEvent::TransientLoad { .. } => self.pending.loads += 1,
            PipelineEvent::WrongPathUop { .. } => self.pending.executed = true,
            PipelineEvent::Retired { pc, inst, cycles } => self.flush(pc, inst, cycles),
            PipelineEvent::FaultCaught { pc, cycles, .. } => self.flush(pc, Inst::Nop, cycles),
            _ => {}
        }
    }
}

/// A bounded step recorder over a [`Machine`].
///
/// Owns a [`TraceSink`] and attaches it to the machine's event bus for
/// the duration of each [`Tracer::step`]/[`Tracer::run`] call.
///
/// # Examples
///
/// ```
/// use phantom_isa::{asm::Assembler, Inst, Reg};
/// use phantom_mem::PageFlags;
/// use phantom_pipeline::{Machine, Tracer, UarchProfile};
///
/// let mut m = Machine::new(UarchProfile::zen2(), 1 << 20);
/// let mut a = Assembler::new(0x40_0000);
/// a.push(Inst::Nop);
/// a.push(Inst::Halt);
/// m.load_blob(&a.finish()?, PageFlags::USER_TEXT)?;
/// m.set_pc(0x40_0000u64.into());
///
/// let mut tracer = Tracer::new(64);
/// tracer.run(&mut m, 10)?;
/// assert_eq!(tracer.events().count(), 2); // nop + hlt
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    sink: TraceSink,
}

impl Tracer {
    /// A tracer keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Tracer {
        assert!(capacity > 0, "capacity must be nonzero");
        Tracer {
            sink: TraceSink::with_capacity(capacity),
        }
    }

    /// Attach the sink to `machine`, run `f`, and take the sink back.
    fn observed<T>(
        &mut self,
        machine: &mut Machine,
        f: impl FnOnce(&mut Machine) -> Result<T, MachineError>,
    ) -> Result<T, MachineError> {
        let id = machine.attach_sink(std::mem::take(&mut self.sink));
        let result = f(machine);
        self.sink = *machine
            .detach_sink_as::<TraceSink>(id)
            .expect("tracer sink attached");
        result
    }

    /// Step the machine once, recording the event.
    ///
    /// # Errors
    ///
    /// Propagates [`MachineError`] from the machine.
    pub fn step(&mut self, machine: &mut Machine) -> Result<StepOutcome, MachineError> {
        self.observed(machine, Machine::step)
    }

    /// Run until halt or `max_steps`, recording every step.
    ///
    /// # Errors
    ///
    /// Propagates [`MachineError`] from the machine.
    pub fn run(&mut self, machine: &mut Machine, max_steps: u64) -> Result<(), MachineError> {
        self.observed(machine, |m| {
            for _ in 0..max_steps {
                if m.step()?.halted {
                    break;
                }
            }
            Ok(())
        })
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.sink.events()
    }

    /// Only the events where a misprediction was squashed.
    pub fn mispredictions(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.sink.events().filter(|e| e.resteer.is_some())
    }

    /// Render the whole trace, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.sink.events() {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Clear recorded events (sequence numbers keep counting).
    pub fn clear(&mut self) {
        self.sink.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phantom_isa::asm::Assembler;
    use phantom_isa::Reg;
    use phantom_mem::PageFlags;

    use crate::profile::UarchProfile;

    fn traced_phantom() -> (Tracer, Machine) {
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        let text = PageFlags::USER_TEXT | PageFlags::WRITE;
        let x = VirtAddr::new(0x40_0ac0);
        let c = VirtAddr::new(0x48_0b40);
        m.map_range(x.page_base(), 0x1000, text).unwrap();
        m.map_range(c.page_base(), 0x1000, text).unwrap();
        m.map_range(VirtAddr::new(0x60_0000), 64, PageFlags::USER_DATA)
            .unwrap();
        m.set_reg(Reg::R8, 0x60_0000);
        let mut g = Assembler::new(c.raw());
        g.push(Inst::Load {
            dst: Reg::R9,
            base: Reg::R8,
            disp: 0,
        });
        g.push(Inst::Halt);
        m.load_blob(&g.finish().unwrap(), text).unwrap();
        let mut bytes = Vec::new();
        phantom_isa::encode::encode_into(&Inst::JmpInd { src: Reg::R11 }, &mut bytes).unwrap();
        bytes.push(0xF4);
        m.poke(x, &bytes);
        m.set_reg(Reg::R11, c.raw());
        m.set_pc(x);
        m.run(8).unwrap();
        m.poke(x, &[0x90, 0x90, 0xF4]);
        m.set_pc(x);
        (Tracer::new(32), m)
    }

    #[test]
    fn trace_captures_the_phantom_resteer() {
        let (mut tracer, mut m) = traced_phantom();
        tracer.run(&mut m, 8).unwrap();
        let mispredicts: Vec<_> = tracer.mispredictions().collect();
        assert_eq!(mispredicts.len(), 1);
        let e = mispredicts[0];
        assert_eq!(e.resteer, Some(ResteerKind::Frontend));
        assert_eq!(e.transient_target, Some(VirtAddr::new(0x48_0b40)));
        assert_eq!(e.transient_stage, "EX");
        assert_eq!(e.transient_loads, 1);
        assert_eq!(e.inst, Inst::Nop, "the victim was a nop");
    }

    #[test]
    fn render_is_one_line_per_event() {
        let (mut tracer, mut m) = traced_phantom();
        tracer.run(&mut m, 8).unwrap();
        let rendered = tracer.render();
        assert_eq!(rendered.lines().count(), tracer.events().count());
        assert!(rendered.contains("frontend resteer"));
    }

    #[test]
    fn capacity_bounds_the_ring() {
        let mut m = Machine::new(UarchProfile::zen3(), 1 << 20);
        let mut a = Assembler::new(0x40_0000);
        a.nops(20);
        a.push(Inst::Halt);
        m.load_blob(&a.finish().unwrap(), PageFlags::USER_TEXT)
            .unwrap();
        m.set_pc(VirtAddr::new(0x40_0000));
        let mut tracer = Tracer::new(4);
        tracer.run(&mut m, 40).unwrap();
        assert_eq!(tracer.events().count(), 4);
        // The kept events are the most recent ones.
        assert_eq!(tracer.events().last().unwrap().inst, Inst::Halt);
    }

    #[test]
    fn sink_detaches_between_calls() {
        let (mut tracer, mut m) = traced_phantom();
        assert_eq!(m.sink_count(), 0);
        tracer.step(&mut m).unwrap();
        assert_eq!(m.sink_count(), 0, "tracer takes its sink back");
        assert_eq!(tracer.events().count(), 1);
    }

    #[test]
    fn trace_agrees_with_step_outcomes() {
        // The event-stream distillation must match what StepOutcome
        // reports directly.
        let (mut tracer, mut m) = traced_phantom();
        let outcome = tracer.step(&mut m).unwrap();
        let e = tracer.events().next().unwrap().clone();
        assert_eq!(e.pc, outcome.pc);
        assert_eq!(e.inst, outcome.inst);
        let report = outcome.transient.expect("phantom fired");
        assert_eq!(e.transient_stage, report.deepest_stage());
        assert_eq!(e.transient_loads, report.loads_dispatched.len());
        assert_eq!(e.transient_target, report.target);
        assert_eq!(e.cycles, m.cycles());
    }
}
