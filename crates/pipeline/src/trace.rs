//! Pipeline event tracing: a bounded record of what the frontend
//! believed, what the decoder found, and what got squashed.
//!
//! The machine itself stays trace-free; [`Tracer`] wraps
//! [`Machine::step`](crate::Machine::step) and distills each step into a
//! [`TraceEvent`]. Useful for debugging experiments and for teaching —
//! the `pipeline_trace` example renders a phantom misprediction
//! instruction by instruction.

use std::collections::VecDeque;

use phantom_isa::Inst;
use phantom_mem::VirtAddr;

use crate::machine::{Machine, MachineError, StepOutcome};
use crate::resteer::ResteerKind;

/// One distilled pipeline step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sequence number.
    pub seq: u64,
    /// Architectural PC.
    pub pc: VirtAddr,
    /// The decoded instruction.
    pub inst: Inst,
    /// Cycle count after the step.
    pub cycles: u64,
    /// Misprediction squashed this step, if any.
    pub resteer: Option<ResteerKind>,
    /// Where the wrong path went.
    pub transient_target: Option<VirtAddr>,
    /// Deepest stage the wrong path reached ("-", "IF", "ID", "EX").
    pub transient_stage: &'static str,
    /// Wrong-path loads dispatched.
    pub transient_loads: usize,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:>4}] {} {:<24}", self.seq, self.pc, self.inst.to_string())?;
        match (self.resteer, self.transient_target) {
            (Some(kind), Some(target)) => write!(
                f,
                " !! {} resteer; wrong path -> {} reached {} ({} loads)",
                match kind {
                    ResteerKind::Frontend => "frontend",
                    ResteerKind::Backend => "backend",
                },
                target,
                self.transient_stage,
                self.transient_loads
            ),
            (Some(kind), None) => write!(
                f,
                " !! {} resteer; no target served",
                match kind {
                    ResteerKind::Frontend => "frontend",
                    ResteerKind::Backend => "backend",
                }
            ),
            _ => Ok(()),
        }
    }
}

/// A bounded step recorder over a [`Machine`].
///
/// # Examples
///
/// ```
/// use phantom_isa::{asm::Assembler, Inst, Reg};
/// use phantom_mem::PageFlags;
/// use phantom_pipeline::{Machine, Tracer, UarchProfile};
///
/// let mut m = Machine::new(UarchProfile::zen2(), 1 << 20);
/// let mut a = Assembler::new(0x40_0000);
/// a.push(Inst::Nop);
/// a.push(Inst::Halt);
/// m.load_blob(&a.finish()?, PageFlags::USER_TEXT)?;
/// m.set_pc(0x40_0000u64.into());
///
/// let mut tracer = Tracer::new(64);
/// tracer.run(&mut m, 10)?;
/// assert_eq!(tracer.events().count(), 2); // nop + hlt
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    seq: u64,
}

impl Tracer {
    /// A tracer keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Tracer {
        assert!(capacity > 0, "capacity must be nonzero");
        Tracer { events: VecDeque::with_capacity(capacity), capacity, seq: 0 }
    }

    /// Step the machine once, recording the event.
    ///
    /// # Errors
    ///
    /// Propagates [`MachineError`] from the machine.
    pub fn step(&mut self, machine: &mut Machine) -> Result<StepOutcome, MachineError> {
        let outcome = machine.step()?;
        let (resteer, transient_target, transient_stage, transient_loads) =
            match &outcome.transient {
                Some(t) => (
                    t.window.map(|w| w.resteer),
                    t.target,
                    t.deepest_stage(),
                    t.loads_dispatched.len(),
                ),
                None => (None, None, "-", 0),
            };
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(TraceEvent {
            seq: self.seq,
            pc: outcome.pc,
            inst: outcome.inst,
            cycles: machine.cycles(),
            resteer,
            transient_target,
            transient_stage,
            transient_loads,
        });
        self.seq += 1;
        Ok(outcome)
    }

    /// Run until halt or `max_steps`, recording every step.
    ///
    /// # Errors
    ///
    /// Propagates [`MachineError`] from the machine.
    pub fn run(&mut self, machine: &mut Machine, max_steps: u64) -> Result<(), MachineError> {
        for _ in 0..max_steps {
            if self.step(machine)?.halted {
                break;
            }
        }
        Ok(())
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter()
    }

    /// Only the events where a misprediction was squashed.
    pub fn mispredictions(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter().filter(|e| e.resteer.is_some())
    }

    /// Render the whole trace, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Clear recorded events (sequence numbers keep counting).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phantom_isa::asm::Assembler;
    use phantom_isa::Reg;
    use phantom_mem::PageFlags;

    use crate::profile::UarchProfile;

    fn traced_phantom() -> (Tracer, Machine) {
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        let text = PageFlags::USER_TEXT | PageFlags::WRITE;
        let x = VirtAddr::new(0x40_0ac0);
        let c = VirtAddr::new(0x48_0b40);
        m.map_range(x.page_base(), 0x1000, text).unwrap();
        m.map_range(c.page_base(), 0x1000, text).unwrap();
        m.map_range(VirtAddr::new(0x60_0000), 64, PageFlags::USER_DATA).unwrap();
        m.set_reg(Reg::R8, 0x60_0000);
        let mut g = Assembler::new(c.raw());
        g.push(Inst::Load { dst: Reg::R9, base: Reg::R8, disp: 0 });
        g.push(Inst::Halt);
        m.load_blob(&g.finish().unwrap(), text).unwrap();
        let mut bytes = Vec::new();
        phantom_isa::encode::encode_into(&Inst::JmpInd { src: Reg::R11 }, &mut bytes).unwrap();
        bytes.push(0xF4);
        m.poke(x, &bytes);
        m.set_reg(Reg::R11, c.raw());
        m.set_pc(x);
        m.run(8).unwrap();
        m.poke(x, &[0x90, 0x90, 0xF4]);
        m.set_pc(x);
        (Tracer::new(32), m)
    }

    #[test]
    fn trace_captures_the_phantom_resteer() {
        let (mut tracer, mut m) = traced_phantom();
        tracer.run(&mut m, 8).unwrap();
        let mispredicts: Vec<_> = tracer.mispredictions().collect();
        assert_eq!(mispredicts.len(), 1);
        let e = mispredicts[0];
        assert_eq!(e.resteer, Some(ResteerKind::Frontend));
        assert_eq!(e.transient_target, Some(VirtAddr::new(0x48_0b40)));
        assert_eq!(e.transient_stage, "EX");
        assert_eq!(e.transient_loads, 1);
        assert_eq!(e.inst, Inst::Nop, "the victim was a nop");
    }

    #[test]
    fn render_is_one_line_per_event() {
        let (mut tracer, mut m) = traced_phantom();
        tracer.run(&mut m, 8).unwrap();
        let rendered = tracer.render();
        assert_eq!(rendered.lines().count(), tracer.events().count());
        assert!(rendered.contains("frontend resteer"));
    }

    #[test]
    fn capacity_bounds_the_ring() {
        let mut m = Machine::new(UarchProfile::zen3(), 1 << 20);
        let mut a = Assembler::new(0x40_0000);
        a.nops(20);
        a.push(Inst::Halt);
        m.load_blob(&a.finish().unwrap(), PageFlags::USER_TEXT).unwrap();
        m.set_pc(VirtAddr::new(0x40_0000));
        let mut tracer = Tracer::new(4);
        tracer.run(&mut m, 40).unwrap();
        assert_eq!(tracer.events().count(), 4);
        // The kept events are the most recent ones.
        assert_eq!(tracer.events().last().unwrap().inst, Inst::Halt);
    }
}
