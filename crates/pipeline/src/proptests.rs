//! Property-based tests for the machine, centered on the property the
//! whole paper rests on: speculation is **architecturally invisible**.
//! However badly the BTB is poisoned, the committed register file,
//! flags, and memory contents must be identical to an unpoisoned run —
//! the *only* traces are microarchitectural (caches, µop cache,
//! counters), which is precisely what makes Phantom a side channel and
//! not a correctness bug.

use proptest::prelude::*;

use phantom_isa::encode::encode_all;
use phantom_isa::inst::AluOp;
use phantom_isa::{BranchKind, Cond, Inst, Reg};
use phantom_mem::{PageFlags, PrivilegeLevel, VirtAddr};

use crate::machine::Machine;
use crate::profile::UarchProfile;

const TEXT_BASE: u64 = 0x40_0000;
const DATA_BASE: u64 = 0x60_0000;
const STACK_TOP: u64 = 0x7000_3f00;

/// A random, always-terminating program: straight-line arithmetic,
/// loads/stores into a mapped window, short forward branches, calls to
/// a tiny leaf, ending in `hlt`.
fn arb_program() -> impl Strategy<Value = Vec<Inst>> {
    let step = prop_oneof![
        (0u8..8, 0u8..8)
            .prop_map(|(d, s)| vec![Inst::Alu {
                op: AluOp::Add,
                dst: Reg::from_index(d).expect("in range"),
                src: Reg::from_index(s).expect("in range"),
            }])
            .boxed(),
        (0u8..8, any::<u32>())
            .prop_map(|(d, imm)| vec![Inst::MovImm {
                dst: Reg::from_index(d).expect("in range"),
                imm: u64::from(imm),
            }])
            .boxed(),
        (0u8..8, 0u16..0x380)
            .prop_map(|(d, off)| vec![Inst::Load {
                dst: Reg::from_index(d).expect("in range"),
                base: Reg::R8,
                disp: i32::from(off),
            }])
            .boxed(),
        (0u8..8, 0u16..0x380)
            .prop_map(|(s, off)| vec![Inst::Store {
                base: Reg::R8,
                disp: i32::from(off),
                src: Reg::from_index(s).expect("in range"),
            }])
            .boxed(),
        (0u8..8, 0u8..8)
            .prop_map(|(a, b)| vec![Inst::Cmp {
                a: Reg::from_index(a).expect("in range"),
                b: Reg::from_index(b).expect("in range"),
            }])
            .boxed(),
        // A self-contained branch diamond: the conditional skips exactly
        // its 10-byte landing pad, so the taken edge never lands
        // mid-instruction.
        Just(vec![
            Inst::Jcc {
                cond: Cond::Eq,
                disp: 10
            },
            Inst::NopN { len: 10 },
        ])
        .boxed(),
        Just(vec![Inst::Nop]).boxed(),
        Just(vec![Inst::Lfence]).boxed(),
    ];
    proptest::collection::vec(step, 1..30).prop_map(|chunks| chunks.concat())
}

/// Garbage to poison the BTB with before the run.
#[derive(Debug, Clone)]
struct Poison {
    /// Offset into the program text where a fake branch is trained.
    source_off: u16,
    /// Fake branch kind.
    kind: u8,
    /// Fake target selector: low bits pick inside text, data (NX), or
    /// nowhere.
    target_sel: u8,
    target_off: u16,
}

fn arb_poison() -> impl Strategy<Value = Vec<Poison>> {
    proptest::collection::vec(
        (any::<u16>(), 0u8..4, 0u8..3, any::<u16>()).prop_map(
            |(source_off, kind, target_sel, target_off)| Poison {
                source_off,
                kind,
                target_sel,
                target_off,
            },
        ),
        0..12,
    )
}

fn build_machine(profile: &UarchProfile, program: &[Inst]) -> Machine {
    let mut m = Machine::new(profile.clone(), 1 << 24);
    let mut bytes = encode_all(program).expect("encodable");
    bytes.push(0xF4); // hlt
    m.map_range(
        VirtAddr::new(TEXT_BASE),
        0x4000,
        PageFlags::USER_TEXT | PageFlags::WRITE,
    )
    .expect("text maps");
    m.poke(VirtAddr::new(TEXT_BASE), &bytes);
    m.map_range(VirtAddr::new(DATA_BASE), 0x1000, PageFlags::USER_DATA)
        .expect("data maps");
    m.map_range(VirtAddr::new(0x7000_0000), 0x4000, PageFlags::USER_DATA)
        .expect("stack maps");
    m.set_reg(Reg::R8, DATA_BASE);
    m.set_reg(Reg::SP, STACK_TOP);
    m.set_pc(VirtAddr::new(TEXT_BASE));
    m
}

fn poison_btb(m: &mut Machine, program_len: u64, poisons: &[Poison]) {
    for p in poisons {
        let source = VirtAddr::new(TEXT_BASE + u64::from(p.source_off) % program_len.max(1));
        let kind = match p.kind {
            0 => BranchKind::Indirect,
            1 => BranchKind::Direct,
            2 => BranchKind::Cond,
            _ => BranchKind::Ret,
        };
        let target = match p.target_sel {
            0 => VirtAddr::new(TEXT_BASE + u64::from(p.target_off) % 0x3f00),
            1 => VirtAddr::new(DATA_BASE + u64::from(p.target_off) % 0xf00),
            _ => VirtAddr::new(0xdead_0000 + u64::from(p.target_off)),
        };
        m.bpu_mut()
            .train(source, kind, target, PrivilegeLevel::User);
        if kind == BranchKind::Cond {
            // Make the fake conditional predict taken too.
            for _ in 0..8 {
                m.bpu_mut().train_direction(source, true);
            }
        }
    }
}

fn final_state(m: &Machine) -> (Vec<u64>, (bool, bool, bool), Vec<u8>) {
    let regs = Reg::ALL.iter().map(|&r| m.reg(r)).collect();
    let data = m.peek(VirtAddr::new(DATA_BASE), 0x400);
    (regs, m.flags(), data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Non-interference: a clean run and a BTB-poisoned run of the same
    /// program commit identical architectural state, on every profile
    /// class (phantom-executing Zen 2 and squash-early Zen 4).
    #[test]
    fn speculation_never_changes_architecture(
        program in arb_program(),
        poisons in arb_poison(),
    ) {
        for profile in [UarchProfile::zen2(), UarchProfile::zen4()] {
            let mut clean = build_machine(&profile, &program);
            clean.run(400).expect("clean run terminates");
            let clean_state = final_state(&clean);

            let mut poisoned = build_machine(&profile, &program);
            let program_len = encode_all(&program).expect("encodable").len() as u64 + 1;
            poison_btb(&mut poisoned, program_len, &poisons);
            poisoned.run(400).expect("poisoned run terminates");
            let poisoned_state = final_state(&poisoned);

            prop_assert_eq!(&clean_state, &poisoned_state, "profile {}", profile.name);
        }
    }

    /// Determinism: the same program on the same profile commits the
    /// same state and the same cycle count, twice.
    #[test]
    fn machine_is_deterministic(program in arb_program()) {
        let profile = UarchProfile::zen3();
        let mut a = build_machine(&profile, &program);
        a.run(400).expect("terminates");
        let mut b = build_machine(&profile, &program);
        b.run(400).expect("terminates");
        prop_assert_eq!(final_state(&a), final_state(&b));
        prop_assert_eq!(a.cycles(), b.cycles());
    }

    /// Profile-independence of architecture: Zen 1 and Intel 13 disagree
    /// on every latency and window parameter, but commit identical
    /// architectural results.
    #[test]
    fn architecture_is_profile_independent(program in arb_program()) {
        let mut a = build_machine(&UarchProfile::zen1(), &program);
        a.run(400).expect("terminates");
        let mut b = build_machine(&UarchProfile::intel13(), &program);
        b.run(400).expect("terminates");
        prop_assert_eq!(final_state(&a), final_state(&b));
    }

    /// Snapshot/restore round-trips the full machine: architectural
    /// state (registers, flags, memory), cycle counter, PMU, BTB and
    /// µop cache. Verified structurally (direct lookups before and
    /// after the rewind) and behaviourally (the restored machine's
    /// continuation commits exactly what the original's did).
    #[test]
    fn snapshot_restore_round_trips(
        program in arb_program(),
        poisons in arb_poison(),
        prefix in 0usize..40,
    ) {
        use phantom_cache::Event;

        let profile = UarchProfile::zen2();
        let mut m = build_machine(&profile, &program);
        let program_len = encode_all(&program).expect("encodable").len() as u64 + 1;
        poison_btb(&mut m, program_len, &poisons);

        // Run a prefix so the caches, µop cache and PMU hold state.
        for _ in 0..prefix {
            if m.step().expect("steps").halted {
                break;
            }
        }
        let snap = m.snapshot();

        // Capture direct views of the state at the snapshot point.
        let at_snap = (final_state(&m), m.cycles(), m.pc());
        let probe_vas: Vec<VirtAddr> =
            (0..32).map(|i| VirtAddr::new(TEXT_BASE + i * 0x40)).collect();
        let btb_view: Vec<_> =
            probe_vas.iter().map(|&va| m.bpu().btb().lookup(va)).collect();
        let uop_view: Vec<bool> =
            probe_vas.iter().map(|&va| m.uop_cache().lookup(va.raw())).collect();
        let pmu_events = [
            Event::OpCacheHit,
            Event::OpCacheMiss,
            Event::IcacheMiss,
            Event::BranchMispredict,
            Event::InstRetired,
        ];
        let pmu_view: Vec<u64> = pmu_events.iter().map(|&e| m.pmu().read(e)).collect();

        // Continuation A on the original machine.
        m.run(400).expect("terminates");
        let end_a = (final_state(&m), m.cycles());

        // Rewind; every captured view must match the snapshot point.
        m.restore(&snap);
        prop_assert_eq!(&(final_state(&m), m.cycles(), m.pc()), &at_snap);
        let btb_after: Vec<_> =
            probe_vas.iter().map(|&va| m.bpu().btb().lookup(va)).collect();
        prop_assert_eq!(btb_view, btb_after, "BTB state survives the rewind");
        let uop_after: Vec<bool> =
            probe_vas.iter().map(|&va| m.uop_cache().lookup(va.raw())).collect();
        prop_assert_eq!(uop_view, uop_after, "uop-cache state survives the rewind");
        let pmu_after: Vec<u64> = pmu_events.iter().map(|&e| m.pmu().read(e)).collect();
        prop_assert_eq!(pmu_view, pmu_after, "PMU state survives the rewind");

        // Continuation B must replay A exactly.
        m.run(400).expect("terminates");
        prop_assert_eq!(end_a, (final_state(&m), m.cycles()));
    }

    /// Transient side effects are bounded: every wrong-path load in the
    /// reports stays within the address space the victim could touch
    /// (mapped pages); squashed stores never reach memory (covered by
    /// non-interference, asserted directly here via report contents).
    #[test]
    fn transient_reports_are_conservative(
        program in arb_program(),
        poisons in arb_poison(),
    ) {
        let profile = UarchProfile::zen2();
        let mut m = build_machine(&profile, &program);
        let program_len = encode_all(&program).expect("encodable").len() as u64 + 1;
        poison_btb(&mut m, program_len, &poisons);
        let mut steps = 0;
        loop {
            let out = m.step().expect("steps");
            if let Some(t) = &out.transient {
                for load in &t.loads_dispatched {
                    // A dispatched load implies a successful translation.
                    prop_assert!(
                        m.page_table()
                            .translate(*load, phantom_mem::AccessKind::Read, PrivilegeLevel::User)
                            .is_ok(),
                        "squashed load at unmapped {load}"
                    );
                }
            }
            steps += 1;
            if out.halted || steps > 400 {
                break;
            }
        }
    }
}
