//! Seeded, validation-bounded mutation of [`UarchSpec`]s.
//!
//! The discover fuzzer (`phantom_bench::discover`) explores the
//! (program × spec) space; this module is the spec half. Two
//! operations, both pure functions of their arguments so the fuzzer
//! stays byte-deterministic at any worker count:
//!
//! * [`mutate_spec`] — derive a new spec from a builtin by applying a
//!   small number of random operators (fold-bit toggles, associativity
//!   changes, latency nudges, MSR-feature flips), each drawn from a
//!   dependency-free splitmix64 stream seeded by the caller. Every
//!   candidate is re-checked with [`UarchSpec::validate`]; invalid
//!   mutants are skipped deterministically, so the function either
//!   returns a *valid* spec or `None`.
//! * [`shrink_candidates`] — the minimizer's spec half: every
//!   one-field reversion of a mutant back toward its base builtin, in
//!   a fixed field order. The fuzzer keeps a reversion whenever the
//!   leak property still holds, walking the mutant to the closest
//!   builtin-like spec that still leaks.
//!
//! The pipeline crate deliberately has no RNG dependency; the
//! generator here is the same splitmix64 the trial runner uses for
//! `phantom::runner::trial_seed`, so a (seed, index) pair fully
//! determines a mutant.

use super::UarchSpec;

/// Dependency-free splitmix64 stream; identical constants to
/// `phantom::runner::trial_seed` so mutation shares the repo-wide
/// seeding discipline.
#[derive(Debug, Clone)]
struct Stream(u64);

impl Stream {
    fn new(seed: u64) -> Stream {
        Stream(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (n > 0). The modulo bias is irrelevant
    /// for fuzz-operator selection and keeps the stream advance rate
    /// fixed (one draw per call), which resume/replay relies on.
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next() % n
    }

    fn flip(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// How many operator applications a single [`mutate_spec`] call may
/// attempt before giving up and returning `None`. Generous: in
/// practice a valid mutant is found in the first one or two tries.
const MAX_ATTEMPTS: usize = 32;

/// Derive a validated mutant of `base`, or `None` if `MAX_ATTEMPTS`
/// random operator applications all produced invalid specs (rare; the
/// fuzzer just burns the trial index and moves on).
///
/// The mutant's registry key is `<base.key>-m<seed low 32 bits, hex>`
/// so reports and corpus files name the exact (base, seed) pair that
/// produced it. The function is a pure function of `(base, seed)`.
pub fn mutate_spec(base: &UarchSpec, seed: u64) -> Option<UarchSpec> {
    let mut rng = Stream::new(seed);
    for _ in 0..MAX_ATTEMPTS {
        let mut spec = base.clone();
        // One or two operators per mutant keeps candidates close to a
        // real part, which is what makes minimization toward the base
        // meaningful.
        let ops = 1 + rng.below(2);
        for _ in 0..ops {
            apply_operator(&mut spec, &mut rng);
        }
        spec.key = format!("{}-m{:08x}", base.key, seed as u32);
        if spec.validate().is_ok() {
            return Some(spec);
        }
    }
    None
}

/// Apply one random mutation operator in place. The result may be
/// invalid; the caller re-validates.
fn apply_operator(spec: &mut UarchSpec, rng: &mut Stream) {
    match rng.below(8) {
        // Toggle one translated PC bit in one BTB fold mask. This is
        // the operator that discovers out-of-place aliases: dropping a
        // bit from a fold merges the alias classes that differ only in
        // that bit.
        0 => {
            let i = rng.below(spec.btb.folds.len() as u64) as usize;
            let bit = 12 + rng.below(35); // b12..=b46; keep b47 for the fold itself
            spec.btb.folds[i] ^= 1 << bit;
        }
        // Drop a whole fold function (shrinks the signature, creating
        // one alias bit of freedom per dropped fold).
        1 => {
            if spec.btb.folds.len() > 1 {
                let i = rng.below(spec.btb.folds.len() as u64) as usize;
                spec.btb.folds.remove(i);
            }
        }
        2 => spec.btb.ways = 1 << rng.below(4), // 1, 2, 4, 8
        3 => spec.btb.privilege_tagged = !spec.btb.privilege_tagged,
        // Widen or narrow the frontend resteer window within the O1/O2
        // validation bounds; this moves the deepest reachable stage.
        4 => {
            let lo = spec.fetch_latency + spec.decode_latency;
            let hi = spec.backend_resteer_latency - 1;
            if lo < hi {
                spec.frontend_resteer_latency = lo + rng.below(hi - lo + 1);
            }
        }
        5 => {
            // Decode latency within [1, frontend_resteer - fetch].
            let hi = spec
                .frontend_resteer_latency
                .saturating_sub(spec.fetch_latency);
            if hi >= 1 {
                spec.decode_latency = 1 + rng.below(hi);
            }
        }
        6 => spec.phantom_exec_uops = rng.below(9) as u32, // 0..=8
        7 => {
            if rng.flip() {
                spec.suppress_bp_on_non_br = !spec.suppress_bp_on_non_br;
            } else {
                spec.indirect_victim_blind = !spec.indirect_victim_blind;
            }
        }
        _ => unreachable!(),
    }
}

/// Every one-field reversion of `spec` toward `base`, in a fixed field
/// order, each re-validated. Used by the minimizer's spec-shrink pass:
/// accept a reversion when the leak property survives, repeat to
/// fixpoint. Returns an empty vec when `spec` already matches `base`
/// on every shrinkable field.
pub fn shrink_candidates(spec: &UarchSpec, base: &UarchSpec) -> Vec<UarchSpec> {
    let mut out = Vec::new();
    let mut push = |candidate: UarchSpec| {
        if candidate.validate().is_ok() {
            out.push(candidate);
        }
    };
    if spec.btb.folds != base.btb.folds {
        let mut c = spec.clone();
        c.btb.folds = base.btb.folds.clone();
        push(c);
    }
    if spec.btb.ways != base.btb.ways {
        let mut c = spec.clone();
        c.btb.ways = base.btb.ways;
        push(c);
    }
    if spec.btb.privilege_tagged != base.btb.privilege_tagged {
        let mut c = spec.clone();
        c.btb.privilege_tagged = base.btb.privilege_tagged;
        push(c);
    }
    if spec.frontend_resteer_latency != base.frontend_resteer_latency {
        let mut c = spec.clone();
        c.frontend_resteer_latency = base.frontend_resteer_latency;
        push(c);
    }
    if spec.decode_latency != base.decode_latency {
        let mut c = spec.clone();
        c.decode_latency = base.decode_latency;
        push(c);
    }
    if spec.phantom_exec_uops != base.phantom_exec_uops {
        let mut c = spec.clone();
        c.phantom_exec_uops = base.phantom_exec_uops;
        push(c);
    }
    if spec.suppress_bp_on_non_br != base.suppress_bp_on_non_br {
        let mut c = spec.clone();
        c.suppress_bp_on_non_br = base.suppress_bp_on_non_br;
        push(c);
    }
    if spec.indirect_victim_blind != base.indirect_victim_blind {
        let mut c = spec.clone();
        c.indirect_victim_blind = base.indirect_victim_blind;
        push(c);
    }
    out
}

/// True when `spec` matches `base` on every field the mutation
/// operators can touch — i.e. the minimizer shrank the mutant all the
/// way back to the builtin (only the derived key/name differ).
pub fn matches_base(spec: &UarchSpec, base: &UarchSpec) -> bool {
    spec.btb == base.btb
        && spec.cbp == base.cbp
        && spec.frontend_resteer_latency == base.frontend_resteer_latency
        && spec.decode_latency == base.decode_latency
        && spec.phantom_exec_uops == base.phantom_exec_uops
        && spec.suppress_bp_on_non_br == base.suppress_bp_on_non_br
        && spec.indirect_victim_blind == base.indirect_victim_blind
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutants_are_valid_and_deterministic() {
        let base = UarchSpec::zen2();
        let mut produced = 0;
        for seed in 0..64u64 {
            let a = mutate_spec(&base, seed);
            let b = mutate_spec(&base, seed);
            assert_eq!(a, b, "mutation must be a pure function of (base, seed)");
            if let Some(spec) = a {
                spec.validate().expect("mutants are pre-validated");
                assert!(spec.key.starts_with("zen2-m"), "key {:?}", spec.key);
                produced += 1;
            }
        }
        assert!(produced > 48, "only {produced}/64 seeds produced a mutant");
    }

    #[test]
    fn shrink_moves_toward_base_and_terminates() {
        let base = UarchSpec::zen3();
        let spec = mutate_spec(&base, 7).expect("seed 7 mutates");
        // Greedily accept every valid reversion: must reach the base
        // in a bounded number of steps (each step reverts ≥1 field).
        let mut cur = spec;
        for _ in 0..32 {
            let cands = shrink_candidates(&cur, &base);
            match cands.into_iter().next() {
                Some(next) => cur = next,
                None => break,
            }
        }
        assert!(matches_base(&cur, &base));
    }

    #[test]
    fn shrink_of_base_is_empty() {
        let base = UarchSpec::intel12();
        assert!(shrink_candidates(&base, &base).is_empty());
        assert!(matches_base(&base, &base));
    }
}
