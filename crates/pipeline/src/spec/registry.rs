//! The microarchitecture registry: builtin specs plus runtime
//! registration of user-defined ones.

use std::sync::OnceLock;

use super::{parse_specs, SpecError, UarchSpec};
use crate::profile::UarchProfile;

/// An ordered collection of validated [`UarchSpec`]s, addressable by
/// registry key or display name (case-insensitive).
///
/// [`UarchRegistry::builtin`] serves the eight Table 1 specs in the
/// paper's order; [`UarchRegistry::with_builtins`] gives an owned copy
/// that accepts additional user specs (the `repro --spec` path).
///
/// # Examples
///
/// ```
/// use phantom_pipeline::UarchRegistry;
///
/// let reg = UarchRegistry::builtin();
/// assert_eq!(reg.len(), 8);
/// assert_eq!(reg.get("zen2").unwrap().name, "Zen 2");
/// assert_eq!(reg.get("Zen 2").unwrap().key, "zen2"); // display name works too
/// assert!(reg.get("zen5").is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct UarchRegistry {
    specs: Vec<UarchSpec>,
}

impl UarchRegistry {
    /// An empty registry.
    pub fn empty() -> UarchRegistry {
        UarchRegistry::default()
    }

    /// The shared registry of the eight builtin Table 1 specs.
    pub fn builtin() -> &'static UarchRegistry {
        static BUILTIN: OnceLock<UarchRegistry> = OnceLock::new();
        BUILTIN.get_or_init(UarchRegistry::with_builtins)
    }

    /// An owned registry seeded with the builtins, ready for
    /// user-defined additions via [`UarchRegistry::register`].
    pub fn with_builtins() -> UarchRegistry {
        let mut reg = UarchRegistry::empty();
        for spec in UarchSpec::builtins() {
            reg.register(spec).expect("builtin specs are valid");
        }
        reg
    }

    /// Validate and add a spec. Keys and display names share one
    /// case-insensitive namespace, so a new spec can never shadow an
    /// existing one.
    ///
    /// # Errors
    ///
    /// [`SpecError::Invalid`] if validation fails, or
    /// [`SpecError::Duplicate`] on a key/name collision.
    pub fn register(&mut self, spec: UarchSpec) -> Result<(), SpecError> {
        spec.validate()?;
        for taken in [&spec.key, &spec.name] {
            if self.get(taken).is_some() {
                return Err(SpecError::Duplicate(taken.clone()));
            }
        }
        self.specs.push(spec);
        Ok(())
    }

    /// Parse a spec file and register every block. Returns the keys
    /// registered, in file order.
    ///
    /// # Errors
    ///
    /// Propagates parse/validation errors; on a duplicate, specs
    /// registered from earlier blocks of the same file remain.
    pub fn register_text(&mut self, text: &str) -> Result<Vec<String>, SpecError> {
        let specs = parse_specs(text)?;
        let mut keys = Vec::with_capacity(specs.len());
        for spec in specs {
            keys.push(spec.key.clone());
            self.register(spec)?;
        }
        Ok(keys)
    }

    /// Look up a spec by registry key or display name,
    /// case-insensitively.
    pub fn get(&self, name: &str) -> Option<&UarchSpec> {
        self.specs
            .iter()
            .find(|s| s.key.eq_ignore_ascii_case(name) || s.name.eq_ignore_ascii_case(name))
    }

    /// The specs, in registration order (builtins keep Table 1 order).
    pub fn specs(&self) -> &[UarchSpec] {
        &self.specs
    }

    /// Compile every spec to a [`UarchProfile`], in order.
    pub fn profiles(&self) -> Vec<UarchProfile> {
        self.specs.iter().map(UarchSpec::profile).collect()
    }

    /// Number of registered specs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}
