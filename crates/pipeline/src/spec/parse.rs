//! Hand-rolled parser for the uarch spec text format.
//!
//! The format is line-based and deterministic, like the repo's JSON
//! layer: a magic header line, then one `uarch <key> { … }` block per
//! spec with a single `key value` pair per line. `#` starts a comment
//! (outside quotes), blank lines are ignored, and every block is
//! validated with [`UarchSpec::validate`] before it is returned.
//!
//! ```text
//! phantom-uarch-spec v1
//!
//! uarch whatif {
//!   name "What-if"             # quoted, \" and \\ escapes
//!   model "Imaginary 1"
//!   vendor amd                 # amd | intel
//!   freq_ghz 4.0
//!   btb.ways 2
//!   btb.privilege_tagged false
//!   btb.fold b47 ^ b35 ^ b23   # repeatable, paper notation
//!   cbp.ways 1                 # cbp.* all optional: defaults are the
//!   cbp.counter_bits 2         # legacy gshare PHT, so pre-cbp files
//!   cbp.history_bits 8         # parse to today's behavior
//!   cbp.index_fold b1 ^ h0     # b = PC bit, h = history bit
//!   cbp.tag_fold b22           # repeatable; none = untagged
//!   cache.l1i 64 8 64          # sets ways line_size
//!   …
//! }
//! ```

use phantom_cache::{CacheGeometry, Replacement};

use super::{BtbSpec, CacheSpec, CbpSpec, SpecError, UarchSpec, SPEC_HEADER};
use crate::profile::Vendor;

/// Parse a spec file: header plus zero or more `uarch` blocks, each
/// validated.
///
/// # Errors
///
/// Returns [`SpecError::Parse`] with the offending 1-based line, or
/// [`SpecError::Invalid`] when a syntactically well-formed block
/// violates a validation rule.
pub fn parse_specs(text: &str) -> Result<Vec<UarchSpec>, SpecError> {
    let mut specs = Vec::new();
    let mut header_seen = false;
    let mut block: Option<(usize, Builder)> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let err = |msg: String| SpecError::Parse { line: line_no, msg };
        let line = strip_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if !header_seen {
            if line != SPEC_HEADER {
                return Err(err(format!(
                    "expected header {SPEC_HEADER:?}, found {line:?}"
                )));
            }
            header_seen = true;
            continue;
        }
        // Move the open block out of its slot for this line and put it
        // back unless the line closes it — ownership replaces the old
        // `.expect("block is open")` on the close path, so malformed
        // nesting from mutated spec files is a parse error, never a
        // panic.
        match (block.take(), line) {
            (None, "}") => {
                return Err(err("unexpected `}`: no `uarch` block is open".to_string()));
            }
            (None, _) => {
                let mut tokens = line.split_whitespace();
                match (tokens.next(), tokens.next(), tokens.next(), tokens.next()) {
                    (Some("uarch"), Some(key), Some("{"), None) => {
                        block = Some((line_no, Builder::new(key)));
                    }
                    _ => return Err(err(format!("expected `uarch <key> {{`, found {line:?}"))),
                }
            }
            (Some((open_line, builder)), "}") => {
                let spec = builder.finish().map_err(|msg| SpecError::Parse {
                    line: open_line,
                    msg,
                })?;
                spec.validate()?;
                specs.push(spec);
            }
            (Some((open_line, mut builder)), _) => {
                let (field, value) = match line.split_once(char::is_whitespace) {
                    Some((f, v)) => (f, v.trim()),
                    None => (line, ""),
                };
                if field == "uarch" {
                    return Err(err(format!(
                        "nested `uarch` block inside `uarch {} {{` (close it with `}}` first)",
                        builder.key
                    )));
                }
                if field.starts_with('}') {
                    return Err(err(format!(
                        "`}}` must be alone on its line, found {line:?}"
                    )));
                }
                builder.set(field, value).map_err(err)?;
                block = Some((open_line, builder));
            }
        }
    }
    if let Some((open_line, builder)) = block {
        return Err(SpecError::Parse {
            line: open_line,
            msg: format!("unterminated `uarch {} {{` block", builder.key),
        });
    }
    if !header_seen {
        return Err(SpecError::Parse {
            line: 1,
            msg: format!("empty input: expected header {SPEC_HEADER:?}"),
        });
    }
    Ok(specs)
}

/// Truncate `raw` at the first `#` that is outside a quoted string.
fn strip_comment(raw: &str) -> &str {
    let mut in_quote = false;
    let mut escaped = false;
    for (i, c) in raw.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_quote => escaped = true,
            '"' => in_quote = !in_quote,
            '#' if !in_quote => return &raw[..i],
            _ => {}
        }
    }
    raw
}

fn parse_quoted(s: &str) -> Result<String, String> {
    let mut chars = s.chars();
    if chars.next() != Some('"') {
        return Err(format!("expected a quoted string, found {s:?}"));
    }
    let mut out = String::new();
    let mut escaped = false;
    for c in chars.by_ref() {
        if escaped {
            match c {
                '"' | '\\' => out.push(c),
                other => return Err(format!("unsupported escape `\\{other}`")),
            }
            escaped = false;
        } else {
            match c {
                '\\' => escaped = true,
                '"' => {
                    let rest: String = chars.collect();
                    if !rest.trim().is_empty() {
                        return Err(format!("trailing content after string: {rest:?}"));
                    }
                    return Ok(out);
                }
                c => out.push(c),
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_bool(s: &str) -> Result<bool, String> {
    match s {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("expected true or false, found {other:?}")),
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("expected {what}, found {s:?}"))
}

fn parse_geom(s: &str) -> Result<CacheGeometry, String> {
    let dims: Vec<&str> = s.split_whitespace().collect();
    let [sets, ways, line_size] = dims.as_slice() else {
        return Err(format!("expected `<sets> <ways> <line_size>`, found {s:?}"));
    };
    // Shape constraints (powers of two, nonzero ways) are checked by
    // `UarchSpec::validate`, which names the offending cache level.
    Ok(CacheGeometry {
        sets: parse_num(sets, "a set count")?,
        ways: parse_num(ways, "a way count")?,
        line_size: parse_num(line_size, "a line size")?,
    })
}

/// Parse a fold function in the paper's notation: `b47 ^ b35 ^ b23`.
fn parse_fold(s: &str) -> Result<u64, String> {
    let mut mask = 0u64;
    for term in s.split('^') {
        let term = term.trim();
        let Some(bit) = term.strip_prefix('b') else {
            return Err(format!("expected a `b<bit>` term, found {term:?}"));
        };
        let bit: u32 = parse_num(bit, "a bit index")?;
        if bit >= 64 {
            return Err(format!("bit index b{bit} out of range (max b63)"));
        }
        if mask >> bit & 1 == 1 {
            return Err(format!("duplicate term b{bit}"));
        }
        mask |= 1 << bit;
    }
    Ok(mask)
}

/// Parse a CBP index fold mixing PC and history bits: `b13 ^ b3 ^ h1`.
/// `b<bit>` terms select branch-PC bits, `h<bit>` terms select global-
/// history bits (h0 = most recent outcome).
fn parse_mixed_fold(s: &str) -> Result<(u64, u64), String> {
    let mut pc = 0u64;
    let mut hist = 0u64;
    for term in s.split('^') {
        let term = term.trim();
        let (mask, bit, kind) = if let Some(bit) = term.strip_prefix('b') {
            (&mut pc, bit, 'b')
        } else if let Some(bit) = term.strip_prefix('h') {
            (&mut hist, bit, 'h')
        } else {
            return Err(format!(
                "expected a `b<bit>` or `h<bit>` term, found {term:?}"
            ));
        };
        let bit: u32 = parse_num(bit, "a bit index")?;
        if bit >= 64 {
            return Err(format!("bit index {kind}{bit} out of range (max {kind}63)"));
        }
        if *mask >> bit & 1 == 1 {
            return Err(format!("duplicate term {kind}{bit}"));
        }
        *mask |= 1 << bit;
    }
    Ok((pc, hist))
}

/// Accumulates one `uarch` block; `finish` checks completeness.
struct Builder {
    key: String,
    name: Option<String>,
    model: Option<String>,
    vendor: Option<Vendor>,
    freq_ghz: Option<f64>,
    btb_ways: Option<usize>,
    btb_privilege_tagged: Option<bool>,
    folds: Vec<u64>,
    cbp_ways: Option<usize>,
    cbp_counter_bits: Option<u32>,
    cbp_history_bits: Option<u32>,
    cbp_index_folds: Vec<(u64, u64)>,
    cbp_tag_folds: Vec<u64>,
    l1i: Option<CacheGeometry>,
    l1d: Option<CacheGeometry>,
    l2: Option<CacheGeometry>,
    uop: Option<CacheGeometry>,
    l1_latency: Option<u64>,
    l2_latency: Option<u64>,
    memory_latency: Option<u64>,
    replacement: Option<Replacement>,
    fetch_block: Option<u64>,
    fetch_latency: Option<u64>,
    decode_latency: Option<u64>,
    frontend_resteer_latency: Option<u64>,
    backend_resteer_latency: Option<u64>,
    phantom_exec_uops: Option<u32>,
    spectre_exec_uops: Option<u32>,
    suppress_bp_on_non_br: Option<bool>,
    auto_ibrs: Option<bool>,
    indirect_victim_blind: Option<bool>,
}

fn set<T>(slot: &mut Option<T>, value: T, field: &str) -> Result<(), String> {
    if slot.is_some() {
        return Err(format!("duplicate field {field}"));
    }
    *slot = Some(value);
    Ok(())
}

impl Builder {
    fn new(key: &str) -> Builder {
        Builder {
            key: key.to_string(),
            name: None,
            model: None,
            vendor: None,
            freq_ghz: None,
            btb_ways: None,
            btb_privilege_tagged: None,
            folds: Vec::new(),
            cbp_ways: None,
            cbp_counter_bits: None,
            cbp_history_bits: None,
            cbp_index_folds: Vec::new(),
            cbp_tag_folds: Vec::new(),
            l1i: None,
            l1d: None,
            l2: None,
            uop: None,
            l1_latency: None,
            l2_latency: None,
            memory_latency: None,
            replacement: None,
            fetch_block: None,
            fetch_latency: None,
            decode_latency: None,
            frontend_resteer_latency: None,
            backend_resteer_latency: None,
            phantom_exec_uops: None,
            spectre_exec_uops: None,
            suppress_bp_on_non_br: None,
            auto_ibrs: None,
            indirect_victim_blind: None,
        }
    }

    fn set(&mut self, field: &str, value: &str) -> Result<(), String> {
        match field {
            "name" => set(&mut self.name, parse_quoted(value)?, field),
            "model" => set(&mut self.model, parse_quoted(value)?, field),
            "vendor" => {
                let v = match value {
                    "amd" => Vendor::Amd,
                    "intel" => Vendor::Intel,
                    other => return Err(format!("expected amd or intel, found {other:?}")),
                };
                set(&mut self.vendor, v, field)
            }
            "freq_ghz" => {
                let f: f64 = parse_num(value, "a frequency in GHz")?;
                if !f.is_finite() {
                    return Err(format!("expected a finite frequency, found {value:?}"));
                }
                set(&mut self.freq_ghz, f, field)
            }
            "btb.ways" => set(&mut self.btb_ways, parse_num(value, "a way count")?, field),
            "btb.privilege_tagged" => {
                set(&mut self.btb_privilege_tagged, parse_bool(value)?, field)
            }
            "btb.fold" => {
                self.folds.push(parse_fold(value)?);
                Ok(())
            }
            "cbp.ways" => set(&mut self.cbp_ways, parse_num(value, "a way count")?, field),
            "cbp.counter_bits" => set(
                &mut self.cbp_counter_bits,
                parse_num(value, "a counter width")?,
                field,
            ),
            "cbp.history_bits" => set(
                &mut self.cbp_history_bits,
                parse_num(value, "a history length")?,
                field,
            ),
            "cbp.index_fold" => {
                self.cbp_index_folds.push(parse_mixed_fold(value)?);
                Ok(())
            }
            "cbp.tag_fold" => {
                self.cbp_tag_folds.push(parse_fold(value)?);
                Ok(())
            }
            "cache.l1i" => set(&mut self.l1i, parse_geom(value)?, field),
            "cache.l1d" => set(&mut self.l1d, parse_geom(value)?, field),
            "cache.l2" => set(&mut self.l2, parse_geom(value)?, field),
            "cache.uop" => set(&mut self.uop, parse_geom(value)?, field),
            "cache.l1_latency" => set(&mut self.l1_latency, parse_num(value, "cycles")?, field),
            "cache.l2_latency" => set(&mut self.l2_latency, parse_num(value, "cycles")?, field),
            "cache.memory_latency" => {
                set(&mut self.memory_latency, parse_num(value, "cycles")?, field)
            }
            "cache.replacement" => {
                let r = match value {
                    "lru" => Replacement::Lru,
                    "tree-plru" => Replacement::TreePlru,
                    "fifo" => Replacement::Fifo,
                    other => {
                        return Err(format!("expected lru, tree-plru or fifo, found {other:?}"))
                    }
                };
                set(&mut self.replacement, r, field)
            }
            "fetch_block" => set(&mut self.fetch_block, parse_num(value, "bytes")?, field),
            "fetch_latency" => set(&mut self.fetch_latency, parse_num(value, "cycles")?, field),
            "decode_latency" => set(&mut self.decode_latency, parse_num(value, "cycles")?, field),
            "frontend_resteer_latency" => set(
                &mut self.frontend_resteer_latency,
                parse_num(value, "cycles")?,
                field,
            ),
            "backend_resteer_latency" => set(
                &mut self.backend_resteer_latency,
                parse_num(value, "cycles")?,
                field,
            ),
            "phantom_exec_uops" => set(
                &mut self.phantom_exec_uops,
                parse_num(value, "a µop count")?,
                field,
            ),
            "spectre_exec_uops" => set(
                &mut self.spectre_exec_uops,
                parse_num(value, "a µop count")?,
                field,
            ),
            "suppress_bp_on_non_br" => {
                set(&mut self.suppress_bp_on_non_br, parse_bool(value)?, field)
            }
            "auto_ibrs" => set(&mut self.auto_ibrs, parse_bool(value)?, field),
            "indirect_victim_blind" => {
                set(&mut self.indirect_victim_blind, parse_bool(value)?, field)
            }
            other => Err(format!("unknown field {other:?}")),
        }
    }

    fn finish(self) -> Result<UarchSpec, String> {
        fn req<T>(slot: Option<T>, field: &str) -> Result<T, String> {
            slot.ok_or_else(|| format!("missing field {field}"))
        }
        Ok(UarchSpec {
            key: self.key,
            name: req(self.name, "name")?,
            model: req(self.model, "model")?,
            vendor: req(self.vendor, "vendor")?,
            freq_ghz: req(self.freq_ghz, "freq_ghz")?,
            btb: BtbSpec {
                folds: self.folds,
                ways: req(self.btb_ways, "btb.ways")?,
                privilege_tagged: req(self.btb_privilege_tagged, "btb.privilege_tagged")?,
            },
            cbp: {
                // Every cbp field is optional and defaults to the legacy
                // gshare PHT, so pre-cbp v1 files keep today's behavior
                // (same precedent as cache.replacement).
                let legacy = CbpSpec::default();
                CbpSpec {
                    index_folds: if self.cbp_index_folds.is_empty() {
                        legacy.index_folds
                    } else {
                        self.cbp_index_folds
                    },
                    tag_folds: self.cbp_tag_folds,
                    ways: self.cbp_ways.unwrap_or(legacy.ways),
                    counter_bits: self.cbp_counter_bits.unwrap_or(legacy.counter_bits),
                    history_bits: self.cbp_history_bits.unwrap_or(legacy.history_bits),
                }
            },
            cache: CacheSpec {
                l1i: req(self.l1i, "cache.l1i")?,
                l1d: req(self.l1d, "cache.l1d")?,
                l2: req(self.l2, "cache.l2")?,
                uop: req(self.uop, "cache.uop")?,
                l1_latency: req(self.l1_latency, "cache.l1_latency")?,
                l2_latency: req(self.l2_latency, "cache.l2_latency")?,
                memory_latency: req(self.memory_latency, "cache.memory_latency")?,
                replacement: self.replacement.unwrap_or(Replacement::Lru),
            },
            fetch_block: req(self.fetch_block, "fetch_block")?,
            fetch_latency: req(self.fetch_latency, "fetch_latency")?,
            decode_latency: req(self.decode_latency, "decode_latency")?,
            frontend_resteer_latency: req(
                self.frontend_resteer_latency,
                "frontend_resteer_latency",
            )?,
            backend_resteer_latency: req(self.backend_resteer_latency, "backend_resteer_latency")?,
            phantom_exec_uops: req(self.phantom_exec_uops, "phantom_exec_uops")?,
            spectre_exec_uops: req(self.spectre_exec_uops, "spectre_exec_uops")?,
            suppress_bp_on_non_br: req(self.suppress_bp_on_non_br, "suppress_bp_on_non_br")?,
            auto_ibrs: req(self.auto_ibrs, "auto_ibrs")?,
            indirect_victim_blind: req(self.indirect_victim_blind, "indirect_victim_blind")?,
        })
    }
}
