//! Declarative, validated microarchitecture specs.
//!
//! A [`UarchSpec`] is the *data* behind a [`UarchProfile`]: BTB
//! geometry and GF(2) XOR-fold index functions, cache-hierarchy
//! shapes and latencies, resteer/decode timings, MSR feature bits and
//! the phantom-execution depth. Specs are validated at construction
//! ([`UarchSpec::validate`]) — power-of-two geometry, full-rank fold
//! families, the paper's latency orderings — and round-trip through a
//! hand-rolled line-based text format ([`UarchSpec::to_text`] /
//! [`parse_specs`]) in the same deterministic spirit as
//! `phantom::report::json`.
//!
//! The eight microarchitectures of Table 1 are builtin specs
//! ([`UarchSpec::builtins`], served by [`UarchRegistry::builtin`]);
//! `UarchProfile::zen2()` and friends compile them. User-authored
//! spec files open a new workload axis: what-if uarches ("Zen 2 with
//! Zen 4's fast decode resteer") sweep through every experiment
//! without touching Rust.
//!
//! # Examples
//!
//! ```
//! use phantom_pipeline::{UarchRegistry, UarchSpec};
//!
//! // Builtins compile to exactly the legacy constructor profiles.
//! let zen2 = UarchRegistry::builtin().get("zen2").unwrap();
//! assert_eq!(zen2.profile(), phantom_pipeline::UarchProfile::zen2());
//!
//! // Specs round-trip through the text format.
//! let text = zen2.to_text();
//! let parsed = phantom_pipeline::spec::parse_specs(&text).unwrap();
//! assert_eq!(parsed, vec![zen2.clone()]);
//!
//! // Validation rejects impossible machines.
//! let mut broken = zen2.clone();
//! broken.frontend_resteer_latency = 1; // resteer before fetch finishes
//! assert!(broken.validate().is_err());
//! ```

pub mod mutate;
mod parse;
mod registry;

pub use parse::parse_specs;
pub use registry::UarchRegistry;

use std::fmt;

use phantom_bpu::{BtbScheme, CbpScheme, FoldFamily, FoldFn, MixedFold};
use phantom_cache::{CacheGeometry, HierarchyConfig, Replacement};
use phantom_gf2::BitMatrix;

use crate::intern::IStr;
use crate::profile::{UarchProfile, Vendor};

/// Magic first line of a spec file (format version gate).
pub const SPEC_HEADER: &str = "phantom-uarch-spec v1";

/// A spec-layer error: parse failure, validation failure, or registry
/// key collision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// Text-format parse failure at a 1-based line number.
    Parse {
        /// Line the parser stopped at.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A validation rule failed for `field`.
    Invalid {
        /// The offending spec field.
        field: &'static str,
        /// The violated constraint.
        msg: String,
    },
    /// Registering a spec whose key or display name is already taken.
    Duplicate(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse { line, msg } => write!(f, "spec parse error, line {line}: {msg}"),
            SpecError::Invalid { field, msg } => write!(f, "invalid spec field {field}: {msg}"),
            SpecError::Duplicate(name) => write!(f, "uarch {name:?} is already registered"),
        }
    }
}

impl std::error::Error for SpecError {}

fn invalid(field: &'static str, msg: impl Into<String>) -> SpecError {
    SpecError::Invalid {
        field,
        msg: msg.into(),
    }
}

/// BTB geometry and indexing for a spec: the XOR-fold family as raw
/// GF(2) row masks plus associativity and privilege tagging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BtbSpec {
    /// One 64-bit mask per fold function (`FoldFn::mask`); parity of
    /// the selected address bits is one signature bit. Must be
    /// linearly independent over GF(2) and touch only translated bits
    /// (≥ 12).
    pub folds: Vec<u64>,
    /// Associativity per alias class.
    pub ways: usize,
    /// Whether entries are tagged with the training privilege mode.
    pub privilege_tagged: bool,
}

impl BtbSpec {
    fn from_scheme(scheme: &BtbScheme) -> BtbSpec {
        BtbSpec {
            folds: scheme.family.fns().iter().map(|f| f.mask).collect(),
            ways: scheme.ways,
            privilege_tagged: scheme.privilege_tagged,
        }
    }

    /// Compile to the runtime [`BtbScheme`].
    pub fn scheme(&self) -> BtbScheme {
        BtbScheme {
            family: FoldFamily::new(self.folds.iter().map(|&mask| FoldFn { mask }).collect()),
            ways: self.ways,
            privilege_tagged: self.privilege_tagged,
        }
    }
}

/// Conditional-branch-predictor geometry and indexing for a spec.
///
/// Every field has a legacy default ([`CbpSpec::default`] is the seed
/// gshare PHT), so v1 spec files written before the `cbp` block existed
/// parse — and behave — exactly as they always did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CbpSpec {
    /// One `(pc_mask, hist_mask)` pair per set-index bit: index bit `i`
    /// is the parity of the selected branch-PC bits XOR the parity of
    /// the selected history bits. The table has `2^len` sets.
    pub index_folds: Vec<(u64, u64)>,
    /// PC fold masks forming the per-entry tag; empty means untagged
    /// (classic gshare aliasing).
    pub tag_folds: Vec<u64>,
    /// Associativity (untagged schemes must be direct-mapped).
    pub ways: usize,
    /// Saturating-counter width in bits.
    pub counter_bits: u32,
    /// Global-history length in bits.
    pub history_bits: u32,
}

impl Default for CbpSpec {
    fn default() -> CbpSpec {
        CbpSpec::from_scheme(&CbpScheme::legacy())
    }
}

impl CbpSpec {
    fn from_scheme(scheme: &CbpScheme) -> CbpSpec {
        CbpSpec {
            index_folds: scheme.index.iter().map(|f| (f.pc, f.hist)).collect(),
            tag_folds: scheme.tag.iter().map(|f| f.mask).collect(),
            ways: scheme.ways,
            counter_bits: scheme.counter_bits,
            history_bits: scheme.history_bits,
        }
    }

    /// Compile to the runtime [`CbpScheme`].
    pub fn scheme(&self) -> CbpScheme {
        CbpScheme {
            index: self
                .index_folds
                .iter()
                .map(|&(pc, hist)| MixedFold { pc, hist })
                .collect(),
            tag: self.tag_folds.iter().map(|&mask| FoldFn { mask }).collect(),
            ways: self.ways,
            counter_bits: self.counter_bits,
            history_bits: self.history_bits,
        }
    }
}

/// Cache-hierarchy geometry and latencies for a spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSpec {
    /// L1I shape.
    pub l1i: CacheGeometry,
    /// L1D shape.
    pub l1d: CacheGeometry,
    /// Unified, inclusive L2 shape.
    pub l2: CacheGeometry,
    /// µop-cache shape.
    pub uop: CacheGeometry,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// Incremental L2 hit latency in cycles.
    pub l2_latency: u64,
    /// Incremental memory latency in cycles.
    pub memory_latency: u64,
    /// Replacement policy for every level.
    pub replacement: Replacement,
}

impl CacheSpec {
    /// The paper's shared cache shape (every tested part): 32 KiB 8-way
    /// L1s, 512 KiB 8-way L2, 64×8 µop cache, LRU.
    pub fn paper() -> CacheSpec {
        let h = HierarchyConfig::default();
        CacheSpec {
            l1i: h.l1i,
            l1d: h.l1d,
            l2: h.l2,
            uop: CacheGeometry::uop_cache(),
            l1_latency: h.l1_latency,
            l2_latency: h.l2_latency,
            memory_latency: h.memory_latency,
            replacement: h.replacement,
        }
    }

    /// Compile to the runtime [`HierarchyConfig`].
    pub fn hierarchy_config(&self) -> HierarchyConfig {
        HierarchyConfig {
            l1i: self.l1i,
            l1d: self.l1d,
            l2: self.l2,
            l1_latency: self.l1_latency,
            l2_latency: self.l2_latency,
            memory_latency: self.memory_latency,
            replacement: self.replacement,
        }
    }
}

/// A declarative microarchitecture description. See the [module
/// docs](self) for the format and validation rules.
#[derive(Debug, Clone, PartialEq)]
pub struct UarchSpec {
    /// Registry key (`zen2`, `intel12`, …): lowercase, no spaces.
    pub key: String,
    /// Human-readable name ("Zen 2").
    pub name: String,
    /// The representative retail part.
    pub model: String,
    /// Vendor.
    pub vendor: Vendor,
    /// Nominal frequency in GHz (cycle → wall-clock conversion).
    pub freq_ghz: f64,
    /// BTB geometry and fold functions.
    pub btb: BtbSpec,
    /// Conditional-branch-predictor geometry and fold functions.
    pub cbp: CbpSpec,
    /// Cache hierarchy geometry and latencies.
    pub cache: CacheSpec,
    /// Fetch window in bytes (power of two).
    pub fetch_block: u64,
    /// Cycles from prediction to I-cache access.
    pub fetch_latency: u64,
    /// Cycles from fetched bytes to decoded µops.
    pub decode_latency: u64,
    /// Cycles until a decoder-detected mismatch squashes the frontend.
    pub frontend_resteer_latency: u64,
    /// Cycles until an execute-detected mismatch squashes the backend.
    pub backend_resteer_latency: u64,
    /// µop budget of a frontend-resteered (phantom) path.
    pub phantom_exec_uops: u32,
    /// µop budget of a backend-resteered (Spectre) path.
    pub spectre_exec_uops: u32,
    /// Whether the `SuppressBPOnNonBr` MSR bit exists.
    pub suppress_bp_on_non_br: bool,
    /// Whether AutoIBRS exists.
    pub auto_ibrs: bool,
    /// §6 Intel blind spot for `jmp*` victims.
    pub indirect_victim_blind: bool,
}

impl UarchSpec {
    // ----- builtins ---------------------------------------------------

    /// AMD Zen 1 (Ryzen 5 1600X in the paper).
    pub fn zen1() -> UarchSpec {
        UarchSpec {
            key: "zen1".into(),
            name: "Zen".into(),
            model: "AMD Ryzen 5 1600X".into(),
            vendor: Vendor::Amd,
            freq_ghz: 3.6,
            btb: BtbSpec::from_scheme(&BtbScheme::zen12()),
            cbp: CbpSpec::default(),
            cache: CacheSpec::paper(),
            fetch_block: 32,
            fetch_latency: 1,
            decode_latency: 4,
            frontend_resteer_latency: 12,
            backend_resteer_latency: 60,
            phantom_exec_uops: 6,
            spectre_exec_uops: 40,
            suppress_bp_on_non_br: false,
            auto_ibrs: false,
            indirect_victim_blind: false,
        }
    }

    /// AMD Zen 2 (EPYC 7252 in the paper).
    pub fn zen2() -> UarchSpec {
        UarchSpec {
            key: "zen2".into(),
            name: "Zen 2".into(),
            model: "AMD EPYC 7252".into(),
            vendor: Vendor::Amd,
            freq_ghz: 3.1,
            btb: BtbSpec::from_scheme(&BtbScheme::zen12()),
            cbp: CbpSpec::default(),
            cache: CacheSpec::paper(),
            fetch_block: 32,
            fetch_latency: 1,
            decode_latency: 4,
            frontend_resteer_latency: 11,
            backend_resteer_latency: 60,
            phantom_exec_uops: 6,
            spectre_exec_uops: 44,
            suppress_bp_on_non_br: true,
            auto_ibrs: false,
            indirect_victim_blind: false,
        }
    }

    /// AMD Zen 3 (Ryzen 5 5600G in the paper). First part with the
    /// `b47`-folded cross-privilege BTB functions of Figure 7.
    pub fn zen3() -> UarchSpec {
        UarchSpec {
            key: "zen3".into(),
            name: "Zen 3".into(),
            model: "Ryzen 5 5600G".into(),
            vendor: Vendor::Amd,
            freq_ghz: 3.9,
            btb: BtbSpec::from_scheme(&BtbScheme::zen34()),
            cbp: CbpSpec::default(),
            cache: CacheSpec::paper(),
            fetch_block: 32,
            fetch_latency: 1,
            decode_latency: 3,
            frontend_resteer_latency: 6,
            backend_resteer_latency: 55,
            phantom_exec_uops: 0,
            spectre_exec_uops: 44,
            suppress_bp_on_non_br: true,
            auto_ibrs: false,
            indirect_victim_blind: false,
        }
    }

    /// AMD Zen 4 (Ryzen 7 7700X in the paper). Adds AutoIBRS.
    pub fn zen4() -> UarchSpec {
        UarchSpec {
            key: "zen4".into(),
            name: "Zen 4".into(),
            model: "Ryzen 7 7700X".into(),
            vendor: Vendor::Amd,
            freq_ghz: 4.5,
            btb: BtbSpec::from_scheme(&BtbScheme::zen34()),
            cbp: CbpSpec::default(),
            cache: CacheSpec::paper(),
            fetch_block: 32,
            fetch_latency: 1,
            decode_latency: 3,
            frontend_resteer_latency: 5,
            backend_resteer_latency: 50,
            phantom_exec_uops: 0,
            spectre_exec_uops: 48,
            suppress_bp_on_non_br: true,
            auto_ibrs: true,
            indirect_victim_blind: false,
        }
    }

    fn intel(key: &str, name: &str, model: &str, freq_ghz: f64, blind: bool) -> UarchSpec {
        UarchSpec {
            key: key.into(),
            name: name.into(),
            model: model.into(),
            vendor: Vendor::Intel,
            freq_ghz,
            btb: BtbSpec::from_scheme(&BtbScheme::intel()),
            cbp: CbpSpec::default(),
            cache: CacheSpec::paper(),
            fetch_block: 32,
            fetch_latency: 1,
            decode_latency: 3,
            frontend_resteer_latency: 6,
            backend_resteer_latency: 55,
            phantom_exec_uops: 0,
            spectre_exec_uops: 44,
            suppress_bp_on_non_br: false,
            auto_ibrs: false,
            indirect_victim_blind: blind,
        }
    }

    /// Intel 9th generation (Coffee Lake Refresh).
    pub fn intel9() -> UarchSpec {
        UarchSpec::intel("intel9", "Intel 9th gen", "Core i9-9900K", 3.6, true)
    }

    /// Intel 11th generation (Rocket Lake).
    pub fn intel11() -> UarchSpec {
        UarchSpec::intel("intel11", "Intel 11th gen", "Core i7-11700K", 3.6, true)
    }

    /// Intel 12th generation P core (Golden Cove).
    pub fn intel12() -> UarchSpec {
        UarchSpec::intel(
            "intel12",
            "Intel 12th gen (P core)",
            "Core i9-12900K",
            3.2,
            false,
        )
    }

    /// Intel 13th generation P core (Raptor Cove).
    pub fn intel13() -> UarchSpec {
        UarchSpec::intel(
            "intel13",
            "Intel 13th gen (P core)",
            "Core i9-13900K",
            3.0,
            false,
        )
    }

    /// The eight builtin specs of Table 1, in the paper's order.
    pub fn builtins() -> Vec<UarchSpec> {
        vec![
            UarchSpec::zen1(),
            UarchSpec::zen2(),
            UarchSpec::zen3(),
            UarchSpec::zen4(),
            UarchSpec::intel9(),
            UarchSpec::intel11(),
            UarchSpec::intel12(),
            UarchSpec::intel13(),
        ]
    }

    // ----- validation -------------------------------------------------

    /// Check every construction invariant. Parsed specs are validated
    /// automatically; call this after mutating a spec in code.
    ///
    /// # Errors
    ///
    /// Returns the first violated rule as [`SpecError::Invalid`].
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.key.is_empty() {
            return Err(invalid("key", "must be nonempty"));
        }
        if !self
            .key
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
        {
            return Err(invalid(
                "key",
                format!("{:?} may only contain [a-z0-9_-]", self.key),
            ));
        }
        for (field, value) in [("name", &self.name), ("model", &self.model)] {
            if value.is_empty() {
                return Err(invalid(field, "must be nonempty"));
            }
            if value.chars().any(char::is_control) {
                return Err(invalid(field, "must not contain control characters"));
            }
        }
        if !(self.freq_ghz.is_finite() && self.freq_ghz > 0.0) {
            return Err(invalid(
                "freq_ghz",
                format!(
                    "must be a positive finite frequency (got {})",
                    self.freq_ghz
                ),
            ));
        }

        // BTB: nonempty, independent, translated-bits-only fold family.
        if self.btb.ways == 0 {
            return Err(invalid("btb.ways", "must be nonzero"));
        }
        if self.btb.folds.is_empty() {
            return Err(invalid(
                "btb.fold",
                "at least one fold function is required (an empty family aliases everything)",
            ));
        }
        if self.btb.folds.len() > 32 {
            return Err(invalid(
                "btb.fold",
                format!(
                    "at most 32 fold functions supported (got {})",
                    self.btb.folds.len()
                ),
            ));
        }
        for &mask in &self.btb.folds {
            if mask == 0 {
                return Err(invalid("btb.fold", "a fold function must select some bits"));
            }
            if mask & 0xfff != 0 {
                return Err(invalid(
                    "btb.fold",
                    format!(
                        "fold {} selects untranslated bits below b12 (the page \
                         offset indexes the BTB directly)",
                        FoldFn { mask }
                    ),
                ));
            }
        }
        let rank = BitMatrix::from_rows(64, &self.btb.folds).rank() as usize;
        if rank != self.btb.folds.len() {
            return Err(invalid(
                "btb.fold",
                format!(
                    "fold family is rank-deficient over GF(2): {} functions, rank {rank} \
                     (a dependent fold adds no signature bits)",
                    self.btb.folds.len()
                ),
            ));
        }

        // CBP: nonempty independent index folds over PC ⊕ history,
        // geometry the counter array can realize.
        if self.cbp.ways == 0 {
            return Err(invalid("cbp.ways", "must be nonzero"));
        }
        if self.cbp.tag_folds.is_empty() && self.cbp.ways != 1 {
            return Err(invalid(
                "cbp.ways",
                format!(
                    "an untagged cbp must be direct-mapped (got {} ways and no \
                     cbp.tag_fold lines)",
                    self.cbp.ways
                ),
            ));
        }
        if self.cbp.counter_bits == 0 || self.cbp.counter_bits > 8 {
            return Err(invalid(
                "cbp.counter_bits",
                format!("must be in 1..=8 (got {})", self.cbp.counter_bits),
            ));
        }
        if self.cbp.history_bits > 16 {
            return Err(invalid(
                "cbp.history_bits",
                format!(
                    "at most 16 history bits supported (got {})",
                    self.cbp.history_bits
                ),
            ));
        }
        if self.cbp.index_folds.is_empty() {
            return Err(invalid(
                "cbp.index_fold",
                "at least one index fold is required (a zero-set table predicts nothing)",
            ));
        }
        if self.cbp.index_folds.len() > 24 {
            return Err(invalid(
                "cbp.index_fold",
                format!(
                    "at most 24 index folds supported (got {})",
                    self.cbp.index_folds.len()
                ),
            ));
        }
        let hist_mask = (1u64 << self.cbp.history_bits) - 1;
        for &(pc, hist) in &self.cbp.index_folds {
            if pc == 0 && hist == 0 {
                return Err(invalid(
                    "cbp.index_fold",
                    "an index fold must select some bits",
                ));
            }
            if pc >> 48 != 0 {
                return Err(invalid(
                    "cbp.index_fold",
                    format!(
                        "fold {} selects PC bits at or above b48 (branch PCs are \
                         48-bit canonical)",
                        MixedFold { pc, hist }
                    ),
                ));
            }
            if hist & !hist_mask != 0 {
                return Err(invalid(
                    "cbp.index_fold",
                    format!(
                        "fold {} mixes history bits beyond the {}-bit register",
                        MixedFold { pc, hist },
                        self.cbp.history_bits
                    ),
                ));
            }
        }
        // Full rank over the joint (PC, history) space: pack each fold
        // into one 64-bit row — PC bits low, history bits shifted above
        // b48 (both ranges are validated to fit).
        let index_rows: Vec<u64> = self
            .cbp
            .index_folds
            .iter()
            .map(|&(pc, hist)| pc | (hist << 48))
            .collect();
        let rank = BitMatrix::from_rows(64, &index_rows).rank() as usize;
        if rank != index_rows.len() {
            return Err(invalid(
                "cbp.index_fold",
                format!(
                    "index fold family is rank-deficient over GF(2): {} folds, \
                     rank {rank} (a dependent fold halves the usable sets)",
                    index_rows.len()
                ),
            ));
        }
        if self.cbp.tag_folds.len() > 32 {
            return Err(invalid(
                "cbp.tag_fold",
                format!(
                    "at most 32 tag folds supported (got {})",
                    self.cbp.tag_folds.len()
                ),
            ));
        }
        for &mask in &self.cbp.tag_folds {
            if mask == 0 {
                return Err(invalid("cbp.tag_fold", "a tag fold must select some bits"));
            }
        }
        if !self.cbp.tag_folds.is_empty() {
            let rank = BitMatrix::from_rows(64, &self.cbp.tag_folds).rank() as usize;
            if rank != self.cbp.tag_folds.len() {
                return Err(invalid(
                    "cbp.tag_fold",
                    format!(
                        "tag fold family is rank-deficient over GF(2): {} folds, \
                         rank {rank}",
                        self.cbp.tag_folds.len()
                    ),
                ));
            }
        }
        // The runtime structure enforces its own residual constraints;
        // surface them under the block name if any slip through.
        self.cbp
            .scheme()
            .validate()
            .map_err(|e| invalid("cbp", e))?;

        // Cache: power-of-two shapes, ordered latencies.
        for (field, g) in [
            ("cache.l1i", self.cache.l1i),
            ("cache.l1d", self.cache.l1d),
            ("cache.l2", self.cache.l2),
            ("cache.uop", self.cache.uop),
        ] {
            CacheGeometry::try_new(g.sets, g.ways, g.line_size).map_err(|e| invalid(field, e))?;
        }
        if self.cache.l1_latency == 0 {
            return Err(invalid("cache.l1_latency", "must be nonzero"));
        }
        if self.cache.l2_latency < self.cache.l1_latency {
            return Err(invalid(
                "cache.l2_latency",
                format!(
                    "L2 must not be faster than L1 ({} < {})",
                    self.cache.l2_latency, self.cache.l1_latency
                ),
            ));
        }
        if self.cache.memory_latency <= self.cache.l2_latency {
            return Err(invalid(
                "cache.memory_latency",
                format!(
                    "memory must be slower than L2 ({} <= {})",
                    self.cache.memory_latency, self.cache.l2_latency
                ),
            ));
        }

        // Timing: the paper's observation orderings. Every tested part
        // fetches (O1) and decodes (O2) phantom targets before the
        // frontend resteer lands, and backend windows dwarf frontend
        // windows.
        if !self.fetch_block.is_power_of_two() {
            return Err(invalid(
                "fetch_block",
                format!("must be a power of two (got {})", self.fetch_block),
            ));
        }
        if self.fetch_latency == 0 {
            return Err(invalid("fetch_latency", "must be nonzero"));
        }
        if self.fetch_latency >= self.frontend_resteer_latency {
            return Err(invalid(
                "frontend_resteer_latency",
                format!(
                    "fetch ({}) must complete before the frontend resteer ({}) — \
                     otherwise no part shows O1",
                    self.fetch_latency, self.frontend_resteer_latency
                ),
            ));
        }
        if self.fetch_latency + self.decode_latency > self.frontend_resteer_latency {
            return Err(invalid(
                "decode_latency",
                format!(
                    "fetch+decode ({}) must not exceed the frontend resteer ({}) — \
                     otherwise no part shows O2",
                    self.fetch_latency + self.decode_latency,
                    self.frontend_resteer_latency
                ),
            ));
        }
        if self.backend_resteer_latency <= self.frontend_resteer_latency {
            return Err(invalid(
                "backend_resteer_latency",
                format!(
                    "the backend (Spectre) window ({}) must exceed the frontend \
                     (phantom) window ({})",
                    self.backend_resteer_latency, self.frontend_resteer_latency
                ),
            ));
        }
        Ok(())
    }

    // ----- compilation ------------------------------------------------

    /// Compile to the runtime [`UarchProfile`] consumed by
    /// [`Machine`](crate::Machine) and every experiment.
    pub fn profile(&self) -> UarchProfile {
        UarchProfile {
            name: IStr::new(&self.name),
            model: IStr::new(&self.model),
            vendor: self.vendor,
            btb_scheme: self.btb.scheme(),
            cbp_scheme: self.cbp.scheme(),
            cache: self.cache.hierarchy_config(),
            uop_geometry: self.cache.uop,
            fetch_block: self.fetch_block,
            fetch_latency: self.fetch_latency,
            decode_latency: self.decode_latency,
            frontend_resteer_latency: self.frontend_resteer_latency,
            backend_resteer_latency: self.backend_resteer_latency,
            phantom_exec_uops: self.phantom_exec_uops,
            spectre_exec_uops: self.spectre_exec_uops,
            supports_suppress_bp_on_non_br: self.suppress_bp_on_non_br,
            supports_auto_ibrs: self.auto_ibrs,
            indirect_victim_blind: self.indirect_victim_blind,
            freq_ghz: self.freq_ghz,
        }
    }

    // ----- printing ---------------------------------------------------

    /// Render this spec as one block of the text format, *without* the
    /// file header. [`UarchSpec::to_text`] / [`specs_to_text`] add it.
    pub fn to_block(&self) -> String {
        fn quote(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        fn geom(g: CacheGeometry) -> String {
            format!("{} {} {}", g.sets, g.ways, g.line_size)
        }
        let mut out = String::new();
        out.push_str(&format!("uarch {} {{\n", self.key));
        out.push_str(&format!("  name {}\n", quote(&self.name)));
        out.push_str(&format!("  model {}\n", quote(&self.model)));
        out.push_str(&format!(
            "  vendor {}\n",
            match self.vendor {
                Vendor::Amd => "amd",
                Vendor::Intel => "intel",
            }
        ));
        out.push_str(&format!("  freq_ghz {}\n", self.freq_ghz));
        out.push_str(&format!("  btb.ways {}\n", self.btb.ways));
        out.push_str(&format!(
            "  btb.privilege_tagged {}\n",
            self.btb.privilege_tagged
        ));
        for &mask in &self.btb.folds {
            out.push_str(&format!("  btb.fold {}\n", FoldFn { mask }));
        }
        out.push_str(&format!("  cbp.ways {}\n", self.cbp.ways));
        out.push_str(&format!("  cbp.counter_bits {}\n", self.cbp.counter_bits));
        out.push_str(&format!("  cbp.history_bits {}\n", self.cbp.history_bits));
        for &(pc, hist) in &self.cbp.index_folds {
            out.push_str(&format!("  cbp.index_fold {}\n", MixedFold { pc, hist }));
        }
        for &mask in &self.cbp.tag_folds {
            out.push_str(&format!("  cbp.tag_fold {}\n", FoldFn { mask }));
        }
        out.push_str(&format!("  cache.l1i {}\n", geom(self.cache.l1i)));
        out.push_str(&format!("  cache.l1d {}\n", geom(self.cache.l1d)));
        out.push_str(&format!("  cache.l2 {}\n", geom(self.cache.l2)));
        out.push_str(&format!("  cache.uop {}\n", geom(self.cache.uop)));
        out.push_str(&format!("  cache.l1_latency {}\n", self.cache.l1_latency));
        out.push_str(&format!("  cache.l2_latency {}\n", self.cache.l2_latency));
        out.push_str(&format!(
            "  cache.memory_latency {}\n",
            self.cache.memory_latency
        ));
        out.push_str(&format!(
            "  cache.replacement {}\n",
            match self.cache.replacement {
                Replacement::Lru => "lru",
                Replacement::TreePlru => "tree-plru",
                Replacement::Fifo => "fifo",
            }
        ));
        out.push_str(&format!("  fetch_block {}\n", self.fetch_block));
        out.push_str(&format!("  fetch_latency {}\n", self.fetch_latency));
        out.push_str(&format!("  decode_latency {}\n", self.decode_latency));
        out.push_str(&format!(
            "  frontend_resteer_latency {}\n",
            self.frontend_resteer_latency
        ));
        out.push_str(&format!(
            "  backend_resteer_latency {}\n",
            self.backend_resteer_latency
        ));
        out.push_str(&format!("  phantom_exec_uops {}\n", self.phantom_exec_uops));
        out.push_str(&format!("  spectre_exec_uops {}\n", self.spectre_exec_uops));
        out.push_str(&format!(
            "  suppress_bp_on_non_br {}\n",
            self.suppress_bp_on_non_br
        ));
        out.push_str(&format!("  auto_ibrs {}\n", self.auto_ibrs));
        out.push_str(&format!(
            "  indirect_victim_blind {}\n",
            self.indirect_victim_blind
        ));
        out.push_str("}\n");
        out
    }

    /// Render this spec as a complete, reparsable spec file (header +
    /// one block). The output is canonical: `parse → print → parse` is
    /// the identity, pinned by a proptest.
    pub fn to_text(&self) -> String {
        specs_to_text(std::slice::from_ref(self))
    }
}

/// Render several specs as one spec file.
pub fn specs_to_text(specs: &[UarchSpec]) -> String {
    let mut out = String::from(SPEC_HEADER);
    out.push('\n');
    for spec in specs {
        out.push('\n');
        out.push_str(&spec.to_block());
    }
    out
}

#[cfg(test)]
mod tests;
