//! Tests for the spec layer: builtin validity, canonical round-trips,
//! parse/validation failure modes, and registry semantics.

use proptest::prelude::*;

use phantom_cache::{CacheGeometry, Replacement};
use phantom_mem::VirtAddr;

use super::*;
use crate::profile::{UarchProfile, Vendor};

// ----- builtins -------------------------------------------------------

#[test]
fn builtins_are_valid_and_ordered() {
    let builtins = UarchSpec::builtins();
    let keys: Vec<&str> = builtins.iter().map(|s| s.key.as_str()).collect();
    assert_eq!(
        keys,
        ["zen1", "zen2", "zen3", "zen4", "intel9", "intel11", "intel12", "intel13"]
    );
    for spec in &builtins {
        spec.validate()
            .unwrap_or_else(|e| panic!("builtin {} invalid: {e}", spec.key));
    }
}

#[test]
fn builtins_compile_to_the_legacy_profiles() {
    let pairs: [(UarchSpec, UarchProfile); 8] = [
        (UarchSpec::zen1(), UarchProfile::zen1()),
        (UarchSpec::zen2(), UarchProfile::zen2()),
        (UarchSpec::zen3(), UarchProfile::zen3()),
        (UarchSpec::zen4(), UarchProfile::zen4()),
        (UarchSpec::intel9(), UarchProfile::intel9()),
        (UarchSpec::intel11(), UarchProfile::intel11()),
        (UarchSpec::intel12(), UarchProfile::intel12()),
        (UarchSpec::intel13(), UarchProfile::intel13()),
    ];
    for (spec, profile) in pairs {
        assert_eq!(spec.profile(), profile, "spec {} drifted", spec.key);
    }
}

#[test]
fn zen2_parameters_are_pinned() {
    // The exact Table 1 numbers the benchmarks were calibrated against;
    // a drift here breaks BENCH_phantom.json byte-identity.
    let z = UarchSpec::zen2();
    assert_eq!(z.name, "Zen 2");
    assert_eq!(z.model, "AMD EPYC 7252");
    assert_eq!(z.vendor, Vendor::Amd);
    assert_eq!(z.freq_ghz, 3.1);
    assert_eq!(z.btb.ways, 2);
    assert!(!z.btb.privilege_tagged);
    assert_eq!(z.btb.folds.len(), 12);
    assert_eq!(z.cache.l1i, CacheGeometry::l1());
    assert_eq!(z.cache.uop, CacheGeometry::uop_cache());
    assert_eq!(
        (
            z.cache.l1_latency,
            z.cache.l2_latency,
            z.cache.memory_latency
        ),
        (4, 14, 200)
    );
    assert_eq!(
        (
            z.fetch_latency,
            z.decode_latency,
            z.frontend_resteer_latency
        ),
        (1, 4, 11)
    );
    assert_eq!(z.backend_resteer_latency, 60);
    assert_eq!((z.phantom_exec_uops, z.spectre_exec_uops), (6, 44));
    assert!(z.suppress_bp_on_non_br && !z.auto_ibrs && !z.indirect_victim_blind);
}

#[test]
fn builtins_round_trip_canonically() {
    let builtins = UarchSpec::builtins();
    let text = specs_to_text(&builtins);
    let parsed = parse_specs(&text).expect("builtin text parses");
    assert_eq!(parsed, builtins);
    // And re-printing is a fixed point.
    assert_eq!(specs_to_text(&parsed), text);
}

#[test]
fn single_spec_to_text_round_trips() {
    let zen4 = UarchSpec::zen4();
    let parsed = parse_specs(&zen4.to_text()).expect("zen4 text parses");
    assert_eq!(parsed, vec![zen4]);
}

// ----- parser ---------------------------------------------------------

fn parse_err(text: &str) -> SpecError {
    parse_specs(text).expect_err("parse should fail")
}

#[test]
fn header_is_required() {
    match parse_err("uarch x {\n}\n") {
        SpecError::Parse { line: 1, msg } => assert!(msg.contains("expected header"), "{msg}"),
        other => panic!("wrong error: {other}"),
    }
    match parse_err("") {
        SpecError::Parse { line: 1, msg } => assert!(msg.contains("empty input"), "{msg}"),
        other => panic!("wrong error: {other}"),
    }
    // Comment-only input is still empty.
    assert!(matches!(
        parse_err("# nothing here\n"),
        SpecError::Parse { line: 1, .. }
    ));
}

#[test]
fn header_alone_parses_to_no_specs() {
    assert_eq!(parse_specs("phantom-uarch-spec v1\n"), Ok(vec![]));
}

#[test]
fn comments_and_blank_lines_are_ignored() {
    let text = format!(
        "# leading comment\n\n{}\n# trailing comment\n",
        UarchSpec::zen3().to_text()
    );
    assert_eq!(parse_specs(&text), Ok(vec![UarchSpec::zen3()]));
}

#[test]
fn inline_comments_respect_quotes() {
    let mut spec = UarchSpec::zen1();
    spec.name = "Zen #1".into();
    let text = spec
        .to_text()
        .replace("fetch_block 32", "fetch_block 32 # bytes");
    // `#` inside the quoted name survives; the trailing comment is cut.
    let hash_err = parse_specs(&text.replace("fetch_block 32 # bytes", "fetch_block 32 zzz"));
    assert!(hash_err.is_err(), "sanity: trailing junk does fail");
    assert_eq!(parse_specs(&text), Ok(vec![spec]));
}

#[test]
fn garbage_at_top_level_is_rejected() {
    let err = parse_err("phantom-uarch-spec v1\nnot a block\n");
    match err {
        SpecError::Parse { line: 2, msg } => assert!(msg.contains("expected `uarch"), "{msg}"),
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn unterminated_block_points_at_the_open_line() {
    let err = parse_err("phantom-uarch-spec v1\n\nuarch x {\n  fetch_block 32\n");
    match err {
        SpecError::Parse { line: 3, msg } => assert!(msg.contains("unterminated"), "{msg}"),
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn stray_close_brace_at_top_level_is_rejected() {
    // Regression: a `}` with no open block used to be unrepresentable in
    // the old `block.take().expect("block is open")` structure; mutated
    // spec files reach it trivially.
    let err = parse_err("phantom-uarch-spec v1\n}\n");
    match err {
        SpecError::Parse { line: 2, msg } => assert!(msg.contains("unexpected `}`"), "{msg}"),
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn nested_uarch_block_is_rejected() {
    let err = parse_err("phantom-uarch-spec v1\nuarch outer {\nuarch inner {\n");
    match err {
        SpecError::Parse { line: 3, msg } => {
            assert!(msg.contains("nested `uarch` block"), "{msg}");
            assert!(msg.contains("outer"), "{msg}");
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn close_brace_with_trailing_content_is_rejected() {
    let err = parse_err("phantom-uarch-spec v1\nuarch x {\n} uarch y {\n");
    match err {
        SpecError::Parse { line: 3, msg } => {
            assert!(msg.contains("alone on its line"), "{msg}")
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn unknown_duplicate_and_missing_fields_are_rejected() {
    let base = UarchSpec::zen2().to_text();

    let unknown = base.replace("fetch_block", "fetch_blocc");
    assert!(matches!(parse_err(&unknown), SpecError::Parse { .. }));

    let duplicate = base.replace("fetch_block 32\n", "fetch_block 32\n  fetch_block 32\n");
    match parse_err(&duplicate) {
        SpecError::Parse { msg, .. } => assert!(msg.contains("duplicate field"), "{msg}"),
        other => panic!("wrong error: {other}"),
    }

    let missing = base.replace("  vendor amd\n", "");
    match parse_err(&missing) {
        // Reported against the `uarch … {` line (line 3: header, blank, open).
        SpecError::Parse { line: 3, msg } => {
            assert!(msg.contains("missing field vendor"), "{msg}")
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn bad_scalar_values_are_rejected() {
    let base = UarchSpec::zen2().to_text();
    for (good, bad) in [
        ("vendor amd", "vendor arm"),
        ("freq_ghz 3.1", "freq_ghz fast"),
        ("freq_ghz 3.1", "freq_ghz inf"),
        ("btb.privilege_tagged false", "btb.privilege_tagged no"),
        ("cache.replacement lru", "cache.replacement random"),
        ("cache.l1i 64 8 64", "cache.l1i 64 8"),
        ("fetch_block 32", "fetch_block -32"),
    ] {
        let text = base.replace(good, bad);
        assert!(
            matches!(parse_specs(&text), Err(SpecError::Parse { .. })),
            "{bad:?} should fail to parse"
        );
    }
}

#[test]
fn fold_notation_is_strict() {
    for (value, needle) in [
        ("x47", "b<bit>"),
        ("b64", "out of range"),
        ("b12 ^ b12", "duplicate term"),
        ("b12 ^ c13", "b<bit>"),
        ("", "b<bit>"),
    ] {
        let text = UarchSpec::zen2()
            .to_text()
            .replace("btb.privilege_tagged false", &format!("btb.fold {value}"));
        match parse_specs(&text) {
            Err(SpecError::Parse { msg, .. }) => assert!(msg.contains(needle), "{msg}"),
            other => panic!("fold {value:?}: expected parse error, got {other:?}"),
        }
    }
}

#[test]
fn mixed_fold_notation_is_strict() {
    for (value, needle) in [
        ("x3", "`b<bit>` or `h<bit>`"),
        ("b64", "out of range"),
        ("h64", "out of range"),
        ("b3 ^ b3", "duplicate term b3"),
        ("h2 ^ h2", "duplicate term h2"),
        ("b12 ^ c13", "`b<bit>` or `h<bit>`"),
        ("", "`b<bit>` or `h<bit>`"),
    ] {
        let text = UarchSpec::zen2().to_text().replace(
            "btb.privilege_tagged false",
            &format!("cbp.index_fold {value}"),
        );
        match parse_specs(&text) {
            Err(SpecError::Parse { msg, .. }) => assert!(msg.contains(needle), "{msg}"),
            other => panic!("fold {value:?}: expected parse error, got {other:?}"),
        }
    }
    // The same term in pc and history space is NOT a duplicate: b3 ^ h3
    // mixes two different registers.
    let text = UarchSpec::zen2()
        .to_text()
        .replace("cbp.index_fold b1 ^ h0", "cbp.index_fold b13 ^ b1 ^ h3");
    let parsed = parse_specs(&text).expect("mixed terms parse");
    assert_eq!(parsed[0].cbp.index_folds[0], ((1 << 13) | (1 << 1), 1 << 3));
}

#[test]
fn specs_without_a_cbp_block_parse_to_the_legacy_pht() {
    // A v1 file written before the cbp block existed must still parse —
    // and land on exactly the seed gshare PHT.
    let text: String = UarchSpec::zen2()
        .to_text()
        .lines()
        .filter(|l| !l.trim_start().starts_with("cbp."))
        .map(|l| format!("{l}\n"))
        .collect();
    assert!(!text.contains("cbp."), "sanity: all cbp lines stripped");
    let parsed = parse_specs(&text).expect("legacy text parses");
    assert_eq!(parsed, vec![UarchSpec::zen2()]);
    assert_eq!(parsed[0].cbp, CbpSpec::default());
}

#[test]
fn string_escapes_are_strict() {
    let ok = "phantom-uarch-spec v1\nuarch x {\n  name \"a \\\"b\\\\ c\"\n";
    // Truncated on purpose: we only check the name line parses by
    // erroring later (missing fields), not at the string.
    match parse_err(&format!("{ok}}}\n")) {
        SpecError::Parse { msg, .. } => assert!(msg.contains("missing field"), "{msg}"),
        other => panic!("wrong error: {other}"),
    }
    for (value, needle) in [
        ("name Zen", "quoted string"),
        ("name \"Zen", "unterminated string"),
        ("name \"Zen\\q\"", "unsupported escape"),
        ("name \"Zen\" 2", "trailing content"),
    ] {
        let text = format!("phantom-uarch-spec v1\nuarch x {{\n  {value}\n}}\n");
        match parse_specs(&text) {
            Err(SpecError::Parse { line: 3, msg }) => assert!(msg.contains(needle), "{msg}"),
            other => panic!("{value:?}: expected parse error, got {other:?}"),
        }
    }
}

#[test]
fn parsed_specs_are_validated() {
    // Syntactically fine, semantically impossible: resteer before fetch.
    let text = UarchSpec::zen2()
        .to_text()
        .replace("frontend_resteer_latency 11", "frontend_resteer_latency 1");
    match parse_specs(&text) {
        Err(SpecError::Invalid { field, .. }) => {
            assert_eq!(field, "frontend_resteer_latency")
        }
        other => panic!("expected validation error, got {other:?}"),
    }
}

// ----- validation -----------------------------------------------------

/// Assert that mutating zen2 with `mutate` trips validation on `field`.
fn rejects(field: &str, mutate: impl FnOnce(&mut UarchSpec)) {
    let mut spec = UarchSpec::zen2();
    mutate(&mut spec);
    match spec.validate() {
        Err(SpecError::Invalid { field: got, msg }) => {
            assert_eq!(got, field, "wrong field ({msg})")
        }
        Ok(()) => panic!("expected {field} violation, spec validated"),
        Err(other) => panic!("expected Invalid({field}), got {other}"),
    }
}

#[test]
fn validation_rejects_bad_identity() {
    rejects("key", |s| s.key.clear());
    rejects("key", |s| s.key = "Zen 2".into());
    rejects("name", |s| s.name.clear());
    rejects("name", |s| s.name = "Zen\t2".into());
    rejects("model", |s| s.model.push('\n'));
    rejects("freq_ghz", |s| s.freq_ghz = 0.0);
    rejects("freq_ghz", |s| s.freq_ghz = f64::NAN);
    rejects("freq_ghz", |s| s.freq_ghz = -3.0);
}

#[test]
fn validation_rejects_bad_btb() {
    rejects("btb.ways", |s| s.btb.ways = 0);
    rejects("btb.fold", |s| s.btb.folds.clear());
    rejects("btb.fold", |s| s.btb.folds = vec![1 << 13; 2]); // rank 1
    rejects("btb.fold", |s| s.btb.folds.push(0));
    rejects("btb.fold", |s| s.btb.folds.push(1 << 5)); // page-offset bit
    rejects("btb.fold", |s| {
        s.btb.folds = (12..48).map(|b| 1u64 << b).collect(); // 36 > 32
    });
    // A dependent combination (xor of two existing rows) is caught too.
    rejects("btb.fold", |s| {
        let dep = s.btb.folds[0] ^ s.btb.folds[1];
        s.btb.folds.push(dep);
    });
}

#[test]
fn validation_rejects_bad_cbp() {
    rejects("cbp.ways", |s| s.cbp.ways = 0);
    // An untagged table has no way to tell ways apart.
    rejects("cbp.ways", |s| s.cbp.ways = 2);
    rejects("cbp.counter_bits", |s| s.cbp.counter_bits = 0);
    rejects("cbp.counter_bits", |s| s.cbp.counter_bits = 9);
    rejects("cbp.history_bits", |s| s.cbp.history_bits = 17);
    rejects("cbp.index_fold", |s| s.cbp.index_folds.clear());
    rejects("cbp.index_fold", |s| s.cbp.index_folds.push((0, 0)));
    // Branch PCs are 48-bit canonical.
    rejects("cbp.index_fold", |s| s.cbp.index_folds.push((1 << 50, 0)));
    // History term beyond the (legacy 8-bit) register.
    rejects("cbp.index_fold", |s| s.cbp.index_folds.push((0, 1 << 8)));
    rejects("cbp.index_fold", |s| {
        s.cbp.index_folds = (0..25).map(|b| (1u64 << b, 0)).collect(); // 25 > 24
    });
    // A dependent combination (xor of two existing rows) is caught.
    rejects("cbp.index_fold", |s| {
        let (pa, ha) = s.cbp.index_folds[0];
        let (pb, hb) = s.cbp.index_folds[1];
        s.cbp.index_folds.push((pa ^ pb, ha ^ hb));
    });
    rejects("cbp.tag_fold", |s| s.cbp.tag_folds = vec![0]);
    rejects("cbp.tag_fold", |s| s.cbp.tag_folds = vec![1 << 20; 2]); // rank 1
    rejects("cbp.tag_fold", |s| {
        s.cbp.tag_folds = (0..33).map(|b| 1u64 << b).collect(); // 33 > 32
    });
}

#[test]
fn validation_rejects_bad_caches() {
    rejects("cache.l1i", |s| s.cache.l1i.sets = 3);
    rejects("cache.l1d", |s| s.cache.l1d.ways = 0);
    rejects("cache.l2", |s| s.cache.l2.line_size = 48);
    rejects("cache.uop", |s| s.cache.uop.sets = 0);
    rejects("cache.l1_latency", |s| s.cache.l1_latency = 0);
    rejects("cache.l2_latency", |s| s.cache.l2_latency = 2);
    rejects("cache.memory_latency", |s| {
        s.cache.memory_latency = s.cache.l2_latency
    });
}

#[test]
fn validation_rejects_bad_timing() {
    rejects("fetch_block", |s| s.fetch_block = 48);
    rejects("fetch_latency", |s| s.fetch_latency = 0);
    rejects("frontend_resteer_latency", |s| {
        s.frontend_resteer_latency = s.fetch_latency
    });
    rejects("decode_latency", |s| {
        s.decode_latency = s.frontend_resteer_latency
    });
    rejects("backend_resteer_latency", |s| {
        s.backend_resteer_latency = s.frontend_resteer_latency
    });
}

// ----- registry -------------------------------------------------------

#[test]
fn builtin_registry_serves_table1() {
    let reg = UarchRegistry::builtin();
    assert_eq!(reg.len(), 8);
    assert!(!reg.is_empty());
    assert_eq!(reg.specs().to_vec(), UarchSpec::builtins());
    assert_eq!(reg.profiles(), UarchProfile::all());
}

#[test]
fn lookup_is_case_insensitive_over_keys_and_names() {
    let reg = UarchRegistry::builtin();
    assert_eq!(reg.get("ZEN2").unwrap().key, "zen2");
    assert_eq!(reg.get("zen 2").unwrap().key, "zen2");
    assert_eq!(reg.get("Intel 12th gen (P core)").unwrap().key, "intel12");
    assert!(reg.get("zen5").is_none());
    assert!(UarchRegistry::empty().get("zen2").is_none());
}

#[test]
fn register_rejects_collisions_and_invalid_specs() {
    let mut reg = UarchRegistry::with_builtins();
    assert_eq!(
        reg.register(UarchSpec::zen2()),
        Err(SpecError::Duplicate("zen2".into()))
    );
    // Same display name under a fresh key still collides.
    let mut alias = UarchSpec::zen2();
    alias.key = "zen2b".into();
    assert_eq!(
        reg.register(alias),
        Err(SpecError::Duplicate("Zen 2".into()))
    );
    let mut broken = UarchSpec::zen2();
    broken.key = "zen2c".into();
    broken.name = "Zen 2c".into();
    broken.btb.ways = 0;
    assert!(matches!(
        reg.register(broken),
        Err(SpecError::Invalid {
            field: "btb.ways",
            ..
        })
    ));
    assert_eq!(reg.len(), 8, "failed registrations must not land");
}

#[test]
fn register_text_adds_file_order_keys() {
    let mut reg = UarchRegistry::empty();
    let mut what_if = UarchSpec::zen2();
    what_if.key = "whatif".into();
    what_if.name = "What-if".into();
    let text = specs_to_text(&[UarchSpec::zen4(), what_if.clone()]);
    assert_eq!(
        reg.register_text(&text).unwrap(),
        vec!["zen4".to_string(), "whatif".to_string()]
    );
    assert_eq!(reg.get("whatif"), Some(&what_if));

    // A duplicate later in the file errors but keeps earlier blocks.
    let mut reg2 = UarchRegistry::empty();
    let dup = specs_to_text(&[UarchSpec::zen1(), UarchSpec::zen1()]);
    assert!(matches!(
        reg2.register_text(&dup),
        Err(SpecError::Duplicate(_))
    ));
    assert_eq!(reg2.len(), 1);
}

// ----- property: parse ∘ print is the identity ------------------------

const KEY_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_-";
// Includes `"`, `\` and `#` to exercise escaping and quote-aware
// comment stripping. No leading/trailing-whitespace hazards: spaces
// live inside the quotes either way.
const NAME_CHARS: &[u8] = b"ABCZabcz0123456789 -()#\"\\";

fn arb_key() -> BoxedStrategy<String> {
    proptest::collection::vec(0usize..KEY_CHARS.len(), 1..12)
        .prop_map(|ids| ids.into_iter().map(|i| KEY_CHARS[i] as char).collect())
        .boxed()
}

fn arb_name() -> BoxedStrategy<String> {
    proptest::collection::vec(0usize..NAME_CHARS.len(), 1..16)
        .prop_map(|ids| ids.into_iter().map(|i| NAME_CHARS[i] as char).collect())
        .boxed()
}

/// Fold families in GF(2) echelon form: distinct leading bits make the
/// rows linearly independent by construction, and clearing bits below
/// b12 keeps every mask on translated address bits.
fn arb_folds() -> BoxedStrategy<Vec<u64>> {
    proptest::collection::vec((12u32..48, any::<u64>()), 1..8)
        .prop_map(|rows| {
            let mut taken = [false; 64];
            let mut folds = Vec::new();
            for (lead, low) in rows {
                if taken[lead as usize] {
                    continue;
                }
                taken[lead as usize] = true;
                folds.push(((1u64 << lead) | (low & ((1u64 << lead) - 1))) & !0xfff);
            }
            folds
        })
        .boxed()
}

/// CBP specs with echelon-form index folds: each fold owns a distinct
/// leading PC bit, so the family is full-rank over the joint
/// (PC, history) space whatever history bits ride along. Tag families
/// (when present) get the same treatment.
fn arb_cbp() -> BoxedStrategy<CbpSpec> {
    let index = proptest::collection::vec((1u32..48, any::<u64>(), any::<u64>()), 1..8);
    let tags = proptest::collection::vec((20u32..44, any::<u64>()), 0..4);
    (1u32..17, index, tags, 1usize..4, 1u32..9)
        .prop_map(|(history_bits, index_rows, tag_rows, ways, counter_bits)| {
            let hist_mask = (1u64 << history_bits) - 1;
            let mut taken = [false; 64];
            let mut index_folds = Vec::new();
            for (lead, low, hist) in index_rows {
                if taken[lead as usize] {
                    continue;
                }
                taken[lead as usize] = true;
                index_folds.push((
                    (1u64 << lead) | (low & ((1u64 << lead) - 1)),
                    hist & hist_mask,
                ));
            }
            let mut taken = [false; 64];
            let mut tag_folds = Vec::new();
            for (lead, low) in tag_rows {
                if taken[lead as usize] {
                    continue;
                }
                taken[lead as usize] = true;
                tag_folds.push((1u64 << lead) | (low & ((1u64 << lead) - 1)));
            }
            CbpSpec {
                index_folds,
                // Untagged tables must be direct-mapped.
                ways: if tag_folds.is_empty() { 1 } else { ways },
                tag_folds,
                counter_bits,
                history_bits,
            }
        })
        .boxed()
}

fn arb_geom() -> BoxedStrategy<CacheGeometry> {
    (0u32..8, 1usize..9, 4u32..9)
        .prop_map(|(sets, ways, line)| CacheGeometry {
            sets: 1usize << sets,
            ways,
            line_size: 1usize << line,
        })
        .boxed()
}

fn arb_spec() -> BoxedStrategy<UarchSpec> {
    let identity = (arb_key(), arb_name(), arb_name(), 0u8..2, 1u64..4_000_000);
    let btb = (arb_folds(), 1usize..9, 0u8..2);
    let caches = (
        arb_geom(),
        arb_geom(),
        arb_geom(),
        arb_geom(),
        (1u64..10, 0u64..20, 1u64..200),
        0u8..3,
    );
    let timing = ((3u32..8), 1u64..4, 0u64..6, 1u64..10, 1u64..60);
    let features = (0u8..2, 0u8..2, 0u8..2, 0u32..64, 0u32..64);
    (identity, btb, arb_cbp(), caches, timing, features)
        .prop_map(
            |(
                (key, name, model, vendor, freq_millis),
                (folds, ways, tagged),
                cbp,
                (l1i, l1d, l2, uop, (l1_lat, l2_extra, mem_extra), repl),
                (block_log2, fetch, decode, slack, backend_extra),
                (suppress, ibrs, blind, phantom_uops, spectre_uops),
            )| {
                let frontend = fetch + decode + slack;
                UarchSpec {
                    key,
                    name,
                    model,
                    vendor: if vendor == 0 {
                        Vendor::Amd
                    } else {
                        Vendor::Intel
                    },
                    freq_ghz: freq_millis as f64 / 1000.0,
                    btb: BtbSpec {
                        folds,
                        ways,
                        privilege_tagged: tagged == 1,
                    },
                    cbp,
                    cache: CacheSpec {
                        l1i,
                        l1d,
                        l2,
                        uop,
                        l1_latency: l1_lat,
                        l2_latency: l1_lat + l2_extra,
                        memory_latency: l1_lat + l2_extra + mem_extra,
                        replacement: match repl {
                            0 => Replacement::Lru,
                            1 => Replacement::TreePlru,
                            _ => Replacement::Fifo,
                        },
                    },
                    fetch_block: 1u64 << block_log2,
                    fetch_latency: fetch,
                    decode_latency: decode,
                    frontend_resteer_latency: frontend,
                    backend_resteer_latency: frontend + backend_extra,
                    phantom_exec_uops: phantom_uops,
                    spectre_exec_uops: spectre_uops,
                    suppress_bp_on_non_br: suppress == 1,
                    auto_ibrs: ibrs == 1,
                    indirect_victim_blind: blind == 1,
                }
            },
        )
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn generated_specs_validate(spec in arb_spec()) {
        prop_assert_eq!(spec.validate(), Ok(()));
    }

    #[test]
    fn parse_print_parse_is_identity(spec in arb_spec()) {
        let text = spec.to_text();
        let parsed = parse_specs(&text);
        prop_assert_eq!(parsed, Ok(vec![spec]));
    }

    #[test]
    fn multi_spec_files_round_trip(a in arb_spec(), b in arb_spec()) {
        let text = specs_to_text(&[a.clone(), b.clone()]);
        let parsed = parse_specs(&text);
        prop_assert_eq!(parsed, Ok(vec![a, b]));
    }

    #[test]
    fn compiled_profiles_preserve_the_spec(spec in arb_spec()) {
        let p = spec.profile();
        prop_assert_eq!(p.name.as_str(), spec.name.as_str());
        prop_assert_eq!(p.cache, spec.cache.hierarchy_config());
        prop_assert_eq!(p.uop_geometry, spec.cache.uop);
        prop_assert_eq!(p.btb_scheme.family.fns().len(), spec.btb.folds.len());
        prop_assert_eq!(p.cbp_scheme, spec.cbp.scheme());
        prop_assert_eq!(p.freq_ghz, spec.freq_ghz);
    }

    /// Every generated CBP index family is full-rank over the joint
    /// (PC, history) space, and so is every tag family — checked here
    /// against the GF(2) rank directly rather than through `validate`.
    #[test]
    fn cbp_fold_families_are_full_rank(spec in arb_spec()) {
        let rows: Vec<u64> = spec
            .cbp
            .index_folds
            .iter()
            .map(|&(pc, hist)| pc | (hist << 48))
            .collect();
        let rank = phantom_gf2::BitMatrix::from_rows(64, &rows).rank() as usize;
        prop_assert_eq!(rank, rows.len());
        if !spec.cbp.tag_folds.is_empty() {
            let trank =
                phantom_gf2::BitMatrix::from_rows(64, &spec.cbp.tag_folds).rank() as usize;
            prop_assert_eq!(trank, spec.cbp.tag_folds.len());
        }
    }
}

// ----- property: CBP aliasing is spec-dependent -----------------------

/// The M1-Firestorm-style CBP from `examples/uarch/m1_firestorm.spec`,
/// reconstructed in code: 10 index bits, each folding PC bit `i+2` with
/// PC bit `i+12` and XORing history bit `i`; 2 ways tagged by PC bits
/// 22..=27; 16 outcomes of history.
fn m1_cbp_scheme() -> CbpScheme {
    CbpScheme {
        index: (0..10)
            .map(|i| MixedFold {
                pc: (1u64 << (i + 2)) | (1u64 << (i + 12)),
                hist: 1u64 << i,
            })
            .collect(),
        tag: (22..28).map(|b| FoldFn { mask: 1u64 << b }).collect(),
        ways: 2,
        counter_bits: 2,
        history_bits: 16,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Aliasing lives in the spec, not the code: a pair of PCs that
    /// collide under the legacy gshare PHT are told apart by the M1
    /// scheme, and the M1 out-of-place pair is told apart by legacy.
    #[test]
    fn cbp_aliasing_is_spec_dependent(
        pc in any::<u64>(),
        ghr in any::<u64>(),
        far_bit in 13u32..22,
        m1_fold in 1u32..10,
    ) {
        let legacy = CbpScheme::legacy();
        let m1 = m1_cbp_scheme();
        let a = VirtAddr::new(pc & 0x0000_7fff_ffff_ffff);

        // Legacy indexes on PC bits 1..=12 only and carries no tag, so
        // flipping a bit in 13..22 aliases — but that same bit feeds an
        // M1 index fold, which separates the pair.
        let b = VirtAddr::new(a.raw() ^ (1u64 << far_bit));
        prop_assert!(legacy.aliases(a, b, ghr & 0xff));
        prop_assert!(!m1.aliases(a, b, ghr & 0xffff));

        // The M1 out-of-place pair flips both PC bits of one index fold
        // (parity unchanged, tags untouched) — collides on M1, yet the
        // low bit alone shifts the legacy index.
        let c = VirtAddr::new(
            a.raw() ^ (1u64 << (m1_fold + 2)) ^ (1u64 << (m1_fold + 12)),
        );
        prop_assert!(m1.aliases(a, c, ghr & 0xffff));
        prop_assert!(!legacy.aliases(a, c, ghr & 0xff));
    }
}
