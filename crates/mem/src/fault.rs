//! Page-fault types.

use std::fmt;

use crate::addr::VirtAddr;

/// The kind of memory access being attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Execute => "execute",
        };
        f.write_str(s)
    }
}

/// Why a translation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultReason {
    /// No mapping for the page (present bit clear).
    NotPresent,
    /// Write to a read-only page.
    NotWritable,
    /// Instruction fetch from an NX page.
    NotExecutable,
    /// User-mode access to a supervisor page.
    Privilege,
}

impl fmt::Display for FaultReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultReason::NotPresent => "page not present",
            FaultReason::NotWritable => "page not writable",
            FaultReason::NotExecutable => "page not executable",
            FaultReason::Privilege => "privilege violation",
        };
        f.write_str(s)
    }
}

/// A page fault: the faulting address, the access that caused it and why.
///
/// The user-to-kernel BTB training technique of the paper branches to a
/// kernel address and *catches the resulting page fault* — the fault is
/// architectural, but the branch predictor has already recorded the edge.
///
/// # Examples
///
/// ```
/// use phantom_mem::{AccessKind, FaultReason, PageFault, VirtAddr};
/// let f = PageFault {
///     addr: VirtAddr::new(0xffff_8000_0000_0000),
///     access: AccessKind::Execute,
///     reason: FaultReason::Privilege,
/// };
/// assert!(f.to_string().contains("privilege"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageFault {
    /// Faulting virtual address.
    pub addr: VirtAddr,
    /// The attempted access.
    pub access: AccessKind,
    /// Why it failed.
    pub reason: FaultReason,
}

impl fmt::Display for PageFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "page fault on {} at {}: {}",
            self.access, self.addr, self.reason
        )
    }
}

impl std::error::Error for PageFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let f = PageFault {
            addr: VirtAddr::new(0x1000),
            access: AccessKind::Write,
            reason: FaultReason::NotWritable,
        };
        let s = f.to_string();
        assert!(s.contains("write"));
        assert!(s.contains("0x1000"));
        assert!(s.contains("not writable"));
    }
}
