//! Sparse physical memory with frame allocation.

use std::collections::HashMap;

use crate::addr::{PhysAddr, PAGE_SIZE};

/// Error returned when physical memory is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfFrames {
    /// Configured capacity in bytes.
    pub capacity: u64,
}

impl std::fmt::Display for OutOfFrames {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "physical memory exhausted ({} bytes)", self.capacity)
    }
}

impl std::error::Error for OutOfFrames {}

/// Sparse, frame-granular physical memory.
///
/// Frames are 4 KiB and materialized lazily so "64 GiB" machines (Table 5
/// runs with 8 GiB and 64 GiB parts) cost only what is touched.
///
/// # Examples
///
/// ```
/// use phantom_mem::{PhysAddr, PhysMemory};
/// let mut m = PhysMemory::new(1 << 20);
/// let f = m.alloc_frame().unwrap();
/// m.write_u64(f + 8, 0xdead_beef);
/// assert_eq!(m.read_u64(f + 8), 0xdead_beef);
/// assert_eq!(m.read_u8(f), 0); // untouched bytes read as zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct PhysMemory {
    capacity: u64,
    frames: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
    next_free: u64,
}

impl PhysMemory {
    /// Create a physical memory of `capacity` bytes (rounded down to a
    /// whole number of frames).
    pub fn new(capacity: u64) -> PhysMemory {
        PhysMemory {
            capacity: capacity & !(PAGE_SIZE - 1),
            frames: HashMap::new(),
            next_free: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of frames that have been materialized.
    pub fn resident_frames(&self) -> usize {
        self.frames.len()
    }

    /// Allocate the next free frame (bump allocator).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfFrames`] when the configured capacity is exhausted.
    pub fn alloc_frame(&mut self) -> Result<PhysAddr, OutOfFrames> {
        if self.next_free + PAGE_SIZE > self.capacity {
            return Err(OutOfFrames {
                capacity: self.capacity,
            });
        }
        let pa = PhysAddr::new(self.next_free);
        self.next_free += PAGE_SIZE;
        Ok(pa)
    }

    /// Allocate `n` physically contiguous frames, returning the base.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfFrames`] when the configured capacity is exhausted.
    pub fn alloc_contiguous(&mut self, n: u64) -> Result<PhysAddr, OutOfFrames> {
        if self.next_free + n * PAGE_SIZE > self.capacity {
            return Err(OutOfFrames {
                capacity: self.capacity,
            });
        }
        let pa = PhysAddr::new(self.next_free);
        self.next_free += n * PAGE_SIZE;
        Ok(pa)
    }

    /// Allocate a 2 MiB-aligned run of 512 frames (a transparent huge
    /// page, as the physmap and Table 5 attacks use).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfFrames`] when the configured capacity is exhausted.
    pub fn alloc_huge(&mut self) -> Result<PhysAddr, OutOfFrames> {
        const HUGE: u64 = 2 * 1024 * 1024;
        let aligned = (self.next_free + HUGE - 1) & !(HUGE - 1);
        if aligned + HUGE > self.capacity {
            return Err(OutOfFrames {
                capacity: self.capacity,
            });
        }
        self.next_free = aligned + HUGE;
        Ok(PhysAddr::new(aligned))
    }

    fn frame_mut(&mut self, pa: PhysAddr) -> &mut [u8; PAGE_SIZE as usize] {
        self.frames
            .entry(pa.page_number())
            .or_insert_with(|| Box::new([0; PAGE_SIZE as usize]))
    }

    /// Read one byte. Unmaterialized memory reads as zero.
    pub fn read_u8(&self, pa: PhysAddr) -> u8 {
        self.frames
            .get(&pa.page_number())
            .map_or(0, |f| f[pa.page_offset() as usize])
    }

    /// Write one byte.
    pub fn write_u8(&mut self, pa: PhysAddr, value: u8) {
        self.frame_mut(pa)[pa.page_offset() as usize] = value;
    }

    /// Read a little-endian u64 (may straddle frames).
    pub fn read_u64(&self, pa: PhysAddr) -> u64 {
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(pa + i as u64);
        }
        u64::from_le_bytes(bytes)
    }

    /// Write a little-endian u64 (may straddle frames).
    pub fn write_u64(&mut self, pa: PhysAddr, value: u64) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(pa + i as u64, *b);
        }
    }

    /// Copy `data` into memory starting at `pa`.
    pub fn write_bytes(&mut self, pa: PhysAddr, data: &[u8]) {
        let mut off = 0usize;
        while off < data.len() {
            let addr = pa + off as u64;
            let in_frame = (PAGE_SIZE - addr.page_offset()) as usize;
            let chunk = in_frame.min(data.len() - off);
            let frame = self.frame_mut(addr);
            let start = addr.page_offset() as usize;
            frame[start..start + chunk].copy_from_slice(&data[off..off + chunk]);
            off += chunk;
        }
    }

    /// Read `len` bytes starting at `pa`.
    pub fn read_bytes(&self, pa: PhysAddr, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let addr = pa + out.len() as u64;
            let in_frame = (PAGE_SIZE - addr.page_offset()) as usize;
            let chunk = in_frame.min(len - out.len());
            match self.frames.get(&addr.page_number()) {
                Some(frame) => {
                    let start = addr.page_offset() as usize;
                    out.extend_from_slice(&frame[start..start + chunk]);
                }
                None => out.extend(std::iter::repeat_n(0, chunk)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation_is_disjoint() {
        let mut m = PhysMemory::new(4 * PAGE_SIZE);
        let a = m.alloc_frame().unwrap();
        let b = m.alloc_frame().unwrap();
        assert_ne!(a, b);
        assert_eq!(b - a, PAGE_SIZE);
        m.write_u8(a, 1);
        m.write_u8(b, 2);
        assert_eq!(m.read_u8(a), 1);
        assert_eq!(m.read_u8(b), 2);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut m = PhysMemory::new(2 * PAGE_SIZE);
        m.alloc_frame().unwrap();
        m.alloc_frame().unwrap();
        assert!(m.alloc_frame().is_err());
    }

    #[test]
    fn huge_pages_are_aligned() {
        let mut m = PhysMemory::new(16 * 1024 * 1024);
        m.alloc_frame().unwrap(); // misalign the bump pointer
        let h = m.alloc_huge().unwrap();
        assert!(h.is_aligned(2 * 1024 * 1024));
    }

    #[test]
    fn u64_roundtrip_straddles_frames() {
        let mut m = PhysMemory::new(8 * PAGE_SIZE);
        let pa = PhysAddr::new(PAGE_SIZE - 4); // straddles frames 0 and 1
        m.write_u64(pa, 0x0102_0304_0506_0708);
        assert_eq!(m.read_u64(pa), 0x0102_0304_0506_0708);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut m = PhysMemory::new(8 * PAGE_SIZE);
        let data: Vec<u8> = (0..=255).collect();
        m.write_bytes(PhysAddr::new(100), &data);
        assert_eq!(m.read_bytes(PhysAddr::new(100), 256), data);
    }

    #[test]
    fn sparse_memory_stays_sparse() {
        let mut m = PhysMemory::new(64 << 30); // "64 GiB" machine
        let f = m.alloc_contiguous(1 << 20).unwrap(); // 4 GiB reserved
        m.write_u8(f + (1 << 30), 7);
        assert_eq!(m.resident_frames(), 1);
        assert_eq!(m.read_u8(f + (1 << 30)), 7);
    }
}
