//! Sparse physical memory with frame allocation and copy-on-write
//! checkpointing.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::addr::{PhysAddr, PAGE_SIZE};

/// Error returned when physical memory is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfFrames {
    /// Configured capacity in bytes.
    pub capacity: u64,
}

impl std::fmt::Display for OutOfFrames {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "physical memory exhausted ({} bytes)", self.capacity)
    }
}

impl std::error::Error for OutOfFrames {}

/// One all-zero frame shared by every memory: restore points absent
/// frames here instead of deallocating, so earlier checkpoints that
/// still reference the frame number stay restorable.
fn zero_frame() -> Arc<[u8; PAGE_SIZE as usize]> {
    static ZERO: OnceLock<Arc<[u8; PAGE_SIZE as usize]>> = OnceLock::new();
    Arc::clone(ZERO.get_or_init(|| Arc::new([0; PAGE_SIZE as usize])))
}

/// A resident frame: reference-counted contents plus the write epoch
/// that last touched it (see [`PhysMemory::snapshot`]).
#[derive(Debug, Clone)]
struct Frame {
    data: Arc<[u8; PAGE_SIZE as usize]>,
    epoch: u64,
}

/// Upper bound on pooled retired frames. A trial dirties a few dozen
/// frames; the bound only exists so a pathological workload cannot pin
/// unbounded memory in the pool.
const FRAME_POOL_CAP: usize = 4096;

/// Recycler for retired frame allocations: frames displaced by
/// [`PhysMemory::restore_from`] whose contents nothing else references
/// are kept and handed back to the next copy-on-write fault instead of
/// round-tripping through the allocator.
///
/// The pool only ever holds `Arc`s with a strong count of exactly one
/// (and no weak references), so a pooled buffer can never alias a live
/// frame; `take` transfers that exclusive ownership to the caller.
#[derive(Debug, Default)]
struct FramePool {
    free: Vec<Arc<[u8; PAGE_SIZE as usize]>>,
}

impl FramePool {
    /// Retire a frame buffer into the pool if nothing else can see it.
    fn put(&mut self, buf: Arc<[u8; PAGE_SIZE as usize]>) {
        if self.free.len() < FRAME_POOL_CAP
            && Arc::strong_count(&buf) == 1
            && Arc::weak_count(&buf) == 0
        {
            self.free.push(buf);
        }
    }

    fn take(&mut self) -> Option<Arc<[u8; PAGE_SIZE as usize]>> {
        self.free.pop()
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.free.len()
    }

    #[cfg(test)]
    fn entries(&self) -> &[Arc<[u8; PAGE_SIZE as usize]>] {
        &self.free
    }
}

#[cfg(test)]
impl PhysMemory {
    /// Test-only invariant check: every pooled buffer is exclusively
    /// owned and is not the backing store of any live frame.
    pub(crate) fn pool_is_alias_free(&self) -> bool {
        self.pool.entries().iter().all(|buf| {
            Arc::strong_count(buf) == 1
                && Arc::weak_count(buf) == 0
                && !self
                    .frames
                    .values()
                    .any(|frame| Arc::ptr_eq(&frame.data, buf))
        })
    }
}

/// Pooled buffers are exclusively owned, so sharing them with a clone
/// would break the no-aliasing invariant: clones start with an empty
/// pool and refill from their own retired frames.
impl Clone for FramePool {
    fn clone(&self) -> FramePool {
        FramePool::default()
    }
}

fn env_toggle(name: &str, default: bool) -> bool {
    match std::env::var(name) {
        Ok(v) => v != "0",
        Err(_) => default,
    }
}

/// Sparse, frame-granular physical memory.
///
/// Frames are 4 KiB and materialized lazily so "64 GiB" machines (Table 5
/// runs with 8 GiB and 64 GiB parts) cost only what is touched.
///
/// Frames are backed by `Arc`s and copy-on-write: [`Clone`] and
/// [`snapshot`](PhysMemory::snapshot) share every frame with the copy
/// (O(resident frames) pointer bumps), the first write to a shared
/// frame pays one 4 KiB copy, and
/// [`restore_from`](PhysMemory::restore_from) copies back only the
/// frames written since the checkpoint.
///
/// # Examples
///
/// ```
/// use phantom_mem::{PhysAddr, PhysMemory};
/// let mut m = PhysMemory::new(1 << 20);
/// let f = m.alloc_frame().unwrap();
/// m.write_u64(f + 8, 0xdead_beef);
/// assert_eq!(m.read_u64(f + 8), 0xdead_beef);
/// assert_eq!(m.read_u8(f), 0); // untouched bytes read as zero
///
/// let snap = m.snapshot();
/// m.write_u64(f + 8, 0);
/// m.restore_from(&snap);
/// assert_eq!(m.read_u64(f + 8), 0xdead_beef);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PhysMemory {
    capacity: u64,
    frames: HashMap<u64, Frame>,
    next_free: u64,
    /// Frames skipped by `alloc_huge` alignment, handed back out by
    /// `alloc_frame` once the bump region is exhausted.
    recycled: Vec<u64>,
    /// Current write epoch. Bumped by `snapshot` so writes after a
    /// checkpoint are distinguishable from the state it captured.
    epoch: u64,
    /// Dirty-frame journal: one `(epoch, page)` entry per frame whose
    /// epoch was raised, in raise order — epochs are therefore
    /// non-decreasing, so the entries newer than a checkpoint's cutoff
    /// are a suffix found by binary search. `restore_from` walks that
    /// suffix (O(dirtied)) instead of scanning every resident frame.
    /// Always maintained; `journal_enabled` only selects the rewind
    /// path so the toggle can flip at any point.
    journal: Vec<(u64, u64)>,
    journal_enabled: bool,
    pool: FramePool,
    pool_enabled: bool,
    cow_faults: u64,
    restore_frames_copied: u64,
    rewind_journal_frames: u64,
    frame_pool_reuses: u64,
}

impl PhysMemory {
    /// Create a physical memory of `capacity` bytes (rounded down to a
    /// whole number of frames). The journaled-rewind and frame-pool
    /// fast paths are on by default; `PHANTOM_REWIND_JOURNAL=0` /
    /// `PHANTOM_FRAME_POOL=0` select the legacy paths (both produce
    /// byte-identical contents — the toggles exist for A/B timing).
    pub fn new(capacity: u64) -> PhysMemory {
        PhysMemory {
            capacity: capacity & !(PAGE_SIZE - 1),
            journal_enabled: env_toggle("PHANTOM_REWIND_JOURNAL", true),
            pool_enabled: env_toggle("PHANTOM_FRAME_POOL", true),
            ..PhysMemory::default()
        }
    }

    /// Select the journaled (fast) or full-scan (legacy) rewind path.
    /// Both restore identical contents and counters; see
    /// [`restore_from`](PhysMemory::restore_from).
    pub fn set_rewind_journal(&mut self, enabled: bool) {
        self.journal_enabled = enabled;
    }

    /// Enable or disable frame-pool recycling of retired frames.
    pub fn set_frame_pool(&mut self, enabled: bool) {
        self.pool_enabled = enabled;
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of frames that have been materialized.
    pub fn resident_frames(&self) -> usize {
        self.frames.len()
    }

    /// Allocate the next free frame (bump allocator, falling back to
    /// frames recycled from `alloc_huge` alignment gaps once the bump
    /// region is exhausted).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfFrames`] when the configured capacity is exhausted.
    pub fn alloc_frame(&mut self) -> Result<PhysAddr, OutOfFrames> {
        if self.next_free + PAGE_SIZE > self.capacity {
            return match self.recycled.pop() {
                Some(base) => Ok(PhysAddr::new(base)),
                None => Err(OutOfFrames {
                    capacity: self.capacity,
                }),
            };
        }
        let pa = PhysAddr::new(self.next_free);
        self.next_free += PAGE_SIZE;
        Ok(pa)
    }

    /// Allocate `n` physically contiguous frames, returning the base.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfFrames`] when the configured capacity is exhausted.
    pub fn alloc_contiguous(&mut self, n: u64) -> Result<PhysAddr, OutOfFrames> {
        if self.next_free + n * PAGE_SIZE > self.capacity {
            return Err(OutOfFrames {
                capacity: self.capacity,
            });
        }
        let pa = PhysAddr::new(self.next_free);
        self.next_free += n * PAGE_SIZE;
        Ok(pa)
    }

    /// Allocate a 2 MiB-aligned run of 512 frames (a transparent huge
    /// page, as the physmap and Table 5 attacks use). Frames skipped to
    /// reach the alignment boundary are recycled: `alloc_frame` hands
    /// them out once the bump region is exhausted, so alignment never
    /// costs capacity.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfFrames`] when the configured capacity is exhausted.
    pub fn alloc_huge(&mut self) -> Result<PhysAddr, OutOfFrames> {
        const HUGE: u64 = 2 * 1024 * 1024;
        let aligned = (self.next_free + HUGE - 1) & !(HUGE - 1);
        if aligned + HUGE > self.capacity {
            return Err(OutOfFrames {
                capacity: self.capacity,
            });
        }
        let mut gap = self.next_free;
        while gap < aligned {
            self.recycled.push(gap);
            gap += PAGE_SIZE;
        }
        self.next_free = aligned + HUGE;
        Ok(PhysAddr::new(aligned))
    }

    /// Take a copy-on-write checkpoint: the returned memory shares every
    /// frame with `self` (pointer bumps only), and the epoch bump makes
    /// later writes to `self` detectable by [`restore_from`].
    ///
    /// [`restore_from`]: PhysMemory::restore_from
    pub fn snapshot(&mut self) -> PhysMemory {
        let snap = self.clone();
        self.epoch += 1;
        snap
    }

    /// Open a new copy-on-write epoch without taking a checkpoint.
    ///
    /// Cloning a checkpointed memory produces a copy whose epoch still
    /// equals the checkpoint's, so writes through the clone would be
    /// indistinguishable from the checkpointed state and
    /// [`restore_from`](PhysMemory::restore_from) would skip them.
    /// Forked timelines (see `phantom_pipeline`'s `Checkpoint::fork`)
    /// call this right after the clone so every subsequent write lands
    /// above the checkpoint's cutoff and stays rewindable.
    pub fn begin_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Rewind to `snap`, a checkpoint taken from this memory's own
    /// timeline (via [`snapshot`](PhysMemory::snapshot), possibly with
    /// other checkpoints and restores in between). Only frames written
    /// since the checkpoint are copied back; frames materialized after
    /// it are pointed at a shared zero frame (observationally identical
    /// to absent, and keeps other outstanding checkpoints restorable).
    ///
    /// Returns the physical page numbers whose contents the rewind
    /// changed (written-since-checkpoint frames, including ones
    /// zero-tombstoned away) so callers holding content-derived caches
    /// — decoded traces, for one — can invalidate exactly those frames.
    pub fn restore_from(&mut self, snap: &PhysMemory) -> Vec<u64> {
        debug_assert!(
            snap.frames.keys().all(|k| self.frames.contains_key(k)),
            "restore_from: snapshot is not from this memory's timeline"
        );
        self.capacity = snap.capacity;
        self.next_free = snap.next_free;
        self.recycled.clone_from(&snap.recycled);
        // The live epoch must stay strictly above every outstanding
        // checkpoint's cutoff so restored frames remain conservatively
        // dirty with respect to all of them.
        self.epoch = self.epoch.max(snap.epoch + 1);
        let epoch = self.epoch;
        let copied = if self.journal_enabled {
            // Journal epochs are non-decreasing, so everything written
            // after the checkpoint is the suffix past this boundary.
            let boundary = self.journal.partition_point(|&(e, _)| e <= snap.epoch);
            let mut dirty: Vec<u64> = self.journal[boundary..].iter().map(|&(_, p)| p).collect();
            dirty.sort_unstable();
            dirty.dedup();
            self.rewind_journal_frames += dirty.len() as u64;
            debug_assert!(
                {
                    let scan: std::collections::BTreeSet<u64> = self
                        .frames
                        .iter()
                        .filter(|(_, f)| f.epoch > snap.epoch)
                        .map(|(p, _)| *p)
                        .collect();
                    scan == dirty.iter().copied().collect()
                },
                "journal disagrees with a full dirty-frame scan"
            );
            let mut copied = Vec::with_capacity(dirty.len());
            for page in dirty {
                let frame = self
                    .frames
                    .get_mut(&page)
                    .expect("journaled frames are resident");
                if frame.epoch <= snap.epoch {
                    continue; // journal entry superseded by an older restore
                }
                let fresh = match snap.frames.get(&page) {
                    Some(original) => Arc::clone(&original.data),
                    None => zero_frame(),
                };
                let retired = std::mem::replace(&mut frame.data, fresh);
                frame.epoch = epoch;
                if self.pool_enabled {
                    self.pool.put(retired);
                }
                copied.push(page);
            }
            copied
        } else {
            let mut copied = Vec::new();
            for (page, frame) in &mut self.frames {
                if frame.epoch <= snap.epoch {
                    continue; // untouched since the checkpoint
                }
                let fresh = match snap.frames.get(page) {
                    Some(original) => Arc::clone(&original.data),
                    None => zero_frame(),
                };
                let retired = std::mem::replace(&mut frame.data, fresh);
                frame.epoch = epoch;
                if self.pool_enabled {
                    self.pool.put(retired);
                }
                copied.push(*page);
            }
            copied
        };
        // Rewrite the journal tail: entries above the cutoff are now
        // stale, and the restored frames were just re-stamped at the
        // live epoch (so older outstanding checkpoints still see them
        // as dirty — the interleaved-checkpoint guarantee).
        let boundary = self.journal.partition_point(|&(e, _)| e <= snap.epoch);
        self.journal.truncate(boundary);
        self.journal.extend(copied.iter().map(|&p| (epoch, p)));
        self.restore_frames_copied += copied.len() as u64;
        copied
    }

    /// Eagerly re-materialize private copies of `pages` (host-side
    /// warm-fork optimization): each listed frame that currently shares
    /// contents with a checkpoint pays its 4 KiB copy now instead of at
    /// the first guest write. Deliberately does **not** count
    /// `cow_faults` — no guest write happened — so callers must keep it
    /// out of counter-reference workloads.
    pub fn prewarm(&mut self, pages: &[u64]) {
        for &page in pages {
            let Some(frame) = self.frames.get_mut(&page) else {
                continue;
            };
            if Arc::strong_count(&frame.data) > 1 || Arc::weak_count(&frame.data) > 0 {
                let mut fresh = match self.pool.take() {
                    Some(buf) => buf,
                    None => Arc::new([0u8; PAGE_SIZE as usize]),
                };
                Arc::get_mut(&mut fresh)
                    .expect("pooled frames are exclusively owned")
                    .copy_from_slice(&frame.data[..]);
                frame.data = fresh;
            }
        }
    }

    /// A fully independent copy: every frame's contents are duplicated
    /// rather than shared. This is the pre-CoW snapshot cost, kept for
    /// wall-clock A/B comparisons.
    pub fn deep_clone(&self) -> PhysMemory {
        let mut copy = self.clone();
        for frame in copy.frames.values_mut() {
            frame.data = Arc::new(*frame.data);
        }
        copy
    }

    /// Writes that had to copy a frame shared with a checkpoint (each
    /// paid one 4 KiB copy).
    pub fn cow_faults(&self) -> u64 {
        self.cow_faults
    }

    /// Frames copied back by [`restore_from`](PhysMemory::restore_from)
    /// over this memory's lifetime.
    pub fn restore_frames_copied(&self) -> u64 {
        self.restore_frames_copied
    }

    /// Dirty frames located via the journal (instead of a full scan) by
    /// journaled [`restore_from`](PhysMemory::restore_from) calls.
    pub fn rewind_journal_frames(&self) -> u64 {
        self.rewind_journal_frames
    }

    /// Copy-on-write copies and fresh materializations served from the
    /// retired-frame pool instead of the allocator.
    pub fn frame_pool_reuses(&self) -> u64 {
        self.frame_pool_reuses
    }

    /// Resident frames currently sharing contents with a checkpoint (or
    /// the global zero frame) instead of owning a private copy.
    pub fn cow_frames_shared(&self) -> u64 {
        self.frames
            .values()
            .filter(|f| Arc::strong_count(&f.data) > 1)
            .count() as u64
    }

    fn frame_mut(&mut self, pa: PhysAddr) -> &mut [u8; PAGE_SIZE as usize] {
        use std::collections::hash_map::Entry;
        let epoch = self.epoch;
        let page = pa.page_number();
        let frame = match self.frames.entry(page) {
            Entry::Occupied(e) => {
                let frame = e.into_mut();
                if frame.epoch != epoch {
                    frame.epoch = epoch;
                    self.journal.push((epoch, page));
                }
                frame
            }
            Entry::Vacant(e) => {
                let data = match self.pool_enabled.then(|| self.pool.take()).flatten() {
                    Some(mut buf) => {
                        self.frame_pool_reuses += 1;
                        Arc::get_mut(&mut buf)
                            .expect("pooled frames are exclusively owned")
                            .fill(0);
                        buf
                    }
                    None => Arc::new([0; PAGE_SIZE as usize]),
                };
                self.journal.push((epoch, page));
                e.insert(Frame { data, epoch })
            }
        };
        if Arc::strong_count(&frame.data) > 1 || Arc::weak_count(&frame.data) > 0 {
            self.cow_faults += 1;
            let mut fresh = match self.pool_enabled.then(|| self.pool.take()).flatten() {
                Some(buf) => {
                    self.frame_pool_reuses += 1;
                    buf
                }
                None => Arc::new([0u8; PAGE_SIZE as usize]),
            };
            Arc::get_mut(&mut fresh)
                .expect("pooled frames are exclusively owned")
                .copy_from_slice(&frame.data[..]);
            frame.data = fresh;
        }
        Arc::get_mut(&mut frame.data).expect("frame was just unshared")
    }

    /// Read one byte. Unmaterialized memory reads as zero.
    pub fn read_u8(&self, pa: PhysAddr) -> u8 {
        self.frames
            .get(&pa.page_number())
            .map_or(0, |f| f.data[pa.page_offset() as usize])
    }

    /// Write one byte.
    pub fn write_u8(&mut self, pa: PhysAddr, value: u8) {
        self.frame_mut(pa)[pa.page_offset() as usize] = value;
    }

    /// Read a little-endian u64 (may straddle frames).
    pub fn read_u64(&self, pa: PhysAddr) -> u64 {
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(pa + i as u64);
        }
        u64::from_le_bytes(bytes)
    }

    /// Write a little-endian u64 (may straddle frames).
    pub fn write_u64(&mut self, pa: PhysAddr, value: u64) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(pa + i as u64, *b);
        }
    }

    /// Copy `data` into memory starting at `pa`.
    pub fn write_bytes(&mut self, pa: PhysAddr, data: &[u8]) {
        let mut off = 0usize;
        while off < data.len() {
            let addr = pa + off as u64;
            let in_frame = (PAGE_SIZE - addr.page_offset()) as usize;
            let chunk = in_frame.min(data.len() - off);
            let frame = self.frame_mut(addr);
            let start = addr.page_offset() as usize;
            frame[start..start + chunk].copy_from_slice(&data[off..off + chunk]);
            off += chunk;
        }
    }

    /// Read `len` bytes starting at `pa`.
    pub fn read_bytes(&self, pa: PhysAddr, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let addr = pa + out.len() as u64;
            let in_frame = (PAGE_SIZE - addr.page_offset()) as usize;
            let chunk = in_frame.min(len - out.len());
            match self.frames.get(&addr.page_number()) {
                Some(frame) => {
                    let start = addr.page_offset() as usize;
                    out.extend_from_slice(&frame.data[start..start + chunk]);
                }
                None => out.extend(std::iter::repeat_n(0, chunk)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation_is_disjoint() {
        let mut m = PhysMemory::new(4 * PAGE_SIZE);
        let a = m.alloc_frame().unwrap();
        let b = m.alloc_frame().unwrap();
        assert_ne!(a, b);
        assert_eq!(b - a, PAGE_SIZE);
        m.write_u8(a, 1);
        m.write_u8(b, 2);
        assert_eq!(m.read_u8(a), 1);
        assert_eq!(m.read_u8(b), 2);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut m = PhysMemory::new(2 * PAGE_SIZE);
        m.alloc_frame().unwrap();
        m.alloc_frame().unwrap();
        assert!(m.alloc_frame().is_err());
    }

    #[test]
    fn huge_pages_are_aligned() {
        let mut m = PhysMemory::new(16 * 1024 * 1024);
        m.alloc_frame().unwrap(); // misalign the bump pointer
        let h = m.alloc_huge().unwrap();
        assert!(h.is_aligned(2 * 1024 * 1024));
    }

    #[test]
    fn huge_page_alignment_gaps_are_recycled() {
        const HUGE: u64 = 2 * 1024 * 1024;
        let mut m = PhysMemory::new(2 * HUGE);
        m.alloc_frame().unwrap(); // misalign: 511 frames skipped by alloc_huge
        let h = m.alloc_huge().unwrap();
        assert_eq!(h.raw(), HUGE);
        // The bump region is exhausted; exactly the 511 gap frames remain.
        let mut recycled = Vec::new();
        while let Ok(pa) = m.alloc_frame() {
            recycled.push(pa.raw());
        }
        assert_eq!(recycled.len(), 511);
        recycled.sort_unstable();
        let expected: Vec<u64> = (1..512).map(|i| i * PAGE_SIZE).collect();
        assert_eq!(recycled, expected, "every skipped frame is handed out once");
    }

    #[test]
    fn bump_region_is_preferred_over_recycled_frames() {
        const HUGE: u64 = 2 * 1024 * 1024;
        let mut m = PhysMemory::new(4 * HUGE);
        m.alloc_frame().unwrap();
        m.alloc_huge().unwrap();
        // Capacity left above the huge page: bump allocation continues
        // there, leaving the gap untouched (so allocation addresses of
        // non-exhausted runs are unchanged by recycling).
        let next = m.alloc_frame().unwrap();
        assert_eq!(next.raw(), 2 * HUGE);
    }

    #[test]
    fn u64_roundtrip_straddles_frames() {
        let mut m = PhysMemory::new(8 * PAGE_SIZE);
        let pa = PhysAddr::new(PAGE_SIZE - 4); // straddles frames 0 and 1
        m.write_u64(pa, 0x0102_0304_0506_0708);
        assert_eq!(m.read_u64(pa), 0x0102_0304_0506_0708);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut m = PhysMemory::new(8 * PAGE_SIZE);
        let data: Vec<u8> = (0..=255).collect();
        m.write_bytes(PhysAddr::new(100), &data);
        assert_eq!(m.read_bytes(PhysAddr::new(100), 256), data);
    }

    #[test]
    fn sparse_memory_stays_sparse() {
        let mut m = PhysMemory::new(64 << 30); // "64 GiB" machine
        let f = m.alloc_contiguous(1 << 20).unwrap(); // 4 GiB reserved
        m.write_u8(f + (1 << 30), 7);
        assert_eq!(m.resident_frames(), 1);
        assert_eq!(m.read_u8(f + (1 << 30)), 7);
    }

    #[test]
    fn snapshot_shares_frames_and_restore_copies_only_dirty() {
        let mut m = PhysMemory::new(64 * PAGE_SIZE);
        for i in 0..16 {
            m.write_u8(PhysAddr::new(i * PAGE_SIZE), i as u8 + 1);
        }
        let snap = m.snapshot();
        assert_eq!(m.cow_frames_shared(), 16, "checkpoint shares every frame");
        assert_eq!(m.cow_faults(), 0);

        m.write_u8(PhysAddr::new(0), 0xaa);
        m.write_u8(PhysAddr::new(0) + 1, 0xbb); // same frame: one copy
        m.write_u8(PhysAddr::new(5 * PAGE_SIZE), 0xcc);
        assert_eq!(m.cow_faults(), 2, "one copy per dirtied frame");

        m.restore_from(&snap);
        assert_eq!(m.restore_frames_copied(), 2, "only dirty frames copied");
        for i in 0..16 {
            assert_eq!(m.read_u8(PhysAddr::new(i * PAGE_SIZE)), i as u8 + 1);
        }
    }

    #[test]
    fn restore_zeroes_frames_materialized_after_the_checkpoint() {
        let mut m = PhysMemory::new(64 * PAGE_SIZE);
        m.write_u8(PhysAddr::new(0), 1);
        let snap = m.snapshot();
        m.write_u8(PhysAddr::new(3 * PAGE_SIZE), 9);
        m.restore_from(&snap);
        assert_eq!(m.read_u8(PhysAddr::new(3 * PAGE_SIZE)), 0);
        assert_eq!(m.read_u8(PhysAddr::new(0)), 1);
    }

    #[test]
    fn interleaved_checkpoints_restore_independently() {
        let pa = PhysAddr::new(2 * PAGE_SIZE);
        let mut m = PhysMemory::new(64 * PAGE_SIZE);
        m.write_u8(pa, 1);
        let snap_a = m.snapshot();
        m.write_u8(pa, 2);
        let snap_b = m.snapshot();
        m.write_u8(pa, 3);

        m.restore_from(&snap_a);
        assert_eq!(m.read_u8(pa), 1);
        m.restore_from(&snap_b);
        assert_eq!(m.read_u8(pa), 2);
        m.restore_from(&snap_a);
        assert_eq!(m.read_u8(pa), 1);
    }

    #[test]
    fn restore_rewinds_the_allocator() {
        let mut m = PhysMemory::new(16 * PAGE_SIZE);
        m.alloc_frame().unwrap();
        let snap = m.snapshot();
        let b = m.alloc_frame().unwrap();
        m.restore_from(&snap);
        assert_eq!(m.alloc_frame().unwrap(), b, "bump pointer rewound");
    }

    #[test]
    fn journaled_and_scan_rewinds_agree() {
        // Same operation sequence on both paths: contents, counters and
        // the copied-page set must match (the journaled path returns
        // pages sorted; the scan path in map order).
        let run = |journal: bool| {
            let mut m = PhysMemory::new(64 * PAGE_SIZE);
            m.set_rewind_journal(journal);
            for i in 0..16 {
                m.write_u8(PhysAddr::new(i * PAGE_SIZE), i as u8 + 1);
            }
            let snap = m.snapshot();
            m.write_u8(PhysAddr::new(0), 0xaa);
            m.write_u8(PhysAddr::new(5 * PAGE_SIZE), 0xcc);
            m.write_u8(PhysAddr::new(40 * PAGE_SIZE), 0xdd); // post-snap frame
            let mut copied = m.restore_from(&snap);
            copied.sort_unstable();
            let state: Vec<u8> = (0..64)
                .map(|i| m.read_u8(PhysAddr::new(i * PAGE_SIZE)))
                .collect();
            (copied, state, m.restore_frames_copied())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn journal_survives_interleaved_restores() {
        let pa = PhysAddr::new(2 * PAGE_SIZE);
        let mut m = PhysMemory::new(64 * PAGE_SIZE);
        m.set_rewind_journal(true);
        m.write_u8(pa, 1);
        let snap_a = m.snapshot();
        m.write_u8(pa, 2);
        let snap_b = m.snapshot();
        m.write_u8(pa, 3);

        m.restore_from(&snap_a);
        assert_eq!(m.read_u8(pa), 1);
        // snap_b must still see the frame as dirty after the rewind to
        // snap_a re-stamped it.
        m.restore_from(&snap_b);
        assert_eq!(m.read_u8(pa), 2);
        m.restore_from(&snap_a);
        assert_eq!(m.read_u8(pa), 1);
        assert_eq!(m.rewind_journal_frames(), 3);
    }

    #[test]
    fn retired_frames_are_pooled_and_reused() {
        let mut m = PhysMemory::new(64 * PAGE_SIZE);
        m.write_u8(PhysAddr::new(0), 5);
        let snap = m.snapshot();
        m.write_u8(PhysAddr::new(0), 6); // CoW: private copy
        m.restore_from(&snap); // private copy retired into the pool
        assert_eq!(m.pool.len(), 1);
        assert_eq!(m.frame_pool_reuses(), 0);
        m.write_u8(PhysAddr::new(0), 7); // CoW again: served from the pool
        assert_eq!(m.pool.len(), 0);
        assert_eq!(m.frame_pool_reuses(), 1);
        m.restore_from(&snap);
        assert_eq!(m.read_u8(PhysAddr::new(0)), 5);
    }

    #[test]
    fn pooled_frames_are_rezeroed_for_new_frames() {
        let mut m = PhysMemory::new(64 * PAGE_SIZE);
        m.write_bytes(PhysAddr::new(0), &[0xff; PAGE_SIZE as usize]);
        let snap = m.snapshot();
        m.write_bytes(PhysAddr::new(0), &[0xee; PAGE_SIZE as usize]);
        m.restore_from(&snap); // pool now holds an all-0xee buffer
        assert_eq!(m.pool.len(), 1);
        m.write_u8(PhysAddr::new(9 * PAGE_SIZE) + 17, 1); // new frame from the pool
        assert_eq!(m.frame_pool_reuses(), 1);
        for off in 0..PAGE_SIZE {
            let expect = if off == 17 { 1 } else { 0 };
            assert_eq!(m.read_u8(PhysAddr::new(9 * PAGE_SIZE) + off), expect);
        }
    }

    #[test]
    fn pool_never_holds_a_shared_frame() {
        let mut m = PhysMemory::new(64 * PAGE_SIZE);
        for i in 0..8 {
            m.write_u8(PhysAddr::new(i * PAGE_SIZE), i as u8 + 1);
        }
        let snap = m.snapshot();
        for i in 0..8 {
            m.write_u8(PhysAddr::new(i * PAGE_SIZE), 0xaa);
        }
        m.restore_from(&snap);
        for buf in m.pool.entries() {
            assert_eq!(Arc::strong_count(buf), 1);
            assert_eq!(Arc::weak_count(buf), 0);
        }
    }

    #[test]
    fn disabled_pool_retires_nothing() {
        let mut m = PhysMemory::new(64 * PAGE_SIZE);
        m.set_frame_pool(false);
        m.write_u8(PhysAddr::new(0), 5);
        let snap = m.snapshot();
        m.write_u8(PhysAddr::new(0), 6);
        m.restore_from(&snap);
        assert_eq!(m.pool.len(), 0);
        m.write_u8(PhysAddr::new(0), 7);
        assert_eq!(m.frame_pool_reuses(), 0);
    }

    #[test]
    fn clones_start_with_an_empty_pool() {
        let mut m = PhysMemory::new(64 * PAGE_SIZE);
        m.write_u8(PhysAddr::new(0), 5);
        let snap = m.snapshot();
        m.write_u8(PhysAddr::new(0), 6);
        m.restore_from(&snap);
        assert_eq!(m.pool.len(), 1);
        let clone = m.clone();
        assert_eq!(clone.pool.len(), 0, "pooled buffers are never shared");
    }

    #[test]
    fn prewarm_unshares_without_counting_cow_faults() {
        let mut m = PhysMemory::new(64 * PAGE_SIZE);
        m.write_u8(PhysAddr::new(0), 5);
        let snap = m.snapshot();
        m.prewarm(&[0]);
        assert_eq!(m.cow_faults(), 0);
        m.write_u8(PhysAddr::new(0), 6); // already private: no fault
        assert_eq!(m.cow_faults(), 0);
        m.restore_from(&snap);
        assert_eq!(m.read_u8(PhysAddr::new(0)), 5);
    }

    #[test]
    fn deep_clone_is_independent() {
        let mut m = PhysMemory::new(16 * PAGE_SIZE);
        m.write_u8(PhysAddr::new(0), 7);
        let copy = m.deep_clone();
        m.write_u8(PhysAddr::new(0), 8);
        assert_eq!(copy.read_u8(PhysAddr::new(0)), 7);
        assert_eq!(m.cow_faults(), 0, "deep clone shares nothing to copy");
    }
}
