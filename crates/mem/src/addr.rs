//! Virtual and physical address newtypes.

use std::fmt;
use std::ops::{Add, Sub};

/// Page size in bytes (4 KiB, like x86-64 base pages).
pub const PAGE_SIZE: u64 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// Huge-page size in bytes (2 MiB transparent huge pages, used by the
/// physmap attack for L2 Prime+Probe, §7.2).
pub const HUGE_PAGE_SIZE: u64 = 2 * 1024 * 1024;
/// log2 of [`HUGE_PAGE_SIZE`].
pub const HUGE_PAGE_SHIFT: u32 = 21;

macro_rules! addr_type {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// Wrap a raw address.
            pub const fn new(raw: u64) -> $name {
                $name(raw)
            }

            /// The raw address value.
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Byte offset within the 4 KiB page.
            pub const fn page_offset(self) -> u64 {
                self.0 & (PAGE_SIZE - 1)
            }

            /// The page number (address >> 12).
            pub const fn page_number(self) -> u64 {
                self.0 >> PAGE_SHIFT
            }

            /// Address rounded down to the containing 4 KiB page.
            pub const fn page_base(self) -> $name {
                $name(self.0 & !(PAGE_SIZE - 1))
            }

            /// Address rounded down to the containing 2 MiB huge page.
            pub const fn huge_page_base(self) -> $name {
                $name(self.0 & !(HUGE_PAGE_SIZE - 1))
            }

            /// Value of address bit `n` (0 or 1).
            pub const fn bit(self, n: u32) -> u64 {
                (self.0 >> n) & 1
            }

            /// Returns the address with bit `n` flipped.
            pub const fn flip_bit(self, n: u32) -> $name {
                $name(self.0 ^ (1 << n))
            }

            /// Whether the address is aligned to `align` (a power of two).
            pub const fn is_aligned(self, align: u64) -> bool {
                self.0 & (align - 1) == 0
            }
        }

        impl Add<u64> for $name {
            type Output = $name;
            fn add(self, rhs: u64) -> $name {
                $name(self.0.wrapping_add(rhs))
            }
        }

        impl Sub<u64> for $name {
            type Output = $name;
            fn sub(self, rhs: u64) -> $name {
                $name(self.0.wrapping_sub(rhs))
            }
        }

        impl Sub<$name> for $name {
            type Output = u64;
            fn sub(self, rhs: $name) -> u64 {
                self.0.wrapping_sub(rhs.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> $name {
                $name(raw)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl fmt::Binary for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Binary::fmt(&self.0, f)
            }
        }

        impl fmt::Octal for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Octal::fmt(&self.0, f)
            }
        }
    };
}

addr_type! {
    /// A virtual address.
    ///
    /// # Examples
    ///
    /// ```
    /// use phantom_mem::VirtAddr;
    /// let va = VirtAddr::new(0xffff_8000_0123_4abc);
    /// assert_eq!(va.page_offset(), 0xabc);
    /// assert_eq!(va.bit(12), 0);
    /// assert_eq!(va.flip_bit(12).raw(), 0xffff_8000_0123_5abc);
    /// ```
    VirtAddr
}

addr_type! {
    /// A physical address.
    ///
    /// # Examples
    ///
    /// ```
    /// use phantom_mem::PhysAddr;
    /// let pa = PhysAddr::new(0x4_2000);
    /// assert_eq!(pa.page_number(), 0x42);
    /// assert!(pa.is_aligned(0x1000));
    /// ```
    PhysAddr
}

impl VirtAddr {
    /// Whether this is a canonical kernel-half address (bit 47 set, as in
    /// the paper's BTB functions, which all involve `b47`).
    pub const fn is_kernel_half(self) -> bool {
        self.bit(47) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_arithmetic() {
        let va = VirtAddr::new(0x1234);
        assert_eq!(va.page_offset(), 0x234);
        assert_eq!(va.page_number(), 1);
        assert_eq!(va.page_base(), VirtAddr::new(0x1000));
    }

    #[test]
    fn huge_page_base_masks_21_bits() {
        let va = VirtAddr::new(0x40_1234);
        assert_eq!(va.huge_page_base(), VirtAddr::new(0x40_0000));
        assert_eq!(VirtAddr::new(0x1f_ffff).huge_page_base(), VirtAddr::new(0));
    }

    #[test]
    fn bit_ops() {
        let va = VirtAddr::new(1 << 47);
        assert_eq!(va.bit(47), 1);
        assert_eq!(va.bit(46), 0);
        assert_eq!(va.flip_bit(47), VirtAddr::new(0));
        assert!(va.is_kernel_half());
        assert!(!VirtAddr::new(0x7fff_ffff_ffff).is_kernel_half());
    }

    #[test]
    fn arithmetic_wraps() {
        let va = VirtAddr::new(u64::MAX);
        assert_eq!((va + 1).raw(), 0);
        assert_eq!(VirtAddr::new(0x2000) - VirtAddr::new(0x1000), 0x1000);
    }

    #[test]
    fn formatting() {
        let pa = PhysAddr::new(0xbeef);
        assert_eq!(pa.to_string(), "0xbeef");
        assert_eq!(format!("{pa:x}"), "beef");
        assert_eq!(format!("{pa:b}"), format!("{:b}", 0xbeefu64));
    }
}
