//! A translation lookaside buffer with address-space identifiers.
//!
//! Phantom itself does not need a TLB — its signals live in the caches —
//! but the KASLR attacks the paper positions against (TagBleed, cited in
//! §7) exploit tagged-TLB set pressure, and a realistic memory substrate
//! should charge translation latency. The machine can layer this over
//! [`PageTable::translate`](crate::PageTable::translate): hit = cheap,
//! miss = a page walk.

use crate::addr::{PhysAddr, VirtAddr};
use crate::paging::PageFlags;

/// One cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Virtual page number.
    pub vpn: u64,
    /// Physical frame base.
    pub frame: PhysAddr,
    /// Cached permission bits.
    pub flags: PageFlags,
    /// Address-space identifier (PCID); kernel and user entries coexist
    /// under different ASIDs, the mechanism KPTI leans on.
    pub asid: u16,
    /// [`PageTable::version`](crate::PageTable::version) at fill time.
    /// A translation fast path may only trust this entry's frame and
    /// flags while the table still reports the same version; the model
    /// deliberately keeps stale entries resident (their *timing* is
    /// architecturally real), so staleness is detected at use, not
    /// flushed at mutation.
    pub pt_version: u64,
}

/// A set-associative, ASID-tagged TLB.
///
/// # Examples
///
/// ```
/// use phantom_mem::{PageFlags, PhysAddr, Tlb, VirtAddr};
/// let mut tlb = Tlb::new(16, 4);
/// tlb.insert(VirtAddr::new(0x1000), PhysAddr::new(0x8000), PageFlags::USER_DATA, 1, 0);
/// assert!(tlb.lookup(VirtAddr::new(0x1234), 1).is_some());
/// assert!(tlb.lookup(VirtAddr::new(0x1234), 2).is_none(), "other ASID");
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    sets: Vec<Vec<(TlbEntry, u64)>>,
    ways: usize,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Create a TLB with `sets` sets (power of two) of `ways` entries.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Tlb {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(ways > 0, "ways must be nonzero");
        Tlb {
            sets: vec![Vec::new(); sets],
            ways,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_of(&self, vpn: u64) -> usize {
        (vpn as usize) & (self.sets.len() - 1)
    }

    /// Look up a translation for `va` under `asid`. Counts hit/miss and
    /// refreshes LRU on hit.
    pub fn lookup(&mut self, va: VirtAddr, asid: u16) -> Option<TlbEntry> {
        self.clock += 1;
        let vpn = va.page_number();
        let clock = self.clock;
        let set = self.set_of(vpn);
        if let Some((entry, stamp)) = self.sets[set]
            .iter_mut()
            .find(|(e, _)| e.vpn == vpn && e.asid == asid)
        {
            *stamp = clock;
            self.hits += 1;
            return Some(*entry);
        }
        self.misses += 1;
        None
    }

    /// Look up a translation without perturbing any replacement or
    /// accounting state: no hit/miss counters, no LRU refresh, no clock
    /// tick. This is the probe the translation fast path uses *before*
    /// deciding whether the charged, counting [`lookup`](Tlb::lookup)
    /// would have run — so peeking is observationally free.
    pub fn peek(&self, va: VirtAddr, asid: u16) -> Option<&TlbEntry> {
        let vpn = va.page_number();
        let set = self.set_of(vpn);
        self.sets[set]
            .iter()
            .find(|(e, _)| e.vpn == vpn && e.asid == asid)
            .map(|(e, _)| e)
    }

    /// Insert a translation (evicting LRU within the set if full),
    /// recording the page-table version it was derived from.
    pub fn insert(
        &mut self,
        va: VirtAddr,
        frame: PhysAddr,
        flags: PageFlags,
        asid: u16,
        pt_version: u64,
    ) {
        self.clock += 1;
        let vpn = va.page_number();
        let set = self.set_of(vpn);
        let ways = self.ways;
        let clock = self.clock;
        let entries = &mut self.sets[set];
        if let Some((e, stamp)) = entries
            .iter_mut()
            .find(|(e, _)| e.vpn == vpn && e.asid == asid)
        {
            *e = TlbEntry {
                vpn,
                frame: frame.page_base(),
                flags,
                asid,
                pt_version,
            };
            *stamp = clock;
            return;
        }
        if entries.len() >= ways {
            if let Some(pos) = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(i, _)| i)
            {
                entries.remove(pos);
            }
        }
        entries.push((
            TlbEntry {
                vpn,
                frame: frame.page_base(),
                flags,
                asid,
                pt_version,
            },
            clock,
        ));
    }

    /// Revalidate a resident entry in place: update its frame, flags and
    /// page-table version without touching the clock, LRU stamps or
    /// hit/miss counters. Used when a charged lookup hit a stale entry —
    /// the hit's timing already happened; only the cached translation
    /// content is brought up to date. No-op if the entry is absent.
    pub fn refresh(
        &mut self,
        va: VirtAddr,
        asid: u16,
        frame: PhysAddr,
        flags: PageFlags,
        pt_version: u64,
    ) {
        let vpn = va.page_number();
        let set = self.set_of(vpn);
        if let Some((e, _)) = self.sets[set]
            .iter_mut()
            .find(|(e, _)| e.vpn == vpn && e.asid == asid)
        {
            e.frame = frame.page_base();
            e.flags = flags;
            e.pt_version = pt_version;
        }
    }

    /// Invalidate one page for one ASID (`invlpg`).
    pub fn invalidate_page(&mut self, va: VirtAddr, asid: u16) {
        let vpn = va.page_number();
        let set = self.set_of(vpn);
        self.sets[set].retain(|(e, _)| !(e.vpn == vpn && e.asid == asid));
    }

    /// Invalidate every entry of one ASID (a non-PCID context switch).
    pub fn invalidate_asid(&mut self, asid: u16) {
        for set in &mut self.sets {
            set.retain(|(e, _)| e.asid != asid);
        }
    }

    /// Invalidate everything (write to CR3 without PCID).
    pub fn flush_all(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Lifetime hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry_va(n: u64) -> VirtAddr {
        VirtAddr::new(n << 12)
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut tlb = Tlb::new(8, 2);
        assert!(tlb.lookup(entry_va(5), 0).is_none());
        tlb.insert(
            entry_va(5),
            PhysAddr::new(0x9000),
            PageFlags::USER_DATA,
            0,
            0,
        );
        let e = tlb.lookup(entry_va(5), 0).unwrap();
        assert_eq!(e.frame, PhysAddr::new(0x9000));
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn asid_isolation() {
        let mut tlb = Tlb::new(8, 2);
        tlb.insert(
            entry_va(5),
            PhysAddr::new(0x9000),
            PageFlags::KERNEL_DATA,
            7,
            0,
        );
        assert!(tlb.lookup(entry_va(5), 0).is_none());
        assert!(tlb.lookup(entry_va(5), 7).is_some());
        // KPTI-style: flushing the user ASID leaves kernel entries alone.
        tlb.invalidate_asid(0);
        assert!(tlb.lookup(entry_va(5), 7).is_some());
        tlb.invalidate_asid(7);
        assert!(tlb.lookup(entry_va(5), 7).is_none());
    }

    #[test]
    fn lru_within_a_set() {
        let mut tlb = Tlb::new(1, 2);
        tlb.insert(
            entry_va(1),
            PhysAddr::new(0x1000),
            PageFlags::USER_DATA,
            0,
            0,
        );
        tlb.insert(
            entry_va(2),
            PhysAddr::new(0x2000),
            PageFlags::USER_DATA,
            0,
            0,
        );
        tlb.lookup(entry_va(1), 0); // refresh 1
        tlb.insert(
            entry_va(3),
            PhysAddr::new(0x3000),
            PageFlags::USER_DATA,
            0,
            0,
        );
        assert!(tlb.lookup(entry_va(1), 0).is_some());
        assert!(tlb.lookup(entry_va(2), 0).is_none(), "LRU evicted");
    }

    #[test]
    fn same_vpn_reinsert_updates() {
        let mut tlb = Tlb::new(4, 2);
        tlb.insert(
            entry_va(9),
            PhysAddr::new(0x1000),
            PageFlags::USER_DATA,
            0,
            0,
        );
        tlb.insert(
            entry_va(9),
            PhysAddr::new(0x5000),
            PageFlags::USER_TEXT,
            0,
            0,
        );
        let e = tlb.lookup(entry_va(9), 0).unwrap();
        assert_eq!(e.frame, PhysAddr::new(0x5000));
        assert!(e.flags.contains(PageFlags::EXEC));
        assert_eq!(tlb.len(), 1);
    }

    #[test]
    fn invalidate_page_is_precise() {
        let mut tlb = Tlb::new(4, 2);
        tlb.insert(
            entry_va(1),
            PhysAddr::new(0x1000),
            PageFlags::USER_DATA,
            0,
            0,
        );
        tlb.insert(
            entry_va(2),
            PhysAddr::new(0x2000),
            PageFlags::USER_DATA,
            0,
            0,
        );
        tlb.invalidate_page(entry_va(1), 0);
        assert!(tlb.lookup(entry_va(1), 0).is_none());
        assert!(tlb.lookup(entry_va(2), 0).is_some());
    }

    #[test]
    fn flush_all_empties() {
        let mut tlb = Tlb::new(4, 2);
        for i in 0..8 {
            tlb.insert(
                entry_va(i),
                PhysAddr::new(i << 12),
                PageFlags::USER_DATA,
                0,
                0,
            );
        }
        assert!(!tlb.is_empty());
        tlb.flush_all();
        assert!(tlb.is_empty());
    }

    #[test]
    fn peek_is_observationally_free() {
        let mut tlb = Tlb::new(1, 2);
        tlb.insert(
            entry_va(1),
            PhysAddr::new(0x1000),
            PageFlags::USER_DATA,
            0,
            3,
        );
        tlb.insert(
            entry_va(2),
            PhysAddr::new(0x2000),
            PageFlags::USER_DATA,
            0,
            3,
        );
        assert_eq!(tlb.peek(entry_va(1), 0).unwrap().pt_version, 3);
        assert!(tlb.peek(entry_va(1), 9).is_none(), "other ASID");
        assert_eq!((tlb.hits(), tlb.misses()), (0, 0), "no counter movement");
        // Peeking entry 1 did not refresh its LRU stamp: inserting a
        // third entry into the full set still evicts entry 1.
        tlb.insert(
            entry_va(3),
            PhysAddr::new(0x3000),
            PageFlags::USER_DATA,
            0,
            3,
        );
        assert!(
            tlb.peek(entry_va(1), 0).is_none(),
            "peek never refreshes LRU"
        );
        assert!(tlb.peek(entry_va(2), 0).is_some());
    }

    #[test]
    fn refresh_updates_content_without_accounting() {
        let mut tlb = Tlb::new(1, 2);
        tlb.insert(
            entry_va(1),
            PhysAddr::new(0x1000),
            PageFlags::USER_DATA,
            0,
            1,
        );
        tlb.insert(
            entry_va(2),
            PhysAddr::new(0x2000),
            PageFlags::USER_DATA,
            0,
            1,
        );
        tlb.refresh(
            entry_va(1),
            0,
            PhysAddr::new(0x7000),
            PageFlags::USER_TEXT,
            5,
        );
        let e = *tlb.peek(entry_va(1), 0).unwrap();
        assert_eq!(e.frame, PhysAddr::new(0x7000));
        assert_eq!(e.pt_version, 5);
        assert_eq!((tlb.hits(), tlb.misses()), (0, 0));
        // Refresh left LRU order alone: entry 1 is still the oldest.
        tlb.insert(
            entry_va(3),
            PhysAddr::new(0x3000),
            PageFlags::USER_DATA,
            0,
            5,
        );
        assert!(
            tlb.peek(entry_va(1), 0).is_none(),
            "refresh never touches LRU"
        );
    }

    #[test]
    fn occupancy_bounded_by_geometry() {
        let mut tlb = Tlb::new(2, 3);
        for i in 0..32 {
            tlb.insert(
                entry_va(i),
                PhysAddr::new(i << 12),
                PageFlags::USER_DATA,
                0,
                0,
            );
        }
        assert!(tlb.len() <= 2 * 3);
    }
}
