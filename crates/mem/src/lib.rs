//! Memory substrate for the Phantom reproduction: sparse physical memory,
//! page tables with permission bits, and address-space layout helpers.
//!
//! The Phantom exploits depend on precise memory-system semantics:
//!
//! * **Executability gates instruction fetch** — a speculative fetch only
//!   populates the I-cache if the target page is present *and executable*
//!   (primitive P1 distinguishes mapped-executable from everything else);
//! * **Presence gates data loads** — a transient load fills the D-cache
//!   only if the page is present (primitive P2 detects mapped,
//!   non-executable memory such as physmap);
//! * **Privilege separation** — user code touching supervisor pages
//!   faults architecturally but the BTB may still be trained by the
//!   attempt (the page-fault-and-catch training technique of §6.2).
//!
//! # Examples
//!
//! ```
//! use phantom_mem::{AccessKind, PageFlags, PageTable, PhysAddr, PhysMemory, PrivilegeLevel, VirtAddr};
//!
//! let mut phys = PhysMemory::new(1 << 30); // 1 GiB
//! let frame = phys.alloc_frame().unwrap();
//! let mut pt = PageTable::new();
//! pt.map_4k(VirtAddr::new(0x1000), frame, PageFlags::PRESENT | PageFlags::WRITE | PageFlags::USER);
//!
//! let pa = pt
//!     .translate(VirtAddr::new(0x1234), AccessKind::Read, PrivilegeLevel::User)
//!     .unwrap();
//! assert_eq!(pa, PhysAddr::new(frame.raw() + 0x234));
//! ```

pub mod addr;
pub mod fault;
pub mod paging;
pub mod phys;
pub mod tlb;

pub use addr::{PhysAddr, VirtAddr, HUGE_PAGE_SHIFT, HUGE_PAGE_SIZE, PAGE_SHIFT, PAGE_SIZE};
pub use fault::{AccessKind, FaultReason, PageFault};
pub use paging::{PageFlags, PageTable, PrivilegeLevel};
pub use phys::PhysMemory;
pub use tlb::{Tlb, TlbEntry};

#[cfg(test)]
mod proptests;
