//! Property-based tests for the memory substrate.

use proptest::prelude::*;

use crate::addr::{PhysAddr, VirtAddr, PAGE_SIZE};
use crate::fault::AccessKind;
use crate::paging::{PageFlags, PageTable, PrivilegeLevel};
use crate::phys::PhysMemory;

/// One step of the copy-on-write model check.
#[derive(Debug, Clone)]
enum CowOp {
    /// Write a byte at an address.
    Write(u64, u8),
    /// Take a checkpoint of the live memory.
    Snapshot,
    /// Rewind to checkpoint `i % snapshots.len()` (no-op when none).
    Restore(usize),
}

fn arb_cow_ops() -> impl Strategy<Value = Vec<CowOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..0x8000, any::<u8>()).prop_map(|(a, v)| CowOp::Write(a, v)),
            (0u64..0x8000, any::<u8>()).prop_map(|(a, v)| CowOp::Write(a, v)),
            (0u64..0x8000, any::<u8>()).prop_map(|(a, v)| CowOp::Write(a, v)),
            Just(CowOp::Snapshot),
            any::<usize>().prop_map(CowOp::Restore),
        ],
        1..80,
    )
}

fn arb_flags() -> impl Strategy<Value = PageFlags> {
    (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(|(p, w, x, u)| {
        let mut f = PageFlags::NONE;
        if p {
            f |= PageFlags::PRESENT;
        }
        if w {
            f |= PageFlags::WRITE;
        }
        if x {
            f |= PageFlags::EXEC;
        }
        if u {
            f |= PageFlags::USER;
        }
        f
    })
}

proptest! {
    /// Translation preserves the page offset and lands in the mapped frame.
    #[test]
    fn translate_preserves_offset(vpn in 0u64..1 << 30, fpn in 0u64..1 << 20, off in 0u64..PAGE_SIZE) {
        let mut pt = PageTable::new();
        let va = VirtAddr::new(vpn << 12);
        let pa = PhysAddr::new(fpn << 12);
        pt.map_4k(va, pa, PageFlags::USER_DATA);
        let got = pt.translate(va + off, AccessKind::Read, PrivilegeLevel::User).unwrap();
        prop_assert_eq!(got, pa + off);
    }

    /// Permission soundness: a translation only succeeds when every
    /// relevant permission bit allows it.
    #[test]
    fn permission_soundness(flags in arb_flags(), access_idx in 0usize..3, user in any::<bool>()) {
        let access = [AccessKind::Read, AccessKind::Write, AccessKind::Execute][access_idx];
        let level = if user { PrivilegeLevel::User } else { PrivilegeLevel::Supervisor };
        let mut pt = PageTable::new();
        pt.map_4k(VirtAddr::new(0x7000), PhysAddr::new(0x9000), flags);
        let res = pt.translate(VirtAddr::new(0x7000), access, level);
        let allowed = flags.contains(PageFlags::PRESENT)
            && (!user || flags.contains(PageFlags::USER))
            && match access {
                AccessKind::Read => true,
                AccessKind::Write => flags.contains(PageFlags::WRITE),
                AccessKind::Execute => flags.contains(PageFlags::EXEC),
            };
        prop_assert_eq!(res.is_ok(), allowed, "flags={} access={:?} level={}", flags, access, level);
    }

    /// Physical memory behaves like a big byte array: last write wins.
    #[test]
    fn phys_memory_is_a_byte_array(writes in proptest::collection::vec((0u64..0x10000, any::<u8>()), 1..100)) {
        let mut m = PhysMemory::new(1 << 20);
        let mut model = std::collections::HashMap::new();
        for (addr, val) in &writes {
            m.write_u8(PhysAddr::new(*addr), *val);
            model.insert(*addr, *val);
        }
        for (addr, val) in model {
            prop_assert_eq!(m.read_u8(PhysAddr::new(addr)), val);
        }
    }

    /// u64 round-trip at any (possibly frame-straddling) address.
    #[test]
    fn phys_u64_round_trip(addr in 0u64..0x10000, val in any::<u64>()) {
        let mut m = PhysMemory::new(1 << 20);
        m.write_u64(PhysAddr::new(addr), val);
        prop_assert_eq!(m.read_u64(PhysAddr::new(addr)), val);
    }

    /// Contiguous allocation never overlaps previous allocations.
    #[test]
    fn allocations_are_disjoint(sizes in proptest::collection::vec(1u64..8, 1..20)) {
        let mut m = PhysMemory::new(1 << 24);
        let mut prev_end = 0u64;
        for n in sizes {
            let base = m.alloc_contiguous(n).unwrap();
            prop_assert!(base.raw() >= prev_end);
            prev_end = base.raw() + n * PAGE_SIZE;
        }
    }

    /// Copy-on-write snapshot/restore is observationally identical to
    /// a plain byte map cloned at every checkpoint: any interleaving
    /// of writes, snapshots and (possibly out-of-order) restores reads
    /// back exactly what the model does, and no snapshot's contents
    /// ever change after it is taken.
    #[test]
    fn cow_snapshots_match_a_plain_map_model(
        ops in arb_cow_ops(),
        probes in proptest::collection::vec(0u64..0x8000, 1..30),
    ) {
        let mut m = PhysMemory::new(1 << 20);
        let mut model: std::collections::HashMap<u64, u8> = std::collections::HashMap::new();
        let mut snaps: Vec<(PhysMemory, std::collections::HashMap<u64, u8>)> = Vec::new();
        for op in ops {
            match op {
                CowOp::Write(addr, val) => {
                    m.write_u8(PhysAddr::new(addr), val);
                    model.insert(addr, val);
                }
                CowOp::Snapshot => snaps.push((m.snapshot(), model.clone())),
                CowOp::Restore(i) => {
                    if !snaps.is_empty() {
                        let (snap, snap_model) = &snaps[i % snaps.len()];
                        m.restore_from(snap);
                        model = snap_model.clone();
                    }
                }
            }
        }
        for addr in probes {
            let want = model.get(&addr).copied().unwrap_or(0);
            prop_assert_eq!(m.read_u8(PhysAddr::new(addr)), want);
        }
        // Snapshots are immutable: later writes and restores through
        // the live memory never leak into a checkpoint.
        for (snap, snap_model) in &snaps {
            for (&addr, &val) in snap_model {
                prop_assert_eq!(snap.read_u8(PhysAddr::new(addr)), val);
            }
        }
    }

    /// Frame-pool recycling never aliases a live frame: after any
    /// interleaving of writes, snapshots and restores, every pooled
    /// buffer is exclusively owned (strong count 1, no weak refs) and
    /// backs no resident frame — checked after every restore, the only
    /// point where frames retire into the pool.
    #[test]
    fn frame_pool_never_aliases_a_live_frame(ops in arb_cow_ops()) {
        let mut m = PhysMemory::new(1 << 20);
        let mut snaps: Vec<PhysMemory> = Vec::new();
        for op in ops {
            match op {
                CowOp::Write(addr, val) => m.write_u8(PhysAddr::new(addr), val),
                CowOp::Snapshot => snaps.push(m.snapshot()),
                CowOp::Restore(i) => {
                    if !snaps.is_empty() {
                        m.restore_from(&snaps[i % snaps.len()]);
                        prop_assert!(m.pool_is_alias_free());
                    }
                }
            }
        }
        prop_assert!(m.pool_is_alias_free());
    }

    /// The journaled rewind and the legacy full scan are the same
    /// function: identical contents and identical `restore_frames_copied`
    /// counts over any operation interleaving.
    #[test]
    fn journaled_rewind_matches_full_scan(
        ops in arb_cow_ops(),
        probes in proptest::collection::vec(0u64..0x8000, 1..30),
    ) {
        let mut fast = PhysMemory::new(1 << 20);
        fast.set_rewind_journal(true);
        let mut slow = PhysMemory::new(1 << 20);
        slow.set_rewind_journal(false);
        let mut fast_snaps = Vec::new();
        let mut slow_snaps = Vec::new();
        for op in ops {
            match op {
                CowOp::Write(addr, val) => {
                    fast.write_u8(PhysAddr::new(addr), val);
                    slow.write_u8(PhysAddr::new(addr), val);
                }
                CowOp::Snapshot => {
                    fast_snaps.push(fast.snapshot());
                    slow_snaps.push(slow.snapshot());
                }
                CowOp::Restore(i) => {
                    if !fast_snaps.is_empty() {
                        let mut a = fast.restore_from(&fast_snaps[i % fast_snaps.len()]);
                        let mut b = slow.restore_from(&slow_snaps[i % slow_snaps.len()]);
                        a.sort_unstable();
                        b.sort_unstable();
                        prop_assert_eq!(a, b, "restored page sets diverge");
                    }
                }
            }
        }
        prop_assert_eq!(fast.restore_frames_copied(), slow.restore_frames_copied());
        for addr in probes {
            prop_assert_eq!(fast.read_u8(PhysAddr::new(addr)), slow.read_u8(PhysAddr::new(addr)));
        }
    }
}
