//! Page tables: mapping, permission checks, translation.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{BitOr, BitOrAssign};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Source of page-table version stamps. Process-global so a version
/// value is never reused: after a snapshot restore rolls a table (and
/// its version) back, later mutations draw *fresh* stamps instead of
/// re-walking the numbers the discarded timeline already used. Caches
/// keyed by `(table, version)` — TLB entries, decoded-trace blocks —
/// therefore can't mistake post-restore state for pre-restore state.
static PT_VERSIONS: AtomicU64 = AtomicU64::new(1);

fn next_pt_version() -> u64 {
    PT_VERSIONS.fetch_add(1, Ordering::Relaxed)
}

use crate::addr::{PhysAddr, VirtAddr, HUGE_PAGE_SHIFT, HUGE_PAGE_SIZE, PAGE_SHIFT};
use crate::fault::{AccessKind, FaultReason, PageFault};

/// Page permission / attribute flags.
///
/// Modeled on the x86-64 PTE bits that matter to Phantom: present,
/// writable, user-accessible, executable (inverted NX) and huge.
///
/// # Examples
///
/// ```
/// use phantom_mem::PageFlags;
/// let f = PageFlags::PRESENT | PageFlags::EXEC;
/// assert!(f.contains(PageFlags::EXEC));
/// assert!(!f.contains(PageFlags::WRITE));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PageFlags(u8);

impl PageFlags {
    /// No flags: a non-present mapping.
    pub const NONE: PageFlags = PageFlags(0);
    /// Present bit.
    pub const PRESENT: PageFlags = PageFlags(1);
    /// Writable.
    pub const WRITE: PageFlags = PageFlags(2);
    /// Executable (the inverse of NX).
    pub const EXEC: PageFlags = PageFlags(4);
    /// User-mode accessible.
    pub const USER: PageFlags = PageFlags(8);
    /// 2 MiB huge page.
    pub const HUGE: PageFlags = PageFlags(16);

    /// Kernel text: present + executable, supervisor only.
    pub const KERNEL_TEXT: PageFlags = PageFlags(1 | 4);
    /// Kernel data: present + writable, supervisor only (NX — like
    /// physmap, which P2 exists to detect).
    pub const KERNEL_DATA: PageFlags = PageFlags(1 | 2);
    /// User text: present + executable + user.
    pub const USER_TEXT: PageFlags = PageFlags(1 | 4 | 8);
    /// User data: present + writable + user.
    pub const USER_DATA: PageFlags = PageFlags(1 | 2 | 8);

    /// Whether all bits of `other` are set in `self`.
    pub const fn contains(self, other: PageFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// The raw bit pattern.
    pub const fn bits(self) -> u8 {
        self.0
    }
}

impl BitOr for PageFlags {
    type Output = PageFlags;
    fn bitor(self, rhs: PageFlags) -> PageFlags {
        PageFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for PageFlags {
    fn bitor_assign(&mut self, rhs: PageFlags) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for PageFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}{}{}",
            if self.contains(PageFlags::PRESENT) {
                'p'
            } else {
                '-'
            },
            if self.contains(PageFlags::WRITE) {
                'w'
            } else {
                '-'
            },
            if self.contains(PageFlags::EXEC) {
                'x'
            } else {
                '-'
            },
            if self.contains(PageFlags::USER) {
                'u'
            } else {
                '-'
            },
            if self.contains(PageFlags::HUGE) {
                'H'
            } else {
                '-'
            },
        )
    }
}

/// CPU privilege mode for permission checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PrivilegeLevel {
    /// Ring 3.
    User,
    /// Ring 0.
    Supervisor,
}

impl fmt::Display for PrivilegeLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrivilegeLevel::User => f.write_str("user"),
            PrivilegeLevel::Supervisor => f.write_str("supervisor"),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Mapping {
    frame: PhysAddr,
    flags: PageFlags,
}

/// A flat page table: virtual page → (physical frame, flags).
///
/// Supports 4 KiB pages and 2 MiB huge pages. Translation checks the
/// present, write, exec and user bits against the access kind and
/// privilege level, mirroring the x86-64 rules Phantom's primitives rely
/// on.
///
/// # Examples
///
/// ```
/// use phantom_mem::{AccessKind, FaultReason, PageFlags, PageTable, PhysAddr, PrivilegeLevel, VirtAddr};
/// let mut pt = PageTable::new();
/// pt.map_4k(VirtAddr::new(0x1000), PhysAddr::new(0x8000), PageFlags::KERNEL_TEXT);
/// // User execute of supervisor page faults with a privilege violation.
/// let err = pt
///     .translate(VirtAddr::new(0x1000), AccessKind::Execute, PrivilegeLevel::User)
///     .unwrap_err();
/// assert_eq!(err.reason, FaultReason::Privilege);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    small: Arc<BTreeMap<u64, Mapping>>,
    huge: Arc<BTreeMap<u64, Mapping>>,
    /// Restamped from [`PT_VERSIONS`] on every mutation; lets cached
    /// translations (TLB fast paths, decoded-trace blocks) prove their
    /// entry still reflects the table. The maps are `Arc`-backed so
    /// cloning a table (snapshots, per-shard setup) is two pointer
    /// bumps; the first mutation after a clone unshares.
    version: u64,
    /// Version of the last mutation whose VA lies in the user half of
    /// the address space (bit 63 clear). A mutation only ever changes
    /// the leaf entry at its own VA, so translations in one half are
    /// provably unchanged while that half's stamp is — consumers
    /// caching per-half (trace blocks over kernel text, say) survive
    /// the other half churning.
    version_user: u64,
    /// Version of the last mutation whose VA lies in the kernel half
    /// (bit 63 set).
    version_kernel: u64,
}

impl PageTable {
    /// An empty page table.
    pub fn new() -> PageTable {
        PageTable::default()
    }

    /// Map one 4 KiB page. Replaces any existing 4 KiB mapping and
    /// returns it.
    pub fn map_4k(
        &mut self,
        va: VirtAddr,
        frame: PhysAddr,
        flags: PageFlags,
    ) -> Option<(PhysAddr, PageFlags)> {
        debug_assert!(va.is_aligned(1 << PAGE_SHIFT), "unaligned 4k mapping {va}");
        self.bump_version(va);
        Arc::make_mut(&mut self.small)
            .insert(
                va.page_number(),
                Mapping {
                    frame: frame.page_base(),
                    flags,
                },
            )
            .map(|m| (m.frame, m.flags))
    }

    /// Map one 2 MiB huge page. Replaces any existing huge mapping and
    /// returns it.
    pub fn map_2m(
        &mut self,
        va: VirtAddr,
        frame: PhysAddr,
        flags: PageFlags,
    ) -> Option<(PhysAddr, PageFlags)> {
        debug_assert!(va.is_aligned(HUGE_PAGE_SIZE), "unaligned 2M mapping {va}");
        self.bump_version(va);
        Arc::make_mut(&mut self.huge)
            .insert(
                va.raw() >> HUGE_PAGE_SHIFT,
                Mapping {
                    frame: frame.huge_page_base(),
                    flags: flags | PageFlags::HUGE,
                },
            )
            .map(|m| (m.frame, m.flags))
    }

    /// Remove the 4 KiB mapping covering `va`, if any.
    pub fn unmap_4k(&mut self, va: VirtAddr) -> Option<(PhysAddr, PageFlags)> {
        if !self.small.contains_key(&va.page_number()) {
            return None;
        }
        self.bump_version(va);
        Arc::make_mut(&mut self.small)
            .remove(&va.page_number())
            .map(|m| (m.frame, m.flags))
    }

    /// Change the flags of the mapping covering `va` (4 KiB first, then
    /// huge), returning the old flags. The paper's reverse-engineering
    /// setup does exactly this: "changing the PTE attributes of address K,
    /// we make it accessible to user space".
    pub fn set_flags(&mut self, va: VirtAddr, flags: PageFlags) -> Option<PageFlags> {
        if self.small.contains_key(&va.page_number()) {
            self.bump_version(va);
            let m = Arc::make_mut(&mut self.small)
                .get_mut(&va.page_number())
                .expect("checked above");
            let old = m.flags;
            m.flags = flags;
            return Some(old);
        }
        if self.huge.contains_key(&(va.raw() >> HUGE_PAGE_SHIFT)) {
            self.bump_version(va);
            let m = Arc::make_mut(&mut self.huge)
                .get_mut(&(va.raw() >> HUGE_PAGE_SHIFT))
                .expect("checked above");
            let old = m.flags;
            m.flags = flags | PageFlags::HUGE;
            return Some(old);
        }
        None
    }

    /// The flags of the mapping covering `va`, if present in the table.
    pub fn flags_of(&self, va: VirtAddr) -> Option<PageFlags> {
        self.lookup(va).map(|m| m.flags)
    }

    /// Move the 4 KiB mappings of `pages` consecutive pages from
    /// `old_base` to `new_base`, preserving each page's frame and
    /// flags. Pages unmapped at the source stay unmapped at the
    /// destination; pre-existing destination mappings are replaced.
    /// Overlap-safe: every source entry is removed before any
    /// destination entry is inserted, so rebasing a region onto an
    /// overlapping one (KASLR slots are closer together than the
    /// kernel image is long) never drops or duplicates an entry.
    ///
    /// Returns the number of mappings moved. A no-op rebase (equal
    /// bases, or nothing mapped in the source range) leaves the
    /// version stamps untouched, like the other no-op mutators.
    pub fn rebase_4k_range(&mut self, old_base: VirtAddr, new_base: VirtAddr, pages: u64) -> usize {
        debug_assert!(
            old_base.is_aligned(1 << PAGE_SHIFT) && new_base.is_aligned(1 << PAGE_SHIFT),
            "unaligned 4k rebase {old_base} -> {new_base}"
        );
        if old_base == new_base || pages == 0 {
            return 0;
        }
        let small = Arc::make_mut(&mut self.small);
        let mut moved = Vec::new();
        for i in 0..pages {
            let key = (old_base + (i << PAGE_SHIFT)).page_number();
            if let Some(m) = small.remove(&key) {
                moved.push((i, m));
            }
        }
        for &(i, m) in &moved {
            small.insert((new_base + (i << PAGE_SHIFT)).page_number(), m);
        }
        if !moved.is_empty() {
            self.bump_version(old_base);
            self.bump_version(new_base);
        }
        moved.len()
    }

    /// Move the 2 MiB huge mappings of `count` consecutive huge pages
    /// from `old_base` to `new_base`. Same contract as
    /// [`PageTable::rebase_4k_range`], for the huge map (physmap
    /// rebasing after a cached boot).
    pub fn rebase_2m_range(&mut self, old_base: VirtAddr, new_base: VirtAddr, count: u64) -> usize {
        debug_assert!(
            old_base.is_aligned(HUGE_PAGE_SIZE) && new_base.is_aligned(HUGE_PAGE_SIZE),
            "unaligned 2M rebase {old_base} -> {new_base}"
        );
        if old_base == new_base || count == 0 {
            return 0;
        }
        let huge = Arc::make_mut(&mut self.huge);
        let mut moved = Vec::new();
        for i in 0..count {
            let key = (old_base.raw() + i * HUGE_PAGE_SIZE) >> HUGE_PAGE_SHIFT;
            if let Some(m) = huge.remove(&key) {
                moved.push((i, m));
            }
        }
        for &(i, m) in &moved {
            huge.insert((new_base.raw() + i * HUGE_PAGE_SIZE) >> HUGE_PAGE_SHIFT, m);
        }
        if !moved.is_empty() {
            self.bump_version(old_base);
            self.bump_version(new_base);
        }
        moved.len()
    }

    /// Mutation stamp: unchanged version means unchanged table, so a
    /// translation cached against this version is still exact. Stamps
    /// are process-globally unique — a value identifies one specific
    /// table content for the lifetime of the process (clones and
    /// snapshot restores carry the stamp *with* the content), so the
    /// guarantee survives rolling a table back to an earlier state.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The mutation stamp of one address-space half (`kernel` = bit 63
    /// set). Same guarantee as [`PageTable::version`], scoped to the
    /// half: an unchanged stamp proves every translation with a VA in
    /// that half unchanged, however much the other half churned.
    pub fn class_version(&self, kernel: bool) -> u64 {
        if kernel {
            self.version_kernel
        } else {
            self.version_user
        }
    }

    /// Draw a fresh global stamp for a mutation at `va`, updating both
    /// the whole-table version and `va`'s half.
    fn bump_version(&mut self, va: VirtAddr) {
        self.version = next_pt_version();
        if va.raw() >> 63 != 0 {
            self.version_kernel = self.version;
        } else {
            self.version_user = self.version;
        }
    }

    fn lookup(&self, va: VirtAddr) -> Option<Mapping> {
        if let Some(m) = self.small.get(&va.page_number()) {
            return Some(*m);
        }
        self.huge.get(&(va.raw() >> HUGE_PAGE_SHIFT)).copied()
    }

    /// Translate `va` for `access` at privilege `level`.
    ///
    /// # Errors
    ///
    /// Returns a [`PageFault`] when the page is absent, the permission
    /// bits deny the access, or a user access touches a supervisor page.
    pub fn translate(
        &self,
        va: VirtAddr,
        access: AccessKind,
        level: PrivilegeLevel,
    ) -> Result<PhysAddr, PageFault> {
        let fault = |reason| PageFault {
            addr: va,
            access,
            reason,
        };
        let m = self
            .lookup(va)
            .ok_or_else(|| fault(FaultReason::NotPresent))?;
        if !m.flags.contains(PageFlags::PRESENT) {
            return Err(fault(FaultReason::NotPresent));
        }
        if level == PrivilegeLevel::User && !m.flags.contains(PageFlags::USER) {
            return Err(fault(FaultReason::Privilege));
        }
        match access {
            AccessKind::Read => {}
            AccessKind::Write => {
                if !m.flags.contains(PageFlags::WRITE) {
                    return Err(fault(FaultReason::NotWritable));
                }
            }
            AccessKind::Execute => {
                if !m.flags.contains(PageFlags::EXEC) {
                    return Err(fault(FaultReason::NotExecutable));
                }
            }
        }
        let offset = if m.flags.contains(PageFlags::HUGE) {
            va.raw() & (HUGE_PAGE_SIZE - 1)
        } else {
            va.page_offset()
        };
        Ok(m.frame + offset)
    }

    /// Number of mappings (4 KiB + huge).
    pub fn len(&self) -> usize {
        self.small.len() + self.huge.len()
    }

    /// Whether the table has no mappings.
    pub fn is_empty(&self) -> bool {
        self.small.is_empty() && self.huge.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PageTable {
        let mut pt = PageTable::new();
        pt.map_4k(
            VirtAddr::new(0x1000),
            PhysAddr::new(0x10_000),
            PageFlags::USER_DATA,
        );
        pt.map_4k(
            VirtAddr::new(0x2000),
            PhysAddr::new(0x20_000),
            PageFlags::USER_TEXT,
        );
        pt.map_4k(
            VirtAddr::new(0x3000),
            PhysAddr::new(0x30_000),
            PageFlags::KERNEL_TEXT,
        );
        pt.map_4k(
            VirtAddr::new(0x4000),
            PhysAddr::new(0x40_000),
            PageFlags::KERNEL_DATA,
        );
        pt
    }

    #[test]
    fn translation_applies_page_offset() {
        let pt = table();
        let pa = pt
            .translate(
                VirtAddr::new(0x1abc),
                AccessKind::Read,
                PrivilegeLevel::User,
            )
            .unwrap();
        assert_eq!(pa, PhysAddr::new(0x10_abc));
    }

    #[test]
    fn nx_blocks_execute_but_not_read() {
        let pt = table();
        // User data page: readable, not executable.
        assert!(pt
            .translate(
                VirtAddr::new(0x1000),
                AccessKind::Read,
                PrivilegeLevel::User
            )
            .is_ok());
        let err = pt
            .translate(
                VirtAddr::new(0x1000),
                AccessKind::Execute,
                PrivilegeLevel::User,
            )
            .unwrap_err();
        assert_eq!(err.reason, FaultReason::NotExecutable);
    }

    #[test]
    fn user_cannot_touch_supervisor_pages() {
        let pt = table();
        for access in [AccessKind::Read, AccessKind::Write, AccessKind::Execute] {
            let err = pt
                .translate(VirtAddr::new(0x3000), access, PrivilegeLevel::User)
                .unwrap_err();
            assert_eq!(err.reason, FaultReason::Privilege, "{access}");
        }
        // Supervisor can execute kernel text but not write it.
        assert!(pt
            .translate(
                VirtAddr::new(0x3000),
                AccessKind::Execute,
                PrivilegeLevel::Supervisor
            )
            .is_ok());
        assert_eq!(
            pt.translate(
                VirtAddr::new(0x3000),
                AccessKind::Write,
                PrivilegeLevel::Supervisor
            )
            .unwrap_err()
            .reason,
            FaultReason::NotWritable
        );
    }

    #[test]
    fn kernel_data_is_nx_even_for_supervisor() {
        let pt = table();
        // This is the physmap situation: present, supervisor, NX.
        assert_eq!(
            pt.translate(
                VirtAddr::new(0x4000),
                AccessKind::Execute,
                PrivilegeLevel::Supervisor
            )
            .unwrap_err()
            .reason,
            FaultReason::NotExecutable
        );
        assert!(pt
            .translate(
                VirtAddr::new(0x4000),
                AccessKind::Read,
                PrivilegeLevel::Supervisor
            )
            .is_ok());
    }

    #[test]
    fn unmapped_is_not_present() {
        let pt = table();
        assert_eq!(
            pt.translate(
                VirtAddr::new(0x9000),
                AccessKind::Read,
                PrivilegeLevel::Supervisor
            )
            .unwrap_err()
            .reason,
            FaultReason::NotPresent
        );
    }

    #[test]
    fn huge_pages_translate_with_21_bit_offset() {
        let mut pt = PageTable::new();
        pt.map_2m(
            VirtAddr::new(0x4000_0000),
            PhysAddr::new(0x800_0000),
            PageFlags::USER_DATA,
        );
        let pa = pt
            .translate(
                VirtAddr::new(0x4000_0000 + 0x12_3456),
                AccessKind::Read,
                PrivilegeLevel::User,
            )
            .unwrap();
        assert_eq!(pa, PhysAddr::new(0x800_0000 + 0x12_3456));
    }

    #[test]
    fn small_mapping_shadows_huge() {
        let mut pt = PageTable::new();
        pt.map_2m(
            VirtAddr::new(0),
            PhysAddr::new(0x20_0000),
            PageFlags::USER_DATA,
        );
        pt.map_4k(
            VirtAddr::new(0x1000),
            PhysAddr::new(0x99_9000),
            PageFlags::USER_TEXT,
        );
        let pa = pt
            .translate(
                VirtAddr::new(0x1010),
                AccessKind::Execute,
                PrivilegeLevel::User,
            )
            .unwrap();
        assert_eq!(pa, PhysAddr::new(0x99_9010));
        // Other offsets still hit the huge page.
        let pa2 = pt
            .translate(
                VirtAddr::new(0x2010),
                AccessKind::Read,
                PrivilegeLevel::User,
            )
            .unwrap();
        assert_eq!(pa2, PhysAddr::new(0x20_2010));
    }

    #[test]
    fn set_flags_changes_permissions() {
        let mut pt = table();
        // The §6.2 trick: make a kernel page user-accessible.
        let old = pt
            .set_flags(VirtAddr::new(0x3000), PageFlags::USER_TEXT)
            .unwrap();
        assert_eq!(old, PageFlags::KERNEL_TEXT);
        assert!(pt
            .translate(
                VirtAddr::new(0x3000),
                AccessKind::Execute,
                PrivilegeLevel::User
            )
            .is_ok());
    }

    #[test]
    fn unmap_removes_translation() {
        let mut pt = table();
        assert!(pt.unmap_4k(VirtAddr::new(0x1000)).is_some());
        assert!(pt
            .translate(
                VirtAddr::new(0x1000),
                AccessKind::Read,
                PrivilegeLevel::User
            )
            .is_err());
        assert!(pt.unmap_4k(VirtAddr::new(0x1000)).is_none());
    }

    #[test]
    fn non_present_flags_fault_even_if_mapped() {
        let mut pt = PageTable::new();
        pt.map_4k(
            VirtAddr::new(0x5000),
            PhysAddr::new(0x50_000),
            PageFlags::NONE,
        );
        assert_eq!(
            pt.translate(
                VirtAddr::new(0x5000),
                AccessKind::Read,
                PrivilegeLevel::Supervisor
            )
            .unwrap_err()
            .reason,
            FaultReason::NotPresent
        );
    }

    #[test]
    fn version_tracks_mutations_only() {
        let mut pt = PageTable::new();
        let v0 = pt.version();
        assert!(pt
            .translate(
                VirtAddr::new(0x1000),
                AccessKind::Read,
                PrivilegeLevel::User
            )
            .is_err());
        assert_eq!(pt.version(), v0, "reads leave the version alone");
        pt.map_4k(
            VirtAddr::new(0x1000),
            PhysAddr::new(0x10_000),
            PageFlags::USER_DATA,
        );
        let v1 = pt.version();
        assert!(v1 > v0);
        assert!(pt.unmap_4k(VirtAddr::new(0x9000)).is_none());
        assert!(pt
            .set_flags(VirtAddr::new(0x9000), PageFlags::NONE)
            .is_none());
        assert_eq!(pt.version(), v1, "no-op mutators leave the version alone");
        pt.set_flags(VirtAddr::new(0x1000), PageFlags::USER_TEXT);
        assert!(pt.version() > v1);
    }

    #[test]
    fn class_versions_track_their_half_only() {
        let mut pt = PageTable::new();
        pt.map_4k(
            VirtAddr::new(0xffff_ffff_8000_0000),
            PhysAddr::new(0x20_000),
            PageFlags::KERNEL_TEXT,
        );
        let kernel = pt.class_version(true);
        let user = pt.class_version(false);
        // User-half churn leaves the kernel stamp alone (and vice versa).
        pt.map_4k(
            VirtAddr::new(0x1000),
            PhysAddr::new(0x10_000),
            PageFlags::USER_DATA,
        );
        pt.unmap_4k(VirtAddr::new(0x1000));
        assert_eq!(pt.class_version(true), kernel);
        assert!(pt.class_version(false) > user);
        let user = pt.class_version(false);
        pt.set_flags(VirtAddr::new(0xffff_ffff_8000_0000), PageFlags::KERNEL_DATA);
        assert!(pt.class_version(true) > kernel);
        assert_eq!(pt.class_version(false), user);
        // Both stamps always trail the whole-table version.
        assert!(pt.class_version(true) <= pt.version());
        assert_eq!(pt.class_version(true), pt.version());
    }

    #[test]
    fn clones_share_until_mutated() {
        let mut pt = table();
        let clone = pt.clone();
        assert_eq!(clone.version(), pt.version());
        pt.unmap_4k(VirtAddr::new(0x1000));
        assert!(clone
            .translate(
                VirtAddr::new(0x1000),
                AccessKind::Read,
                PrivilegeLevel::User
            )
            .is_ok());
        assert!(pt.version() > clone.version());
    }

    #[test]
    fn rebase_4k_moves_translations_and_skips_holes() {
        let mut pt = PageTable::new();
        // Map pages 0 and 2 of a 3-page region; leave page 1 a hole.
        for (i, flags) in [(0u64, PageFlags::KERNEL_TEXT), (2, PageFlags::KERNEL_DATA)] {
            pt.map_4k(
                VirtAddr::new(0x10_0000 + (i << 12)),
                PhysAddr::new(0x50_000 + (i << 12)),
                flags,
            );
        }
        let moved = pt.rebase_4k_range(VirtAddr::new(0x10_0000), VirtAddr::new(0x40_0000), 3);
        assert_eq!(moved, 2);
        // Old range fully unmapped, new range has the same frames/flags.
        for i in 0..3u64 {
            assert!(pt.flags_of(VirtAddr::new(0x10_0000 + (i << 12))).is_none());
        }
        assert_eq!(
            pt.translate(
                VirtAddr::new(0x40_0000 + 0xabc),
                AccessKind::Execute,
                PrivilegeLevel::Supervisor
            )
            .unwrap(),
            PhysAddr::new(0x50_abc)
        );
        assert!(pt.flags_of(VirtAddr::new(0x40_1000)).is_none());
        assert_eq!(
            pt.flags_of(VirtAddr::new(0x40_2000)),
            Some(PageFlags::KERNEL_DATA)
        );
    }

    #[test]
    fn rebase_4k_survives_overlapping_ranges() {
        // KASLR image slots are 2 MiB apart but the image spans ~4 MiB,
        // so source and destination overlap. Model that with a 4-page
        // region shifted by one page, both directions.
        for shift in [1i64, -1] {
            let mut pt = PageTable::new();
            for i in 0..4u64 {
                pt.map_4k(
                    VirtAddr::new(0x10_0000 + (i << 12)),
                    PhysAddr::new(0x70_000 + (i << 12)),
                    PageFlags::KERNEL_TEXT,
                );
            }
            let new_base = VirtAddr::new((0x10_0000i64 + shift * 0x1000) as u64);
            assert_eq!(pt.rebase_4k_range(VirtAddr::new(0x10_0000), new_base, 4), 4);
            assert_eq!(pt.len(), 4, "no entries dropped or duplicated");
            for i in 0..4u64 {
                let pa = pt
                    .translate(
                        new_base + (i << 12),
                        AccessKind::Read,
                        PrivilegeLevel::Supervisor,
                    )
                    .unwrap();
                assert_eq!(pa, PhysAddr::new(0x70_000 + (i << 12)), "shift {shift}");
            }
        }
    }

    #[test]
    fn rebase_2m_moves_huge_mappings() {
        let mut pt = PageTable::new();
        for i in 0..4u64 {
            pt.map_2m(
                VirtAddr::new(0x4000_0000 + i * HUGE_PAGE_SIZE),
                PhysAddr::new(i * HUGE_PAGE_SIZE),
                PageFlags::KERNEL_DATA,
            );
        }
        let moved = pt.rebase_2m_range(VirtAddr::new(0x4000_0000), VirtAddr::new(0x8000_0000), 4);
        assert_eq!(moved, 4);
        assert!(pt.flags_of(VirtAddr::new(0x4000_0000)).is_none());
        let pa = pt
            .translate(
                VirtAddr::new(0x8000_0000 + 2 * HUGE_PAGE_SIZE + 0x123),
                AccessKind::Read,
                PrivilegeLevel::Supervisor,
            )
            .unwrap();
        assert_eq!(pa, PhysAddr::new(2 * HUGE_PAGE_SIZE + 0x123));
    }

    #[test]
    fn rebase_no_op_leaves_version_alone() {
        let mut pt = table();
        let v = pt.version();
        // Equal bases and empty source ranges are no-ops.
        assert_eq!(
            pt.rebase_4k_range(VirtAddr::new(0x1000), VirtAddr::new(0x1000), 4),
            0
        );
        assert_eq!(
            pt.rebase_4k_range(VirtAddr::new(0x90_0000), VirtAddr::new(0xa0_0000), 4),
            0
        );
        assert_eq!(
            pt.rebase_2m_range(VirtAddr::new(0x4000_0000), VirtAddr::new(0x8000_0000), 4),
            0
        );
        assert_eq!(pt.version(), v);
        // A real rebase bumps it.
        assert!(pt.rebase_4k_range(VirtAddr::new(0x1000), VirtAddr::new(0x8000), 1) == 1);
        assert!(pt.version() > v);
    }

    #[test]
    fn flags_display() {
        assert_eq!(PageFlags::USER_TEXT.to_string(), "p-xu-");
        assert_eq!(PageFlags::KERNEL_DATA.to_string(), "pw---");
    }
}
