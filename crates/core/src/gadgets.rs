//! §9.1 — the gadget census: Phantom's single-load (MDS-style) gadgets
//! expand the Spectre attack surface about 4× (Kasper found 183
//! conventional Spectre gadgets in the Linux kernel; with single-load
//! gadgets the count grows to 722).
//!
//! A conventional Spectre-V1 gadget needs **two dependent loads** after
//! an attacker-influenced bounds check (fetch the secret, then encode it
//! in the cache). With Phantom's P3, a *single* out-of-bounds load
//! suffices — the second, secret-dependent load is supplied by steering
//! the transient control flow to a separate disclosure gadget. The
//! classifier below scans decoded instruction sequences for both shapes;
//! the corpus generator plants gadget densities calibrated to Kasper's
//! Linux measurements (the corpus is synthetic — we have no Linux
//! binary — but the classifier logic is general).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use phantom_isa::inst::AluOp;
use phantom_isa::{BranchKind, Cond, Inst, Reg};

/// Classification of one function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GadgetClass {
    /// Bounds check + load + dependent second load: exploitable by
    /// conventional Spectre-V1.
    SpectreV1,
    /// Bounds check + single attacker-indexed load (no dependent load):
    /// exploitable only with Phantom's P3 steering.
    MdsSingleLoad,
    /// No exploitable shape found.
    Benign,
}

/// Scan a decoded function for gadget shapes.
///
/// The window after each conditional branch is searched for loads whose
/// base register carries attacker influence (heuristically: any register
/// an earlier ALU op combined with the function's argument registers
/// `R1`/`R2`, or those registers themselves). A second load whose base
/// is the *destination* of the first upgrades the finding to
/// [`GadgetClass::SpectreV1`].
///
/// # Examples
///
/// ```
/// use phantom::gadgets::{classify_function, GadgetClass};
/// use phantom_isa::{Cond, Inst, Reg};
///
/// let body = [
///     Inst::Cmp { a: Reg::R1, b: Reg::R5 },
///     Inst::Jcc { cond: Cond::AboveEq, disp: 12 },
///     Inst::Load { dst: Reg::R3, base: Reg::R1, disp: 0 },
///     Inst::Load { dst: Reg::R4, base: Reg::R3, disp: 0 },
/// ];
/// assert_eq!(classify_function(&body), GadgetClass::SpectreV1);
/// ```
pub fn classify_function(body: &[Inst]) -> GadgetClass {
    // Track registers tainted by the attacker-controlled arguments.
    let mut tainted = [false; 16];
    tainted[Reg::R1.index() as usize] = true;
    tainted[Reg::R2.index() as usize] = true;

    let mut seen_cond = false;
    let mut first_load_dst: Option<Reg> = None;
    let mut best = GadgetClass::Benign;

    for inst in body {
        match inst {
            Inst::Jcc { .. } => seen_cond = true,
            Inst::MovReg { dst, src } => {
                tainted[dst.index() as usize] = tainted[src.index() as usize];
            }
            Inst::Alu { dst, src, .. } => {
                tainted[dst.index() as usize] |= tainted[src.index() as usize];
            }
            Inst::MovImm { dst, .. } => {
                // An immediate (e.g. an array base) combined later with a
                // tainted index stays interesting; the immediate itself
                // clears taint.
                tainted[dst.index() as usize] = false;
            }
            Inst::Load { dst, base, .. } if seen_cond => {
                let base_tainted = tainted[base.index() as usize];
                if let Some(first) = first_load_dst {
                    if *base == first {
                        return GadgetClass::SpectreV1;
                    }
                }
                if base_tainted {
                    first_load_dst = Some(*dst);
                    // The loaded value is secret, not attacker-tainted.
                    tainted[dst.index() as usize] = false;
                    best = GadgetClass::MdsSingleLoad;
                }
            }
            _ if inst.kind() == BranchKind::Ret => break,
            _ => {}
        }
    }
    best
}

/// A synthetic "kernel function" corpus with planted gadget densities.
///
/// The default counts mirror Kasper's Linux measurements: out of 2000
/// functions, 183 carry conventional two-load Spectre gadgets and a
/// further 539 carry single-load MDS gadgets (so Phantom raises the
/// exploitable count from 183 to 722 — about 4×).
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Total functions generated.
    pub functions: usize,
    /// Functions carrying the two-load Spectre shape.
    pub spectre: usize,
    /// Functions carrying only the single-load MDS shape.
    pub mds_only: usize,
    /// RNG seed (shuffling, filler instructions).
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> CorpusConfig {
        CorpusConfig {
            functions: 2000,
            spectre: 183,
            mds_only: 539,
            seed: 0,
        }
    }
}

fn filler(rng: &mut StdRng, out: &mut Vec<Inst>, n: usize) {
    for _ in 0..n {
        let r = Reg::from_index(rng.gen_range(3..10)).expect("in range");
        let s = Reg::from_index(rng.gen_range(3..10)).expect("in range");
        match rng.gen_range(0..4) {
            0 => out.push(Inst::Alu {
                op: AluOp::Add,
                dst: r,
                src: s,
            }),
            1 => out.push(Inst::MovImm {
                dst: r,
                imm: rng.gen(),
            }),
            2 => out.push(Inst::Nop),
            _ => out.push(Inst::Shr {
                dst: r,
                amount: rng.gen_range(0..8),
            }),
        }
    }
}

/// Generate the corpus. Each function ends with `ret`.
pub fn generate_corpus(config: &CorpusConfig) -> Vec<Vec<Inst>> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut kinds = Vec::with_capacity(config.functions);
    kinds.extend(std::iter::repeat_n(GadgetClass::SpectreV1, config.spectre));
    kinds.extend(std::iter::repeat_n(
        GadgetClass::MdsSingleLoad,
        config.mds_only,
    ));
    kinds.extend(std::iter::repeat_n(
        GadgetClass::Benign,
        config
            .functions
            .saturating_sub(config.spectre + config.mds_only),
    ));
    // Deterministic shuffle.
    for i in (1..kinds.len()).rev() {
        kinds.swap(i, rng.gen_range(0..=i));
    }

    kinds
        .into_iter()
        .map(|kind| {
            let mut body = Vec::new();
            let pre = rng.gen_range(0..4);
            filler(&mut rng, &mut body, pre);
            body.push(Inst::Cmp {
                a: Reg::R1,
                b: Reg::R5,
            });
            body.push(Inst::Jcc {
                cond: Cond::AboveEq,
                disp: 32,
            });
            match kind {
                GadgetClass::SpectreV1 => {
                    body.push(Inst::Load {
                        dst: Reg::R3,
                        base: Reg::R1,
                        disp: 0,
                    });
                    let mid = rng.gen_range(0..3);
                    filler(&mut rng, &mut body, mid);
                    body.push(Inst::Load {
                        dst: Reg::R4,
                        base: Reg::R3,
                        disp: 0,
                    });
                }
                GadgetClass::MdsSingleLoad => {
                    body.push(Inst::Load {
                        dst: Reg::R3,
                        base: Reg::R1,
                        disp: 0,
                    });
                    let tail = rng.gen_range(0..3);
                    filler(&mut rng, &mut body, tail);
                }
                GadgetClass::Benign => {
                    // Loads from untainted bases only.
                    body.push(Inst::MovImm {
                        dst: Reg::R6,
                        imm: 0x6000_0000,
                    });
                    body.push(Inst::Load {
                        dst: Reg::R3,
                        base: Reg::R6,
                        disp: 0,
                    });
                    let tail = rng.gen_range(0..3);
                    filler(&mut rng, &mut body, tail);
                }
            }
            body.push(Inst::Ret);
            body
        })
        .collect()
}

/// The §9.1 comparison result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GadgetCensus {
    /// Functions exploitable by conventional Spectre (two loads).
    pub spectre_gadgets: usize,
    /// Functions exploitable *only* via Phantom's single-load path.
    pub mds_gadgets: usize,
    /// Total exploitable with Phantom = spectre + mds.
    pub total_with_phantom: usize,
}

impl GadgetCensus {
    /// The expansion factor Phantom buys (the paper reports ≈4×:
    /// 183 → 722).
    pub fn expansion_factor(&self) -> f64 {
        self.total_with_phantom as f64 / self.spectre_gadgets.max(1) as f64
    }
}

/// Run the census over a corpus.
pub fn census(corpus: &[Vec<Inst>]) -> GadgetCensus {
    let mut spectre = 0;
    let mut mds = 0;
    for f in corpus {
        match classify_function(f) {
            GadgetClass::SpectreV1 => spectre += 1,
            GadgetClass::MdsSingleLoad => mds += 1,
            GadgetClass::Benign => {}
        }
    }
    GadgetCensus {
        spectre_gadgets: spectre,
        mds_gadgets: mds,
        total_with_phantom: spectre + mds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifier_identifies_the_three_shapes() {
        let spectre = [
            Inst::Cmp {
                a: Reg::R1,
                b: Reg::R5,
            },
            Inst::Jcc {
                cond: Cond::AboveEq,
                disp: 12,
            },
            Inst::Load {
                dst: Reg::R3,
                base: Reg::R1,
                disp: 0,
            },
            Inst::Load {
                dst: Reg::R4,
                base: Reg::R3,
                disp: 0,
            },
            Inst::Ret,
        ];
        assert_eq!(classify_function(&spectre), GadgetClass::SpectreV1);

        let mds = [
            Inst::Cmp {
                a: Reg::R1,
                b: Reg::R5,
            },
            Inst::Jcc {
                cond: Cond::AboveEq,
                disp: 12,
            },
            Inst::Load {
                dst: Reg::R3,
                base: Reg::R1,
                disp: 0,
            },
            Inst::Ret,
        ];
        assert_eq!(classify_function(&mds), GadgetClass::MdsSingleLoad);

        let benign = [
            Inst::MovImm {
                dst: Reg::R6,
                imm: 0x1000,
            },
            Inst::Load {
                dst: Reg::R3,
                base: Reg::R6,
                disp: 0,
            },
            Inst::Ret,
        ];
        assert_eq!(classify_function(&benign), GadgetClass::Benign);
    }

    #[test]
    fn loads_before_the_bounds_check_do_not_count() {
        let body = [
            Inst::Load {
                dst: Reg::R3,
                base: Reg::R1,
                disp: 0,
            },
            Inst::Cmp {
                a: Reg::R1,
                b: Reg::R5,
            },
            Inst::Ret,
        ];
        assert_eq!(classify_function(&body), GadgetClass::Benign);
    }

    #[test]
    fn taint_propagates_through_alu_and_moves() {
        let body = [
            Inst::Cmp {
                a: Reg::R1,
                b: Reg::R5,
            },
            Inst::Jcc {
                cond: Cond::AboveEq,
                disp: 12,
            },
            Inst::MovImm {
                dst: Reg::R4,
                imm: 0x8000,
            },
            Inst::Alu {
                op: AluOp::Add,
                dst: Reg::R4,
                src: Reg::R1,
            }, // base+index
            Inst::Load {
                dst: Reg::R3,
                base: Reg::R4,
                disp: 0,
            },
            Inst::Ret,
        ];
        assert_eq!(classify_function(&body), GadgetClass::MdsSingleLoad);
    }

    #[test]
    fn census_reproduces_the_kasper_datum() {
        let corpus = generate_corpus(&CorpusConfig::default());
        let c = census(&corpus);
        assert_eq!(c.spectre_gadgets, 183);
        assert_eq!(c.total_with_phantom, 722);
        let f = c.expansion_factor();
        assert!((3.5..4.5).contains(&f), "≈4x expansion, got {f}");
    }

    #[test]
    fn corpus_is_deterministic_per_seed() {
        let a = generate_corpus(&CorpusConfig::default());
        let b = generate_corpus(&CorpusConfig::default());
        assert_eq!(a, b);
        let c = generate_corpus(&CorpusConfig {
            seed: 1,
            ..Default::default()
        });
        assert_ne!(a, c);
    }
}
