//! Adaptive, confidence-scored bit decoding — the noise-robust
//! replacement for a fixed majority vote.
//!
//! A fixed `N`-vote majority spends the same probe budget on every bit:
//! too much on quiet bits (a unanimous, high-margin pair of probes is
//! already decisive) and too little on noisy ones (a 2–1 split of
//! near-threshold readings decodes as confidently as a clean sweep).
//! [`decode_adaptive`] instead casts votes in escalating rounds and
//! stops as soon as the tally has a majority *and* the combined
//! confidence clears a floor. A bit that stays tied through the whole
//! schedule yields an explicit [`Decoded::Abstain`] instead of a coin
//! flip, so callers can retry, skip, or report the gap honestly.
//!
//! The combined confidence is the lopsidedness of the tally capped by
//! the weakest reading *on the winning side*: a unanimous tally of
//! near-threshold measurements is still suspect, but one noisy outvoted
//! reading cannot poison an otherwise clean decode.

use phantom_sidechannel::{Confidence, VoteTally};

/// The outcome of decoding one bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// The votes reached a majority.
    Bit(bool),
    /// The votes stayed tied through the full escalation schedule; the
    /// decoder declines to guess.
    Abstain,
}

impl Decoded {
    /// The decoded bit, or `None` on abstention.
    pub fn bit(self) -> Option<bool> {
        match self {
            Decoded::Bit(b) => Some(b),
            Decoded::Abstain => None,
        }
    }
}

/// Escalation schedule and stopping rule for [`decode_adaptive`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecoderConfig {
    /// Additional votes cast in each round (a round of 0 is skipped).
    /// The total budget is the sum; escalation is bounded.
    pub schedule: [u32; 3],
    /// Minimum combined confidence at which a round's majority is
    /// accepted without escalating further.
    pub floor: f64,
}

impl Default for DecoderConfig {
    /// Two cheap votes first, then 2 and 4 more only when the early
    /// rounds tie or sit near the threshold. Quiet bits cost 2 probes
    /// (vs. 3 for the old fixed vote); noisy bits get up to 8.
    fn default() -> DecoderConfig {
        DecoderConfig {
            schedule: [2, 2, 4],
            floor: 0.5,
        }
    }
}

impl DecoderConfig {
    /// A non-adaptive config reproducing the legacy fixed majority
    /// vote: exactly `votes` probes per bit, no escalation, no
    /// confidence requirement.
    pub fn fixed(votes: u32) -> DecoderConfig {
        DecoderConfig {
            schedule: [votes, 0, 0],
            floor: 0.0,
        }
    }

    /// The worst-case probe count per bit.
    pub fn max_votes(&self) -> u32 {
        self.schedule.iter().sum()
    }
}

/// What [`decode_adaptive`] learned about one bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeOutcome {
    /// The decision (or abstention).
    pub decoded: Decoded,
    /// Combined confidence: tally lopsidedness capped by the weakest
    /// winning-side reading. Zero on abstention.
    pub confidence: Confidence,
    /// Votes actually cast (the per-bit probe cost).
    pub probes: u32,
    /// The final tally.
    pub tally: VoteTally,
}

/// Decode one bit by escalating rounds of confidence-scored votes.
///
/// `vote` is called once per probe with the running vote index and
/// returns the boolean observation plus its measurement confidence
/// (e.g. a [`Reading`](phantom_sidechannel::Reading)'s `hit` and
/// `confidence`). Voting stops after the first round whose tally has a
/// majority with combined confidence at or above `config.floor`, or
/// when the schedule is exhausted.
///
/// # Errors
///
/// Propagates the first error `vote` returns; votes already cast are
/// discarded.
pub fn decode_adaptive<E>(
    config: &DecoderConfig,
    mut vote: impl FnMut(u32) -> Result<(bool, Confidence), E>,
) -> Result<DecodeOutcome, E> {
    let mut tally = VoteTally::new();
    // Weakest reading seen voting 0 / voting 1.
    let mut weakest = [Confidence::FULL; 2];
    let mut combined = Confidence::ZERO;
    for &votes in &config.schedule {
        for _ in 0..votes {
            let (hit, conf) = vote(tally.total)?;
            tally.push(hit);
            let side = &mut weakest[usize::from(hit)];
            *side = side.min(conf);
        }
        combined = match tally.majority() {
            Some(winner) => tally.confidence().min(weakest[usize::from(winner)]),
            None => Confidence::ZERO,
        };
        if tally.majority().is_some() && combined.meets(config.floor) {
            break;
        }
    }
    Ok(DecodeOutcome {
        decoded: match tally.majority() {
            Some(b) => Decoded::Bit(b),
            None => Decoded::Abstain,
        },
        confidence: combined,
        probes: tally.total,
        tally,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A vote source replaying a fixed script of (hit, confidence).
    fn script(
        votes: &[(bool, f64)],
    ) -> impl FnMut(u32) -> Result<(bool, Confidence), std::convert::Infallible> + '_ {
        move |i| {
            let (hit, c) = votes[i as usize];
            Ok((hit, Confidence::new(c)))
        }
    }

    #[test]
    fn confident_unanimous_round_stops_early() {
        let o = decode_adaptive(
            &DecoderConfig::default(),
            script(&[(true, 0.9), (true, 0.8)]),
        )
        .unwrap();
        assert_eq!(o.decoded, Decoded::Bit(true));
        assert_eq!(o.probes, 2);
        assert_eq!(o.confidence.value(), 0.8, "capped by the weakest vote");
    }

    #[test]
    fn first_round_tie_escalates_once() {
        let mut votes = vec![(true, 1.0), (false, 1.0)];
        votes.extend([(true, 1.0); 2]);
        let o = decode_adaptive(&DecoderConfig::default(), script(&votes)).unwrap();
        assert_eq!(o.decoded, Decoded::Bit(true));
        assert_eq!(o.probes, 4, "one escalation round resolved it");
        assert_eq!(o.tally.ones, 3);
    }

    #[test]
    fn outvoted_noisy_reading_does_not_poison_the_decode() {
        // The lone 0-vote has zero confidence; the winning side is clean.
        let mut votes = vec![(true, 1.0), (false, 0.0)];
        votes.extend([(true, 1.0); 2]);
        let o = decode_adaptive(&DecoderConfig::default(), script(&votes)).unwrap();
        assert_eq!(o.decoded, Decoded::Bit(true));
        assert_eq!(o.probes, 4);
        assert!(o.confidence.meets(0.5), "{o:?}");
    }

    #[test]
    fn low_margin_majority_exhausts_the_schedule() {
        // Unanimous but every reading hugs the threshold: never meets
        // the floor, so all 8 votes are spent — and the low combined
        // confidence is reported honestly.
        let votes = vec![(true, 0.1); 8];
        let o = decode_adaptive(&DecoderConfig::default(), script(&votes)).unwrap();
        assert_eq!(o.decoded, Decoded::Bit(true));
        assert_eq!(o.probes, 8);
        assert!((o.confidence.value() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn persistent_tie_abstains_instead_of_guessing() {
        let votes: Vec<(bool, f64)> = (0..8).map(|i| (i % 2 == 0, 1.0)).collect();
        let o = decode_adaptive(&DecoderConfig::default(), script(&votes)).unwrap();
        assert_eq!(o.decoded, Decoded::Abstain);
        assert_eq!(o.probes, 8);
        assert_eq!(o.confidence, Confidence::ZERO);
        assert_eq!(o.tally.majority(), None);
    }

    #[test]
    fn fixed_config_reproduces_the_legacy_vote() {
        let cfg = DecoderConfig::fixed(3);
        assert_eq!(cfg.max_votes(), 3);
        // Even a zero-confidence 2-1 split decodes (floor is 0).
        let o = decode_adaptive(&cfg, script(&[(true, 0.0), (false, 0.0), (true, 0.0)])).unwrap();
        assert_eq!(o.decoded, Decoded::Bit(true));
        assert_eq!(o.probes, 3);
    }

    #[test]
    fn vote_errors_propagate() {
        let err = decode_adaptive(&DecoderConfig::default(), |i| {
            if i == 1 {
                Err("probe died")
            } else {
                Ok((true, Confidence::FULL))
            }
        })
        .unwrap_err();
        assert_eq!(err, "probe died");
    }

    #[test]
    fn empty_schedule_abstains_at_zero_cost() {
        let cfg = DecoderConfig {
            schedule: [0, 0, 0],
            floor: 0.5,
        };
        let o = decode_adaptive(&cfg, script(&[])).unwrap();
        assert_eq!(o.decoded, Decoded::Abstain);
        assert_eq!(o.probes, 0);
    }
}
