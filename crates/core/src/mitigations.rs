//! §6.3 / §8 — mitigation analysis: `SuppressBPOnNonBr` (observation
//! O4), AutoIBRS (observation O5), IBPB, and the mitigation overhead
//! measurement (the paper's UnixBench run, reproduced over a synthetic
//! workload suite).

use phantom_bpu::MsrState;
use phantom_isa::asm::Assembler;
use phantom_isa::inst::AluOp;
use phantom_isa::{BranchKind, Inst, Reg};
use phantom_kernel::System;
use phantom_mem::{PageFlags, VirtAddr};
use phantom_pipeline::{Machine, UarchProfile};
use phantom_sidechannel::NoiseModel;

use crate::channel::ChannelError;
use crate::experiment::{run_combo_msr, ComboOutcome, TrainKind, VictimKind};
use crate::primitives::{p1_detect_executable, PrimitiveConfig, PrimitiveError};
use crate::runner::{Scenario, ScenarioError, Trial, TrialRunner};

/// The O4 experiment: the non-branch victim column with and without
/// `SuppressBPOnNonBr`.
#[derive(Debug, Clone)]
pub struct O4Outcome {
    /// Baseline (bit clear).
    pub baseline: ComboOutcome,
    /// With the MSR bit set.
    pub suppressed: ComboOutcome,
}

/// Re-run the `jmp*`-trains-non-branch experiment on `profile` with the
/// `SuppressBPOnNonBr` bit set, against the unmitigated baseline.
///
/// Expected (O4): execution is blocked, **but fetch and decode are
/// not** — the bit does not prevent PhantomJMPs from entering the
/// pipeline.
///
/// # Errors
///
/// Returns [`ChannelError`] on experiment setup failure.
pub fn o4_suppress_bp_on_non_br(profile: UarchProfile) -> Result<O4Outcome, ChannelError> {
    let baseline = run_combo_msr(
        profile.clone(),
        TrainKind::JmpInd,
        VictimKind::NonBranch,
        0,
        Some(MsrState::none()),
    )?;
    let suppressed = run_combo_msr(
        profile,
        TrainKind::JmpInd,
        VictimKind::NonBranch,
        0,
        Some(MsrState {
            suppress_bp_on_non_br: true,
            ..MsrState::none()
        }),
    )?;
    Ok(O4Outcome {
        baseline,
        suppressed,
    })
}

/// The O5 experiment: with AutoIBRS enabled on Zen 4, user-mode training
/// still triggers transient *fetch* of a cross-privilege branch target.
///
/// Returns whether the kernel-mode transient fetch was observed (the
/// paper's answer: yes — P1 is unaffected).
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup failure.
pub fn o5_auto_ibrs_fetch(seed: u64) -> Result<bool, PrimitiveError> {
    let mut sys = System::new(UarchProfile::zen4(), 1 << 30, seed)
        .map_err(|e| PrimitiveError(e.to_string()))?;
    assert!(
        sys.machine().bpu().msr().auto_ibrs,
        "hardened Zen 4 boots with AutoIBRS on"
    );
    let mut noise = NoiseModel::quiet(seed);
    let cfg = PrimitiveConfig::for_system(&sys, VirtAddr::new(0x5000_0000));
    let victim = sys.image().listing1_nop;
    let mapped = sys.image().base + 0x1000;
    p1_detect_executable(&mut sys, &cfg, victim, mapped, &mut noise)
}

/// The IBPB experiment (§8.2): flushing all prediction state between
/// user and kernel stops every primitive. Returns whether any signal
/// survived the barrier (expected: none).
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup failure.
pub fn ibpb_blocks_p1(seed: u64) -> Result<bool, PrimitiveError> {
    let mut sys = System::new(UarchProfile::zen3(), 1 << 30, seed)
        .map_err(|e| PrimitiveError(e.to_string()))?;
    let mut noise = NoiseModel::quiet(seed);
    let cfg = PrimitiveConfig::for_system(&sys, VirtAddr::new(0x5000_0000));
    let victim = sys.image().listing1_nop;
    let target = sys.image().base + 0x1000;

    // Train, then issue IBPB (as a kernel-entry barrier would), then run
    // the victim and probe — paired with a same-set baseline (target
    // shifted out of the monitored set) so the kernel's own footprint
    // cancels.
    let set = ((target.raw() >> 6) & 63) as usize;
    let pp = phantom_sidechannel::PrimeProbe::new_l1i(
        sys.machine_mut(),
        VirtAddr::new(0x5000_0000),
        set,
    )
    .map_err(|e| PrimitiveError(e.to_string()))?;
    let mut measure = |sys: &mut System, t: VirtAddr| -> Result<usize, PrimitiveError> {
        sys.train_user_branch(cfg.user_alias(victim), BranchKind::Indirect, t)
            .map_err(|e| PrimitiveError(e.to_string()))?;
        sys.machine_mut().bpu_mut().ibpb();
        pp.prime(sys.machine_mut())
            .map_err(|e| PrimitiveError(e.to_string()))?;
        sys.getpid().map_err(|e| PrimitiveError(e.to_string()))?;
        Ok(pp
            .probe(sys.machine_mut(), &mut noise)
            .map_err(|e| PrimitiveError(e.to_string()))?
            .evictions)
    };
    let signal = measure(&mut sys, target)?;
    let baseline = measure(&mut sys, VirtAddr::new(target.raw() ^ 0x800))?;
    Ok(signal > baseline)
}

// ---------------------------------------------------------------------
// Software mitigations (§8.2).
// ---------------------------------------------------------------------

/// lfence-at-the-gadget (§8.2): placing a speculation barrier at the
/// *entry of the disclosure gadget* stops the transient load even inside
/// a Zen 1/2 phantom window. Returns (unprotected leaked, protected
/// leaked) — the experiment behind "placing lfence where bad speculation
/// may occur … minimizes the speculation window", and behind the caveat
/// that *finding* all such sites is the hard part.
///
/// # Errors
///
/// Returns [`ChannelError`] on setup failure.
pub fn lfence_gadget_protection(profile: UarchProfile) -> Result<(bool, bool), ChannelError> {
    let run = |protected: bool| -> Result<bool, ChannelError> {
        let mut m = Machine::new(profile.clone(), 1 << 24);
        let text = PageFlags::USER_TEXT | PageFlags::WRITE;
        let x = VirtAddr::new(0x40_0ac0);
        let gadget = VirtAddr::new(0x48_0b40);
        m.map_range(x.page_base(), 0x1000, text)
            .map_err(|e| ChannelError(e.to_string()))?;
        m.map_range(gadget.page_base(), 0x1000, text)
            .map_err(|e| ChannelError(e.to_string()))?;
        m.map_range(VirtAddr::new(0x60_0000), 64, PageFlags::USER_DATA)
            .map_err(|e| ChannelError(e.to_string()))?;
        m.set_reg(Reg::R8, 0x60_0000);

        // Gadget: [lfence;] load [R8]; hlt.
        let mut g = Assembler::new(gadget.raw());
        if protected {
            g.push(Inst::Lfence);
        }
        g.push(Inst::Load {
            dst: Reg::R9,
            base: Reg::R8,
            disp: 0,
        });
        g.push(Inst::Halt);
        m.load_blob(&g.finish().map_err(|e| ChannelError(e.to_string()))?, text)
            .map_err(|e| ChannelError(e.to_string()))?;

        // Train jmp* -> gadget, then make the victim a nop.
        let mut bytes = Vec::new();
        phantom_isa::encode::encode_into(&Inst::JmpInd { src: Reg::R11 }, &mut bytes)
            .expect("encodable");
        bytes.push(0xF4);
        m.poke(x, &bytes);
        m.set_reg(Reg::R11, gadget.raw());
        m.set_pc(x);
        m.run(8).map_err(|e| ChannelError(e.to_string()))?;
        m.poke(x, &[0x90, 0x90, 0xF4]);
        m.caches_mut().flush_all();

        m.set_pc(x);
        let (_, reports) = m
            .run_collecting(8)
            .map_err(|e| ChannelError(e.to_string()))?;
        Ok(reports
            .first()
            .is_some_and(|r| !r.loads_dispatched.is_empty()))
    };
    Ok((run(false)?, run(true)?))
}

/// RSB stuffing (§2.4): overwriting return predictions with dummy
/// targets. Modeled as an RSB flush before the victim runs: a
/// ret-trained phantom prediction then has no target to steer to.
/// Returns (unprotected fetched, protected fetched).
///
/// # Errors
///
/// Returns [`ChannelError`] on setup failure.
pub fn rsb_stuffing_protection(profile: UarchProfile) -> Result<(bool, bool), ChannelError> {
    let run = |stuffed: bool| -> Result<bool, ChannelError> {
        let mut m = Machine::new(profile.clone(), 1 << 24);
        let text = PageFlags::USER_TEXT | PageFlags::WRITE;
        let x = VirtAddr::new(0x40_0ac0);
        m.map_range(x.page_base(), 0x1000, text)
            .map_err(|e| ChannelError(e.to_string()))?;
        m.map_range(VirtAddr::new(0x7000_0000), 0x4000, PageFlags::USER_DATA)
            .map_err(|e| ChannelError(e.to_string()))?;

        // Train a ret at X (stack pre-loaded), leaving a Ret-kind BTB
        // entry, and plant an RSB entry via a call.
        let stack_top = 0x7000_3f00u64;
        m.set_reg(Reg::SP, stack_top);
        let mut bytes = Vec::new();
        phantom_isa::encode::encode_into(&Inst::Ret, &mut bytes).expect("encodable");
        bytes.push(0xF4);
        m.poke(x, &bytes);
        m.poke_u64(VirtAddr::new(stack_top), x.raw() + 8);
        m.poke(x + 8, &[0xF4]);
        m.set_pc(x);
        m.run(4).map_err(|e| ChannelError(e.to_string()))?;
        m.bpu_mut().rsb_mut().push(VirtAddr::new(0x48_0b40));
        m.map_range(VirtAddr::new(0x48_0000), 0x1000, text)
            .map_err(|e| ChannelError(e.to_string()))?;
        m.poke(VirtAddr::new(0x48_0b40), &[0x90, 0xF4]);

        if stuffed {
            // RSB stuffing overwrites the poisoned entries; a flush is
            // the strongest form.
            m.bpu_mut().rsb_mut().flush();
        }

        // Victim: a nop at X; the Ret-kind prediction pops the RSB.
        m.poke(x, &[0x90, 0x90, 0xF4]);
        m.caches_mut().flush_all();
        m.set_pc(x);
        let (_, reports) = m
            .run_collecting(8)
            .map_err(|e| ChannelError(e.to_string()))?;
        Ok(reports.first().is_some_and(|r| r.fetched))
    };
    Ok((run(false)?, run(true)?))
}

/// Straight-line-speculation padding: compilers place `int3`/speculation
/// stoppers after returns so the sequential transient path dies
/// immediately. Returns (unpadded loads dispatched, padded loads
/// dispatched) for an unpredicted `ret` followed by a load.
///
/// # Errors
///
/// Returns [`ChannelError`] on setup failure.
pub fn sls_padding_protection(profile: UarchProfile) -> Result<(bool, bool), ChannelError> {
    let run = |padded: bool| -> Result<bool, ChannelError> {
        let mut m = Machine::new(profile.clone(), 1 << 24);
        let text = PageFlags::USER_TEXT | PageFlags::WRITE;
        let x = VirtAddr::new(0x40_0b00);
        m.map_range(x.page_base(), 0x1000, text)
            .map_err(|e| ChannelError(e.to_string()))?;
        m.map_range(VirtAddr::new(0x60_0000), 64, PageFlags::USER_DATA)
            .map_err(|e| ChannelError(e.to_string()))?;
        m.map_range(VirtAddr::new(0x7000_0000), 0x4000, PageFlags::USER_DATA)
            .map_err(|e| ChannelError(e.to_string()))?;
        m.set_reg(Reg::R8, 0x60_0000);
        let stack_top = 0x7000_3f00u64;
        m.set_reg(Reg::SP, stack_top);
        m.poke_u64(VirtAddr::new(stack_top), 0x40_0f00);
        m.map_range(VirtAddr::new(0x40_0f00), 16, text)
            .map_err(|e| ChannelError(e.to_string()))?;
        m.poke(VirtAddr::new(0x40_0f00), &[0xF4]);

        // ret; [lfence pad;] load [R8]; hlt — the load is dead code that
        // only straight-line speculation can reach.
        let mut a = Assembler::new(x.raw());
        a.push(Inst::Ret);
        if padded {
            a.push(Inst::Lfence);
        }
        a.push(Inst::Load {
            dst: Reg::R9,
            base: Reg::R8,
            disp: 0,
        });
        a.push(Inst::Halt);
        m.load_blob(&a.finish().map_err(|e| ChannelError(e.to_string()))?, text)
            .map_err(|e| ChannelError(e.to_string()))?;

        m.set_pc(x);
        let (_, reports) = m
            .run_collecting(8)
            .map_err(|e| ChannelError(e.to_string()))?;
        Ok(reports
            .first()
            .is_some_and(|r| !r.loads_dispatched.is_empty()))
    };
    Ok((run(false)?, run(true)?))
}

// ---------------------------------------------------------------------
// Mitigation overhead (the §6.3 UnixBench substitute).
// ---------------------------------------------------------------------

/// One synthetic workload: a named program and its iteration count.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload name (suite reporting).
    pub name: &'static str,
    program: fn(&mut Assembler),
    iterations: u64,
}

fn arith_loop(a: &mut Assembler) {
    a.push(Inst::Alu {
        op: AluOp::Add,
        dst: Reg::R1,
        src: Reg::R2,
    });
    a.push(Inst::Alu {
        op: AluOp::Xor,
        dst: Reg::R2,
        src: Reg::R1,
    });
    a.push(Inst::Shl {
        dst: Reg::R1,
        amount: 1,
    });
    a.push(Inst::Shr {
        dst: Reg::R1,
        amount: 1,
    });
}

fn branchy(a: &mut Assembler) {
    // A data-dependent branch diamond.
    a.push(Inst::Cmp {
        a: Reg::R1,
        b: Reg::R2,
    });
    a.jcc_cond(phantom_isa::Cond::Below, "wl_then");
    a.push(Inst::Alu {
        op: AluOp::Add,
        dst: Reg::R1,
        src: Reg::R3,
    });
    a.jmp("wl_join");
    a.label("wl_then");
    a.push(Inst::Alu {
        op: AluOp::Add,
        dst: Reg::R2,
        src: Reg::R3,
    });
    a.label("wl_join");
}

fn memory_stride(a: &mut Assembler) {
    a.push(Inst::Load {
        dst: Reg::R4,
        base: Reg::R8,
        disp: 0,
    });
    a.push(Inst::Load {
        dst: Reg::R5,
        base: Reg::R8,
        disp: 512,
    });
    a.push(Inst::Store {
        base: Reg::R8,
        disp: 1024,
        src: Reg::R4,
    });
}

fn call_heavy(a: &mut Assembler) {
    a.call("wl_fn");
    a.jmp("wl_after");
    a.label("wl_fn");
    a.push(Inst::Alu {
        op: AluOp::Add,
        dst: Reg::R6,
        src: Reg::R3,
    });
    a.push(Inst::Ret);
    a.label("wl_after");
}

fn mixed(a: &mut Assembler) {
    a.push(Inst::Load {
        dst: Reg::R4,
        base: Reg::R8,
        disp: 64,
    });
    a.push(Inst::Alu {
        op: AluOp::Add,
        dst: Reg::R1,
        src: Reg::R4,
    });
    a.push(Inst::Cmp {
        a: Reg::R1,
        b: Reg::R2,
    });
    a.jcc_cond(phantom_isa::Cond::Ne, "wl_skip");
    a.push(Inst::Nop);
    a.label("wl_skip");
}

/// A large straight-line code footprint (~1.5x the µop cache capacity, so every pass thrashes it),
/// so a steady fraction of fetches takes the decoder path — UnixBench's
/// big-binary behavior, and where the SuppressBPOnNonBr confirmation
/// bubble actually costs cycles.
fn big_code(a: &mut Assembler) {
    for i in 0..12000u64 {
        if i % 5 == 0 {
            a.push(Inst::NopN { len: 8 });
        } else {
            a.push(Inst::Alu {
                op: AluOp::Add,
                dst: Reg::R4,
                src: Reg::R3,
            });
        }
    }
}

/// The synthetic suite standing in for UnixBench.
pub fn workload_suite() -> Vec<Workload> {
    vec![
        Workload {
            name: "arith",
            program: arith_loop,
            iterations: 400,
        },
        Workload {
            name: "branchy",
            program: branchy,
            iterations: 300,
        },
        Workload {
            name: "memory",
            program: memory_stride,
            iterations: 300,
        },
        Workload {
            name: "calls",
            program: call_heavy,
            iterations: 250,
        },
        Workload {
            name: "mixed",
            program: mixed,
            iterations: 300,
        },
        Workload {
            name: "bigcode",
            program: big_code,
            iterations: 4,
        },
    ]
}

fn run_workload(profile: &UarchProfile, wl: &Workload, suppress: bool) -> u64 {
    let mut m = Machine::new(profile.clone(), 1 << 24);
    if suppress {
        m.write_msr(MsrState {
            suppress_bp_on_non_br: true,
            ..MsrState::none()
        });
    }
    let mut a = Assembler::new(0x40_0000);
    a.push(Inst::MovImm {
        dst: Reg::R0,
        imm: wl.iterations,
    });
    a.push(Inst::MovImm {
        dst: Reg::R3,
        imm: 1,
    });
    a.push(Inst::MovImm {
        dst: Reg::R8,
        imm: 0x60_0000,
    });
    a.label("wl_top");
    (wl.program)(&mut a);
    a.push(Inst::Alu {
        op: AluOp::Sub,
        dst: Reg::R0,
        src: Reg::R3,
    });
    a.push(Inst::MovImm {
        dst: Reg::R7,
        imm: 0,
    });
    a.push(Inst::Cmp {
        a: Reg::R0,
        b: Reg::R7,
    });
    a.jcc_cond(phantom_isa::Cond::Ne, "wl_top");
    a.push(Inst::Halt);
    let blob = a.finish().expect("workload assembles");
    m.load_blob(&blob, PageFlags::USER_TEXT).expect("loads");
    let _ = &blob;
    m.map_range(VirtAddr::new(0x60_0000), 0x2000, PageFlags::USER_DATA)
        .expect("data maps");
    m.map_range(VirtAddr::new(0x7000_0000), 0x4000, PageFlags::USER_DATA)
        .expect("stack maps");
    m.set_reg(Reg::SP, 0x7000_4000 - 64);
    m.set_pc(VirtAddr::new(blob.base));
    m.run(40 * wl.iterations + 8000 * wl.iterations + 100)
        .expect("workload runs");
    m.cycles()
}

/// Overhead measurement result.
#[derive(Debug, Clone)]
pub struct OverheadResult {
    /// Per-workload (name, baseline cycles, suppressed cycles).
    pub per_workload: Vec<(&'static str, u64, u64)>,
    /// Geometric-mean overhead, in percent (the paper measured 0.69%
    /// single-core).
    pub geomean_overhead_pct: f64,
}

/// The overhead suite as a trial scenario: one trial per workload, each
/// measuring the baseline/suppressed cycle pair on fresh machines.
struct OverheadScenario {
    profile: UarchProfile,
    suite: Vec<Workload>,
}

impl Scenario for OverheadScenario {
    type State = ();
    type Checkpoint = ();
    type Sample = (&'static str, u64, u64);
    type Output = OverheadResult;

    fn trials(&self) -> usize {
        self.suite.len()
    }

    fn setup(&self) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn checkpoint(&self, (): ()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn fork(&self, (): &()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn probe(&self, _state: &mut (), trial: Trial) -> Result<Self::Sample, ScenarioError> {
        let wl = &self.suite[trial.index];
        let base = run_workload(&self.profile, wl, false);
        let supp = run_workload(&self.profile, wl, true);
        Ok((wl.name, base, supp))
    }

    fn score(&self, per_workload: Vec<Self::Sample>) -> OverheadResult {
        let log_sum: f64 = per_workload
            .iter()
            .map(|&(_, base, supp)| (supp as f64 / base as f64).ln())
            .sum();
        let geomean = (log_sum / per_workload.len().max(1) as f64).exp();
        OverheadResult {
            per_workload,
            geomean_overhead_pct: (geomean - 1.0) * 100.0,
        }
    }
}

/// Measure the cycle overhead of `SuppressBPOnNonBr` over the workload
/// suite, geomean over workloads (like the paper's UnixBench runs),
/// with one runner trial per workload.
pub fn suppress_overhead(profile: UarchProfile) -> OverheadResult {
    suppress_overhead_on(&TrialRunner::new(), profile)
}

/// [`suppress_overhead`] on an explicit runner (thread-count control).
pub fn suppress_overhead_on(runner: &TrialRunner, profile: UarchProfile) -> OverheadResult {
    let scenario = OverheadScenario {
        profile,
        suite: workload_suite(),
    };
    runner
        .run(&scenario, 0)
        .expect("workload trials are infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn o4_blocks_execute_but_not_fetch_or_decode() {
        let o = o4_suppress_bp_on_non_br(UarchProfile::zen2()).unwrap();
        assert!(
            o.baseline.executed,
            "unmitigated Zen 2 executes phantom targets"
        );
        assert!(o.suppressed.fetched, "O4: IF not prevented");
        assert!(o.suppressed.decoded, "O4: ID not prevented");
        assert!(!o.suppressed.executed, "O4: EX prevented");
    }

    #[test]
    fn o4_bit_does_not_exist_on_zen1() {
        // §8.1 problem ①: the MSR is unsupported on Zen 1, so even the
        // "suppressed" run executes.
        let o = o4_suppress_bp_on_non_br(UarchProfile::zen1()).unwrap();
        assert!(o.suppressed.executed, "Zen 1 has no SuppressBPOnNonBr");
    }

    #[test]
    fn o5_auto_ibrs_does_not_stop_cross_privilege_fetch() {
        assert!(o5_auto_ibrs_fetch(1).unwrap(), "O5: IF despite AutoIBRS");
    }

    #[test]
    fn ibpb_stops_the_signal() {
        assert!(
            !ibpb_blocks_p1(2).unwrap(),
            "IBPB flushes the injected entry"
        );
    }

    #[test]
    fn suppress_overhead_is_small_but_nonzero() {
        let r = suppress_overhead(UarchProfile::zen2());
        assert!(r.geomean_overhead_pct > 0.0, "{}", r.geomean_overhead_pct);
        assert!(
            r.geomean_overhead_pct < 5.0,
            "sub-5% like the paper's 0.69%: {}",
            r.geomean_overhead_pct
        );
        assert_eq!(r.per_workload.len(), 6);
        for (name, base, supp) in &r.per_workload {
            assert!(supp >= base, "{name}: suppression never speeds things up");
        }
    }

    #[test]
    fn lfence_in_the_gadget_stops_phantom_execution() {
        let (unprotected, protected) = lfence_gadget_protection(UarchProfile::zen2()).unwrap();
        assert!(
            unprotected,
            "baseline: the phantom window executes the load"
        );
        assert!(!protected, "lfence at the gadget entry stops it");
    }

    #[test]
    fn rsb_stuffing_removes_the_phantom_target() {
        let (unprotected, protected) = rsb_stuffing_protection(UarchProfile::zen2()).unwrap();
        assert!(unprotected, "poisoned RSB steers the ret-trained phantom");
        assert!(!protected, "stuffed RSB leaves the prediction targetless");
    }

    #[test]
    fn sls_padding_kills_the_straight_line_load() {
        let (unpadded, padded) = sls_padding_protection(UarchProfile::zen1()).unwrap();
        assert!(unpadded, "Zen 1 executes the straight line past ret");
        assert!(!padded, "a barrier after ret stops the dead-code load");
    }
}
