//! Ablations over the design parameters DESIGN.md calls out: where does
//! transient execution appear along the decoder-resteer axis, how does
//! BTB associativity shape entry survival, and how does measurement
//! noise erode channel accuracy.

use phantom_bpu::{Btb, BtbScheme};
use phantom_isa::BranchKind;
use phantom_mem::{PrivilegeLevel, VirtAddr};
use phantom_pipeline::UarchProfile;
use phantom_sidechannel::NoiseModel;

use crate::channel::ChannelError;
use crate::covert::{fetch_channel_noisy_on, CovertConfig};
use crate::experiment::{run_combo, Stage, TrainKind, VictimKind};
use crate::primitives::PrimitiveError;
use crate::runner::{Scenario, ScenarioError, Trial, TrialRunner};

/// One point of the resteer-latency sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyPoint {
    /// Frontend resteer latency (cycles) applied to the profile.
    pub latency: u64,
    /// Surviving µop budget past fetch+decode.
    pub spare_uops: u32,
    /// Deepest stage the standard nop-trained-as-jmp* experiment
    /// reached.
    pub stage: Stage,
}

/// The resteer-latency sweep as a trial scenario: one synthetic profile
/// per latency point, each probed with the standard
/// nop-trained-as-`jmp*` experiment.
#[derive(Debug, Clone)]
struct LatencySweep {
    latencies: Vec<u64>,
}

impl Scenario for LatencySweep {
    type State = ();
    type Checkpoint = ();
    type Sample = LatencyPoint;
    type Output = Vec<LatencyPoint>;

    fn trials(&self) -> usize {
        self.latencies.len()
    }

    fn setup(&self) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn checkpoint(&self, (): ()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn fork(&self, (): &()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn probe(&self, _state: &mut (), trial: Trial) -> Result<LatencyPoint, ScenarioError> {
        let latency = self.latencies[trial.index];
        let mut profile = UarchProfile::zen2();
        profile.frontend_resteer_latency = latency;
        let spare = latency.saturating_sub(profile.fetch_latency + profile.decode_latency) as u32;
        profile.phantom_exec_uops = spare;
        let combo = run_combo(profile, TrainKind::JmpInd, VictimKind::NonBranch, 0)?;
        Ok(LatencyPoint {
            latency,
            spare_uops: spare,
            stage: combo.stage_enum(),
        })
    }

    fn score(&self, samples: Vec<LatencyPoint>) -> Vec<LatencyPoint> {
        samples
    }
}

/// Sweep the decoder-resteer latency on a Zen 2-shaped profile and
/// observe where EX appears. The Zen 1/2 vs Zen 3/4 split in Table 1 is
/// exactly this threshold: transient execution exists iff the resteer
/// lands after the first wrong-path µop can dispatch.
///
/// # Errors
///
/// Returns [`ChannelError`] if an experiment fails to set up.
pub fn resteer_latency_sweep(latencies: &[u64]) -> Result<Vec<LatencyPoint>, ChannelError> {
    resteer_latency_sweep_on(&TrialRunner::new(), latencies)
}

/// [`resteer_latency_sweep`] on an explicit runner.
///
/// # Errors
///
/// Returns [`ChannelError`] if an experiment fails to set up.
pub fn resteer_latency_sweep_on(
    runner: &TrialRunner,
    latencies: &[u64],
) -> Result<Vec<LatencyPoint>, ChannelError> {
    runner
        .run(
            &LatencySweep {
                latencies: latencies.to_vec(),
            },
            0,
        )
        .map_err(|e| ChannelError(e.to_string()))
}

/// One point of the associativity sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssociativityPoint {
    /// BTB ways per alias bucket.
    pub ways: usize,
    /// Fraction of `trained` same-bucket entries still live afterwards.
    pub survival: f64,
}

/// Sweep BTB associativity: train `trained` distinct-signature entries
/// into one page-offset bucket and measure how many survive. Injected
/// phantom entries compete with the victim's own branches in exactly
/// this structure, so survival bounds how long an injection stays
/// effective.
pub fn btb_associativity_sweep(ways_list: &[usize], trained: usize) -> Vec<AssociativityPoint> {
    ways_list
        .iter()
        .map(|&ways| {
            let mut scheme = BtbScheme::zen34();
            scheme.ways = ways;
            let mut btb = Btb::new(scheme);
            // Same page offset, distinct signatures via single fold bits.
            let sources: Vec<VirtAddr> = (0..trained)
                .map(|i| VirtAddr::new(0x40_0ac0 ^ ((i as u64) << 23)))
                .collect();
            for &s in &sources {
                btb.train(
                    s,
                    BranchKind::Indirect,
                    VirtAddr::new(0x9000),
                    PrivilegeLevel::User,
                    0,
                );
            }
            let alive = sources.iter().filter(|&&s| btb.lookup(s).is_some()).count();
            AssociativityPoint {
                ways,
                survival: alive as f64 / trained as f64,
            }
        })
        .collect()
}

/// One point of the noise-accuracy curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoisePoint {
    /// Spurious-eviction probability per probed line.
    pub spurious_rate: f64,
    /// Fetch covert-channel accuracy at that rate.
    pub accuracy: f64,
}

/// The noise curve as a trial scenario: each trial is a full fetch
/// covert-channel transfer at one spurious-eviction rate. The inner
/// channel runs single-threaded — the outer runner already shards the
/// curve's points.
#[derive(Debug, Clone)]
struct NoiseCurve {
    rates: Vec<f64>,
    bits: usize,
    seed: u64,
}

impl Scenario for NoiseCurve {
    type State = ();
    type Checkpoint = ();
    type Sample = NoisePoint;
    type Output = Vec<NoisePoint>;

    fn trials(&self) -> usize {
        self.rates.len()
    }

    fn setup(&self) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn checkpoint(&self, (): ()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn fork(&self, (): &()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn probe(&self, _state: &mut (), trial: Trial) -> Result<NoisePoint, ScenarioError> {
        let rate = self.rates[trial.index];
        let mut noise = NoiseModel::quiet(self.seed);
        noise.spurious_evict = rate;
        noise.missed_signal = rate / 2.0;
        let r = fetch_channel_noisy_on(
            &TrialRunner::with_threads(1),
            UarchProfile::zen2(),
            CovertConfig {
                bits: self.bits,
                seed: self.seed,
            },
            noise,
        )?;
        Ok(NoisePoint {
            spurious_rate: rate,
            accuracy: r.accuracy,
        })
    }

    fn score(&self, samples: Vec<NoisePoint>) -> Vec<NoisePoint> {
        samples
    }
}

/// Measure fetch-channel accuracy against the spurious-eviction rate —
/// the knob behind every sub-100% number in Tables 2–5, and the reason
/// the attacks repeat measurements and score (§7.3).
///
/// # Errors
///
/// Returns [`PrimitiveError`] on channel failure.
pub fn noise_accuracy_curve(
    rates: &[f64],
    bits: usize,
    seed: u64,
) -> Result<Vec<NoisePoint>, PrimitiveError> {
    noise_accuracy_curve_on(&TrialRunner::new(), rates, bits, seed)
}

/// [`noise_accuracy_curve`] on an explicit runner.
///
/// # Errors
///
/// Returns [`PrimitiveError`] on channel failure.
pub fn noise_accuracy_curve_on(
    runner: &TrialRunner,
    rates: &[f64],
    bits: usize,
    seed: u64,
) -> Result<Vec<NoisePoint>, PrimitiveError> {
    runner
        .run(
            &NoiseCurve {
                rates: rates.to_vec(),
                bits,
                seed,
            },
            seed,
        )
        .map_err(|e| PrimitiveError(e.to_string()))
}

/// Configuration for [`noise_sweep`]: one fetch covert-channel transfer
/// per listed knob value, each axis swept independently on top of a
/// quiet baseline so the curves are attributable to a single noise
/// source.
#[derive(Debug, Clone)]
pub struct NoiseSweepConfig {
    /// Swept `jitter_cycles` values (uniform latency jitter amplitude).
    pub jitter: Vec<u64>,
    /// Swept `spurious_evict` probabilities.
    pub spurious: Vec<f64>,
    /// Swept `missed_signal` probabilities.
    pub missed: Vec<f64>,
    /// Bits transferred per sweep point.
    pub bits: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for NoiseSweepConfig {
    fn default() -> NoiseSweepConfig {
        NoiseSweepConfig {
            jitter: vec![0, 2, 4, 8],
            spurious: vec![0.0, 0.01, 0.03, 0.1],
            missed: vec![0.0, 0.05, 0.15, 0.3],
            bits: 256,
            seed: 0,
        }
    }
}

impl NoiseSweepConfig {
    /// A cut-down sweep for CI smoke runs and benchmarks.
    pub fn quick(seed: u64) -> NoiseSweepConfig {
        NoiseSweepConfig {
            jitter: vec![0, 4],
            spurious: vec![0.0, 0.05],
            missed: vec![0.0, 0.2],
            bits: 64,
            seed,
        }
    }

    /// Total sweep points across all three axes.
    pub fn points(&self) -> usize {
        self.jitter.len() + self.spurious.len() + self.missed.len()
    }

    fn knobs(&self) -> Vec<(&'static str, f64)> {
        let mut knobs = Vec::with_capacity(self.points());
        knobs.extend(self.jitter.iter().map(|&j| ("jitter_cycles", j as f64)));
        knobs.extend(self.spurious.iter().map(|&s| ("spurious_evict", s)));
        knobs.extend(self.missed.iter().map(|&m| ("missed_signal", m)));
        knobs
    }
}

/// One point of the noise sweep: the adaptive fetch channel under a
/// single noise knob.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseSweepPoint {
    /// Which [`NoiseModel`] field was swept: `"jitter_cycles"`,
    /// `"spurious_evict"` or `"missed_signal"`.
    pub axis: &'static str,
    /// The knob value (jitter cycles are reported as a float too).
    pub value: f64,
    /// Channel accuracy at that point (abstentions count as wrong).
    pub accuracy: f64,
    /// Total probes the adaptive decoder spent.
    pub probes: u64,
    /// Bits the decoder abstained on rather than guessing.
    pub abstentions: u64,
    /// Mean decode confidence across the transfer.
    pub mean_confidence: f64,
}

/// The noise sweep as a trial scenario: each trial is a full adaptive
/// fetch-channel transfer at one `(axis, value)` point. The inner
/// channel runs single-threaded — the outer runner already shards the
/// sweep's points.
#[derive(Debug, Clone)]
struct NoiseSweep {
    config: NoiseSweepConfig,
    knobs: Vec<(&'static str, f64)>,
}

impl Scenario for NoiseSweep {
    type State = ();
    type Checkpoint = ();
    type Sample = NoiseSweepPoint;
    type Output = Vec<NoiseSweepPoint>;

    fn trials(&self) -> usize {
        self.knobs.len()
    }

    fn setup(&self) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn checkpoint(&self, (): ()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn fork(&self, (): &()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn probe(&self, _state: &mut (), trial: Trial) -> Result<NoiseSweepPoint, ScenarioError> {
        let (axis, value) = self.knobs[trial.index];
        let mut noise = NoiseModel::quiet(self.config.seed);
        match axis {
            "jitter_cycles" => noise.jitter_cycles = value as u64,
            "spurious_evict" => noise.spurious_evict = value,
            _ => noise.missed_signal = value,
        }
        let r = fetch_channel_noisy_on(
            &TrialRunner::with_threads(1),
            UarchProfile::zen2(),
            CovertConfig {
                bits: self.config.bits,
                seed: self.config.seed,
            },
            noise,
        )?;
        Ok(NoiseSweepPoint {
            axis,
            value,
            accuracy: r.accuracy,
            probes: r.probes,
            abstentions: r.abstentions as u64,
            mean_confidence: r.mean_confidence,
        })
    }

    fn score(&self, samples: Vec<NoiseSweepPoint>) -> Vec<NoiseSweepPoint> {
        samples
    }
}

/// Sweep each noise knob independently and measure how the adaptive
/// fetch channel holds up: accuracy, probe spend (the decoder escalates
/// under noise), and abstention count. The quiet end of every axis must
/// stay near-perfect — that is the regression gate the bench harness
/// enforces.
///
/// # Errors
///
/// Returns [`PrimitiveError`] on channel failure.
pub fn noise_sweep(config: &NoiseSweepConfig) -> Result<Vec<NoiseSweepPoint>, PrimitiveError> {
    noise_sweep_on(&TrialRunner::new(), config)
}

/// [`noise_sweep`] on an explicit runner.
///
/// # Errors
///
/// Returns [`PrimitiveError`] on channel failure.
pub fn noise_sweep_on(
    runner: &TrialRunner,
    config: &NoiseSweepConfig,
) -> Result<Vec<NoiseSweepPoint>, PrimitiveError> {
    runner
        .run(
            &NoiseSweep {
                knobs: config.knobs(),
                config: config.clone(),
            },
            config.seed,
        )
        .map_err(|e| PrimitiveError(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_sweep_shows_the_ex_threshold() {
        let points = resteer_latency_sweep(&[4, 5, 6, 8, 12, 16]).unwrap();
        for p in &points {
            // fetch(1) + decode(4) must beat the resteer for ID; one
            // spare cycle past that dispatches the wrong-path load (EX).
            let expect = if p.spare_uops >= 1 {
                Stage::Ex
            } else if p.latency >= 5 {
                Stage::Id
            } else {
                Stage::If
            };
            assert_eq!(p.stage, expect, "latency {}", p.latency);
        }
        // The sweep is monotone: once EX appears it never disappears.
        let first_ex = points.iter().position(|p| p.stage == Stage::Ex);
        if let Some(i) = first_ex {
            assert!(points[i..].iter().all(|p| p.stage == Stage::Ex));
        }
    }

    #[test]
    fn associativity_sweep_is_monotone() {
        let points = btb_associativity_sweep(&[1, 2, 4, 8], 8);
        for w in points.windows(2) {
            assert!(w[1].survival >= w[0].survival, "{points:?}");
        }
        assert_eq!(points.last().unwrap().survival, 1.0, "8 ways hold all 8");
        assert!(points[0].survival <= 0.2, "1 way holds ~1 of 8");
    }

    #[test]
    fn noise_sweep_covers_every_axis_and_stays_clean_when_quiet() {
        let config = NoiseSweepConfig::quick(5);
        let points = noise_sweep(&config).unwrap();
        assert_eq!(points.len(), config.points());
        for p in &points {
            // Every axis's first value is its quiet baseline.
            if p.value == 0.0 {
                assert!(p.accuracy > 0.95, "quiet {} point degraded: {p:?}", p.axis);
                assert_eq!(p.abstentions, 0, "quiet {} point abstained: {p:?}", p.axis);
            }
            assert!(p.probes >= 2 * config.bits as u64, "{p:?}");
        }
        // Heavy missed-signal traffic is the harshest knob: the decoder
        // must escalate (spend more probes) relative to the quiet point.
        let quiet = points.iter().find(|p| p.value == 0.0).unwrap();
        let harsh = points
            .iter()
            .find(|p| p.axis == "missed_signal" && p.value > 0.0)
            .unwrap();
        assert!(harsh.probes > quiet.probes, "{harsh:?} vs {quiet:?}");
    }

    #[test]
    fn noise_curve_degrades_monotonically_ish() {
        let points = noise_accuracy_curve(&[0.0, 0.05, 0.3], 96, 3).unwrap();
        assert!(points[0].accuracy > 0.99, "{points:?}");
        assert!(
            points[2].accuracy < points[0].accuracy,
            "heavy noise hurts: {points:?}"
        );
    }
}
