//! **Phantom: Exploiting Decoder-detectable Mispredictions** — a full
//! reproduction of the MICRO '23 paper on a simulated microarchitecture.
//!
//! Recent AMD and Intel CPUs consult the branch predictor *before the
//! current instruction is decoded*. The BTB — indexed purely by fetch
//! address — can claim that *any* instruction is a branch of any kind
//! going anywhere. The decoder eventually notices and resteers the
//! frontend, but by then the phantom target has been fetched
//! (observation O1), decoded (O2), and on Zen 1/2 even executed far
//! enough to dispatch one load (O3). This crate implements the paper's
//! pipeline:
//!
//! * [`channel`] — the §5.1 observation channels that detect how far a
//!   mispredicted path advanced: I-cache timing (IF), µop-cache
//!   performance counters (ID), D-cache probing (EX);
//! * [`experiment`] — the §5.2 training × victim sweep that generates
//!   **Table 1**, and the **Figure 6** µop-cache page-offset sweep;
//! * [`collide`] — §6.2: brute-force collision search (which fails on
//!   Zen 3, as in the paper) and the solver-driven recovery of the
//!   **Figure 7** cross-privilege BTB functions;
//! * [`primitives`] — the attacker primitives **P1** (detect mapped
//!   executable memory), **P2** (detect mapped non-executable memory)
//!   and **P3** (leak register values);
//! * [`covert`] — the §6.4 covert channels (**Table 2**);
//! * [`decode`] — the confidence-driven adaptive bit decoder the covert
//!   channels use to spend extra probes only on noisy bits;
//! * [`attacks`] — the §7 end-to-end exploits: kernel-image KASLR
//!   (**Table 3**), physmap KASLR (**Table 4**), physical-address
//!   derandomization (**Table 5**) and the MDS-gadget kernel leak
//!   (§7.4);
//! * [`mitigations`] — §6.3/§8: `SuppressBPOnNonBr` (O4), AutoIBRS
//!   (O5), IBPB, and the mitigation overhead measurement;
//! * [`spectre`] — the baseline: conventional Spectre-V2 and the
//!   window-width comparison the paper draws against it;
//! * [`gadgets`] — the §9.1 gadget-count comparison (Spectre vs
//!   MDS-style single-load gadgets);
//! * [`report`] — plain-text rendering of every table and figure.
//!
//! # Examples
//!
//! ```
//! use phantom::experiment::{run_combo, TrainKind, VictimKind};
//! use phantom_pipeline::UarchProfile;
//!
//! // A nop trained as an indirect branch: fetched and decoded on Zen 3,
//! // but not executed.
//! let outcome = run_combo(UarchProfile::zen3(), TrainKind::JmpInd, VictimKind::NonBranch, 0)?;
//! assert_eq!(outcome.stage(), "ID");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ablation;
pub mod attacks;
pub mod channel;
pub mod collide;
pub mod covert;
pub mod decode;
pub mod experiment;
pub mod gadgets;
pub mod mitigations;
pub mod primitives;
pub mod property;
pub mod report;
pub mod runner;
pub mod spectre;

pub use experiment::{run_combo, table1, Stage};
pub use phantom_pipeline::{IStr, SpecError, UarchProfile, UarchRegistry, UarchSpec};

/// Convenience re-exports for experiment and attack code.
///
/// ```
/// use phantom::prelude::*;
/// let o = run_combo(UarchProfile::zen2(), TrainKind::JmpInd, VictimKind::NonBranch, 0)?;
/// assert_eq!(o.stage(), "EX");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub mod prelude {
    pub use crate::attacks::{
        break_kaslr_image, break_physmap, find_physical_address, leak_kernel_memory,
        KaslrImageConfig, MdsLeakConfig, PhysAddrConfig, PhysmapConfig,
    };
    pub use crate::channel::{ExChannel, IdChannel, IfChannel};
    pub use crate::decode::{decode_adaptive, DecodeOutcome, Decoded, DecoderConfig};
    pub use crate::experiment::{run_combo, table1, Stage, TrainKind, VictimKind};
    pub use crate::primitives::{
        p1_detect_executable, p2_detect_mapped, p3_leak_byte, PrimitiveConfig,
    };
    pub use crate::UarchProfile;
    pub use phantom_kernel::System;
    pub use phantom_mem::VirtAddr;
    pub use phantom_sidechannel::NoiseModel;
}

/// All eight microarchitectures evaluated in the paper's Table 1.
pub fn uarch_all() -> Vec<UarchProfile> {
    UarchProfile::all()
}

/// The four AMD microarchitectures the exploits target.
pub fn uarch_amd() -> Vec<UarchProfile> {
    UarchProfile::amd()
}
