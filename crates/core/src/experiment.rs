//! The §5.2 experiment harness: every asymmetric training × victim
//! combination, observed through the §5.1 channels — **Table 1** — plus
//! the **Figure 6** µop-cache page-offset sweep.

use phantom_isa::encode::encode_into;
use phantom_isa::{Cond, Inst, Reg};
use phantom_mem::{PageFlags, VirtAddr};
use phantom_pipeline::{Machine, TransientReport, UarchProfile};
use phantom_sidechannel::NoiseModel;

use crate::channel::{ChannelError, ExChannel, IdChannel, IfChannel};
use crate::runner::{Scenario, ScenarioError, Trial, TrialRunner};

/// The instruction used to *train* the predictor (§5.2's five rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrainKind {
    /// `jmp*` — indirect jump.
    JmpInd,
    /// `jmp` — direct jump.
    Jmp,
    /// `jcc` — conditional branch (trained taken).
    Jcc,
    /// `ret`.
    Ret,
    /// Nop sled — no branch trained at all.
    NonBranch,
}

impl TrainKind {
    /// All training rows in the paper's order.
    pub const ALL: [TrainKind; 5] = [
        TrainKind::JmpInd,
        TrainKind::Jmp,
        TrainKind::Jcc,
        TrainKind::Ret,
        TrainKind::NonBranch,
    ];
}

impl std::fmt::Display for TrainKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TrainKind::JmpInd => "jmp*",
            TrainKind::Jmp => "jmp",
            TrainKind::Jcc => "jcc",
            TrainKind::Ret => "ret",
            TrainKind::NonBranch => "non branch",
        };
        f.write_str(s)
    }
}

/// The instruction actually at the victim site (§5.2's five columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VictimKind {
    /// `jmp*`.
    JmpInd,
    /// `jmp`.
    Jmp,
    /// `jcc` (taken at the victim run).
    Jcc,
    /// `ret`.
    Ret,
    /// Nop sled.
    NonBranch,
}

impl VictimKind {
    /// All victim columns in the paper's order.
    pub const ALL: [VictimKind; 5] = [
        VictimKind::JmpInd,
        VictimKind::Jmp,
        VictimKind::Jcc,
        VictimKind::Ret,
        VictimKind::NonBranch,
    ];

    fn inst(self, disp_to: impl Fn(usize) -> i32) -> Inst {
        match self {
            VictimKind::JmpInd => Inst::JmpInd { src: Reg::R11 },
            VictimKind::Jmp => Inst::Jmp { disp: disp_to(5) },
            VictimKind::Jcc => Inst::Jcc {
                cond: Cond::Eq,
                disp: disp_to(6),
            },
            VictimKind::Ret => Inst::Ret,
            VictimKind::NonBranch => Inst::Nop,
        }
    }

    fn len(self) -> u64 {
        match self {
            VictimKind::JmpInd => 2,
            VictimKind::Jmp => 5,
            VictimKind::Jcc => 6,
            VictimKind::Ret => 1,
            VictimKind::NonBranch => 1,
        }
    }
}

impl std::fmt::Display for VictimKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            VictimKind::JmpInd => "jmp*",
            VictimKind::Jmp => "jmp",
            VictimKind::Jcc => "jcc",
            VictimKind::Ret => "ret",
            VictimKind::NonBranch => "non branch",
        };
        f.write_str(s)
    }
}

/// The deepest stage a combination's wrong path reached, as measured
/// through the observation channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// No signal on any channel.
    None,
    /// I-cache signal only.
    If,
    /// µop-cache signal (implies fetch).
    Id,
    /// D-cache signal (implies fetch + decode).
    Ex,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Stage::None => "-",
            Stage::If => "IF",
            Stage::Id => "ID",
            Stage::Ex => "EX",
        };
        f.write_str(s)
    }
}

/// The measured outcome of one training × victim combination.
#[derive(Debug, Clone)]
pub struct ComboOutcome {
    /// Training instruction.
    pub train: TrainKind,
    /// Victim instruction.
    pub victim: VictimKind,
    /// Microarchitecture name.
    pub uarch: phantom_pipeline::IStr,
    /// IF channel fired.
    pub fetched: bool,
    /// ID channel fired.
    pub decoded: bool,
    /// EX channel fired.
    pub executed: bool,
    /// Ground-truth transient reports from the victim run (for
    /// validating the channels themselves).
    pub reports: Vec<TransientReport>,
}

impl ComboOutcome {
    /// The deepest measured stage as a Table 1 cell string.
    pub fn stage(&self) -> &'static str {
        self.stage_enum().into()
    }

    /// The deepest measured stage.
    pub fn stage_enum(&self) -> Stage {
        if self.executed {
            Stage::Ex
        } else if self.decoded {
            Stage::Id
        } else if self.fetched {
            Stage::If
        } else {
            Stage::None
        }
    }
}

impl From<Stage> for &'static str {
    fn from(s: Stage) -> &'static str {
        match s {
            Stage::None => "-",
            Stage::If => "IF",
            Stage::Id => "ID",
            Stage::Ex => "EX",
        }
    }
}

/// Fixed experiment geography (user-space, single process — §5.1 notes
/// user-space aliasing suffices for the observation channels).
struct Layout {
    /// Victim/branch site for BTB-trained combinations.
    x_trained: VirtAddr,
    /// Phantom target C (holds the signal payload).
    c: VirtAddr,
    /// Architectural continuation target F.
    f: VirtAddr,
    /// Call site whose return address is the RSB-served target R for
    /// ret-training (R = call_site + 5).
    call_site: VirtAddr,
    /// Probe data address the payload load touches.
    probe: VirtAddr,
    /// ID-channel jmp-series base.
    series_base: VirtAddr,
    /// Page offset shared by C, R and the series (selects the µop set).
    signal_offset: u64,
}

impl Layout {
    fn standard() -> Layout {
        Layout {
            x_trained: VirtAddr::new(0x40_0ac0),
            c: VirtAddr::new(0x48_0b40),
            f: VirtAddr::new(0x4c_0000),
            call_site: VirtAddr::new(0x4a_0b3b), // ret addr = 0x4a_0b40
            probe: VirtAddr::new(0x60_0000),
            series_base: VirtAddr::new(0x70_0000),
            signal_offset: 0xb40,
        }
    }

    /// The victim site: trained combinations confuse the trained branch
    /// site; non-branch training (straight-line speculation) places the
    /// victim so its *sequential* bytes begin exactly at a fresh line
    /// with the signal offset.
    fn victim_site(&self, train: TrainKind, victim: VictimKind) -> VirtAddr {
        match train {
            TrainKind::NonBranch => VirtAddr::new(0x40_0000 + self.signal_offset - victim.len()),
            _ => self.x_trained,
        }
    }

    /// Where the wrong-path signal payload lives for a given training
    /// row (C for BTB targets, R for RSB-served returns, the sequential
    /// line for straight-line speculation).
    fn signal_site(&self, train: TrainKind, victim: VictimKind) -> VirtAddr {
        match train {
            TrainKind::Ret => self.call_site + 5,
            TrainKind::NonBranch => self.victim_site(train, victim) + victim.len(),
            _ => self.c,
        }
    }
}

fn emit(inst: &Inst) -> Vec<u8> {
    let mut bytes = Vec::new();
    encode_into(inst, &mut bytes).expect("encodable");
    bytes
}

/// The signal payload: a load of `[R8]` (the EX signal) that also, by
/// being fetched and decoded at its address, provides the IF and ID
/// signals. Ends in `hlt`.
fn payload_bytes() -> Vec<u8> {
    let mut bytes = emit(&Inst::Load {
        dst: Reg::R9,
        base: Reg::R8,
        disp: 0,
    });
    bytes.extend(emit(&Inst::Halt));
    bytes
}

/// Run one training × victim combination on a fresh machine and measure
/// it through the observation channels.
///
/// # Errors
///
/// Returns [`ChannelError`] if experiment memory cannot be set up.
pub fn run_combo(
    profile: UarchProfile,
    train: TrainKind,
    victim: VictimKind,
    seed: u64,
) -> Result<ComboOutcome, ChannelError> {
    run_combo_msr(profile, train, victim, seed, None)
}

/// [`run_combo`] with an explicit mitigation-MSR state (for the §6.3
/// re-runs: `SuppressBPOnNonBr`, AutoIBRS).
///
/// # Errors
///
/// Returns [`ChannelError`] if experiment memory cannot be set up.
pub fn run_combo_msr(
    profile: UarchProfile,
    train: TrainKind,
    victim: VictimKind,
    seed: u64,
    msr: Option<phantom_bpu::MsrState>,
) -> Result<ComboOutcome, ChannelError> {
    let uarch = profile.name.clone();
    let mut m = Machine::new(profile, 1 << 26);
    if let Some(msr) = msr {
        m.write_msr(msr);
    }
    let mut noise = NoiseModel::quiet(seed);
    let lay = Layout::standard();

    let x = lay.victim_site(train, victim);
    let signal = lay.signal_site(train, victim);

    // --- Map and fill the geography. --------------------------------
    let text = PageFlags::USER_TEXT | PageFlags::WRITE;
    m.map_range(x.page_base(), 0x2000, text)
        .map_err(|e| ChannelError(e.to_string()))?;
    m.map_range(lay.c.page_base(), 0x1000, text)
        .map_err(|e| ChannelError(e.to_string()))?;
    m.map_range(lay.f.page_base(), 0x1000, text)
        .map_err(|e| ChannelError(e.to_string()))?;
    m.map_range(lay.call_site.page_base(), 0x1000, text)
        .map_err(|e| ChannelError(e.to_string()))?;
    // Stack.
    let stack_top = 0x7000_4000 - 64;
    m.map_range(VirtAddr::new(0x7000_0000), 0x4000, PageFlags::USER_DATA)
        .map_err(|e| ChannelError(e.to_string()))?;

    // Payload at C and at the RSB return site; F is a plain halt.
    m.poke(lay.c, &payload_bytes());
    m.poke(lay.call_site + 5, &payload_bytes());
    m.poke(lay.f, &emit(&Inst::Halt));

    // --- Channels. ----------------------------------------------------
    let if_ch = IfChannel::new(signal);
    let id_ch = IdChannel::install(&mut m, lay.series_base, lay.signal_offset)?;
    let ex_ch = ExChannel::install(&mut m, lay.probe)?;
    m.set_reg(Reg::R8, lay.probe.raw());

    // --- Train. ---------------------------------------------------------
    match train {
        TrainKind::JmpInd => {
            let mut bytes = emit(&Inst::JmpInd { src: Reg::R11 });
            bytes.push(0xf4);
            m.poke(x, &bytes);
            m.set_reg(Reg::R11, lay.c.raw());
            m.set_reg(Reg::SP, stack_top);
            m.set_pc(x);
            m.run(8).map_err(|e| ChannelError(e.to_string()))?;
        }
        TrainKind::Jmp => {
            let disp = (lay.c.raw() as i64 - (x.raw() as i64 + 5)) as i32;
            let mut bytes = emit(&Inst::Jmp { disp });
            bytes.push(0xf4);
            m.poke(x, &bytes);
            m.set_pc(x);
            m.run(8).map_err(|e| ChannelError(e.to_string()))?;
        }
        TrainKind::Jcc => {
            let disp = (lay.c.raw() as i64 - (x.raw() as i64 + 6)) as i32;
            let mut bytes = emit(&Inst::Jcc {
                cond: Cond::Eq,
                disp,
            });
            bytes.push(0xf4);
            m.poke(x, &bytes);
            // Train the direction predictor thoroughly toward taken.
            for _ in 0..10 {
                m.set_flags(true, false, false);
                m.set_pc(x);
                m.run(8).map_err(|e| ChannelError(e.to_string()))?;
            }
        }
        TrainKind::Ret => {
            let mut bytes = emit(&Inst::Ret);
            bytes.push(0xf4);
            m.poke(x, &bytes);
            m.set_reg(Reg::SP, stack_top);
            m.poke_u64(VirtAddr::new(stack_top), lay.c.raw());
            m.set_pc(x);
            m.run(8).map_err(|e| ChannelError(e.to_string()))?;
        }
        TrainKind::NonBranch => {
            // No training: the predictor knows nothing about X.
        }
    }

    // For ret training, the victim-run prediction pops the RSB: plant a
    // known "most recent call site" by executing a call.
    if train == TrainKind::Ret {
        let mut call_bytes = Vec::new();
        let helper = lay.f; // a hlt: the call never returns in this run
        let disp = (helper.raw() as i64 - (lay.call_site.raw() as i64 + 5)) as i32;
        encode_into(&Inst::Call { disp }, &mut call_bytes).expect("encodable");
        m.poke(lay.call_site, &call_bytes);
        m.set_reg(Reg::SP, stack_top);
        m.set_pc(lay.call_site);
        m.run(4).map_err(|e| ChannelError(e.to_string()))?;
    }

    // --- Install the victim instruction at X. ---------------------------
    let disp_to = |len: usize| (lay.f.raw() as i64 - (x.raw() as i64 + len as i64)) as i32;
    let vic_inst = victim.inst(disp_to);
    let mut vic_bytes = emit(&vic_inst);
    // Straight-line payload already lives right after the victim for the
    // non-branch-training rows; otherwise halt the fallthrough.
    if train == TrainKind::NonBranch {
        vic_bytes.extend(payload_bytes());
    } else {
        vic_bytes.extend(emit(&Inst::NopN { len: 3 }));
        vic_bytes.push(0xf4);
    }
    m.poke(x, &vic_bytes);

    // Victim-run register/stack state.
    m.set_reg(Reg::R11, lay.f.raw()); // victim jmp* goes to F
    m.set_reg(Reg::SP, stack_top - 128);
    m.poke_u64(VirtAddr::new(stack_top - 128), lay.f.raw()); // victim ret -> F
    m.set_flags(true, false, false); // victim jcc is taken (to F)

    // --- Arm, run, observe. ----------------------------------------------
    id_ch.prime(&mut m);
    if_ch.arm(&mut m);
    ex_ch.arm(&mut m);

    m.set_pc(x);
    let (_, reports) = m
        .run_collecting(16)
        .map_err(|e| ChannelError(e.to_string()))?;

    let (_, id_misses) = id_ch.sample(&mut m);
    let fetched = if_ch.observe(&mut m, &mut noise);
    let executed = ex_ch.observe(&mut m, &mut noise);
    let decoded = id_misses > 0;

    Ok(ComboOutcome {
        train,
        victim,
        uarch,
        fetched,
        decoded,
        executed,
        reports,
    })
}

/// All 22 asymmetric variants of §5.2: the 20 off-diagonal pairs plus
/// `jmp`/`jcc` trained with a *different displacement* than the victim
/// (which this harness realizes naturally: training targets C, the
/// victim's own displacement targets F).
pub fn asymmetric_combos() -> Vec<(TrainKind, VictimKind)> {
    let mut out = Vec::new();
    for train in TrainKind::ALL {
        for victim in VictimKind::ALL {
            let symmetric = matches!(
                (train, victim),
                (TrainKind::JmpInd, VictimKind::JmpInd)
                    | (TrainKind::Ret, VictimKind::Ret)
                    | (TrainKind::NonBranch, VictimKind::NonBranch)
            );
            if !symmetric {
                out.push((train, victim));
            }
        }
    }
    out
}

/// One Table 1 cell: the stage each microarchitecture reached.
#[derive(Debug, Clone)]
pub struct Table1Cell {
    /// Training row.
    pub train: TrainKind,
    /// Victim column.
    pub victim: VictimKind,
    /// Per-uarch deepest stage, in [`UarchProfile::all`] order.
    pub stages: Vec<(phantom_pipeline::IStr, Stage)>,
}

/// The Table 1 sweep as a trial scenario: one trial per (training ×
/// victim × microarchitecture) cell, each on a fresh machine — so the
/// whole sweep shards across cores with no shared state.
struct Table1Scenario<'a> {
    profiles: &'a [UarchProfile],
    combos: Vec<(TrainKind, VictimKind)>,
    seed: u64,
}

impl Scenario for Table1Scenario<'_> {
    type State = ();
    type Checkpoint = ();
    type Sample = (phantom_pipeline::IStr, Stage);
    type Output = Vec<Table1Cell>;

    fn trials(&self) -> usize {
        self.combos.len() * self.profiles.len()
    }

    fn setup(&self) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn checkpoint(&self, (): ()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn fork(&self, (): &()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn probe(&self, _state: &mut (), trial: Trial) -> Result<Self::Sample, ScenarioError> {
        let (train, victim) = self.combos[trial.index / self.profiles.len()];
        let profile = self.profiles[trial.index % self.profiles.len()].clone();
        let name = profile.name.clone();
        let outcome = run_combo(profile, train, victim, self.seed)?;
        Ok((name, outcome.stage_enum()))
    }

    fn score(&self, samples: Vec<Self::Sample>) -> Vec<Table1Cell> {
        self.combos
            .iter()
            .zip(samples.chunks(self.profiles.len().max(1)))
            .map(|(&(train, victim), stages)| Table1Cell {
                train,
                victim,
                stages: stages.to_vec(),
            })
            .collect()
    }
}

/// Run the full Table 1 sweep over the given microarchitectures,
/// sharded across all available cores.
///
/// # Errors
///
/// Returns [`ChannelError`] if any combination fails to set up.
pub fn table1(profiles: &[UarchProfile], seed: u64) -> Result<Vec<Table1Cell>, ChannelError> {
    table1_on(&TrialRunner::new(), profiles, seed)
}

/// [`table1`] on an explicit runner (thread-count control).
///
/// # Errors
///
/// Returns [`ChannelError`] if any combination fails to set up.
pub fn table1_on(
    runner: &TrialRunner,
    profiles: &[UarchProfile],
    seed: u64,
) -> Result<Vec<Table1Cell>, ChannelError> {
    let scenario = Table1Scenario {
        profiles,
        combos: asymmetric_combos(),
        seed,
    };
    runner
        .run(&scenario, seed)
        .map_err(|e| ChannelError(e.to_string()))
}

/// One Figure 6 data point: µop-cache misses observed when C sits at a
/// given page offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Figure6Point {
    /// Page offset of the phantom target C.
    pub offset: u64,
    /// µop-cache hits when re-running the priming series.
    pub hits: u64,
    /// µop-cache misses (the signal: nonzero only at the matching
    /// offset).
    pub misses: u64,
}

/// The Figure 6 sweep: non-branch victim trained with `jmp*`, target C
/// placed at every page offset; the ID channel (series fixed at
/// `series_offset`) only fires when C's offset matches.
///
/// # Errors
///
/// Returns [`ChannelError`] on setup failure.
pub fn figure6(
    profile: UarchProfile,
    series_offset: u64,
    step: u64,
) -> Result<Vec<Figure6Point>, ChannelError> {
    figure6_on(&TrialRunner::new(), profile, series_offset, step)
}

/// [`figure6`] on an explicit runner (thread-count control).
///
/// # Errors
///
/// Returns [`ChannelError`] on setup failure.
pub fn figure6_on(
    runner: &TrialRunner,
    profile: UarchProfile,
    series_offset: u64,
    step: u64,
) -> Result<Vec<Figure6Point>, ChannelError> {
    let mut offsets: Vec<u64> = (0..4096 - 64).step_by(step.max(64) as usize).collect();
    // The series offset itself (0xac0 = 43 * 64; 43 is prime, so coarse
    // steps never land on it) must be part of the sweep — it is the
    // point the whole figure exists to show.
    if !offsets.contains(&series_offset) {
        offsets.push(series_offset);
        offsets.sort_unstable();
    }
    let scenario = Figure6Scenario {
        profile,
        series_offset,
        offsets,
    };
    runner
        .run(&scenario, 0)
        .map_err(|e| ChannelError(e.to_string()))
}

/// The Figure 6 sweep as a scenario: one trial per page offset, each on
/// a fresh machine.
struct Figure6Scenario {
    profile: UarchProfile,
    series_offset: u64,
    offsets: Vec<u64>,
}

impl Scenario for Figure6Scenario {
    type State = ();
    type Checkpoint = ();
    type Sample = Figure6Point;
    type Output = Vec<Figure6Point>;

    fn trials(&self) -> usize {
        self.offsets.len()
    }

    fn setup(&self) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn checkpoint(&self, (): ()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn fork(&self, (): &()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn probe(&self, _state: &mut (), trial: Trial) -> Result<Figure6Point, ScenarioError> {
        Ok(figure6_point(
            &self.profile,
            self.offsets[trial.index],
            self.series_offset,
        )?)
    }

    fn score(&self, samples: Vec<Figure6Point>) -> Vec<Figure6Point> {
        samples
    }
}

/// Measure one Figure 6 offset on a fresh machine.
fn figure6_point(
    profile: &UarchProfile,
    offset: u64,
    series_offset: u64,
) -> Result<Figure6Point, ChannelError> {
    let mut m = Machine::new(profile.clone(), 1 << 26);
    let text = PageFlags::USER_TEXT | PageFlags::WRITE;
    // The victim site must not itself alias the monitored µop set
    // (its own architectural decode would read as signal).
    let x = VirtAddr::new(0x40_0908);
    let c = VirtAddr::new(0x48_0000 + offset);
    m.map_range(x.page_base(), 0x1000, text)
        .map_err(|e| ChannelError(e.to_string()))?;
    m.map_range(c.page_base(), 0x1000, text)
        .map_err(|e| ChannelError(e.to_string()))?;
    m.poke(c, &payload_bytes());
    m.map_range(VirtAddr::new(0x60_0000), 64, PageFlags::USER_DATA)
        .map_err(|e| ChannelError(e.to_string()))?;
    m.set_reg(Reg::R8, 0x60_0000);

    let id_ch = IdChannel::install(&mut m, VirtAddr::new(0x70_0000), series_offset)?;

    // Train jmp* -> C, then replace with nops (the non-branch victim).
    let mut bytes = emit(&Inst::JmpInd { src: Reg::R11 });
    bytes.push(0xf4);
    m.poke(x, &bytes);
    m.set_reg(Reg::R11, c.raw());
    m.set_pc(x);
    m.run(8).map_err(|e| ChannelError(e.to_string()))?;
    m.poke(x, &[0x90, 0x90, 0xf4]);

    id_ch.prime(&mut m);
    m.set_pc(x);
    m.run(8).map_err(|e| ChannelError(e.to_string()))?;
    let (hits, misses) = id_ch.sample(&mut m);
    Ok(Figure6Point {
        offset,
        hits,
        misses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_two_asymmetric_variants() {
        // §5.2: "The asymmetric combinations of these comprise 22
        // possible variants".
        assert_eq!(asymmetric_combos().len(), 22);
    }

    #[test]
    fn nop_victim_trained_indirect_reaches_id_on_zen3() {
        let o = run_combo(
            UarchProfile::zen3(),
            TrainKind::JmpInd,
            VictimKind::NonBranch,
            0,
        )
        .unwrap();
        assert!(o.fetched, "O1");
        assert!(o.decoded, "O2");
        assert!(!o.executed, "no EX on Zen 3");
        assert_eq!(o.stage(), "ID");
    }

    #[test]
    fn nop_victim_trained_indirect_reaches_ex_on_zen2() {
        let o = run_combo(
            UarchProfile::zen2(),
            TrainKind::JmpInd,
            VictimKind::NonBranch,
            0,
        )
        .unwrap();
        assert_eq!(o.stage(), "EX", "O3: Zen 2 executes phantom targets");
    }

    #[test]
    fn ret_victim_trained_indirect_is_phantom() {
        // Retbleed-style confusion observed through the channels.
        for (profile, expect) in [(UarchProfile::zen1(), "EX"), (UarchProfile::zen4(), "ID")] {
            let o = run_combo(profile, TrainKind::JmpInd, VictimKind::Ret, 0).unwrap();
            assert_eq!(o.stage(), expect);
        }
    }

    #[test]
    fn ret_training_signals_at_the_call_site() {
        // "The return target will not be to C, but to the most recent
        // call site."
        let o = run_combo(
            UarchProfile::zen2(),
            TrainKind::Ret,
            VictimKind::NonBranch,
            0,
        )
        .unwrap();
        assert!(o.fetched && o.decoded);
        // Ground truth: the transient target is the planted call site's
        // return address, not C.
        let report = o.reports.first().expect("misprediction");
        assert_eq!(report.target, Some(VirtAddr::new(0x4a_0b40)));
    }

    #[test]
    fn non_branch_training_gives_straight_line_speculation() {
        let o = run_combo(
            UarchProfile::zen1(),
            TrainKind::NonBranch,
            VictimKind::Ret,
            0,
        )
        .unwrap();
        assert!(
            o.fetched && o.decoded,
            "SLS fetches/decodes the straight line"
        );
        assert!(o.executed, "Zen 1 executes it (Spectre-SLS)");
        let o4 = run_combo(
            UarchProfile::zen4(),
            TrainKind::NonBranch,
            VictimKind::Ret,
            0,
        )
        .unwrap();
        assert!(!o4.executed, "Zen 4 squashes before execute");
    }

    #[test]
    fn channels_agree_with_ground_truth() {
        // The honest cache/counter channels must match the simulator's
        // internal transient reports.
        for profile in [UarchProfile::zen2(), UarchProfile::zen4()] {
            for (train, victim) in [
                (TrainKind::JmpInd, VictimKind::NonBranch),
                (TrainKind::Jmp, VictimKind::NonBranch),
                (TrainKind::JmpInd, VictimKind::Jmp),
            ] {
                let o = run_combo(profile.clone(), train, victim, 0).unwrap();
                let truth = o.reports.first().cloned().unwrap_or_default();
                assert_eq!(
                    o.fetched, truth.fetched,
                    "{train}x{victim} on {}",
                    profile.name
                );
                assert_eq!(
                    o.decoded, truth.decoded,
                    "{train}x{victim} on {}",
                    profile.name
                );
                assert_eq!(
                    o.executed,
                    !truth.loads_dispatched.is_empty(),
                    "{train}x{victim} on {}",
                    profile.name
                );
            }
        }
    }

    #[test]
    fn figure6_signal_only_at_matching_offset() {
        let points = figure6(UarchProfile::zen2(), 0xac0, 0x200).unwrap();
        assert!(
            points.iter().any(|p| p.offset == 0xac0),
            "sweep includes 0xac0"
        );
        for p in &points {
            if p.offset == 0xac0 {
                assert!(p.misses > 0, "signal at the matching offset");
            } else {
                assert_eq!(p.misses, 0, "offset {:#x} must be silent", p.offset);
            }
        }
    }

    #[test]
    fn negative_control_training_elsewhere_gives_no_signal() {
        // §5.1: "complementary negative testing using a training branch
        // that does not alias with the victim". Train a jmp* at a source
        // whose alias class differs from the victim's: no channel fires.
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 26);
        let text = PageFlags::USER_TEXT | PageFlags::WRITE;
        let lay = Layout::standard();
        let victim = lay.x_trained;
        let other = VirtAddr::new(victim.raw() + 0x100); // different page offset
        m.map_range(victim.page_base(), 0x1000, text).unwrap();
        m.map_range(lay.c.page_base(), 0x1000, text).unwrap();
        m.poke(lay.c, &payload_bytes());
        let id_ch = IdChannel::install(&mut m, lay.series_base, lay.signal_offset).unwrap();
        let ex_ch = ExChannel::install(&mut m, lay.probe).unwrap();
        let if_ch = IfChannel::new(lay.c);
        m.set_reg(Reg::R8, lay.probe.raw());
        let mut noise = NoiseModel::quiet(0);

        // Train at `other`, not at the victim.
        let mut bytes = Vec::new();
        encode_into(&Inst::JmpInd { src: Reg::R11 }, &mut bytes).unwrap();
        bytes.push(0xF4);
        m.poke(other, &bytes);
        m.set_reg(Reg::R11, lay.c.raw());
        m.set_pc(other);
        m.run(8).unwrap();

        // Victim nops at the real site.
        m.poke(victim, &[0x90, 0x90, 0xF4]);
        id_ch.prime(&mut m);
        if_ch.arm(&mut m);
        ex_ch.arm(&mut m);
        m.set_pc(victim);
        let (_, reports) = m.run_collecting(8).unwrap();
        assert!(
            reports.is_empty(),
            "no misprediction at a non-aliasing victim"
        );
        let (_, misses) = id_ch.sample(&mut m);
        assert_eq!(misses, 0);
        assert!(!if_ch.observe(&mut m, &mut noise));
        assert!(!ex_ch.observe(&mut m, &mut noise));
    }

    #[test]
    fn combos_are_deterministic_per_seed() {
        for (t, v) in [
            (TrainKind::JmpInd, VictimKind::NonBranch),
            (TrainKind::Ret, VictimKind::Jmp),
        ] {
            let a = run_combo(UarchProfile::zen3(), t, v, 5).unwrap();
            let b = run_combo(UarchProfile::zen3(), t, v, 5).unwrap();
            assert_eq!(a.fetched, b.fetched);
            assert_eq!(a.decoded, b.decoded);
            assert_eq!(a.executed, b.executed);
        }
    }

    #[test]
    fn direct_training_signals_at_c_prime_not_c() {
        // Figure 5 A with B != A: "we create a copy of C to C\u{2032}, which we
        // allocate to an address that has the same relative distance from
        // the victim instruction as C has from the training instruction."
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 26);
        let text = PageFlags::USER_TEXT | PageFlags::WRITE;
        // A and B alias under zen12 (two high-bit flips hit no fold fn).
        let a_site = VirtAddr::new(0x40_0ac0);
        let b_site = VirtAddr::new(a_site.raw() ^ (1 << 38)); // untagged bit
        assert!(m.bpu().btb().scheme().family.aliases(a_site, b_site));
        let c = VirtAddr::new(0x48_0b40);
        let c_prime = VirtAddr::new(b_site.raw().wrapping_add(c - a_site));
        m.map_range(a_site.page_base(), 0x1000, text).unwrap();
        m.map_range(b_site.page_base(), 0x1000, text).unwrap();
        m.map_range(c.page_base(), 0x1000, text).unwrap();
        m.map_range(c_prime.page_base(), 0x1000, text).unwrap();
        m.map_range(VirtAddr::new(0x60_0000), 64, PageFlags::USER_DATA)
            .unwrap();
        m.set_reg(Reg::R8, 0x60_0000);
        m.poke(c, &payload_bytes());
        m.poke(c_prime, &payload_bytes());

        // Train a direct jmp at A -> C.
        let disp = (c.raw() as i64 - (a_site.raw() as i64 + 5)) as i32;
        let mut bytes = emit(&Inst::Jmp { disp });
        bytes.push(0xf4);
        m.poke(a_site, &bytes);
        m.set_pc(a_site);
        m.run(8).unwrap();

        // Victim: nops at B. Flush both candidate targets.
        m.poke(b_site, &[0x90, 0x90, 0xf4]);
        m.caches_mut().flush_all();
        m.set_pc(b_site);
        let (_, reports) = m.run_collecting(8).unwrap();
        let report = reports.first().expect("phantom fires at the alias");
        assert_eq!(
            report.target,
            Some(c_prime),
            "the PC-relative entry steers to C\u{2032}, not C"
        );
        // And only C'\u{2019}s line entered the I-cache.
        let pa = |va: VirtAddr, m: &Machine| {
            m.page_table()
                .translate(
                    va,
                    phantom_mem::AccessKind::Execute,
                    phantom_mem::PrivilegeLevel::User,
                )
                .unwrap()
                .raw()
        };
        assert!(m.caches().probe_l1i(pa(c_prime, &m)));
        assert!(!m.caches().probe_l1i(pa(c, &m)), "C itself stays cold");
    }
}
