//! The trial runner: every repeated measurement in this crate — the
//! Table 1 sweep, the Table 2 covert channels, the Table 3–5 reboot
//! sweeps, the §7.4 leak, the mitigation-overhead suite — is expressed
//! as a [`Scenario`] and driven by a [`TrialRunner`].
//!
//! # The scenario contract
//!
//! A scenario splits an experiment into six phases:
//!
//! 1. [`setup`](Scenario::setup) — build the world (a machine or a
//!    booted [`System`](phantom_kernel::System), channels, geography).
//!    Called **once per run**, never per shard;
//! 2. [`train`](Scenario::train) — put the world into the measured
//!    configuration (warm predictors, prime caches). Optional;
//! 3. [`checkpoint`](Scenario::checkpoint) — seal the trained world
//!    into an immutable, thread-shareable fork point;
//! 4. [`fork`](Scenario::fork) — stamp out one worker's private copy
//!    of the checkpointed world. Must reproduce the post-train state
//!    exactly;
//! 5. [`probe`](Scenario::probe) — one independent trial, producing a
//!    [`Scenario::Sample`];
//! 6. [`score`](Scenario::score) — fold all samples, **in trial
//!    order**, into the experiment's output.
//!
//! Worlds backed by a [`Machine`](phantom_pipeline::Machine) get the
//! fork for free: keep a
//! [`Checkpoint`](phantom_pipeline::Checkpoint) (or clone the whole
//! state — machine clones share physical frames copy-on-write), so a
//! fork is O(resident-frame pointer bumps) instead of a reboot.
//! Scenarios that boot a fresh world inside every probe carry no
//! shared state at all and use `type Checkpoint = ()`.
//!
//! # Determinism across worker counts
//!
//! The runner distributes trials over a work-stealing pool of worker
//! threads, so results must not depend on which worker measures which
//! trial, nor on completion order. Three rules make that hold:
//!
//! * `setup` + `train` run once and must be deterministic;
//! * every [`fork`](Scenario::fork) must be observationally identical
//!   to the post-train state (a copy-on-write clone trivially is);
//! * `probe` must be a pure function of the forked state and the
//!   [`Trial`] (its per-trial seed is derived from the base seed and
//!   the trial index only). Scenarios whose probes mutate the world
//!   rewind it first with
//!   [`Machine::restore`](phantom_pipeline::Machine::restore) /
//!   [`Checkpoint::rewind`](phantom_pipeline::Checkpoint::rewind) or
//!   rebuild it from `trial.seed`.
//!
//! Samples are folded in trial-index order regardless of which worker
//! produced them, so a 1-worker run and an N-worker run — even with
//! adversarially skewed completion order — produce byte-identical
//! outputs (`tests/determinism.rs` enforces this for the shipped
//! scenarios).

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A boxed, thread-portable error from scenario execution.
pub type ScenarioError = Box<dyn std::error::Error + Send + Sync>;

/// One independent repetition of a scenario's measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trial {
    /// Trial number, `0..Scenario::trials()`.
    pub index: usize,
    /// Per-trial seed, a pure function of the runner's base seed and
    /// `index` (never of the worker count or claim order).
    pub seed: u64,
}

/// An experiment expressed as independent, repeatable trials.
pub trait Scenario: Sync {
    /// Per-worker world state, built by [`setup`](Scenario::setup) and
    /// stamped out per worker by [`fork`](Scenario::fork).
    type State: Send;
    /// The immutable fork point produced by
    /// [`checkpoint`](Scenario::checkpoint): shared by reference
    /// across worker threads, hence `Sync`.
    type Checkpoint: Sync;
    /// The result of one trial.
    type Sample: Send;
    /// The scored output of the whole run.
    type Output;

    /// Number of trials to run.
    fn trials(&self) -> usize;

    /// Build the world. Called once per run; must be deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] if the world cannot be built.
    fn setup(&self) -> Result<Self::State, ScenarioError>;

    /// Put the world into the measured configuration. Called once,
    /// after [`setup`](Scenario::setup). Defaults to a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] on training failure.
    fn train(&self, _state: &mut Self::State) -> Result<(), ScenarioError> {
        Ok(())
    }

    /// Seal the trained world into the shared fork point. Scenarios
    /// with no shared world use `type Checkpoint = ()` and drop the
    /// state here.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] if the world cannot be sealed.
    fn checkpoint(&self, state: Self::State) -> Result<Self::Checkpoint, ScenarioError>;

    /// Stamp out one worker's private state from the checkpoint. Must
    /// be observationally identical to the post-train state — the
    /// determinism contract above rests on it.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] if the fork cannot be built.
    fn fork(&self, checkpoint: &Self::Checkpoint) -> Result<Self::State, ScenarioError>;

    /// Run one trial. Must depend only on the forked state and `trial`
    /// (see the module docs on determinism).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] on measurement failure.
    fn probe(&self, state: &mut Self::State, trial: Trial) -> Result<Self::Sample, ScenarioError>;

    /// Fold the samples (in trial order) into the final output.
    fn score(&self, samples: Vec<Self::Sample>) -> Self::Output;
}

/// Runs a [`Scenario`]'s trials on a work-stealing worker pool.
///
/// `setup → train → checkpoint` run once; each worker forks a private
/// state from the checkpoint and claims trials one at a time from a
/// shared cursor, so a straggling trial never idles the other workers
/// behind a shard boundary. Samples are folded in trial-index order,
/// which keeps outputs byte-identical at any worker count.
///
/// Cloning a runner shares its [`trial_retries`](TrialRunner::trial_retries)
/// counter (the clone observes the same tally).
#[derive(Debug, Clone)]
pub struct TrialRunner {
    threads: usize,
    retries: Arc<AtomicU64>,
}

impl Default for TrialRunner {
    fn default() -> TrialRunner {
        TrialRunner::new()
    }
}

impl TrialRunner {
    /// A runner using all available cores.
    pub fn new() -> TrialRunner {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        TrialRunner::with_threads(threads)
    }

    /// A runner with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> TrialRunner {
        TrialRunner {
            threads: threads.max(1),
            retries: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total bounded probe retries across this runner's lifetime: how
    /// many times a trial failed recoverably and was re-run on a fresh
    /// fork. Zero in a healthy run — the bench snapshot surfaces it so
    /// a scenario that silently leans on the retry path shows up in
    /// the regression gate.
    pub fn trial_retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Run all trials of `scenario` and score them.
    ///
    /// # Errors
    ///
    /// Returns the first [`ScenarioError`] from setup, training,
    /// checkpointing, forking or any probe (for probe errors, "first"
    /// means the lowest-index trial among the errors observed before
    /// the run aborted).
    pub fn run<S: Scenario>(
        &self,
        scenario: &S,
        base_seed: u64,
    ) -> Result<S::Output, ScenarioError> {
        let n = scenario.trials();
        let mut state = scenario.setup()?;
        scenario.train(&mut state)?;
        let checkpoint = scenario.checkpoint(state)?;
        let workers = self.threads.min(n.max(1));
        let samples = if workers == 1 {
            let mut state = scenario.fork(&checkpoint)?;
            let mut out = Vec::with_capacity(n);
            for index in 0..n {
                let trial = Trial {
                    index,
                    seed: trial_seed(base_seed, index),
                };
                out.push(self.probe_once(scenario, &checkpoint, &mut state, trial)?);
            }
            out
        } else {
            self.run_pool(scenario, &checkpoint, base_seed, n, workers)?
        };
        Ok(scenario.score(samples))
    }

    /// The work-stealing pool: `workers` threads race on an atomic
    /// trial cursor. Each claims the next unclaimed index, so skewed
    /// per-trial costs self-balance; the (index, sample) pairs are
    /// reassembled in index order afterwards.
    fn run_pool<S: Scenario>(
        &self,
        scenario: &S,
        checkpoint: &S::Checkpoint,
        base_seed: u64,
        n: usize,
        workers: usize,
    ) -> Result<Vec<S::Sample>, ScenarioError> {
        /// A worker's claimed-and-measured trials, or the trial index
        /// it died on (fork failures use `usize::MAX` so any real
        /// trial's error outranks them).
        type WorkerResult<T> = Result<Vec<(usize, T)>, (usize, ScenarioError)>;

        let cursor = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let results: Vec<WorkerResult<S::Sample>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut state = match scenario.fork(checkpoint) {
                            Ok(state) => state,
                            Err(e) => {
                                abort.store(true, Ordering::Relaxed);
                                return Err((usize::MAX, e));
                            }
                        };
                        let mut claimed: Vec<(usize, S::Sample)> = Vec::new();
                        while !abort.load(Ordering::Relaxed) {
                            let index = cursor.fetch_add(1, Ordering::Relaxed);
                            if index >= n {
                                break;
                            }
                            let trial = Trial {
                                index,
                                seed: trial_seed(base_seed, index),
                            };
                            match self.probe_once(scenario, checkpoint, &mut state, trial) {
                                Ok(sample) => claimed.push((index, sample)),
                                Err(e) => {
                                    abort.store(true, Ordering::Relaxed);
                                    return Err((index, e));
                                }
                            }
                        }
                        Ok(claimed)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("trial worker panicked"))
                .collect()
        });

        let mut slots: Vec<Option<S::Sample>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let mut first_error: Option<(usize, ScenarioError)> = None;
        for result in results {
            match result {
                Ok(claimed) => {
                    for (index, sample) in claimed {
                        slots[index] = Some(sample);
                    }
                }
                Err((index, e)) => {
                    if first_error.as_ref().is_none_or(|(at, _)| index < *at) {
                        first_error = Some((index, e));
                    }
                }
            }
        }
        if let Some((_, e)) = first_error {
            return Err(e);
        }
        Ok(slots
            .into_iter()
            .map(|slot| slot.expect("every claimed trial produced a sample"))
            .collect())
    }

    /// One trial with the bounded retry: a probe can fail recoverably
    /// (e.g. an eviction-set page unmapped mid-measurement surfaces as
    /// a `ProbeError`), so re-fork a fresh world from the checkpoint
    /// once and retry the same trial. Determinism holds because a
    /// fresh fork is exactly the post-train state the probe contract
    /// requires. A second failure is treated as systematic and
    /// propagated. Every retry is tallied in
    /// [`trial_retries`](TrialRunner::trial_retries).
    fn probe_once<S: Scenario>(
        &self,
        scenario: &S,
        checkpoint: &S::Checkpoint,
        state: &mut S::State,
        trial: Trial,
    ) -> Result<S::Sample, ScenarioError> {
        match scenario.probe(state, trial) {
            Ok(sample) => Ok(sample),
            Err(_first) => {
                self.retries.fetch_add(1, Ordering::Relaxed);
                *state = scenario.fork(checkpoint)?;
                scenario.probe(state, trial)
            }
        }
    }
}

/// Adapter that deliberately *defeats* checkpoint reuse: every fork
/// re-runs the wrapped scenario's `setup` + `train` from scratch, as a
/// pre-checkpoint runner would have. Samples and scores are unchanged
/// (the contract requires `fork` to reproduce the post-train state), so
/// the only observable difference is wall-clock — which is exactly what
/// the boot-per-trial vs fork-per-trial A/B in `repro serve --ab`
/// measures.
#[derive(Debug, Clone, Copy)]
pub struct BootEveryFork<S>(pub S);

impl<S: Scenario> Scenario for BootEveryFork<S> {
    type State = S::State;
    type Checkpoint = ();
    type Sample = S::Sample;
    type Output = S::Output;

    fn trials(&self) -> usize {
        self.0.trials()
    }

    fn setup(&self) -> Result<Self::State, ScenarioError> {
        self.0.setup()
    }

    fn train(&self, state: &mut Self::State) -> Result<(), ScenarioError> {
        self.0.train(state)
    }

    fn checkpoint(&self, state: Self::State) -> Result<(), ScenarioError> {
        // The trained state is discarded; forks rebuild it.
        drop(state);
        Ok(())
    }

    fn fork(&self, (): &()) -> Result<Self::State, ScenarioError> {
        let mut state = self.0.setup()?;
        self.0.train(&mut state)?;
        Ok(state)
    }

    fn probe(&self, state: &mut Self::State, trial: Trial) -> Result<Self::Sample, ScenarioError> {
        self.0.probe(state, trial)
    }

    fn score(&self, samples: Vec<Self::Sample>) -> Self::Output {
        self.0.score(samples)
    }
}

/// Derive the seed for trial `index` from the run's base seed. A pure
/// function of its arguments (SplitMix64 over both), so per-trial
/// randomness never depends on worker count or claim order.
pub fn trial_seed(base_seed: u64, index: usize) -> u64 {
    splitmix64(base_seed ^ splitmix64(0x5851_f42d_4c95_7f2d ^ index as u64))
}

/// Majority vote over `total` redundant probes of one bit. Ties (and an
/// empty vote) are `false` — callers that need to distinguish a tie
/// from a 0-majority use
/// [`VoteTally::majority`](phantom_sidechannel::VoteTally::majority)
/// via the adaptive decoder instead.
pub fn majority(votes: u32, total: u32) -> bool {
    votes * 2 > total
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy scenario: each trial hashes its seed; score concatenates.
    struct Hashing {
        n: usize,
    }

    impl Scenario for Hashing {
        type State = u64;
        type Checkpoint = u64;
        type Sample = (usize, u64);
        type Output = Vec<(usize, u64)>;

        fn trials(&self) -> usize {
            self.n
        }

        fn setup(&self) -> Result<u64, ScenarioError> {
            Ok(17)
        }

        fn checkpoint(&self, state: u64) -> Result<u64, ScenarioError> {
            Ok(state)
        }

        fn fork(&self, checkpoint: &u64) -> Result<u64, ScenarioError> {
            Ok(*checkpoint)
        }

        fn probe(&self, state: &mut u64, trial: Trial) -> Result<(usize, u64), ScenarioError> {
            // Worker-local mutation is fine as long as the sample does
            // not depend on it; this checks the runner, not the rules.
            *state = state.wrapping_add(1);
            Ok((trial.index, trial.seed))
        }

        fn score(&self, samples: Vec<(usize, u64)>) -> Vec<(usize, u64)> {
            samples
        }
    }

    #[test]
    fn order_is_preserved_at_any_worker_count() {
        let base = TrialRunner::with_threads(1)
            .run(&Hashing { n: 23 }, 9)
            .unwrap();
        assert_eq!(base.len(), 23);
        for (i, &(index, seed)) in base.iter().enumerate() {
            assert_eq!(index, i);
            assert_eq!(seed, trial_seed(9, i));
        }
        for threads in [2, 3, 7, 64] {
            let pooled = TrialRunner::with_threads(threads)
                .run(&Hashing { n: 23 }, 9)
                .unwrap();
            assert_eq!(pooled, base, "{threads} workers");
        }
    }

    #[test]
    fn trial_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..100).map(|i| trial_seed(42, i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "no per-trial seed collisions");
        assert_eq!(trial_seed(42, 7), trial_seed(42, 7));
        assert_ne!(trial_seed(42, 7), trial_seed(43, 7));
    }

    struct Failing;

    impl Scenario for Failing {
        type State = ();
        type Checkpoint = ();
        type Sample = ();
        type Output = ();

        fn trials(&self) -> usize {
            4
        }

        fn setup(&self) -> Result<(), ScenarioError> {
            Ok(())
        }

        fn checkpoint(&self, (): ()) -> Result<(), ScenarioError> {
            Ok(())
        }

        fn fork(&self, (): &()) -> Result<(), ScenarioError> {
            Ok(())
        }

        fn probe(&self, _state: &mut (), trial: Trial) -> Result<(), ScenarioError> {
            if trial.index == 2 {
                return Err("trial 2 exploded".into());
            }
            Ok(())
        }

        fn score(&self, _samples: Vec<()>) {}
    }

    #[test]
    fn probe_errors_propagate() {
        // `Failing` errors deterministically, so the one bounded retry
        // fails too and the error still reaches the caller.
        for threads in [1, 4] {
            let runner = TrialRunner::with_threads(threads);
            let err = runner.run(&Failing, 0).unwrap_err();
            assert!(
                err.to_string().contains("trial 2"),
                "{threads} workers: {err}"
            );
            // Even the failed retry is tallied.
            assert_eq!(runner.trial_retries(), 1, "{threads} workers");
        }
    }

    /// A scenario whose trial 2 fails on the first attempt only —
    /// the shape of a recoverable `ProbeError`.
    struct FlakyOnce {
        attempts: std::sync::atomic::AtomicUsize,
        setups: std::sync::atomic::AtomicUsize,
        forks: std::sync::atomic::AtomicUsize,
    }

    impl FlakyOnce {
        fn new() -> FlakyOnce {
            FlakyOnce {
                attempts: std::sync::atomic::AtomicUsize::new(0),
                setups: std::sync::atomic::AtomicUsize::new(0),
                forks: std::sync::atomic::AtomicUsize::new(0),
            }
        }
    }

    impl Scenario for FlakyOnce {
        type State = u64;
        type Checkpoint = u64;
        type Sample = usize;
        type Output = Vec<usize>;

        fn trials(&self) -> usize {
            5
        }

        fn setup(&self) -> Result<u64, ScenarioError> {
            self.setups
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(7)
        }

        fn checkpoint(&self, state: u64) -> Result<u64, ScenarioError> {
            Ok(state)
        }

        fn fork(&self, checkpoint: &u64) -> Result<u64, ScenarioError> {
            self.forks.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(*checkpoint)
        }

        fn probe(&self, state: &mut u64, trial: Trial) -> Result<usize, ScenarioError> {
            assert_eq!(*state, 7, "retry re-forked the post-train state");
            if trial.index == 2
                && self
                    .attempts
                    .fetch_add(1, std::sync::atomic::Ordering::SeqCst)
                    == 0
            {
                return Err("eviction set unmapped mid-probe".into());
            }
            Ok(trial.index)
        }

        fn score(&self, samples: Vec<usize>) -> Vec<usize> {
            samples
        }
    }

    #[test]
    fn transient_probe_failure_is_retried_on_a_fresh_fork() {
        for threads in [1, 4] {
            let flaky = FlakyOnce::new();
            let runner = TrialRunner::with_threads(threads);
            let out = runner
                .run(&flaky, 0)
                .unwrap_or_else(|e| panic!("{threads} workers: {e}"));
            assert_eq!(out, vec![0, 1, 2, 3, 4], "{threads} workers");
            assert_eq!(
                flaky.setups.load(std::sync::atomic::Ordering::SeqCst),
                1,
                "{threads} workers: the world boots exactly once"
            );
            let workers = threads.min(5);
            assert_eq!(
                flaky.forks.load(std::sync::atomic::Ordering::SeqCst),
                workers + 1,
                "{threads} workers: one fork per worker plus one retry"
            );
            assert_eq!(runner.trial_retries(), 1, "{threads} workers");
        }
    }

    #[test]
    fn retry_counter_is_shared_across_clones_and_runs() {
        let runner = TrialRunner::with_threads(2);
        let observer = runner.clone();
        assert_eq!(observer.trial_retries(), 0);
        runner.run(&FlakyOnce::new(), 0).unwrap();
        runner.run(&FlakyOnce::new(), 0).unwrap();
        assert_eq!(runner.trial_retries(), 2, "one retry per flaky run");
        assert_eq!(observer.trial_retries(), 2, "clones share the tally");
    }

    #[test]
    fn majority_votes() {
        assert!(majority(2, 3));
        assert!(!majority(1, 3));
        assert!(!majority(0, 1));
        assert!(majority(1, 1));
    }

    #[test]
    fn majority_breaks_ties_and_even_votes_conservatively() {
        // An exact tie never decodes as 1.
        assert!(!majority(1, 2));
        assert!(!majority(2, 4));
        assert!(!majority(0, 0));
        // Even totals with a real majority still decode.
        assert!(majority(3, 4));
        assert!(!majority(1, 4));
    }
}
