//! The trial runner: every repeated measurement in this crate — the
//! Table 1 sweep, the Table 2 covert channels, the Table 3–5 reboot
//! sweeps, the §7.4 leak, the mitigation-overhead suite — is expressed
//! as a [`Scenario`] and driven by a [`TrialRunner`].
//!
//! # The scenario contract
//!
//! A scenario splits an experiment into four phases:
//!
//! 1. [`setup`](Scenario::setup) — build the world (a machine or a
//!    booted [`System`](phantom_kernel::System), channels, geography);
//! 2. [`train`](Scenario::train) — put the world into the measured
//!    configuration (warm predictors, prime caches). Optional;
//! 3. [`probe`](Scenario::probe) — one independent trial, producing a
//!    [`Scenario::Sample`];
//! 4. [`score`](Scenario::score) — fold all samples, **in trial
//!    order**, into the experiment's output.
//!
//! # Determinism across thread counts
//!
//! The runner shards trials over threads, so results must not depend on
//! the sharding. Two rules make that hold:
//!
//! * `setup` + `train` must be deterministic: every shard builds its
//!   own state by calling them, and all shards must end up with
//!   identical worlds;
//! * `probe` must be a pure function of the post-train state and the
//!   [`Trial`] (its per-trial seed is derived from the base seed and
//!   the trial index only). Scenarios whose probes mutate the world
//!   rewind it first with
//!   [`Machine::restore`](phantom_pipeline::Machine::restore) or
//!   rebuild it from `trial.seed`.
//!
//! Under those rules a 1-thread run and an N-thread run produce
//! byte-identical outputs (`tests/determinism.rs` enforces this for the
//! shipped scenarios).

use std::num::NonZeroUsize;

/// A boxed, thread-portable error from scenario execution.
pub type ScenarioError = Box<dyn std::error::Error + Send + Sync>;

/// One independent repetition of a scenario's measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trial {
    /// Trial number, `0..Scenario::trials()`.
    pub index: usize,
    /// Per-trial seed, a pure function of the runner's base seed and
    /// `index` (never of the thread count or shard layout).
    pub seed: u64,
}

/// An experiment expressed as independent, repeatable trials.
pub trait Scenario: Sync {
    /// Per-shard world state built by [`setup`](Scenario::setup).
    type State: Send;
    /// The result of one trial.
    type Sample: Send;
    /// The scored output of the whole run.
    type Output;

    /// Number of trials to run.
    fn trials(&self) -> usize;

    /// Build the world. Called once per shard; must be deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] if the world cannot be built.
    fn setup(&self) -> Result<Self::State, ScenarioError>;

    /// Put the world into the measured configuration. Called once per
    /// shard, after [`setup`](Scenario::setup). Defaults to a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] on training failure.
    fn train(&self, _state: &mut Self::State) -> Result<(), ScenarioError> {
        Ok(())
    }

    /// Run one trial. Must depend only on the post-train state and
    /// `trial` (see the module docs on determinism).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] on measurement failure.
    fn probe(&self, state: &mut Self::State, trial: Trial) -> Result<Self::Sample, ScenarioError>;

    /// Fold the samples (in trial order) into the final output.
    fn score(&self, samples: Vec<Self::Sample>) -> Self::Output;
}

/// Runs a [`Scenario`]'s trials, sharded across OS threads.
///
/// Trials are split into contiguous chunks, one per thread; each thread
/// runs `setup` → `train` once and probes its chunk. Sample order is
/// preserved, so outputs are identical at any thread count.
#[derive(Debug, Clone, Copy)]
pub struct TrialRunner {
    threads: usize,
}

impl Default for TrialRunner {
    fn default() -> TrialRunner {
        TrialRunner::new()
    }
}

impl TrialRunner {
    /// A runner using all available cores.
    pub fn new() -> TrialRunner {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        TrialRunner { threads }
    }

    /// A runner with an explicit thread count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> TrialRunner {
        TrialRunner {
            threads: threads.max(1),
        }
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run all trials of `scenario` and score them.
    ///
    /// # Errors
    ///
    /// Returns the first [`ScenarioError`] from setup, training or any
    /// probe.
    pub fn run<S: Scenario>(
        &self,
        scenario: &S,
        base_seed: u64,
    ) -> Result<S::Output, ScenarioError> {
        let n = scenario.trials();
        let samples = if self.threads == 1 || n <= 1 {
            run_shard(scenario, base_seed, 0, n)?
        } else {
            let shards = shard_sizes(n, self.threads);
            let results = std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter()
                    .map(|&(start, len)| {
                        scope.spawn(move || run_shard(scenario, base_seed, start, len))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("trial shard panicked"))
                    .collect::<Vec<_>>()
            });
            let mut samples = Vec::with_capacity(n);
            for shard in results {
                samples.extend(shard?);
            }
            samples
        };
        Ok(scenario.score(samples))
    }
}

/// Derive the seed for trial `index` from the run's base seed. A pure
/// function of its arguments (SplitMix64 over both), so per-trial
/// randomness never depends on thread count or execution order.
pub fn trial_seed(base_seed: u64, index: usize) -> u64 {
    splitmix64(base_seed ^ splitmix64(0x5851_f42d_4c95_7f2d ^ index as u64))
}

/// Majority vote over `total` redundant probes of one bit. Ties (and an
/// empty vote) are `false` — callers that need to distinguish a tie
/// from a 0-majority use
/// [`VoteTally::majority`](phantom_sidechannel::VoteTally::majority)
/// via the adaptive decoder instead.
pub fn majority(votes: u32, total: u32) -> bool {
    votes * 2 > total
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn run_shard<S: Scenario>(
    scenario: &S,
    base_seed: u64,
    start: usize,
    len: usize,
) -> Result<Vec<S::Sample>, ScenarioError> {
    let mut state = scenario.setup()?;
    scenario.train(&mut state)?;
    let mut out = Vec::with_capacity(len);
    for index in start..start + len {
        let trial = Trial {
            index,
            seed: trial_seed(base_seed, index),
        };
        match scenario.probe(&mut state, trial) {
            Ok(sample) => out.push(sample),
            Err(_first) => {
                // A probe can fail recoverably (e.g. an eviction-set
                // page unmapped mid-measurement surfaces as a
                // `ProbeError`): rebuild the world once and retry the
                // same trial. Determinism holds because a fresh
                // setup+train state is exactly the post-train state
                // the probe contract requires. A second failure is
                // treated as systematic and propagated.
                state = scenario.setup()?;
                scenario.train(&mut state)?;
                out.push(scenario.probe(&mut state, trial)?);
            }
        }
    }
    Ok(out)
}

/// Split `n` trials into at most `threads` contiguous non-empty
/// `(start, len)` chunks.
fn shard_sizes(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let shards = threads.min(n).max(1);
    let base = n / shards;
    let extra = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        out.push((start, len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy scenario: each trial hashes its seed; score concatenates.
    struct Hashing {
        n: usize,
    }

    impl Scenario for Hashing {
        type State = u64;
        type Sample = (usize, u64);
        type Output = Vec<(usize, u64)>;

        fn trials(&self) -> usize {
            self.n
        }

        fn setup(&self) -> Result<u64, ScenarioError> {
            Ok(17)
        }

        fn probe(&self, state: &mut u64, trial: Trial) -> Result<(usize, u64), ScenarioError> {
            // Shard-local mutation is fine as long as the sample does
            // not depend on it; this checks the runner, not the rules.
            *state = state.wrapping_add(1);
            Ok((trial.index, trial.seed))
        }

        fn score(&self, samples: Vec<(usize, u64)>) -> Vec<(usize, u64)> {
            samples
        }
    }

    #[test]
    fn order_is_preserved_at_any_thread_count() {
        let base = TrialRunner::with_threads(1)
            .run(&Hashing { n: 23 }, 9)
            .unwrap();
        assert_eq!(base.len(), 23);
        for (i, &(index, seed)) in base.iter().enumerate() {
            assert_eq!(index, i);
            assert_eq!(seed, trial_seed(9, i));
        }
        for threads in [2, 3, 7, 64] {
            let sharded = TrialRunner::with_threads(threads)
                .run(&Hashing { n: 23 }, 9)
                .unwrap();
            assert_eq!(sharded, base, "{threads} threads");
        }
    }

    #[test]
    fn trial_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..100).map(|i| trial_seed(42, i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "no per-trial seed collisions");
        assert_eq!(trial_seed(42, 7), trial_seed(42, 7));
        assert_ne!(trial_seed(42, 7), trial_seed(43, 7));
    }

    #[test]
    fn shard_sizes_cover_exactly_once() {
        for (n, threads) in [(10, 3), (1, 8), (23, 7), (8, 8), (100, 1)] {
            let shards = shard_sizes(n, threads);
            assert!(shards.len() <= threads);
            let mut covered = 0;
            for &(start, len) in &shards {
                assert_eq!(start, covered, "contiguous");
                assert!(len > 0, "no empty shards");
                covered += len;
            }
            assert_eq!(covered, n);
        }
    }

    struct Failing;

    impl Scenario for Failing {
        type State = ();
        type Sample = ();
        type Output = ();

        fn trials(&self) -> usize {
            4
        }

        fn setup(&self) -> Result<(), ScenarioError> {
            Ok(())
        }

        fn probe(&self, _state: &mut (), trial: Trial) -> Result<(), ScenarioError> {
            if trial.index == 2 {
                return Err("trial 2 exploded".into());
            }
            Ok(())
        }

        fn score(&self, _samples: Vec<()>) {}
    }

    #[test]
    fn probe_errors_propagate() {
        // `Failing` errors deterministically, so the one bounded retry
        // fails too and the error still reaches the caller.
        for threads in [1, 4] {
            let err = TrialRunner::with_threads(threads)
                .run(&Failing, 0)
                .unwrap_err();
            assert!(
                err.to_string().contains("trial 2"),
                "{threads} threads: {err}"
            );
        }
    }

    /// A scenario whose trial 2 fails on the first attempt only —
    /// the shape of a recoverable `ProbeError`.
    struct FlakyOnce {
        attempts: std::sync::atomic::AtomicUsize,
        setups: std::sync::atomic::AtomicUsize,
    }

    impl Scenario for FlakyOnce {
        type State = u64;
        type Sample = usize;
        type Output = Vec<usize>;

        fn trials(&self) -> usize {
            5
        }

        fn setup(&self) -> Result<u64, ScenarioError> {
            self.setups
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(7)
        }

        fn probe(&self, state: &mut u64, trial: Trial) -> Result<usize, ScenarioError> {
            assert_eq!(*state, 7, "retry rebuilt the post-train state");
            if trial.index == 2
                && self
                    .attempts
                    .fetch_add(1, std::sync::atomic::Ordering::SeqCst)
                    == 0
            {
                return Err("eviction set unmapped mid-probe".into());
            }
            Ok(trial.index)
        }

        fn score(&self, samples: Vec<usize>) -> Vec<usize> {
            samples
        }
    }

    #[test]
    fn transient_probe_failure_is_retried_on_a_fresh_world() {
        for threads in [1, 4] {
            let flaky = FlakyOnce {
                attempts: std::sync::atomic::AtomicUsize::new(0),
                setups: std::sync::atomic::AtomicUsize::new(0),
            };
            let out = TrialRunner::with_threads(threads)
                .run(&flaky, 0)
                .unwrap_or_else(|e| panic!("{threads} threads: {e}"));
            assert_eq!(out, vec![0, 1, 2, 3, 4], "{threads} threads");
            let shards = threads.min(5);
            assert_eq!(
                flaky.setups.load(std::sync::atomic::Ordering::SeqCst),
                shards + 1,
                "{threads} threads: one setup per shard plus one rebuild"
            );
        }
    }

    #[test]
    fn majority_votes() {
        assert!(majority(2, 3));
        assert!(!majority(1, 3));
        assert!(!majority(0, 1));
        assert!(majority(1, 1));
    }

    #[test]
    fn majority_breaks_ties_and_even_votes_conservatively() {
        // An exact tie never decodes as 1.
        assert!(!majority(1, 2));
        assert!(!majority(2, 4));
        assert!(!majority(0, 0));
        // Even totals with a real majority still decode.
        assert!(majority(3, 4));
        assert!(!majority(1, 4));
    }
}
