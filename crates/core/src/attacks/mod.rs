//! §7 — the end-to-end exploits.
//!
//! * [`kaslr_image`] — derandomize the kernel image with P1 (**Table 3**);
//! * [`physmap`] — derandomize physmap with P2 on Zen 1/2 (**Table 4**);
//! * [`physaddr`] — find the physical address of an attacker page via
//!   physmap + Flush+Reload (**Table 5**);
//! * [`mds_leak`] — leak arbitrary kernel memory by nesting a PHANTOM
//!   steer inside a Spectre window over a single-load MDS gadget (§7.4).
//!
//! Every attack consults the system's ground truth **only** to score its
//! own guess; the guess itself is derived from side-channel measurements.

pub mod kaslr_image;
pub mod mds_leak;
pub mod physaddr;
pub mod physmap;

pub use kaslr_image::{break_kaslr_image, KaslrImageConfig, KaslrImageResult};
pub use mds_leak::{leak_kernel_memory, MdsLeakConfig, MdsLeakResult};
pub use physaddr::{find_physical_address, PhysAddrConfig, PhysAddrResult};
pub use physmap::{break_physmap, PhysmapConfig, PhysmapResult};

/// Common error type for attack execution.
#[derive(Debug)]
pub struct AttackError(pub String);

impl std::fmt::Display for AttackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "attack failed: {}", self.0)
    }
}

impl std::error::Error for AttackError {}

impl From<crate::primitives::PrimitiveError> for AttackError {
    fn from(e: crate::primitives::PrimitiveError) -> Self {
        AttackError(e.to_string())
    }
}

impl From<phantom_kernel::SystemError> for AttackError {
    fn from(e: phantom_kernel::SystemError) -> Self {
        AttackError(e.to_string())
    }
}
