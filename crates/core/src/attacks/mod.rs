//! §7 — the end-to-end exploits.
//!
//! * [`kaslr_image`] — derandomize the kernel image with P1 (**Table 3**);
//! * [`physmap`] — derandomize physmap with P2 on Zen 1/2 (**Table 4**);
//! * [`physaddr`] — find the physical address of an attacker page via
//!   physmap + Flush+Reload (**Table 5**);
//! * [`mds_leak`] — leak arbitrary kernel memory by nesting a PHANTOM
//!   steer inside a Spectre window over a single-load MDS gadget (§7.4);
//! * [`branch_spectre`] — recover a victim's branch outcome through the
//!   conditional-branch predictor itself (PHT state, no cache probe),
//!   via a spec-derived out-of-place alias.
//!
//! Every attack consults the system's ground truth **only** to score its
//! own guess; the guess itself is derived from side-channel measurements.

pub mod branch_spectre;
pub mod kaslr_image;
pub mod mds_leak;
pub mod physaddr;
pub mod physmap;

pub use branch_spectre::{
    out_of_place_cbp_alias, out_of_place_cbp_aliases, pht_channel, pht_channel_decoded_on,
    pht_channel_on, PhtChannelConfig, PhtChannelResult,
};
pub use kaslr_image::{break_kaslr_image, KaslrImageConfig, KaslrImageResult, KaslrImageSweep};
pub use mds_leak::{leak_kernel_memory, MdsLeakConfig, MdsLeakResult, MdsLeakSweep};
pub use physaddr::{find_physical_address, PhysAddrConfig, PhysAddrResult, PhysAddrSweep};
pub use physmap::{break_physmap, PhysmapConfig, PhysmapResult, PhysmapSweep};

/// A scan window of `width` slots guaranteed to contain `actual`
/// (`width == 0` scans everything). Using a window scales the runtime
/// linearly while preserving the per-candidate discrimination problem;
/// the full scan is the same loop over more candidates.
pub fn scan_window(actual: u64, width: u64, total: u64) -> std::ops::Range<u64> {
    if width == 0 || width >= total {
        return 0..total;
    }
    let lo = actual.saturating_sub(width / 2).min(total - width);
    lo..lo + width
}

/// Normalize a candidate scan's winning margin into a confidence in
/// `[0, 1]`: the gap between the best and runner-up
/// [`bounded_score`](phantom_sidechannel::bounded_score) relative to
/// the maximum attainable score over `sets` monitored sets. A
/// non-positive winning score is indistinguishable from noise and
/// scores 0 outright.
pub fn score_confidence(best: i64, runner_up: i64, sets: usize) -> f64 {
    if best <= 0 {
        return 0.0;
    }
    let full = (sets as i64 * phantom_sidechannel::SCORE_CLAMP).max(1) as f64;
    ((best - runner_up).max(0) as f64 / full).clamp(0.0, 1.0)
}

/// Common error type for attack execution.
#[derive(Debug)]
pub struct AttackError(pub String);

impl std::fmt::Display for AttackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "attack failed: {}", self.0)
    }
}

impl std::error::Error for AttackError {}

impl From<crate::primitives::PrimitiveError> for AttackError {
    fn from(e: crate::primitives::PrimitiveError) -> Self {
        AttackError(e.to_string())
    }
}

impl From<phantom_kernel::SystemError> for AttackError {
    fn from(e: phantom_kernel::SystemError) -> Self {
        AttackError(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_window_always_contains_actual() {
        for (actual, width, total) in [(0u64, 16u64, 488u64), (487, 16, 488), (200, 0, 488)] {
            let w = scan_window(actual, width, total);
            assert!(w.contains(&actual), "{actual} {width} {total}");
            assert!(w.end <= total);
        }
    }

    #[test]
    fn score_confidence_normalizes_the_winning_margin() {
        // A full-scale gap over 3 sets (3 × SCORE_CLAMP) is certainty.
        assert_eq!(score_confidence(30, 0, 3), 1.0);
        assert_eq!(score_confidence(15, 0, 3), 0.5);
        assert_eq!(score_confidence(20, 14, 3), 0.2);
        // Noise-level winners carry no confidence.
        assert_eq!(score_confidence(0, -5, 3), 0.0);
        assert_eq!(score_confidence(-2, -5, 3), 0.0);
        // A runner-up above the winner clamps instead of going negative.
        assert_eq!(score_confidence(5, 9, 3), 0.0);
        assert_eq!(score_confidence(100, 0, 3), 1.0, "clamped to 1");
    }
}
