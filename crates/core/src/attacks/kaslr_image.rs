//! §7.1 — breaking kernel image KASLR with P1 (**Table 3**).
//!
//! KASLR places the kernel image in one of 488 slots. For each candidate
//! slot the attacker injects a `jmp*` prediction at the candidate's
//! Listing 1 nop address (the instruction `getpid()` executes), pointed
//! at a candidate-relative target that maps to a chosen I-cache set.
//! Only when the candidate is *correct* does the kernel actually execute
//! an instruction in that alias class, fire the prediction, and
//! transiently fetch the target — visible via Prime+Probe. The §7.3
//! bounded relative score over several sets overcomes probe noise.

use phantom_kernel::image::LISTING1_OFFSET;
use phantom_kernel::layout::{KaslrLayout, KERNEL_IMAGE_SLOTS};
use phantom_kernel::System;
use phantom_mem::VirtAddr;
use phantom_pipeline::UarchProfile;
use phantom_sidechannel::{bounded_score, NoiseModel};

use crate::attacks::{scan_window, score_confidence, AttackError};
use crate::primitives::{p1_probe_in_set, PrimitiveConfig};
use crate::runner::{Scenario, ScenarioError, Trial};

/// Configuration for the kernel-image KASLR break.
#[derive(Debug, Clone)]
pub struct KaslrImageConfig {
    /// Candidate slots to scan (default: all 488; tests narrow this to
    /// keep runtimes sane).
    pub slots: std::ops::Range<u64>,
    /// Number of I-cache sets scored per candidate (§7.3 uses all 64;
    /// a handful suffices at simulator noise levels).
    pub sets_per_candidate: usize,
    /// Measurement repetitions per set (averaging out spurious
    /// evictions).
    pub reps: usize,
    /// Noise seed.
    pub seed: u64,
}

impl Default for KaslrImageConfig {
    fn default() -> KaslrImageConfig {
        KaslrImageConfig {
            slots: 0..KERNEL_IMAGE_SLOTS,
            sets_per_candidate: 3,
            reps: 4,
            seed: 0,
        }
    }
}

/// Result of one derandomization run.
#[derive(Debug, Clone, Copy)]
pub struct KaslrImageResult {
    /// The attacker's best guess.
    pub guessed_slot: u64,
    /// Ground truth (scoring only).
    pub actual_slot: u64,
    /// Whether the guess was right.
    pub correct: bool,
    /// The winning score.
    pub best_score: i64,
    /// How decisively the winner beat the runner-up, in `[0, 1]`
    /// (see [`score_confidence`]).
    pub confidence: f64,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// Simulated seconds consumed.
    pub seconds: f64,
}

/// Run the attack on a booted system.
///
/// # Errors
///
/// Returns [`AttackError`] on primitive failure.
pub fn break_kaslr_image(
    sys: &mut System,
    config: &KaslrImageConfig,
) -> Result<KaslrImageResult, AttackError> {
    let attacker = VirtAddr::new(0x5000_0000);
    let cfg = PrimitiveConfig::for_system(sys, attacker);
    let mut noise = NoiseModel::realistic(config.seed);
    let start_cycles = sys.machine().cycles();

    let mut best: Option<(u64, i64)> = None;
    let mut runner_up: i64 = 0;
    for slot in config.slots.clone() {
        let candidate_base = KaslrLayout::candidate_image_base(slot);
        let victim = candidate_base + LISTING1_OFFSET;

        let mut signal = Vec::with_capacity(config.sets_per_candidate);
        let mut baseline = Vec::with_capacity(config.sets_per_candidate);
        for i in 0..config.sets_per_candidate {
            // Monitored set S and a candidate-relative target inside
            // the (hypothetical) image that maps to S. The +0x2000
            // region is executable padding in every image.
            let set = (11 + i * 17) % 64;
            let t_s = candidate_base + 0x2000 + (set as u64) * 64;
            // Baseline: the injected target selects a different set, so
            // set S should stay quiet even for the correct candidate.
            let b_s = candidate_base + 0x2000 + (((set + 32) % 64) as u64) * 64;
            let (mut t_ev, mut b_ev) = (0u64, 0u64);
            for _ in 0..config.reps.max(1) {
                t_ev += p1_probe_in_set(sys, &cfg, victim, t_s, set, &mut noise)?.evictions as u64;
                b_ev += p1_probe_in_set(sys, &cfg, victim, b_s, set, &mut noise)?.evictions as u64;
            }
            signal.push(t_ev);
            baseline.push(b_ev);
        }
        let score = bounded_score(&signal, &baseline);
        match best {
            Some((_, s)) if score > s => {
                runner_up = s;
                best = Some((slot, score));
            }
            Some(_) => runner_up = runner_up.max(score),
            None => best = Some((slot, score)),
        }
    }

    let (guessed_slot, best_score) = best.expect("non-empty slot range");
    let actual_slot = sys.layout().image_slot;
    let cycles = sys.machine().cycles() - start_cycles;
    Ok(KaslrImageResult {
        guessed_slot,
        actual_slot,
        correct: guessed_slot == actual_slot,
        best_score,
        confidence: score_confidence(best_score, runner_up, config.sets_per_candidate),
        cycles,
        seconds: sys.machine().profile().cycles_to_seconds(cycles),
    })
}

/// The Table 3 sweep as a trial scenario: one kernel-image KASLR break
/// per trial, each on its own freshly booted (rebooted) [`System`].
#[derive(Debug, Clone)]
pub struct KaslrImageSweep {
    /// Microarchitecture under attack.
    pub profile: UarchProfile,
    /// Number of reboots (trials).
    pub runs: usize,
    /// Scanned window per run, in slots (0 = full 488).
    pub window: u64,
    /// Base seed; run `r` boots with `seed + r`.
    pub seed: u64,
}

impl Scenario for KaslrImageSweep {
    type State = ();
    type Checkpoint = ();
    type Sample = KaslrImageResult;
    type Output = Vec<KaslrImageResult>;

    fn trials(&self) -> usize {
        self.runs
    }

    fn setup(&self) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn checkpoint(&self, (): ()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn fork(&self, (): &()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn probe(&self, _state: &mut (), trial: Trial) -> Result<KaslrImageResult, ScenarioError> {
        let seed = self.seed + trial.index as u64;
        let mut sys =
            System::new(self.profile.clone(), 1 << 30, seed).map_err(AttackError::from)?;
        let slots = scan_window(sys.layout().image_slot, self.window, KERNEL_IMAGE_SLOTS);
        let config = KaslrImageConfig {
            slots,
            seed,
            ..Default::default()
        };
        Ok(break_kaslr_image(&mut sys, &config)?)
    }

    fn score(&self, samples: Vec<KaslrImageResult>) -> Vec<KaslrImageResult> {
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scan a window of slots guaranteed to contain the truth.
    fn window_around(actual: u64, width: u64) -> std::ops::Range<u64> {
        let lo = actual.saturating_sub(width / 2);
        lo..(lo + width).min(KERNEL_IMAGE_SLOTS)
    }

    #[test]
    fn finds_the_kernel_image_on_zen3() {
        let mut sys = System::new(UarchProfile::zen3(), 1 << 30, 21).unwrap();
        let actual = sys.layout().image_slot;
        let config = KaslrImageConfig {
            slots: window_around(actual, 24),
            // missed_signal noise drops real evictions; a couple of
            // extra repetitions restore the §7.3 score separation.
            reps: 6,
            ..Default::default()
        };
        let r = break_kaslr_image(&mut sys, &config).unwrap();
        assert!(
            r.correct,
            "guessed {} actual {}",
            r.guessed_slot, r.actual_slot
        );
        assert!(r.best_score > 0);
        assert!(r.confidence > 0.0, "a true hit is decisive: {r:?}");
        assert!(r.seconds > 0.0);
    }

    #[test]
    fn finds_the_kernel_image_on_zen4_despite_auto_ibrs() {
        // O5: AutoIBRS does not stop transient fetch.
        let mut sys = System::new(UarchProfile::zen4(), 1 << 30, 22).unwrap();
        let actual = sys.layout().image_slot;
        let config = KaslrImageConfig {
            slots: window_around(actual, 16),
            ..Default::default()
        };
        let r = break_kaslr_image(&mut sys, &config).unwrap();
        assert!(r.correct);
    }

    #[test]
    fn finds_the_kernel_image_on_zen2() {
        let mut sys = System::new(UarchProfile::zen2(), 1 << 30, 23).unwrap();
        let actual = sys.layout().image_slot;
        let config = KaslrImageConfig {
            slots: window_around(actual, 16),
            ..Default::default()
        };
        let r = break_kaslr_image(&mut sys, &config).unwrap();
        assert!(r.correct);
    }

    #[test]
    fn wrong_window_yields_a_weak_score() {
        // Scanning a window that EXCLUDES the real slot: whatever wins
        // does so with a much weaker score than a true hit.
        let mut sys = System::new(UarchProfile::zen3(), 1 << 30, 24).unwrap();
        let actual = sys.layout().image_slot;
        let excluded = if actual > 40 { 0..16 } else { 100..116 };
        let config = KaslrImageConfig {
            slots: excluded,
            ..Default::default()
        };
        let r = break_kaslr_image(&mut sys, &config).unwrap();
        assert!(!r.correct);

        let mut sys2 = System::new(UarchProfile::zen3(), 1 << 30, 24).unwrap();
        let actual2 = sys2.layout().image_slot;
        let config2 = KaslrImageConfig {
            slots: window_around(actual2, 8),
            ..Default::default()
        };
        let hit = break_kaslr_image(&mut sys2, &config2).unwrap();
        assert!(
            hit.best_score > r.best_score,
            "{} vs {}",
            hit.best_score,
            r.best_score
        );
        assert!(
            hit.confidence >= r.confidence,
            "a true hit is at least as decisive: {} vs {}",
            hit.confidence,
            r.confidence
        );
    }
}
