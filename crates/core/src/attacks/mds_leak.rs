//! §7.4 — leaking arbitrary kernel memory with an MDS gadget by nesting
//! PHANTOM inside a conventional Spectre window.
//!
//! A *conventional* Spectre gadget needs two dependent loads. An MDS
//! gadget (Listing 4) has only one: a bounds check followed by
//! `data = array[user_index]` and a call. With P3, the attacker supplies
//! the second, secret-dependent load *elsewhere*: the Spectre window
//! (conditional trained taken, index out of bounds) transiently loads
//! the secret into a register, and an injected prediction at the direct
//! `call parse_data()` phantom-steers the transient control flow to a
//! disclosure gadget that cache-encodes the register into the attacker's
//! reload buffer (addressed through physmap).

use phantom_isa::BranchKind;
use phantom_kernel::{sysno, System};
use phantom_mem::{AccessKind, PageFlags, PrivilegeLevel, VirtAddr};
use phantom_pipeline::UarchProfile;
use phantom_sidechannel::{NoiseModel, Reading};

use crate::attacks::AttackError;
use crate::primitives::PrimitiveConfig;
use crate::runner::{Scenario, ScenarioError, Trial};

/// Configuration for the MDS leak.
#[derive(Debug, Clone)]
pub struct MdsLeakConfig {
    /// Number of secret bytes to leak (the paper leaks 4096).
    pub bytes: usize,
    /// In-bounds training calls per leaked byte (keeps the direction
    /// predictor saturated taken).
    pub trainings_per_byte: usize,
    /// Noise seed.
    pub seed: u64,
}

impl Default for MdsLeakConfig {
    fn default() -> MdsLeakConfig {
        MdsLeakConfig {
            bytes: 4096,
            trainings_per_byte: 4,
            seed: 0,
        }
    }
}

/// Result of an MDS-gadget leak run.
#[derive(Debug, Clone)]
pub struct MdsLeakResult {
    /// The leaked bytes (0 where no line lit up).
    pub leaked: Vec<u8>,
    /// Fraction of bytes recovered exactly.
    pub accuracy: f64,
    /// Whether any signal was observed at all (the paper saw total
    /// signal loss in 2 of 10 reboots, attributed to undesired BTB
    /// aliasing).
    pub signal: bool,
    /// Mean confidence of the per-byte hit reloads (bytes with no hit
    /// contribute 0).
    pub mean_confidence: f64,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// Simulated seconds consumed.
    pub seconds: f64,
    /// Leak rate in bytes per second.
    pub bytes_per_sec: f64,
}

/// Leak the module's planted secret. `physmap_base` comes from the §7.2
/// stage; module addresses are attacker-known (§7.4 assumes the gadget
/// addresses were recovered by the previous steps).
///
/// # Errors
///
/// Returns [`AttackError`] on setup or syscall failure.
pub fn leak_kernel_memory(
    sys: &mut System,
    physmap_base: VirtAddr,
    config: &MdsLeakConfig,
) -> Result<MdsLeakResult, AttackError> {
    let module = *sys.module();
    let attacker = VirtAddr::new(0x5000_0000);
    let cfg = PrimitiveConfig::for_system(sys, attacker);
    let mut noise = NoiseModel::realistic(config.seed);

    // Reload buffer: 256 cache lines of attacker memory, also reachable
    // by the kernel through physmap (Table 5 gave us the physical
    // address).
    let reload_uva = VirtAddr::new(0x5a00_0000);
    sys.map_user(reload_uva, 256 * 64, PageFlags::USER_DATA)?;
    let reload_pa = sys
        .machine()
        .page_table()
        .translate(reload_uva, AccessKind::Read, PrivilegeLevel::User)
        .map_err(|e| AttackError(e.to_string()))?;
    let reload_kva = physmap_base + reload_pa.raw();

    let (threshold, span) = {
        let c = sys.machine().caches().config();
        (
            c.l1_latency + c.l2_latency + noise.jitter_cycles,
            c.memory_latency,
        )
    };

    // Byte index of the secret relative to the array base (the
    // out-of-bounds distance).
    let secret_offset = module.secret - module.array;

    let start_cycles = sys.machine().cycles();
    let mut leaked = Vec::with_capacity(config.bytes);
    let mut hits = 0usize;
    let mut confidence_sum = 0.0;
    for i in 0..config.bytes {
        // ① Train the bounds check taken with in-bounds indices. These
        // calls also retrain the architectural `call parse_data` BTB
        // entry, so the phantom injection must come afterwards.
        for t in 0..config.trainings_per_byte {
            // Indices strictly below *array_length (16), so every
            // training run takes the branch.
            sys.syscall(
                sysno::MODULE_READ_DATA,
                &[(t as u64 * 4) % 16, reload_kva.raw()],
            )?;
        }
        // ② Inject the phantom prediction at the call site, pointing at
        // the disclosure gadget.
        sys.train_user_branch(
            cfg.user_alias(module.parse_call),
            BranchKind::Indirect,
            module.disclosure_gadget,
        )?;
        // ③ Flush the reload buffer.
        for b in 0..256u64 {
            phantom_sidechannel::flush(sys.machine_mut(), reload_uva + (b << 6));
        }
        // ④ The out-of-bounds call: architecturally rejected, but the
        // taken-trained conditional opens a Spectre window in which the
        // secret byte is loaded and the nested phantom encodes it.
        let index = secret_offset + i as u64;
        sys.syscall(sysno::MODULE_READ_DATA, &[index, reload_kva.raw()])?;
        // ⑤ Reload scan.
        let mut byte = None;
        for b in 0..256u64 {
            let latency =
                phantom_sidechannel::reload(sys.machine_mut(), reload_uva + (b << 6), &mut noise);
            let reading = Reading::classify(latency, threshold, span);
            if reading.hit && byte.is_none() {
                byte = Some(b as u8);
                confidence_sum += reading.confidence.value();
            }
        }
        if byte.is_some() {
            hits += 1;
        }
        leaked.push(byte.unwrap_or(0));
    }

    let cycles = sys.machine().cycles() - start_cycles;
    let seconds = sys.machine().profile().cycles_to_seconds(cycles);
    let truth = &sys.secret()[..config.bytes.min(sys.secret().len())];
    let correct = leaked.iter().zip(truth).filter(|(a, b)| a == b).count();
    Ok(MdsLeakResult {
        accuracy: correct as f64 / config.bytes as f64,
        signal: hits > config.bytes / 2,
        mean_confidence: confidence_sum / config.bytes.max(1) as f64,
        leaked,
        cycles,
        seconds,
        bytes_per_sec: config.bytes as f64 / seconds,
    })
}

/// The §7.4 sweep as a trial scenario: one `bytes`-long leak per trial,
/// each on its own rebooted [`System`] (the paper reports 10 reboots,
/// with total signal loss on 2 of them).
#[derive(Debug, Clone)]
pub struct MdsLeakSweep {
    /// Microarchitecture under attack.
    pub profile: UarchProfile,
    /// Secret bytes leaked per reboot.
    pub bytes: usize,
    /// Number of reboots (trials).
    pub runs: usize,
    /// Base seed; run `r` boots with `seed + r`.
    pub seed: u64,
}

impl Scenario for MdsLeakSweep {
    type State = ();
    type Checkpoint = ();
    type Sample = MdsLeakResult;
    type Output = Vec<MdsLeakResult>;

    fn trials(&self) -> usize {
        self.runs
    }

    fn setup(&self) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn checkpoint(&self, (): ()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn fork(&self, (): &()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn probe(&self, _state: &mut (), trial: Trial) -> Result<MdsLeakResult, ScenarioError> {
        let seed = self.seed + trial.index as u64;
        let mut sys =
            System::new(self.profile.clone(), 1 << 28, seed).map_err(AttackError::from)?;
        let physmap = sys.layout().physmap_base();
        let config = MdsLeakConfig {
            bytes: self.bytes,
            seed,
            ..Default::default()
        };
        Ok(leak_kernel_memory(&mut sys, physmap, &config)?)
    }

    fn score(&self, samples: Vec<MdsLeakResult>) -> Vec<MdsLeakResult> {
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaks_kernel_secret_on_zen2() {
        let mut sys = System::new(UarchProfile::zen2(), 1 << 28, 55).unwrap();
        let physmap = sys.layout().physmap_base();
        let config = MdsLeakConfig {
            bytes: 48,
            ..Default::default()
        };
        let r = leak_kernel_memory(&mut sys, physmap, &config).unwrap();
        assert!(r.signal, "signal observed");
        assert!(r.accuracy >= 0.95, "accuracy {}", r.accuracy);
        assert!(r.mean_confidence > 0.0, "hit reloads carry margin");
        assert_eq!(&r.leaked[..16], &sys.secret()[..16]);
    }

    #[test]
    fn leaks_kernel_secret_on_zen1() {
        let mut sys = System::new(UarchProfile::zen1(), 1 << 28, 56).unwrap();
        let physmap = sys.layout().physmap_base();
        let config = MdsLeakConfig {
            bytes: 32,
            ..Default::default()
        };
        let r = leak_kernel_memory(&mut sys, physmap, &config).unwrap();
        assert!(r.accuracy >= 0.95, "accuracy {}", r.accuracy);
    }

    #[test]
    fn no_leak_on_zen4() {
        // The nested phantom never executes on Zen 4: conventional
        // Spectre alone cannot run the second load.
        let mut sys = System::new(UarchProfile::zen4(), 1 << 28, 57).unwrap();
        let physmap = sys.layout().physmap_base();
        let config = MdsLeakConfig {
            bytes: 16,
            ..Default::default()
        };
        let r = leak_kernel_memory(&mut sys, physmap, &config).unwrap();
        assert!(!r.signal, "no nested-phantom signal on Zen 4");
        assert!(r.accuracy < 0.2);
    }

    #[test]
    fn the_bounds_check_architecturally_blocks_the_read() {
        // Sanity: the leak is purely transient — the architectural
        // result register never contains the secret.
        let mut sys = System::new(UarchProfile::zen2(), 1 << 28, 58).unwrap();
        let physmap = sys.layout().physmap_base();
        let config = MdsLeakConfig {
            bytes: 8,
            ..Default::default()
        };
        leak_kernel_memory(&mut sys, physmap, &config).unwrap();
        let r3 = sys.machine().reg(phantom_isa::Reg::R3);
        let secret_head = u64::from_le_bytes(sys.secret()[..8].try_into().expect("8 bytes"));
        assert_ne!(r3, secret_head, "secret never architecturally loaded");
    }
}
