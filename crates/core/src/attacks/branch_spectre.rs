//! BranchSpectre-style leakage through the conditional-branch
//! predictor: recover a victim's secret-dependent branch *outcome* by
//! reading the PHT counter it left behind — no cache probe anywhere.
//!
//! The attacker finds an **out-of-place alias**: a probe PC that the
//! CBP cannot tell apart from the victim PC. Which PCs alias is pure
//! spec data — under the legacy gshare scheme any PC differing only in
//! bits the index folds ignore collides; under an M1-Firestorm-style
//! scheme two PCs differing in *both* bits of one folded index pair
//! collide even though each bit alone would select a different set.
//! [`out_of_place_cbp_aliases`] derives candidates from the
//! [`CbpScheme`] instead of hardcoding either family.
//!
//! The channel: the victim executes its conditional once (outcome =
//! the secret bit), nudging the shared 2-bit counter up or down from a
//! known baseline. The attacker re-aligns the global history register
//! (so the probe indexes the same set the victim updated), then times
//! its own aliased conditional with not-taken flags. If the counter
//! says "taken", the planted BTB entry steers fetch down the taken
//! path and the resolved not-taken direction forces a resteer — a
//! calibrated cycle penalty. If the counter says "not taken", no steer
//! is served and the probe runs clean. The cycle delta *is* the
//! secret. Votes go through [`decode_adaptive`] exactly like the
//! Table 2 covert channels, so noisy probes escalate and ties abstain.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use phantom_bpu::CbpScheme;
use phantom_isa::asm::Assembler;
use phantom_isa::{Cond, Inst};
use phantom_mem::{PageFlags, VirtAddr};
use phantom_pipeline::{Checkpoint, Machine, RunExit, UarchProfile};
use phantom_sidechannel::{NoiseModel, Reading};

use crate::decode::{decode_adaptive, Decoded, DecoderConfig};
use crate::primitives::PrimitiveError;
use crate::runner::{Scenario, ScenarioError, Trial, TrialRunner};

/// Candidate out-of-place aliases of `victim` under `scheme`, nearest
/// first: PCs on a *different page* that the CBP indexes and tags
/// identically. Single-bit flips are tried before folded two-bit
/// flips, so an untagged scheme with unused upper bits (the legacy
/// gshare PHT) yields a far-bit alias, while a scheme that folds PC
/// bit pairs into each index bit (M1 Firestorm) yields the folded
/// pair. Flips stay below bit 24 to keep candidates near the victim.
///
/// Aliasing is history-independent — both PCs see the same GHR, so
/// the history parity cancels out of the comparison.
pub fn out_of_place_cbp_aliases(scheme: &CbpScheme, victim: VirtAddr) -> Vec<VirtAddr> {
    let mut found = Vec::new();
    let mut consider = |mask: u64| {
        // Same-page candidates would overlap the victim's stub.
        if mask >> 12 == 0 {
            return;
        }
        let cand = VirtAddr::new(victim.raw() ^ mask);
        if scheme.aliases(victim, cand, 0) {
            found.push(cand);
        }
    };
    for bit in 12..24 {
        consider(1 << bit);
    }
    for lo in 2..24 {
        for hi in (lo + 1)..24 {
            consider((1 << lo) | (1 << hi));
        }
    }
    found
}

/// The first (nearest) out-of-place alias, if the scheme admits one.
pub fn out_of_place_cbp_alias(scheme: &CbpScheme, victim: VirtAddr) -> Option<VirtAddr> {
    out_of_place_cbp_aliases(scheme, victim).into_iter().next()
}

/// Configuration of a PHT-channel run.
#[derive(Debug, Clone, Copy)]
pub struct PhtChannelConfig {
    /// Number of secret bits to recover.
    pub bits: usize,
    /// RNG seed (secret bit pattern + measurement noise).
    pub seed: u64,
}

impl Default for PhtChannelConfig {
    fn default() -> PhtChannelConfig {
        PhtChannelConfig {
            bits: 4096,
            seed: 0,
        }
    }
}

/// One PHT-channel row (Table-2-style numbers, but the observable is
/// predictor state, not cache state).
#[derive(Debug, Clone)]
pub struct PhtChannelResult {
    /// Microarchitecture name.
    pub uarch: phantom_pipeline::IStr,
    /// Tested part.
    pub model: phantom_pipeline::IStr,
    /// XOR distance between victim and probe PC (the out-of-place
    /// flip the scheme admitted).
    pub flip_mask: u64,
    /// Bits recovered.
    pub bits: usize,
    /// Fraction decoded correctly (abstentions count as wrong).
    pub accuracy: f64,
    /// Simulated wall-clock seconds for the whole recovery.
    pub seconds: f64,
    /// Throughput in bits per second.
    pub bits_per_sec: f64,
    /// Total probes cast across all bits.
    pub probes: u64,
    /// Bits the decoder abstained on.
    pub abstentions: usize,
    /// Mean per-bit decode confidence.
    pub mean_confidence: f64,
}

/// The PHT channel as a trial scenario: one trial per secret bit.
struct PhtScenario {
    profile: UarchProfile,
    config: PhtChannelConfig,
    noise_proto: NoiseModel,
    decoder: DecoderConfig,
}

/// Per-worker state: a machine with the three branch stubs loaded, the
/// rewind point, and the calibrated probe signature.
#[derive(Clone)]
struct PhtState {
    machine: Machine,
    snap: Checkpoint,
    snap_cycles: u64,
    /// Victim conditional (outcome = the secret bit).
    victim: VirtAddr,
    /// Out-of-place probe conditional aliasing the victim in the CBP.
    probe: VirtAddr,
    /// History-alignment conditional (always not-taken), chosen to
    /// never touch the victim's CBP set.
    aligner: VirtAddr,
    /// Calibrated probe-cycle threshold between the two counter
    /// states, the separation span, and which side means "taken".
    threshold: u64,
    span: u64,
    taken_is_slow: bool,
}

/// One decoded bit and the simulated cycles its trial consumed.
struct PhtSample {
    correct: bool,
    abstained: bool,
    probes: u32,
    confidence: f64,
    cycles: u64,
}

/// Lay down a two-instruction conditional stub at `base`:
/// `jeq taken; halt; taken: halt`.
fn load_branch_stub(machine: &mut Machine, base: VirtAddr) -> Result<(), ScenarioError> {
    let mut a = Assembler::new(base.raw());
    a.jcc_cond(Cond::Eq, "taken");
    a.push(Inst::Halt);
    a.label("taken");
    a.push(Inst::Halt);
    let blob = a.finish().map_err(|e| PrimitiveError(e.to_string()))?;
    machine
        .load_blob(&blob, PageFlags::USER_TEXT | PageFlags::WRITE)
        .map_err(|e| PrimitiveError(e.to_string()))?;
    Ok(())
}

/// Execute the conditional at `pc` once with the given outcome.
fn run_branch(machine: &mut Machine, pc: VirtAddr, taken: bool) -> Result<(), ScenarioError> {
    machine.set_flags(taken, false, false);
    machine.set_pc(pc);
    match machine.run(64).map_err(|e| PrimitiveError(e.to_string()))? {
        RunExit::Halted => Ok(()),
        other => Err(PrimitiveError(format!("branch stub did not halt: {other:?}")).into()),
    }
}

/// Drive the global history register back to all-zero by running the
/// aligner not-taken once per history bit.
fn align_history(
    machine: &mut Machine,
    aligner: VirtAddr,
    history_bits: u32,
) -> Result<(), ScenarioError> {
    for _ in 0..history_bits {
        run_branch(machine, aligner, false)?;
    }
    Ok(())
}

/// One victim → re-align → timed probe round. Returns the probe's raw
/// cycle cost; everything before the probe is untimed (the attacker
/// only ever times its own code).
fn measure_round(
    machine: &mut Machine,
    snap: &Checkpoint,
    victim: VirtAddr,
    probe: VirtAddr,
    aligner: VirtAddr,
    history_bits: u32,
    secret: bool,
) -> Result<u64, ScenarioError> {
    snap.rewind(machine);
    run_branch(machine, victim, secret)?;
    align_history(machine, aligner, history_bits)?;
    let before = machine.cycles();
    run_branch(machine, probe, false)?;
    Ok(machine.cycles() - before)
}

impl PhtScenario {
    fn uarch_salt(&self) -> u64 {
        self.profile.name.bytes().map(u64::from).sum::<u64>()
    }

    /// Build a calibrated state around one alias candidate. Returns
    /// `None` when the candidate yields no timing separation (e.g. the
    /// pair also collides in the BTB and the victim's run destroys the
    /// planted entry).
    fn try_candidate(
        &self,
        victim: VirtAddr,
        probe: VirtAddr,
    ) -> Result<Option<PhtState>, ScenarioError> {
        let scheme = &self.profile.cbp_scheme;
        let history_bits = scheme.history_bits;
        let mut machine = Machine::new(self.profile.clone(), 1 << 26);
        load_branch_stub(&mut machine, victim)?;
        load_branch_stub(&mut machine, probe)?;

        // The aligner must never update the victim's CBP set. Every
        // alignment run is deterministic, so only the GHR values it
        // actually executes under matter: a one-hot history (the single
        // planted/victim taken bit draining out) or all-zero. It also
        // needs its own page, distinct from both branch stubs.
        let victim_set = scheme.index_of(victim, 0);
        let live_ghrs: Vec<u64> = std::iter::once(0)
            .chain((0..history_bits).map(|j| 1u64 << j))
            .collect();
        let probe_page = probe.raw() >> 12;
        let aligner = (1..4096u64)
            .map(|k| VirtAddr::new(victim.raw() ^ (k << 12)))
            .find(|&w| {
                w.raw() >> 12 != probe_page
                    && live_ghrs
                        .iter()
                        .all(|&g| scheme.index_of(w, g) != victim_set)
            })
            .ok_or_else(|| PrimitiveError("no safe aligner PC in range".into()))?;
        load_branch_stub(&mut machine, aligner)?;

        // Plant the probe's BTB entry (and push the shared counter to
        // its baseline) with one taken execution, then re-align.
        run_branch(&mut machine, probe, true)?;
        align_history(&mut machine, aligner, history_bits)?;

        let snap = machine.checkpoint();
        let snap_cycles = machine.cycles();

        // Calibrate both counter states end-to-end.
        let taken_cycles = measure_round(
            &mut machine,
            &snap,
            victim,
            probe,
            aligner,
            history_bits,
            true,
        )?;
        let nt_cycles = measure_round(
            &mut machine,
            &snap,
            victim,
            probe,
            aligner,
            history_bits,
            false,
        )?;
        if taken_cycles == nt_cycles {
            return Ok(None);
        }
        snap.rewind(&mut machine);
        let (slow, fast) = (taken_cycles.max(nt_cycles), taken_cycles.min(nt_cycles));
        Ok(Some(PhtState {
            machine,
            snap,
            snap_cycles,
            victim,
            probe,
            aligner,
            threshold: fast + (slow - fast) / 2,
            span: slow - fast,
            taken_is_slow: taken_cycles > nt_cycles,
        }))
    }
}

impl Scenario for PhtScenario {
    type State = PhtState;
    type Checkpoint = PhtState;
    type Sample = PhtSample;
    type Output = PhtChannelResult;

    fn trials(&self) -> usize {
        self.config.bits
    }

    fn setup(&self) -> Result<PhtState, ScenarioError> {
        let victim = VirtAddr::new(0x40_0000);
        for probe in out_of_place_cbp_aliases(&self.profile.cbp_scheme, victim) {
            if let Some(state) = self.try_candidate(victim, probe)? {
                return Ok(state);
            }
        }
        Err(PrimitiveError(format!(
            "no out-of-place CBP alias with timing separation on {}",
            self.profile.name
        ))
        .into())
    }

    fn checkpoint(&self, state: PhtState) -> Result<PhtState, ScenarioError> {
        Ok(state)
    }

    fn fork(&self, checkpoint: &PhtState) -> Result<PhtState, ScenarioError> {
        Ok(checkpoint.clone())
    }

    fn probe(&self, state: &mut PhtState, trial: Trial) -> Result<PhtSample, ScenarioError> {
        let mut rng = StdRng::seed_from_u64(trial.seed);
        let secret = rng.gen_bool(0.5);
        let mut noise = self.noise_proto.reseeded(trial.seed ^ self.uarch_salt());
        let history_bits = self.profile.cbp_scheme.history_bits;
        let (victim, probe, aligner) = (state.victim, state.probe, state.aligner);
        let (threshold, span, taken_is_slow) = (state.threshold, state.span, state.taken_is_slow);
        let snap_cycles = state.snap_cycles;
        let machine = &mut state.machine;
        let snap = &state.snap;
        // Each vote replays victim → re-align → probe from the rewind
        // point, so the trial's honest cost is the sum over rounds, not
        // the machine's final (post-rewind) cycle counter.
        let mut spent = 0u64;
        let outcome = decode_adaptive(&self.decoder, |_| {
            let cycles =
                measure_round(machine, snap, victim, probe, aligner, history_bits, secret)?;
            spent += machine.cycles() - snap_cycles;
            // `Reading::classify` calls latencies at or below the
            // threshold hits; map "slow" back to "counter said taken".
            let reading = Reading::classify(noise.jitter(cycles), threshold, span);
            let says_taken = reading.hit != taken_is_slow;
            Ok::<_, ScenarioError>((says_taken, reading.confidence))
        })?;
        let (correct, abstained) = match outcome.decoded {
            Decoded::Bit(b) => (b == secret, false),
            Decoded::Abstain => (false, true),
        };
        Ok(PhtSample {
            correct,
            abstained,
            probes: outcome.probes,
            confidence: outcome.confidence.value(),
            cycles: spent,
        })
    }

    fn score(&self, samples: Vec<PhtSample>) -> PhtChannelResult {
        let bits = samples.len();
        let correct = samples.iter().filter(|s| s.correct).count();
        let cycles: u64 = samples.iter().map(|s| s.cycles).sum();
        let probes: u64 = samples.iter().map(|s| u64::from(s.probes)).sum();
        let abstentions = samples.iter().filter(|s| s.abstained).count();
        let mean_confidence =
            samples.iter().map(|s| s.confidence).sum::<f64>() / bits.max(1) as f64;
        let seconds = self.profile.cycles_to_seconds(cycles);
        let victim = VirtAddr::new(0x40_0000);
        let flip_mask = out_of_place_cbp_alias(&self.profile.cbp_scheme, victim)
            .map_or(0, |a| a.raw() ^ victim.raw());
        PhtChannelResult {
            uarch: self.profile.name.clone(),
            model: self.profile.model.clone(),
            flip_mask,
            bits,
            accuracy: correct as f64 / bits.max(1) as f64,
            seconds,
            bits_per_sec: bits as f64 / seconds,
            probes,
            abstentions,
            mean_confidence,
        }
    }
}

/// Run the PHT channel on one microarchitecture.
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup failure or when the scheme
/// admits no out-of-place alias.
pub fn pht_channel(
    profile: UarchProfile,
    config: PhtChannelConfig,
) -> Result<PhtChannelResult, PrimitiveError> {
    pht_channel_on(&TrialRunner::new(), profile, config)
}

/// [`pht_channel`] on an explicit runner (thread-count control).
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup failure.
pub fn pht_channel_on(
    runner: &TrialRunner,
    profile: UarchProfile,
    config: PhtChannelConfig,
) -> Result<PhtChannelResult, PrimitiveError> {
    let noise = NoiseModel::realistic(config.seed);
    pht_channel_decoded_on(runner, profile, config, noise, DecoderConfig::default())
}

/// [`pht_channel_on`] with explicit noise and decoder configs.
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup failure.
pub fn pht_channel_decoded_on(
    runner: &TrialRunner,
    profile: UarchProfile,
    config: PhtChannelConfig,
    noise: NoiseModel,
    decoder: DecoderConfig,
) -> Result<PhtChannelResult, PrimitiveError> {
    let scenario = PhtScenario {
        profile,
        config,
        noise_proto: noise,
        decoder,
    };
    runner
        .run(&scenario, config.seed)
        .map_err(|e| PrimitiveError(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: PhtChannelConfig = PhtChannelConfig { bits: 96, seed: 9 };

    #[test]
    fn legacy_alias_is_a_far_single_bit() {
        let scheme = CbpScheme::legacy();
        let v = VirtAddr::new(0x40_0000);
        let a = out_of_place_cbp_alias(&scheme, v).expect("legacy admits an alias");
        let flip = a.raw() ^ v.raw();
        assert_eq!(flip.count_ones(), 1, "single-bit flip, got {flip:#x}");
        assert!(flip >= 1 << 13, "outside the gshare index bits: {flip:#x}");
        assert!(scheme.aliases(v, a, 0));
    }

    #[test]
    fn recovers_the_secret_on_every_builtin_amd_part() {
        for p in UarchProfile::amd() {
            let name = p.name.clone();
            let r = pht_channel(p, SMALL).unwrap();
            assert!(r.accuracy >= 0.9, "{name}: accuracy {}", r.accuracy);
            assert!(r.bits_per_sec > 0.0, "{name}");
            assert_eq!(r.flip_mask.count_ones(), 1, "{name}: far-bit alias");
        }
    }

    #[test]
    fn recovery_is_identical_at_any_thread_count() {
        let config = PhtChannelConfig { bits: 48, seed: 3 };
        let one =
            pht_channel_on(&TrialRunner::with_threads(1), UarchProfile::zen2(), config).unwrap();
        let eight =
            pht_channel_on(&TrialRunner::with_threads(8), UarchProfile::zen2(), config).unwrap();
        assert_eq!(one.accuracy, eight.accuracy);
        assert_eq!(one.seconds, eight.seconds);
        assert_eq!(one.probes, eight.probes);
        assert_eq!(one.abstentions, eight.abstentions);
        assert_eq!(one.mean_confidence, eight.mean_confidence);
    }

    #[test]
    fn the_channel_reads_predictor_state_not_caches() {
        // The probe's signal survives with every cache-noise knob wide
        // open because nothing in the measurement touches a primed
        // cache set — only branch-resteer timing.
        let mut noise = NoiseModel::realistic(7);
        noise.spurious_evict = 1.0;
        noise.missed_signal = 1.0;
        let r = pht_channel_decoded_on(
            &TrialRunner::with_threads(2),
            UarchProfile::zen3(),
            PhtChannelConfig { bits: 64, seed: 7 },
            noise,
            DecoderConfig::default(),
        )
        .unwrap();
        assert!(r.accuracy >= 0.9, "accuracy {}", r.accuracy);
    }

    #[test]
    fn quiet_bits_resolve_in_the_first_decode_round() {
        let config = PhtChannelConfig { bits: 32, seed: 11 };
        let r = pht_channel_decoded_on(
            &TrialRunner::with_threads(1),
            UarchProfile::zen2(),
            config,
            NoiseModel::quiet(config.seed),
            DecoderConfig::default(),
        )
        .unwrap();
        assert!(r.accuracy > 0.99, "{}", r.accuracy);
        assert_eq!(r.abstentions, 0);
        assert_eq!(r.probes, 2 * config.bits as u64);
    }
}
