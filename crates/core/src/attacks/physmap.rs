//! §7.2 — breaking physmap KASLR with P2 on Zen 1/2 (**Table 4**).
//!
//! Physmap is the kernel's direct map of physical memory: present but
//! **non-executable**, so P1's instruction fetch cannot see it. P2 can:
//! the attacker confuses the direct `call` in `__fdget_pos()` (reached
//! via `readv()`, with `R12` attacker-controlled through the second
//! argument) with an injected `jmp*` prediction to the Listing 3 gadget
//! `mov r12, [r12+0xbe0]`. For the correct physmap candidate the
//! transient load hits mapped memory and fills a cache set.

use phantom_kernel::image::{LISTING2_CALL_OFFSET, LISTING3_OFFSET};
use phantom_kernel::layout::{KaslrLayout, PHYSMAP_SLOTS};
use phantom_kernel::System;
use phantom_mem::VirtAddr;
use phantom_pipeline::UarchProfile;
use phantom_sidechannel::{bounded_score, NoiseModel};

use crate::attacks::{scan_window, score_confidence, AttackError};
use crate::primitives::{p2_probe_in_set, PrimitiveConfig};
use crate::runner::{Scenario, ScenarioError, Trial};

/// Configuration for the physmap derandomization.
#[derive(Debug, Clone)]
pub struct PhysmapConfig {
    /// Candidate physmap slots to scan (default: all 25 600).
    pub slots: std::ops::Range<u64>,
    /// Sets scored per candidate.
    pub sets_per_candidate: usize,
    /// Measurement repetitions per set.
    pub reps: usize,
    /// Noise seed.
    pub seed: u64,
}

impl Default for PhysmapConfig {
    fn default() -> PhysmapConfig {
        PhysmapConfig {
            slots: 0..PHYSMAP_SLOTS,
            sets_per_candidate: 4,
            reps: 6,
            seed: 0,
        }
    }
}

/// Result of one physmap derandomization run.
#[derive(Debug, Clone, Copy)]
pub struct PhysmapResult {
    /// The attacker's best guess.
    pub guessed_slot: u64,
    /// Ground truth (scoring only).
    pub actual_slot: u64,
    /// Whether the guess was right.
    pub correct: bool,
    /// The winning score.
    pub best_score: i64,
    /// How decisively the winner beat the runner-up, in `[0, 1]`
    /// (see [`score_confidence`]).
    pub confidence: f64,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// Simulated seconds consumed.
    pub seconds: f64,
}

/// Run the attack. `image_base` is the kernel image base recovered by
/// the §7.1 stage (the attack needs the Listing 2/3 addresses).
///
/// # Errors
///
/// Returns [`AttackError`] on primitive failure.
pub fn break_physmap(
    sys: &mut System,
    image_base: VirtAddr,
    config: &PhysmapConfig,
) -> Result<PhysmapResult, AttackError> {
    let attacker = VirtAddr::new(0x5000_0000);
    let cfg = PrimitiveConfig::for_system(sys, attacker);
    let mut noise = NoiseModel::realistic(config.seed);
    let listing2_call = image_base + LISTING2_CALL_OFFSET;
    let listing3 = image_base + LISTING3_OFFSET;
    let start_cycles = sys.machine().cycles();

    let mut best: Option<(u64, i64)> = None;
    let mut runner_up: i64 = 0;
    for slot in config.slots.clone() {
        let candidate = KaslrLayout::candidate_physmap_base(slot);
        let mut signal = Vec::new();
        let mut baseline = Vec::new();
        for i in 0..config.sets_per_candidate {
            let set = (7 + i * 23) % 64;
            // Physical offset 1 MiB (+ set selector): RAM that certainly
            // exists; its direct-map address is candidate + offset.
            let t_s = candidate + 0x10_0000 + (set as u64) * 64;
            let b_s = candidate + 0x10_0000 + (((set + 32) % 64) as u64) * 64;
            let (mut t_ev, mut b_ev) = (0u64, 0u64);
            for _ in 0..config.reps.max(1) {
                t_ev += p2_probe_in_set(sys, &cfg, listing2_call, listing3, t_s, set, &mut noise)?
                    .evictions as u64;
                b_ev += p2_probe_in_set(sys, &cfg, listing2_call, listing3, b_s, set, &mut noise)?
                    .evictions as u64;
            }
            signal.push(t_ev);
            baseline.push(b_ev);
        }
        let score = bounded_score(&signal, &baseline);
        match best {
            Some((_, s)) if score > s => {
                runner_up = s;
                best = Some((slot, score));
            }
            Some(_) => runner_up = runner_up.max(score),
            None => best = Some((slot, score)),
        }
    }

    let (guessed_slot, best_score) = best.expect("non-empty slot range");
    let actual_slot = sys.layout().physmap_slot;
    let cycles = sys.machine().cycles() - start_cycles;
    Ok(PhysmapResult {
        guessed_slot,
        actual_slot,
        correct: guessed_slot == actual_slot,
        best_score,
        confidence: score_confidence(best_score, runner_up, config.sets_per_candidate),
        cycles,
        seconds: sys.machine().profile().cycles_to_seconds(cycles),
    })
}

/// The Table 4 sweep as a trial scenario: one physmap break per trial,
/// each on its own rebooted [`System`]. The §7.1 image base is read
/// from the fresh boot (that stage's output precedes this one).
#[derive(Debug, Clone)]
pub struct PhysmapSweep {
    /// Microarchitecture under attack.
    pub profile: UarchProfile,
    /// Number of reboots (trials).
    pub runs: usize,
    /// Scanned window per run, in slots (0 = full 25 600).
    pub window: u64,
    /// Base seed; run `r` boots with `seed + r`.
    pub seed: u64,
}

impl Scenario for PhysmapSweep {
    type State = ();
    type Checkpoint = ();
    type Sample = PhysmapResult;
    type Output = Vec<PhysmapResult>;

    fn trials(&self) -> usize {
        self.runs
    }

    fn setup(&self) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn checkpoint(&self, (): ()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn fork(&self, (): &()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn probe(&self, _state: &mut (), trial: Trial) -> Result<PhysmapResult, ScenarioError> {
        let seed = self.seed + trial.index as u64;
        let mut sys =
            System::new(self.profile.clone(), 1 << 30, seed).map_err(AttackError::from)?;
        let slots = scan_window(sys.layout().physmap_slot, self.window, PHYSMAP_SLOTS);
        let image_base = sys.image().base; // the §7.1 stage's output
        let config = PhysmapConfig {
            slots,
            seed,
            ..Default::default()
        };
        Ok(break_physmap(&mut sys, image_base, &config)?)
    }

    fn score(&self, samples: Vec<PhysmapResult>) -> Vec<PhysmapResult> {
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window_around(actual: u64, width: u64) -> std::ops::Range<u64> {
        let lo = actual.saturating_sub(width / 2);
        lo..(lo + width).min(PHYSMAP_SLOTS)
    }

    #[test]
    fn finds_physmap_on_zen2() {
        let mut sys = System::new(UarchProfile::zen2(), 1 << 30, 31).unwrap();
        let actual = sys.layout().physmap_slot;
        let image_base = sys.image().base; // §7.1 output
        let config = PhysmapConfig {
            slots: window_around(actual, 24),
            ..Default::default()
        };
        let r = break_physmap(&mut sys, image_base, &config).unwrap();
        assert!(
            r.correct,
            "guessed {} actual {}",
            r.guessed_slot, r.actual_slot
        );
        assert!(r.confidence > 0.0, "{r:?}");
    }

    #[test]
    fn finds_physmap_on_zen1() {
        let mut sys = System::new(UarchProfile::zen1(), 1 << 30, 32).unwrap();
        let actual = sys.layout().physmap_slot;
        let image_base = sys.image().base;
        let config = PhysmapConfig {
            slots: window_around(actual, 16),
            ..Default::default()
        };
        let r = break_physmap(&mut sys, image_base, &config).unwrap();
        assert!(r.correct);
    }

    #[test]
    fn fails_on_zen3_where_phantom_does_not_execute() {
        // The paper's Table 4 covers Zen 1/2 only: without phantom
        // execution the transient load never dispatches and every
        // candidate scores like noise.
        let mut sys = System::new(UarchProfile::zen3(), 1 << 30, 33).unwrap();
        let actual = sys.layout().physmap_slot;
        let image_base = sys.image().base;
        let config = PhysmapConfig {
            slots: window_around(actual, 16),
            ..Default::default()
        };
        let r = break_physmap(&mut sys, image_base, &config).unwrap();
        assert!(
            r.best_score <= 9,
            "no real signal on Zen 3: {}",
            r.best_score
        );
    }
}
