//! §7.4 (first half) — finding the physical address of an attacker page
//! (**Table 5**), enabling Flush+Reload through physmap.
//!
//! The attacker allocates a 2 MiB transparent huge page `A` (after a
//! random number of decoy allocations, re-randomizing its physical
//! placement), then guesses physical addresses `Pg`: for each guess the
//! `readv()` call-site confusion makes the kernel transiently load
//! `physmap + Pg`; if `Pg` is right, that load touches the *same
//! physical line* as `A`, and a Flush+Reload on `A` lights up.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use phantom_isa::BranchKind;
use phantom_kernel::image::{LISTING2_CALL_OFFSET, LISTING3_DISP, LISTING3_OFFSET};
use phantom_kernel::System;
use phantom_mem::{AccessKind, PageFlags, PrivilegeLevel, VirtAddr, HUGE_PAGE_SIZE};
use phantom_pipeline::UarchProfile;
use phantom_sidechannel::{NoiseModel, Reading};

use crate::attacks::AttackError;
use crate::primitives::PrimitiveConfig;
use crate::runner::{Scenario, ScenarioError, Trial};

/// Configuration for the physical-address search.
#[derive(Debug, Clone)]
pub struct PhysAddrConfig {
    /// Up to this many decoy huge pages are allocated first (the paper
    /// allocates 0–99 to re-randomize).
    pub max_decoys: u64,
    /// Noise / decoy seed.
    pub seed: u64,
}

impl Default for PhysAddrConfig {
    fn default() -> PhysAddrConfig {
        PhysAddrConfig {
            max_decoys: 100,
            seed: 0,
        }
    }
}

/// Result of one physical-address derandomization run.
#[derive(Debug, Clone, Copy)]
pub struct PhysAddrResult {
    /// The attacker's guess for the physical base of the huge page.
    pub guessed_pa: Option<u64>,
    /// Ground truth.
    pub actual_pa: u64,
    /// Whether the guess was right.
    pub correct: bool,
    /// Huge-page candidates tested before the hit.
    pub guesses_tested: u64,
    /// Confidence of the hit reload (margin from the Flush+Reload
    /// threshold, normalized); 0 when the scan exhausted all candidates.
    pub confidence: f64,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// Simulated seconds consumed.
    pub seconds: f64,
}

/// Run the search. `image_base` and `physmap_base` come from the §7.1
/// and §7.2 stages.
///
/// # Errors
///
/// Returns [`AttackError`] on setup or syscall failure.
pub fn find_physical_address(
    sys: &mut System,
    image_base: VirtAddr,
    physmap_base: VirtAddr,
    config: &PhysAddrConfig,
) -> Result<PhysAddrResult, AttackError> {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Re-randomize A's physical placement with decoy allocations.
    let decoys = rng.gen_range(0..config.max_decoys.max(1));
    for _ in 0..decoys {
        sys.machine_mut()
            .phys_mut()
            .alloc_huge()
            .map_err(|e| AttackError(e.to_string()))?;
    }
    // Allocate A: a user huge page.
    let a_uva = VirtAddr::new(0x5800_0000);
    let a_pa = sys
        .machine_mut()
        .phys_mut()
        .alloc_huge()
        .map_err(|e| AttackError(e.to_string()))?;
    sys.machine_mut()
        .page_table_mut()
        .map_2m(a_uva, a_pa, PageFlags::USER_DATA);

    let attacker = VirtAddr::new(0x5000_0000);
    let cfg = PrimitiveConfig::for_system(sys, attacker);
    let mut noise = NoiseModel::realistic(config.seed);
    let listing2_call = image_base + LISTING2_CALL_OFFSET;
    let listing3 = image_base + LISTING3_OFFSET;
    let start_cycles = sys.machine().cycles();

    // Inject once; the entry persists across guesses.
    sys.train_user_branch(
        cfg.user_alias(listing2_call),
        BranchKind::Indirect,
        listing3,
    )
    .map_err(|e| AttackError(e.to_string()))?;

    let (threshold, span) = {
        let c = sys.machine().caches().config();
        (
            c.l1_latency + c.l2_latency + noise.jitter_cycles,
            c.memory_latency,
        )
    };

    let capacity = sys.machine().phys().capacity();
    let mut guessed = None;
    let mut confidence = 0.0;
    let mut tested = 0;
    let mut pg = 0u64;
    while pg + HUGE_PAGE_SIZE <= capacity {
        tested += 1;
        // Re-inject: the previous readv architecturally executed the
        // call and retrained the entry with its true kind.
        sys.train_user_branch(
            cfg.user_alias(listing2_call),
            BranchKind::Indirect,
            listing3,
        )
        .map_err(|e| AttackError(e.to_string()))?;
        phantom_sidechannel::flush(sys.machine_mut(), a_uva);
        // Kernel transiently loads physmap + Pg (the gadget adds 0xbe0,
        // so aim just below).
        let target = physmap_base + pg;
        sys.readv(0, target.raw().wrapping_sub(LISTING3_DISP as u64))
            .map_err(|e| AttackError(e.to_string()))?;
        let latency = phantom_sidechannel::reload(sys.machine_mut(), a_uva, &mut noise);
        let reading = Reading::classify(latency, threshold, span);
        if reading.hit {
            guessed = Some(pg);
            confidence = reading.confidence.value();
            break;
        }
        pg += HUGE_PAGE_SIZE;
    }

    let cycles = sys.machine().cycles() - start_cycles;
    // Verify the guess by checking the user page translates there.
    let actual_pa = sys
        .machine()
        .page_table()
        .translate(a_uva, AccessKind::Read, PrivilegeLevel::User)
        .map_err(|e| AttackError(e.to_string()))?
        .raw();
    Ok(PhysAddrResult {
        guessed_pa: guessed,
        actual_pa,
        correct: guessed == Some(actual_pa),
        guesses_tested: tested,
        confidence,
        cycles,
        seconds: sys.machine().profile().cycles_to_seconds(cycles),
    })
}

/// The Table 5 sweep as a trial scenario: one physical-address search
/// per trial, each on its own rebooted [`System`] with `phys_bytes` of
/// memory (8 GiB and 64 GiB in the paper).
#[derive(Debug, Clone)]
pub struct PhysAddrSweep {
    /// Microarchitecture under attack.
    pub profile: UarchProfile,
    /// Physical memory size of the attacked machine.
    pub phys_bytes: u64,
    /// Number of reboots (trials).
    pub runs: usize,
    /// Base seed; run `r` boots with `seed + r`.
    pub seed: u64,
}

impl Scenario for PhysAddrSweep {
    type State = ();
    type Checkpoint = ();
    type Sample = PhysAddrResult;
    type Output = Vec<PhysAddrResult>;

    fn trials(&self) -> usize {
        self.runs
    }

    fn setup(&self) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn checkpoint(&self, (): ()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn fork(&self, (): &()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn probe(&self, _state: &mut (), trial: Trial) -> Result<PhysAddrResult, ScenarioError> {
        let seed = self.seed + trial.index as u64;
        let mut sys =
            System::new(self.profile.clone(), self.phys_bytes, seed).map_err(AttackError::from)?;
        let (image_base, physmap_base) = (sys.image().base, sys.layout().physmap_base());
        let config = PhysAddrConfig {
            max_decoys: 100,
            seed,
        };
        Ok(find_physical_address(
            &mut sys,
            image_base,
            physmap_base,
            &config,
        )?)
    }

    fn score(&self, samples: Vec<PhysAddrResult>) -> Vec<PhysAddrResult> {
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_physical_address_on_zen2() {
        let mut sys = System::new(UarchProfile::zen2(), 1 << 28, 41).unwrap();
        let (image_base, physmap_base) = (sys.image().base, sys.layout().physmap_base());
        let config = PhysAddrConfig {
            max_decoys: 8,
            seed: 41,
        };
        let r = find_physical_address(&mut sys, image_base, physmap_base, &config).unwrap();
        assert!(
            r.correct,
            "guessed {:?} actual {:#x}",
            r.guessed_pa, r.actual_pa
        );
        assert!(r.guesses_tested >= 1);
        assert!(r.confidence > 0.0, "{r:?}");
    }

    #[test]
    fn finds_the_physical_address_on_zen1() {
        let mut sys = System::new(UarchProfile::zen1(), 1 << 28, 42).unwrap();
        let (image_base, physmap_base) = (sys.image().base, sys.layout().physmap_base());
        let config = PhysAddrConfig {
            max_decoys: 4,
            seed: 42,
        };
        let r = find_physical_address(&mut sys, image_base, physmap_base, &config).unwrap();
        assert!(r.correct);
    }

    #[test]
    fn decoy_count_moves_the_physical_address() {
        let mut a = System::new(UarchProfile::zen2(), 1 << 28, 43).unwrap();
        let mut b = System::new(UarchProfile::zen2(), 1 << 28, 44).unwrap();
        let (a_image, a_physmap) = (a.image().base, a.layout().physmap_base());
        let (b_image, b_physmap) = (b.image().base, b.layout().physmap_base());
        let ra = find_physical_address(
            &mut a,
            a_image,
            a_physmap,
            &PhysAddrConfig {
                max_decoys: 16,
                seed: 10,
            },
        )
        .unwrap();
        let rb = find_physical_address(
            &mut b,
            b_image,
            b_physmap,
            &PhysAddrConfig {
                max_decoys: 16,
                seed: 11,
            },
        )
        .unwrap();
        assert!(ra.correct && rb.correct);
        assert_ne!(ra.actual_pa, rb.actual_pa, "decoys re-randomize placement");
    }

    #[test]
    fn no_signal_on_zen4() {
        // No phantom execution: the scan exhausts all candidates.
        let mut sys = System::new(UarchProfile::zen4(), 1 << 26, 45).unwrap();
        let (image_base, physmap_base) = (sys.image().base, sys.layout().physmap_base());
        let config = PhysAddrConfig {
            max_decoys: 2,
            seed: 45,
        };
        let r = find_physical_address(&mut sys, image_base, physmap_base, &config).unwrap();
        assert!(!r.correct);
        assert_eq!(r.guessed_pa, None);
        assert_eq!(r.confidence, 0.0, "no hit, no confidence");
    }
}
