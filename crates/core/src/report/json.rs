//! Machine-readable results: typed records for every shipped
//! experiment, a top-level [`BenchSnapshot`], and a tolerance-driven
//! [`diff`] for regression gating.
//!
//! Every record mirrors one experiment's output with owned fields, so
//! a snapshot parsed from disk is self-contained (no `&'static str`
//! interning against the running binary). Serialization is built on
//! [`JsonValue`]; object member order is
//! fixed by the `to_json` implementations, which together with the
//! deterministic writer makes snapshot bytes a pure function of the
//! results — the determinism suite asserts byte-identity across
//! thread counts on exactly this property.
//!
//! The canonical snapshot contains **only deterministic data**
//! (simulated cycles, accuracies, counters). Host-volatile facts —
//! wall-clock, thread count — live in the optional `host` section,
//! which [`diff`] ignores.

use std::fmt;

use crate::ablation::NoiseSweepPoint;
use crate::attacks::{
    KaslrImageResult, MdsLeakResult, PhtChannelResult, PhysAddrResult, PhysmapResult,
};
use crate::collide::Figure7;
use crate::covert::CovertResult;
use crate::experiment::{ComboOutcome, Figure6Point, Table1Cell};
use crate::gadgets::GadgetCensus;
use crate::mitigations::OverheadResult;

use super::value::{parse, JsonValue, ParseError};

/// The snapshot schema identifier; bump on breaking shape changes.
pub const SCHEMA: &str = "phantom-bench/v1";

/// A shape error while decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError(pub String);

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot schema error: {}", self.0)
    }
}

impl std::error::Error for SchemaError {}

impl From<ParseError> for SchemaError {
    fn from(e: ParseError) -> SchemaError {
        SchemaError(e.to_string())
    }
}

fn field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, SchemaError> {
    v.get(key)
        .ok_or_else(|| SchemaError(format!("missing field {key:?}")))
}

fn str_field(v: &JsonValue, key: &str) -> Result<String, SchemaError> {
    field(v, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| SchemaError(format!("field {key:?} is not a string")))
}

fn u64_field(v: &JsonValue, key: &str) -> Result<u64, SchemaError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| SchemaError(format!("field {key:?} is not a u64")))
}

fn i64_field(v: &JsonValue, key: &str) -> Result<i64, SchemaError> {
    field(v, key)?
        .as_i64()
        .ok_or_else(|| SchemaError(format!("field {key:?} is not an i64")))
}

fn f64_field(v: &JsonValue, key: &str) -> Result<f64, SchemaError> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| SchemaError(format!("field {key:?} is not a number")))
}

fn bool_field(v: &JsonValue, key: &str) -> Result<bool, SchemaError> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| SchemaError(format!("field {key:?} is not a bool")))
}

fn array_field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], SchemaError> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| SchemaError(format!("field {key:?} is not an array")))
}

fn vec_from<T>(
    v: &JsonValue,
    key: &str,
    decode: impl Fn(&JsonValue) -> Result<T, SchemaError>,
) -> Result<Vec<T>, SchemaError> {
    array_field(v, key)?.iter().map(decode).collect()
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Result<Vec<u8>, SchemaError> {
    if !s.len().is_multiple_of(2) {
        return Err(SchemaError("odd-length hex string".into()));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16)
                .map_err(|_| SchemaError(format!("bad hex byte {:?}", &s[i..i + 2])))
        })
        .collect()
}

/// Run metadata that is part of the canonical (deterministic) output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Protocol size: `"quick"` or `"full"` (`PHANTOM_FULL=1`).
    pub profile: String,
    /// The base seed the experiment seeds derive from.
    pub seed: u64,
}

impl RunMeta {
    /// Encode as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("profile", JsonValue::Str(self.profile.clone()))
            .set("seed", JsonValue::Uint(self.seed));
        o
    }

    /// Decode from a JSON object.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on a shape mismatch.
    pub fn from_json(v: &JsonValue) -> Result<RunMeta, SchemaError> {
        Ok(RunMeta {
            profile: str_field(v, "profile")?,
            seed: u64_field(v, "seed")?,
        })
    }
}

/// One Table 1 cell: deepest stage per microarchitecture for a
/// training × victim combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Record {
    /// Training instruction (display form, e.g. `"jmp*"`).
    pub train: String,
    /// Victim instruction (display form).
    pub victim: String,
    /// `(uarch, stage)` pairs in sweep order; stages are `-`, `IF`,
    /// `ID` or `EX`.
    pub stages: Vec<(String, String)>,
}

impl From<&Table1Cell> for Table1Record {
    fn from(c: &Table1Cell) -> Table1Record {
        Table1Record {
            train: c.train.to_string(),
            victim: c.victim.to_string(),
            stages: c
                .stages
                .iter()
                .map(|(u, s)| (u.to_string(), s.to_string()))
                .collect(),
        }
    }
}

impl Table1Record {
    /// Encode as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("train", JsonValue::Str(self.train.clone()))
            .set("victim", JsonValue::Str(self.victim.clone()))
            .set(
                "stages",
                JsonValue::Array(
                    self.stages
                        .iter()
                        .map(|(u, s)| {
                            let mut cell = JsonValue::object();
                            cell.set("uarch", JsonValue::Str(u.clone()))
                                .set("stage", JsonValue::Str(s.clone()));
                            cell
                        })
                        .collect(),
                ),
            );
        o
    }

    /// Decode from a JSON object.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on a shape mismatch.
    pub fn from_json(v: &JsonValue) -> Result<Table1Record, SchemaError> {
        Ok(Table1Record {
            train: str_field(v, "train")?,
            victim: str_field(v, "victim")?,
            stages: vec_from(v, "stages", |cell| {
                Ok((str_field(cell, "uarch")?, str_field(cell, "stage")?))
            })?,
        })
    }
}

/// One Figure 6 sweep on one microarchitecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Figure6Record {
    /// Microarchitecture name.
    pub uarch: String,
    /// Page-offset step of the sweep.
    pub step: u64,
    /// The swept points.
    pub points: Vec<Figure6Point>,
}

impl Figure6Record {
    /// Encode as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("uarch", JsonValue::Str(self.uarch.clone()))
            .set("step", JsonValue::Uint(self.step))
            .set(
                "points",
                JsonValue::Array(
                    self.points
                        .iter()
                        .map(|p| {
                            let mut point = JsonValue::object();
                            point
                                .set("offset", JsonValue::Uint(p.offset))
                                .set("hits", JsonValue::Uint(p.hits))
                                .set("misses", JsonValue::Uint(p.misses));
                            point
                        })
                        .collect(),
                ),
            );
        o
    }

    /// Decode from a JSON object.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on a shape mismatch.
    pub fn from_json(v: &JsonValue) -> Result<Figure6Record, SchemaError> {
        Ok(Figure6Record {
            uarch: str_field(v, "uarch")?,
            step: u64_field(v, "step")?,
            points: vec_from(v, "points", |p| {
                Ok(Figure6Point {
                    offset: u64_field(p, "offset")?,
                    hits: u64_field(p, "hits")?,
                    misses: u64_field(p, "misses")?,
                })
            })?,
        })
    }
}

/// The Figure 7 recovery: BTB index/tag functions as bit masks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Figure7Record {
    /// Collision samples used per kernel address.
    pub samples_per_address: u64,
    /// Recovered function masks (bit `i` set ⇔ address bit `i` is an
    /// input of the XOR).
    pub masks: Vec<u64>,
    /// Whether the paper's published XOR patterns hold.
    pub paper_patterns_hold: bool,
}

impl From<&Figure7> for Figure7Record {
    fn from(f: &Figure7) -> Figure7Record {
        Figure7Record {
            samples_per_address: f.samples_per_address as u64,
            masks: f.functions.iter().map(|f| f.mask).collect(),
            paper_patterns_hold: f.paper_patterns_hold,
        }
    }
}

impl Figure7Record {
    /// Encode as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set(
            "samples_per_address",
            JsonValue::Uint(self.samples_per_address),
        )
        .set(
            "masks",
            JsonValue::Array(self.masks.iter().map(|&m| JsonValue::Uint(m)).collect()),
        )
        .set(
            "paper_patterns_hold",
            JsonValue::Bool(self.paper_patterns_hold),
        );
        o
    }

    /// Decode from a JSON object.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on a shape mismatch.
    pub fn from_json(v: &JsonValue) -> Result<Figure7Record, SchemaError> {
        Ok(Figure7Record {
            samples_per_address: u64_field(v, "samples_per_address")?,
            masks: array_field(v, "masks")?
                .iter()
                .map(|m| {
                    m.as_u64()
                        .ok_or_else(|| SchemaError("mask is not a u64".into()))
                })
                .collect::<Result<_, _>>()?,
            paper_patterns_hold: bool_field(v, "paper_patterns_hold")?,
        })
    }
}

/// One Table 2 covert-channel row.
#[derive(Debug, Clone, PartialEq)]
pub struct CovertRecord {
    /// Microarchitecture name.
    pub uarch: String,
    /// Retail part tested in the paper.
    pub model: String,
    /// Channel kind (display form: `"fetch (P1)"` / `"execute (P2)"`).
    pub kind: String,
    /// Bits transferred.
    pub bits: u64,
    /// Fraction decoded correctly.
    pub accuracy: f64,
    /// Total probes the adaptive decoder spent.
    pub probes: u64,
    /// Bits the decoder abstained on.
    pub abstentions: u64,
    /// Mean decode confidence across the transfer.
    pub mean_confidence: f64,
    /// Simulated seconds for the transfer.
    pub seconds: f64,
    /// Simulated channel rate.
    pub bits_per_sec: f64,
}

impl From<&CovertResult> for CovertRecord {
    fn from(r: &CovertResult) -> CovertRecord {
        CovertRecord {
            uarch: r.uarch.to_string(),
            model: r.model.to_string(),
            kind: r.kind.to_string(),
            bits: r.bits as u64,
            accuracy: r.accuracy,
            probes: r.probes,
            abstentions: r.abstentions as u64,
            mean_confidence: r.mean_confidence,
            seconds: r.seconds,
            bits_per_sec: r.bits_per_sec,
        }
    }
}

impl CovertRecord {
    /// Encode as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("uarch", JsonValue::Str(self.uarch.clone()))
            .set("model", JsonValue::Str(self.model.clone()))
            .set("kind", JsonValue::Str(self.kind.clone()))
            .set("bits", JsonValue::Uint(self.bits))
            .set("accuracy", JsonValue::Float(self.accuracy))
            .set("probes", JsonValue::Uint(self.probes))
            .set("abstentions", JsonValue::Uint(self.abstentions))
            .set("mean_confidence", JsonValue::Float(self.mean_confidence))
            .set("seconds", JsonValue::Float(self.seconds))
            .set("bits_per_sec", JsonValue::Float(self.bits_per_sec));
        o
    }

    /// Decode from a JSON object. The decoder fields (`probes`,
    /// `abstentions`, `mean_confidence`) parse leniently so baselines
    /// recorded before the adaptive decoder keep loading.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on a shape mismatch.
    pub fn from_json(v: &JsonValue) -> Result<CovertRecord, SchemaError> {
        Ok(CovertRecord {
            uarch: str_field(v, "uarch")?,
            model: str_field(v, "model")?,
            kind: str_field(v, "kind")?,
            bits: u64_field(v, "bits")?,
            accuracy: f64_field(v, "accuracy")?,
            probes: v.get("probes").and_then(JsonValue::as_u64).unwrap_or(0),
            abstentions: v
                .get("abstentions")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            mean_confidence: v
                .get("mean_confidence")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0),
            seconds: f64_field(v, "seconds")?,
            bits_per_sec: f64_field(v, "bits_per_sec")?,
        })
    }
}

/// One PHT-channel (BranchSpectre-style) row: Table-2-shaped numbers
/// for the conditional-branch-predictor channel, plus the
/// out-of-place flip the scheme admitted.
#[derive(Debug, Clone, PartialEq)]
pub struct PhtChannelRecord {
    /// Microarchitecture name.
    pub uarch: String,
    /// Retail part tested in the paper.
    pub model: String,
    /// XOR distance between victim and probe PC.
    pub flip_mask: u64,
    /// Bits recovered.
    pub bits: u64,
    /// Fraction decoded correctly.
    pub accuracy: f64,
    /// Total probes the adaptive decoder spent.
    pub probes: u64,
    /// Bits the decoder abstained on.
    pub abstentions: u64,
    /// Mean decode confidence across the recovery.
    pub mean_confidence: f64,
    /// Simulated seconds for the recovery.
    pub seconds: f64,
    /// Simulated channel rate.
    pub bits_per_sec: f64,
}

impl From<&PhtChannelResult> for PhtChannelRecord {
    fn from(r: &PhtChannelResult) -> PhtChannelRecord {
        PhtChannelRecord {
            uarch: r.uarch.to_string(),
            model: r.model.to_string(),
            flip_mask: r.flip_mask,
            bits: r.bits as u64,
            accuracy: r.accuracy,
            probes: r.probes,
            abstentions: r.abstentions as u64,
            mean_confidence: r.mean_confidence,
            seconds: r.seconds,
            bits_per_sec: r.bits_per_sec,
        }
    }
}

impl PhtChannelRecord {
    /// Encode as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("uarch", JsonValue::Str(self.uarch.clone()))
            .set("model", JsonValue::Str(self.model.clone()))
            .set("flip_mask", JsonValue::Uint(self.flip_mask))
            .set("bits", JsonValue::Uint(self.bits))
            .set("accuracy", JsonValue::Float(self.accuracy))
            .set("probes", JsonValue::Uint(self.probes))
            .set("abstentions", JsonValue::Uint(self.abstentions))
            .set("mean_confidence", JsonValue::Float(self.mean_confidence))
            .set("seconds", JsonValue::Float(self.seconds))
            .set("bits_per_sec", JsonValue::Float(self.bits_per_sec));
        o
    }

    /// Decode from a JSON object.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on a shape mismatch.
    pub fn from_json(v: &JsonValue) -> Result<PhtChannelRecord, SchemaError> {
        Ok(PhtChannelRecord {
            uarch: str_field(v, "uarch")?,
            model: str_field(v, "model")?,
            flip_mask: u64_field(v, "flip_mask")?,
            bits: u64_field(v, "bits")?,
            accuracy: f64_field(v, "accuracy")?,
            probes: u64_field(v, "probes")?,
            abstentions: u64_field(v, "abstentions")?,
            mean_confidence: f64_field(v, "mean_confidence")?,
            seconds: f64_field(v, "seconds")?,
            bits_per_sec: f64_field(v, "bits_per_sec")?,
        })
    }
}

/// One KASLR-style run: used for both Table 3 (kernel image) and
/// Table 4 (physmap), whose result shapes are identical.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotRunRecord {
    /// The attacker's best guess.
    pub guessed_slot: u64,
    /// Ground truth.
    pub actual_slot: u64,
    /// Whether the guess was right.
    pub correct: bool,
    /// The winning score.
    pub best_score: i64,
    /// How decisively the winner beat the runner-up, in `[0, 1]`.
    pub confidence: f64,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// Simulated seconds consumed.
    pub seconds: f64,
}

impl From<&KaslrImageResult> for SlotRunRecord {
    fn from(r: &KaslrImageResult) -> SlotRunRecord {
        SlotRunRecord {
            guessed_slot: r.guessed_slot,
            actual_slot: r.actual_slot,
            correct: r.correct,
            best_score: r.best_score,
            confidence: r.confidence,
            cycles: r.cycles,
            seconds: r.seconds,
        }
    }
}

impl From<&PhysmapResult> for SlotRunRecord {
    fn from(r: &PhysmapResult) -> SlotRunRecord {
        SlotRunRecord {
            guessed_slot: r.guessed_slot,
            actual_slot: r.actual_slot,
            correct: r.correct,
            best_score: r.best_score,
            confidence: r.confidence,
            cycles: r.cycles,
            seconds: r.seconds,
        }
    }
}

impl SlotRunRecord {
    /// Encode as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("guessed_slot", JsonValue::Uint(self.guessed_slot))
            .set("actual_slot", JsonValue::Uint(self.actual_slot))
            .set("correct", JsonValue::Bool(self.correct))
            .set("best_score", JsonValue::Int(self.best_score))
            .set("confidence", JsonValue::Float(self.confidence))
            .set("cycles", JsonValue::Uint(self.cycles))
            .set("seconds", JsonValue::Float(self.seconds));
        o
    }

    /// Decode from a JSON object. `confidence` parses leniently (absent
    /// ⇒ 0) so baselines recorded before the field keep loading.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on a shape mismatch.
    pub fn from_json(v: &JsonValue) -> Result<SlotRunRecord, SchemaError> {
        Ok(SlotRunRecord {
            guessed_slot: u64_field(v, "guessed_slot")?,
            actual_slot: u64_field(v, "actual_slot")?,
            correct: bool_field(v, "correct")?,
            best_score: i64_field(v, "best_score")?,
            confidence: v
                .get("confidence")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0),
            cycles: u64_field(v, "cycles")?,
            seconds: f64_field(v, "seconds")?,
        })
    }
}

/// Table 3 / Table 4 rows for one microarchitecture.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotTableRecord {
    /// Microarchitecture name.
    pub uarch: String,
    /// Per-reboot runs.
    pub runs: Vec<SlotRunRecord>,
}

impl SlotTableRecord {
    /// Fraction of correct runs.
    pub fn accuracy(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().filter(|r| r.correct).count() as f64 / self.runs.len() as f64
    }

    /// Total simulated cycles across runs.
    pub fn total_cycles(&self) -> u64 {
        self.runs.iter().map(|r| r.cycles).sum()
    }

    /// Encode as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("uarch", JsonValue::Str(self.uarch.clone())).set(
            "runs",
            JsonValue::Array(self.runs.iter().map(SlotRunRecord::to_json).collect()),
        );
        o
    }

    /// Decode from a JSON object.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on a shape mismatch.
    pub fn from_json(v: &JsonValue) -> Result<SlotTableRecord, SchemaError> {
        Ok(SlotTableRecord {
            uarch: str_field(v, "uarch")?,
            runs: vec_from(v, "runs", SlotRunRecord::from_json)?,
        })
    }
}

/// One Table 5 physical-address search run.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysAddrRunRecord {
    /// The attacker's guess (`None` if the search came up empty).
    pub guessed_pa: Option<u64>,
    /// Ground truth.
    pub actual_pa: u64,
    /// Whether the guess was right.
    pub correct: bool,
    /// Huge-page candidates tested.
    pub guesses_tested: u64,
    /// Confidence of the hit reload (0 when the scan came up empty).
    pub confidence: f64,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// Simulated seconds consumed.
    pub seconds: f64,
}

impl From<&PhysAddrResult> for PhysAddrRunRecord {
    fn from(r: &PhysAddrResult) -> PhysAddrRunRecord {
        PhysAddrRunRecord {
            guessed_pa: r.guessed_pa,
            actual_pa: r.actual_pa,
            correct: r.correct,
            guesses_tested: r.guesses_tested,
            confidence: r.confidence,
            cycles: r.cycles,
            seconds: r.seconds,
        }
    }
}

impl PhysAddrRunRecord {
    /// Encode as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set(
            "guessed_pa",
            match self.guessed_pa {
                Some(pa) => JsonValue::Uint(pa),
                None => JsonValue::Null,
            },
        )
        .set("actual_pa", JsonValue::Uint(self.actual_pa))
        .set("correct", JsonValue::Bool(self.correct))
        .set("guesses_tested", JsonValue::Uint(self.guesses_tested))
        .set("confidence", JsonValue::Float(self.confidence))
        .set("cycles", JsonValue::Uint(self.cycles))
        .set("seconds", JsonValue::Float(self.seconds));
        o
    }

    /// Decode from a JSON object. `confidence` parses leniently (absent
    /// ⇒ 0) so baselines recorded before the field keep loading.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on a shape mismatch.
    pub fn from_json(v: &JsonValue) -> Result<PhysAddrRunRecord, SchemaError> {
        let guessed = field(v, "guessed_pa")?;
        Ok(PhysAddrRunRecord {
            guessed_pa: if guessed.is_null() {
                None
            } else {
                Some(
                    guessed
                        .as_u64()
                        .ok_or_else(|| SchemaError("guessed_pa is not a u64".into()))?,
                )
            },
            actual_pa: u64_field(v, "actual_pa")?,
            correct: bool_field(v, "correct")?,
            guesses_tested: u64_field(v, "guesses_tested")?,
            confidence: v
                .get("confidence")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0),
            cycles: u64_field(v, "cycles")?,
            seconds: f64_field(v, "seconds")?,
        })
    }
}

/// Table 5 rows for one (microarchitecture, memory size) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysAddrTableRecord {
    /// Microarchitecture name.
    pub uarch: String,
    /// Simulated physical memory, in GiB.
    pub memory_gib: u64,
    /// Per-run results.
    pub runs: Vec<PhysAddrRunRecord>,
}

impl PhysAddrTableRecord {
    /// Fraction of correct runs.
    pub fn accuracy(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().filter(|r| r.correct).count() as f64 / self.runs.len() as f64
    }

    /// Total simulated cycles across runs.
    pub fn total_cycles(&self) -> u64 {
        self.runs.iter().map(|r| r.cycles).sum()
    }

    /// Encode as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("uarch", JsonValue::Str(self.uarch.clone()))
            .set("memory_gib", JsonValue::Uint(self.memory_gib))
            .set(
                "runs",
                JsonValue::Array(self.runs.iter().map(PhysAddrRunRecord::to_json).collect()),
            );
        o
    }

    /// Decode from a JSON object.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on a shape mismatch.
    pub fn from_json(v: &JsonValue) -> Result<PhysAddrTableRecord, SchemaError> {
        Ok(PhysAddrTableRecord {
            uarch: str_field(v, "uarch")?,
            memory_gib: u64_field(v, "memory_gib")?,
            runs: vec_from(v, "runs", PhysAddrRunRecord::from_json)?,
        })
    }
}

/// One §7.4 MDS leak run.
#[derive(Debug, Clone, PartialEq)]
pub struct MdsRunRecord {
    /// The leaked bytes, hex-encoded.
    pub leaked_hex: String,
    /// Fraction recovered exactly.
    pub accuracy: f64,
    /// Whether any signal was observed.
    pub signal: bool,
    /// Mean confidence of the per-byte hit reloads.
    pub mean_confidence: f64,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// Simulated seconds consumed.
    pub seconds: f64,
    /// Simulated leak rate.
    pub bytes_per_sec: f64,
}

impl From<&MdsLeakResult> for MdsRunRecord {
    fn from(r: &MdsLeakResult) -> MdsRunRecord {
        MdsRunRecord {
            leaked_hex: hex_encode(&r.leaked),
            accuracy: r.accuracy,
            signal: r.signal,
            mean_confidence: r.mean_confidence,
            cycles: r.cycles,
            seconds: r.seconds,
            bytes_per_sec: r.bytes_per_sec,
        }
    }
}

impl MdsRunRecord {
    /// Decode the leaked bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] if the hex string is malformed.
    pub fn leaked(&self) -> Result<Vec<u8>, SchemaError> {
        hex_decode(&self.leaked_hex)
    }

    /// Encode as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("leaked_hex", JsonValue::Str(self.leaked_hex.clone()))
            .set("accuracy", JsonValue::Float(self.accuracy))
            .set("signal", JsonValue::Bool(self.signal))
            .set("mean_confidence", JsonValue::Float(self.mean_confidence))
            .set("cycles", JsonValue::Uint(self.cycles))
            .set("seconds", JsonValue::Float(self.seconds))
            .set("bytes_per_sec", JsonValue::Float(self.bytes_per_sec));
        o
    }

    /// Decode from a JSON object. `mean_confidence` parses leniently
    /// (absent ⇒ 0) so baselines recorded before the field keep loading.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on a shape mismatch.
    pub fn from_json(v: &JsonValue) -> Result<MdsRunRecord, SchemaError> {
        Ok(MdsRunRecord {
            leaked_hex: str_field(v, "leaked_hex")?,
            accuracy: f64_field(v, "accuracy")?,
            signal: bool_field(v, "signal")?,
            mean_confidence: v
                .get("mean_confidence")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0),
            cycles: u64_field(v, "cycles")?,
            seconds: f64_field(v, "seconds")?,
            bytes_per_sec: f64_field(v, "bytes_per_sec")?,
        })
    }
}

/// §7.4 MDS leak runs for one microarchitecture.
#[derive(Debug, Clone, PartialEq)]
pub struct MdsTableRecord {
    /// Microarchitecture name.
    pub uarch: String,
    /// Per-reboot runs.
    pub runs: Vec<MdsRunRecord>,
}

impl MdsTableRecord {
    /// Mean per-run accuracy.
    pub fn mean_accuracy(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().map(|r| r.accuracy).sum::<f64>() / self.runs.len() as f64
    }

    /// Total simulated cycles across runs.
    pub fn total_cycles(&self) -> u64 {
        self.runs.iter().map(|r| r.cycles).sum()
    }

    /// Encode as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("uarch", JsonValue::Str(self.uarch.clone())).set(
            "runs",
            JsonValue::Array(self.runs.iter().map(MdsRunRecord::to_json).collect()),
        );
        o
    }

    /// Decode from a JSON object.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on a shape mismatch.
    pub fn from_json(v: &JsonValue) -> Result<MdsTableRecord, SchemaError> {
        Ok(MdsTableRecord {
            uarch: str_field(v, "uarch")?,
            runs: vec_from(v, "runs", MdsRunRecord::from_json)?,
        })
    }
}

/// Which pipeline stages an experiment's signal reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageFlags {
    /// IF channel fired.
    pub fetched: bool,
    /// ID channel fired.
    pub decoded: bool,
    /// EX channel fired.
    pub executed: bool,
}

impl From<&ComboOutcome> for StageFlags {
    fn from(o: &ComboOutcome) -> StageFlags {
        StageFlags {
            fetched: o.fetched,
            decoded: o.decoded,
            executed: o.executed,
        }
    }
}

impl StageFlags {
    fn to_json(self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("fetched", JsonValue::Bool(self.fetched))
            .set("decoded", JsonValue::Bool(self.decoded))
            .set("executed", JsonValue::Bool(self.executed));
        o
    }

    fn from_json(v: &JsonValue) -> Result<StageFlags, SchemaError> {
        Ok(StageFlags {
            fetched: bool_field(v, "fetched")?,
            decoded: bool_field(v, "decoded")?,
            executed: bool_field(v, "executed")?,
        })
    }
}

/// One O4 (`SuppressBPOnNonBr`) outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct O4Record {
    /// Microarchitecture name.
    pub uarch: String,
    /// Stages reached with the bit clear.
    pub baseline: StageFlags,
    /// Stages reached with the bit set.
    pub suppressed: StageFlags,
}

impl O4Record {
    /// Encode as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("uarch", JsonValue::Str(self.uarch.clone()))
            .set("baseline", self.baseline.to_json())
            .set("suppressed", self.suppressed.to_json());
        o
    }

    /// Decode from a JSON object.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on a shape mismatch.
    pub fn from_json(v: &JsonValue) -> Result<O4Record, SchemaError> {
        Ok(O4Record {
            uarch: str_field(v, "uarch")?,
            baseline: StageFlags::from_json(field(v, "baseline")?)?,
            suppressed: StageFlags::from_json(field(v, "suppressed")?)?,
        })
    }
}

/// The O5 (AutoIBRS) outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct O5Record {
    /// Whether cross-privilege transient fetch was still observed.
    pub transient_fetch_observed: bool,
}

impl O5Record {
    /// Encode as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set(
            "transient_fetch_observed",
            JsonValue::Bool(self.transient_fetch_observed),
        );
        o
    }

    /// Decode from a JSON object.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on a shape mismatch.
    pub fn from_json(v: &JsonValue) -> Result<O5Record, SchemaError> {
        Ok(O5Record {
            transient_fetch_observed: bool_field(v, "transient_fetch_observed")?,
        })
    }
}

/// One §8.2 software-mitigation placement check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoftwareRecord {
    /// Mitigation name (`"lfence"`, `"rsb_stuffing"`, `"sls_padding"`).
    pub name: String,
    /// Microarchitecture the check ran on.
    pub uarch: String,
    /// Signal observed without the mitigation.
    pub unprotected: bool,
    /// Signal observed with the mitigation in place.
    pub protected: bool,
}

impl SoftwareRecord {
    /// Encode as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("name", JsonValue::Str(self.name.clone()))
            .set("uarch", JsonValue::Str(self.uarch.clone()))
            .set("unprotected", JsonValue::Bool(self.unprotected))
            .set("protected", JsonValue::Bool(self.protected));
        o
    }

    /// Decode from a JSON object.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on a shape mismatch.
    pub fn from_json(v: &JsonValue) -> Result<SoftwareRecord, SchemaError> {
        Ok(SoftwareRecord {
            name: str_field(v, "name")?,
            uarch: str_field(v, "uarch")?,
            unprotected: bool_field(v, "unprotected")?,
            protected: bool_field(v, "protected")?,
        })
    }
}

/// The §6.3 mitigation-overhead suite.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRecord {
    /// Per-workload `(name, baseline cycles, suppressed cycles)`.
    pub per_workload: Vec<(String, u64, u64)>,
    /// Geometric-mean overhead, percent.
    pub geomean_overhead_pct: f64,
}

impl From<&OverheadResult> for OverheadRecord {
    fn from(r: &OverheadResult) -> OverheadRecord {
        OverheadRecord {
            per_workload: r
                .per_workload
                .iter()
                .map(|(n, b, s)| (n.to_string(), *b, *s))
                .collect(),
            geomean_overhead_pct: r.geomean_overhead_pct,
        }
    }
}

impl OverheadRecord {
    /// Encode as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set(
            "per_workload",
            JsonValue::Array(
                self.per_workload
                    .iter()
                    .map(|(name, base, supp)| {
                        let mut w = JsonValue::object();
                        w.set("workload", JsonValue::Str(name.clone()))
                            .set("baseline_cycles", JsonValue::Uint(*base))
                            .set("suppressed_cycles", JsonValue::Uint(*supp));
                        w
                    })
                    .collect(),
            ),
        )
        .set(
            "geomean_overhead_pct",
            JsonValue::Float(self.geomean_overhead_pct),
        );
        o
    }

    /// Decode from a JSON object.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on a shape mismatch.
    pub fn from_json(v: &JsonValue) -> Result<OverheadRecord, SchemaError> {
        Ok(OverheadRecord {
            per_workload: vec_from(v, "per_workload", |w| {
                Ok((
                    str_field(w, "workload")?,
                    u64_field(w, "baseline_cycles")?,
                    u64_field(w, "suppressed_cycles")?,
                ))
            })?,
            geomean_overhead_pct: f64_field(v, "geomean_overhead_pct")?,
        })
    }
}

/// The §9.1 gadget census.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GadgetRecord {
    /// Conventional Spectre gadgets.
    pub spectre_gadgets: u64,
    /// Phantom-only single-load gadgets.
    pub mds_gadgets: u64,
    /// Total exploitable with Phantom.
    pub total_with_phantom: u64,
}

impl From<&GadgetCensus> for GadgetRecord {
    fn from(c: &GadgetCensus) -> GadgetRecord {
        GadgetRecord {
            spectre_gadgets: c.spectre_gadgets as u64,
            mds_gadgets: c.mds_gadgets as u64,
            total_with_phantom: c.total_with_phantom as u64,
        }
    }
}

impl GadgetRecord {
    /// Encode as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("spectre_gadgets", JsonValue::Uint(self.spectre_gadgets))
            .set("mds_gadgets", JsonValue::Uint(self.mds_gadgets))
            .set(
                "total_with_phantom",
                JsonValue::Uint(self.total_with_phantom),
            );
        o
    }

    /// Decode from a JSON object.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on a shape mismatch.
    pub fn from_json(v: &JsonValue) -> Result<GadgetRecord, SchemaError> {
        Ok(GadgetRecord {
            spectre_gadgets: u64_field(v, "spectre_gadgets")?,
            mds_gadgets: u64_field(v, "mds_gadgets")?,
            total_with_phantom: u64_field(v, "total_with_phantom")?,
        })
    }
}

/// One point of the noise sweep: the adaptive fetch channel under a
/// single [`NoiseModel`](phantom_sidechannel::NoiseModel) knob.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseSweepRecord {
    /// The swept knob: `"jitter_cycles"`, `"spurious_evict"` or
    /// `"missed_signal"`.
    pub axis: String,
    /// The knob value.
    pub value: f64,
    /// Channel accuracy at that point (abstentions count as wrong).
    pub accuracy: f64,
    /// Total probes the adaptive decoder spent.
    pub probes: u64,
    /// Bits the decoder abstained on.
    pub abstentions: u64,
    /// Mean decode confidence across the transfer.
    pub mean_confidence: f64,
}

impl From<&NoiseSweepPoint> for NoiseSweepRecord {
    fn from(p: &NoiseSweepPoint) -> NoiseSweepRecord {
        NoiseSweepRecord {
            axis: p.axis.to_string(),
            value: p.value,
            accuracy: p.accuracy,
            probes: p.probes,
            abstentions: p.abstentions,
            mean_confidence: p.mean_confidence,
        }
    }
}

impl NoiseSweepRecord {
    /// Whether this is a quiet-end point (the knob at zero) — the
    /// points [`diff`] gates on.
    pub fn is_quiet(&self) -> bool {
        self.value == 0.0
    }

    /// Encode as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("axis", JsonValue::Str(self.axis.clone()))
            .set("value", JsonValue::Float(self.value))
            .set("accuracy", JsonValue::Float(self.accuracy))
            .set("probes", JsonValue::Uint(self.probes))
            .set("abstentions", JsonValue::Uint(self.abstentions))
            .set("mean_confidence", JsonValue::Float(self.mean_confidence));
        o
    }

    /// Decode from a JSON object.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on a shape mismatch.
    pub fn from_json(v: &JsonValue) -> Result<NoiseSweepRecord, SchemaError> {
        Ok(NoiseSweepRecord {
            axis: str_field(v, "axis")?,
            value: f64_field(v, "value")?,
            accuracy: f64_field(v, "accuracy")?,
            probes: u64_field(v, "probes")?,
            abstentions: u64_field(v, "abstentions")?,
            mean_confidence: f64_field(v, "mean_confidence")?,
        })
    }
}

/// Deterministic hot-path counters: the measured decode-cache, TLB
/// and copy-on-write snapshot wins.
///
/// Every counter comes from a fixed reference workload, so they are
/// part of the canonical snapshot and diffable against a baseline —
/// a hit-rate drop is a perf regression the gate can catch without
/// trusting wall clocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfRecord {
    /// Decode-cache hits on the reference workload.
    pub decode_cache_hits: u64,
    /// Decode-cache misses on the reference workload.
    pub decode_cache_misses: u64,
    /// Full decodes the cache eliminated (equals `hits`).
    pub decodes_avoided: u64,
    /// TLB hits on the reference workload (page walks skipped by the
    /// translation fast path).
    pub tlb_hits: u64,
    /// TLB misses on the reference workload (page walks taken).
    pub tlb_misses: u64,
    /// Frames unshared by a write after a checkpoint on the
    /// snapshot/restore reference workload.
    pub cow_faults: u64,
    /// Frames still shared between the live memory and its snapshot at
    /// the end of the snapshot/restore reference workload.
    pub cow_frames_shared: u64,
    /// Frames rewound by `restore` on the snapshot/restore reference
    /// workload (the O(dirty) restore cost).
    pub restore_frames_copied: u64,
    /// Bounded probe retries the trial runner performed while
    /// collecting the snapshot (trials re-run on a fresh fork after a
    /// recoverable failure). Zero in a healthy run: a nonzero value
    /// means some scenario silently leaned on the retry path.
    pub trial_retries: u64,
    /// Trace-engine superblock replays fully completed on the trace
    /// reference workload (the engine is forced on for this workload
    /// regardless of `PHANTOM_TRACE_CACHE`, so the counter is identical
    /// in trace-on and trace-off runs).
    pub trace_hits: u64,
    /// Trace-engine replays abandoned before the block end on the trace
    /// reference workload.
    pub trace_bailouts: u64,
    /// Trace blocks invalidated for staleness on the trace reference
    /// workload.
    pub trace_invalidations: u64,
    /// Boots served from an existing template by the boot-cache
    /// reference workload (an isolated cache, so the counter is
    /// identical whatever `PHANTOM_BOOT_CACHE` says about the global
    /// one).
    pub boot_cache_hits: u64,
    /// Dirty frames the journaled rewind visited on the
    /// snapshot/restore reference workload (the journal is forced on
    /// for this workload regardless of `PHANTOM_REWIND_JOURNAL`).
    pub rewind_journal_frames: u64,
    /// Retired frame buffers the pool recycled into copy-on-write
    /// copies on the snapshot/restore reference workload (pool forced
    /// on regardless of `PHANTOM_FRAME_POOL`).
    pub frame_pool_reuses: u64,
    /// Probes re-armed over a standing arena mapping by the probe-arena
    /// reference workload.
    pub probe_arena_rearms: u64,
}

impl PerfRecord {
    /// Decode-cache hit fraction of the reference workload, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.decode_cache_hits + self.decode_cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.decode_cache_hits as f64 / total as f64
    }

    /// TLB hit fraction of the reference workload, in `[0, 1]`.
    pub fn tlb_hit_rate(&self) -> f64 {
        let total = self.tlb_hits + self.tlb_misses;
        if total == 0 {
            return 0.0;
        }
        self.tlb_hits as f64 / total as f64
    }

    /// Encode as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("decode_cache_hits", JsonValue::Uint(self.decode_cache_hits))
            .set(
                "decode_cache_misses",
                JsonValue::Uint(self.decode_cache_misses),
            )
            .set("decodes_avoided", JsonValue::Uint(self.decodes_avoided))
            .set("tlb_hits", JsonValue::Uint(self.tlb_hits))
            .set("tlb_misses", JsonValue::Uint(self.tlb_misses))
            .set("cow_faults", JsonValue::Uint(self.cow_faults))
            .set("cow_frames_shared", JsonValue::Uint(self.cow_frames_shared))
            .set(
                "restore_frames_copied",
                JsonValue::Uint(self.restore_frames_copied),
            )
            .set("trial_retries", JsonValue::Uint(self.trial_retries))
            .set("trace_hits", JsonValue::Uint(self.trace_hits))
            .set("trace_bailouts", JsonValue::Uint(self.trace_bailouts))
            .set(
                "trace_invalidations",
                JsonValue::Uint(self.trace_invalidations),
            )
            .set("boot_cache_hits", JsonValue::Uint(self.boot_cache_hits))
            .set(
                "rewind_journal_frames",
                JsonValue::Uint(self.rewind_journal_frames),
            )
            .set("frame_pool_reuses", JsonValue::Uint(self.frame_pool_reuses))
            .set(
                "probe_arena_rearms",
                JsonValue::Uint(self.probe_arena_rearms),
            );
        o
    }

    /// Decode from a JSON object. Counters introduced after a baseline
    /// was recorded parse leniently (absent ⇒ 0) so old baselines keep
    /// loading.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on a shape mismatch.
    pub fn from_json(v: &JsonValue) -> Result<PerfRecord, SchemaError> {
        let lenient = |key: &str| v.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
        Ok(PerfRecord {
            decode_cache_hits: u64_field(v, "decode_cache_hits")?,
            decode_cache_misses: u64_field(v, "decode_cache_misses")?,
            decodes_avoided: u64_field(v, "decodes_avoided")?,
            tlb_hits: lenient("tlb_hits"),
            tlb_misses: lenient("tlb_misses"),
            cow_faults: lenient("cow_faults"),
            cow_frames_shared: lenient("cow_frames_shared"),
            restore_frames_copied: lenient("restore_frames_copied"),
            trial_retries: lenient("trial_retries"),
            trace_hits: lenient("trace_hits"),
            trace_bailouts: lenient("trace_bailouts"),
            trace_invalidations: lenient("trace_invalidations"),
            boot_cache_hits: lenient("boot_cache_hits"),
            rewind_journal_frames: lenient("rewind_journal_frames"),
            frame_pool_reuses: lenient("frame_pool_reuses"),
            probe_arena_rearms: lenient("probe_arena_rearms"),
        })
    }
}

/// Host-volatile metadata. **Not** part of the canonical snapshot:
/// only emitted on request, and always ignored by [`diff`], because
/// wall-clock and thread count vary run to run.
#[derive(Debug, Clone, PartialEq)]
pub struct HostMeta {
    /// Worker threads the trial runner used.
    pub threads: u64,
    /// Host wall-clock per experiment, `(name, seconds)`.
    pub wall_seconds: Vec<(String, f64)>,
    /// Wall-clock A/B of the decode cache on the reference workload:
    /// `(enabled seconds, disabled seconds)`.
    pub decode_cache_wall: Option<(f64, f64)>,
    /// Wall-clock A/B of checkpoint/rewind on the reference workload:
    /// `(copy-on-write seconds, deep-copy seconds)` for the same
    /// snapshot + dirty + restore loop.
    pub snapshot_wall: Option<(f64, f64)>,
}

impl HostMeta {
    /// Encode as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("threads", JsonValue::Uint(self.threads)).set(
            "wall_seconds",
            JsonValue::Array(
                self.wall_seconds
                    .iter()
                    .map(|(name, secs)| {
                        let mut w = JsonValue::object();
                        w.set("experiment", JsonValue::Str(name.clone()))
                            .set("seconds", JsonValue::Float(*secs));
                        w
                    })
                    .collect(),
            ),
        );
        if let Some((on, off)) = self.decode_cache_wall {
            let mut w = JsonValue::object();
            w.set("enabled_seconds", JsonValue::Float(on))
                .set("disabled_seconds", JsonValue::Float(off));
            o.set("decode_cache_wall", w);
        }
        if let Some((cow, deep)) = self.snapshot_wall {
            let mut w = JsonValue::object();
            w.set("cow_seconds", JsonValue::Float(cow))
                .set("deep_seconds", JsonValue::Float(deep));
            o.set("snapshot_wall", w);
        }
        o
    }

    /// Decode from a JSON object.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on a shape mismatch.
    pub fn from_json(v: &JsonValue) -> Result<HostMeta, SchemaError> {
        Ok(HostMeta {
            threads: u64_field(v, "threads")?,
            wall_seconds: vec_from(v, "wall_seconds", |w| {
                Ok((str_field(w, "experiment")?, f64_field(w, "seconds")?))
            })?,
            decode_cache_wall: match v.get("decode_cache_wall") {
                Some(w) if !w.is_null() => Some((
                    f64_field(w, "enabled_seconds")?,
                    f64_field(w, "disabled_seconds")?,
                )),
                _ => None,
            },
            snapshot_wall: match v.get("snapshot_wall") {
                Some(w) if !w.is_null() => {
                    Some((f64_field(w, "cow_seconds")?, f64_field(w, "deep_seconds")?))
                }
                _ => None,
            },
        })
    }
}

/// The complete machine-readable result of a `repro bench` run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// Canonical run metadata.
    pub meta: RunMeta,
    /// Table 1 cells.
    pub table1: Vec<Table1Record>,
    /// Figure 6 sweeps.
    pub figure6: Vec<Figure6Record>,
    /// Figure 7 recovery.
    pub figure7: Figure7Record,
    /// Table 2 covert-channel rows.
    pub table2: Vec<CovertRecord>,
    /// Table 3 (kernel image KASLR), one record per uarch.
    pub table3: Vec<SlotTableRecord>,
    /// Table 4 (physmap KASLR), one record per uarch.
    pub table4: Vec<SlotTableRecord>,
    /// Table 5 (physical address), one record per (uarch, memory).
    pub table5: Vec<PhysAddrTableRecord>,
    /// §7.4 MDS leak, one record per uarch.
    pub mds: Vec<MdsTableRecord>,
    /// O4 outcomes.
    pub o4: Vec<O4Record>,
    /// O5 outcome.
    pub o5: O5Record,
    /// §8.2 software mitigation checks.
    pub software: Vec<SoftwareRecord>,
    /// §6.3 overhead suite.
    pub overhead: OverheadRecord,
    /// §9.1 gadget census.
    pub gadgets: GadgetRecord,
    /// Deterministic hot-path counters.
    pub perf: PerfRecord,
    /// Noise sweep of the adaptive fetch channel. Optional so
    /// baselines recorded before the sweep existed keep loading.
    pub noise_sweep: Option<Vec<NoiseSweepRecord>>,
    /// PHT-channel (BranchSpectre-style) rows. Optional so baselines
    /// recorded before the channel existed keep loading.
    pub pht_channel: Option<Vec<PhtChannelRecord>>,
    /// Host-volatile metadata (ignored by [`diff`]).
    pub host: Option<HostMeta>,
}

impl BenchSnapshot {
    /// Encode the snapshot as a JSON value.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("schema", JsonValue::Str(SCHEMA.to_string()))
            .set("meta", self.meta.to_json())
            .set(
                "table1",
                JsonValue::Array(self.table1.iter().map(Table1Record::to_json).collect()),
            )
            .set(
                "figure6",
                JsonValue::Array(self.figure6.iter().map(Figure6Record::to_json).collect()),
            )
            .set("figure7", self.figure7.to_json())
            .set(
                "table2",
                JsonValue::Array(self.table2.iter().map(CovertRecord::to_json).collect()),
            )
            .set(
                "table3",
                JsonValue::Array(self.table3.iter().map(SlotTableRecord::to_json).collect()),
            )
            .set(
                "table4",
                JsonValue::Array(self.table4.iter().map(SlotTableRecord::to_json).collect()),
            )
            .set(
                "table5",
                JsonValue::Array(
                    self.table5
                        .iter()
                        .map(PhysAddrTableRecord::to_json)
                        .collect(),
                ),
            )
            .set(
                "mds",
                JsonValue::Array(self.mds.iter().map(MdsTableRecord::to_json).collect()),
            )
            .set(
                "o4",
                JsonValue::Array(self.o4.iter().map(O4Record::to_json).collect()),
            )
            .set("o5", self.o5.to_json())
            .set(
                "software",
                JsonValue::Array(self.software.iter().map(SoftwareRecord::to_json).collect()),
            )
            .set("overhead", self.overhead.to_json())
            .set("gadgets", self.gadgets.to_json())
            .set("perf", self.perf.to_json());
        if let Some(sweep) = &self.noise_sweep {
            o.set(
                "noise_sweep",
                JsonValue::Array(sweep.iter().map(NoiseSweepRecord::to_json).collect()),
            );
        }
        if let Some(rows) = &self.pht_channel {
            o.set(
                "pht_channel",
                JsonValue::Array(rows.iter().map(PhtChannelRecord::to_json).collect()),
            );
        }
        if let Some(host) = &self.host {
            o.set("host", host.to_json());
        }
        o
    }

    /// Serialize to the canonical pretty-printed JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// Decode a snapshot from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on an unknown schema or shape
    /// mismatch.
    pub fn from_json(v: &JsonValue) -> Result<BenchSnapshot, SchemaError> {
        let schema = str_field(v, "schema")?;
        if schema != SCHEMA {
            return Err(SchemaError(format!(
                "unknown schema {schema:?} (expected {SCHEMA:?})"
            )));
        }
        Ok(BenchSnapshot {
            meta: RunMeta::from_json(field(v, "meta")?)?,
            table1: vec_from(v, "table1", Table1Record::from_json)?,
            figure6: vec_from(v, "figure6", Figure6Record::from_json)?,
            figure7: Figure7Record::from_json(field(v, "figure7")?)?,
            table2: vec_from(v, "table2", CovertRecord::from_json)?,
            table3: vec_from(v, "table3", SlotTableRecord::from_json)?,
            table4: vec_from(v, "table4", SlotTableRecord::from_json)?,
            table5: vec_from(v, "table5", PhysAddrTableRecord::from_json)?,
            mds: vec_from(v, "mds", MdsTableRecord::from_json)?,
            o4: vec_from(v, "o4", O4Record::from_json)?,
            o5: O5Record::from_json(field(v, "o5")?)?,
            software: vec_from(v, "software", SoftwareRecord::from_json)?,
            overhead: OverheadRecord::from_json(field(v, "overhead")?)?,
            gadgets: GadgetRecord::from_json(field(v, "gadgets")?)?,
            perf: PerfRecord::from_json(field(v, "perf")?)?,
            noise_sweep: match v.get("noise_sweep") {
                Some(s) if !s.is_null() => Some(vec_from(v, "noise_sweep", |p| {
                    NoiseSweepRecord::from_json(p)
                })?),
                _ => None,
            },
            pht_channel: match v.get("pht_channel") {
                Some(s) if !s.is_null() => Some(vec_from(v, "pht_channel", |p| {
                    PhtChannelRecord::from_json(p)
                })?),
                _ => None,
            },
            host: match v.get("host") {
                Some(h) if !h.is_null() => Some(HostMeta::from_json(h)?),
                _ => None,
            },
        })
    }

    /// Parse a snapshot from its JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on malformed JSON or shape mismatch.
    pub fn from_json_str(text: &str) -> Result<BenchSnapshot, SchemaError> {
        BenchSnapshot::from_json(&parse(text)?)
    }
}

/// One detected regression, human-readable.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Which metric regressed (e.g. `"table3[Zen 3].accuracy"`).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: baseline {} -> current {}",
            self.metric, self.baseline, self.current
        )
    }
}

/// Tolerances for [`diff`]. `accuracy_pp` is percentage *points* a
/// fraction-correct metric may drop; `cycles_pct` is the percent
/// simulated cycles may grow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Allowed accuracy drop, percentage points (e.g. `1.0` = one
    /// point, so 0.99 → 0.98 passes and 0.99 → 0.97 fails).
    pub accuracy_pp: f64,
    /// Allowed simulated-cycle growth, percent.
    pub cycles_pct: f64,
}

impl Default for Tolerance {
    fn default() -> Tolerance {
        Tolerance {
            accuracy_pp: 1.0,
            cycles_pct: 5.0,
        }
    }
}

impl Tolerance {
    /// A uniform tolerance: `pct` percentage points for accuracies and
    /// `pct` percent for cycles.
    pub fn uniform(pct: f64) -> Tolerance {
        Tolerance {
            accuracy_pp: pct,
            cycles_pct: pct,
        }
    }

    fn accuracy_regressed(&self, base: f64, cur: f64) -> bool {
        (base - cur) * 100.0 > self.accuracy_pp
    }

    fn cycles_regressed(&self, base: u64, cur: u64) -> bool {
        cur as f64 > base as f64 * (1.0 + self.cycles_pct / 100.0)
    }
}

fn check_accuracy(out: &mut Vec<Regression>, tol: &Tolerance, metric: String, base: f64, cur: f64) {
    if tol.accuracy_regressed(base, cur) {
        out.push(Regression {
            metric,
            baseline: base,
            current: cur,
        });
    }
}

fn check_cycles(out: &mut Vec<Regression>, tol: &Tolerance, metric: String, base: u64, cur: u64) {
    if tol.cycles_regressed(base, cur) {
        out.push(Regression {
            metric,
            baseline: base as f64,
            current: cur as f64,
        });
    }
}

/// Compare `current` against `baseline` and return every regression
/// beyond `tol`.
///
/// Checked: Table 2 per-row accuracy, Table 3/4/5 per-uarch accuracy
/// and total simulated cycles, MDS per-uarch mean accuracy and cycles,
/// the decode-cache hit rate, and the quiet-end (knob = 0) noise-sweep
/// points' accuracy — the noisy points degrade by design, so only the
/// quiet baseline is gated. Improvements never flag; the `host`
/// section is ignored entirely. A baseline record with no counterpart
/// in `current` (missing uarch, fewer experiments) flags as a
/// coverage regression.
pub fn diff(baseline: &BenchSnapshot, current: &BenchSnapshot, tol: &Tolerance) -> Vec<Regression> {
    let mut out = Vec::new();

    for base_row in &baseline.table2 {
        let key = (&base_row.uarch, &base_row.kind);
        match current.table2.iter().find(|r| (&r.uarch, &r.kind) == key) {
            Some(cur_row) => check_accuracy(
                &mut out,
                tol,
                format!("table2[{} | {}].accuracy", base_row.uarch, base_row.kind),
                base_row.accuracy,
                cur_row.accuracy,
            ),
            None => out.push(Regression {
                metric: format!("table2[{} | {}] missing", base_row.uarch, base_row.kind),
                baseline: 1.0,
                current: 0.0,
            }),
        }
    }

    for (name, base_tables, cur_tables) in [
        ("table3", &baseline.table3, &current.table3),
        ("table4", &baseline.table4, &current.table4),
    ] {
        for base_t in base_tables.iter() {
            match cur_tables.iter().find(|t| t.uarch == base_t.uarch) {
                Some(cur_t) => {
                    check_accuracy(
                        &mut out,
                        tol,
                        format!("{name}[{}].accuracy", base_t.uarch),
                        base_t.accuracy(),
                        cur_t.accuracy(),
                    );
                    check_cycles(
                        &mut out,
                        tol,
                        format!("{name}[{}].cycles", base_t.uarch),
                        base_t.total_cycles(),
                        cur_t.total_cycles(),
                    );
                }
                None => out.push(Regression {
                    metric: format!("{name}[{}] missing", base_t.uarch),
                    baseline: 1.0,
                    current: 0.0,
                }),
            }
        }
    }

    for base_t in &baseline.table5 {
        match current
            .table5
            .iter()
            .find(|t| t.uarch == base_t.uarch && t.memory_gib == base_t.memory_gib)
        {
            Some(cur_t) => {
                check_accuracy(
                    &mut out,
                    tol,
                    format!(
                        "table5[{} | {} GiB].accuracy",
                        base_t.uarch, base_t.memory_gib
                    ),
                    base_t.accuracy(),
                    cur_t.accuracy(),
                );
                check_cycles(
                    &mut out,
                    tol,
                    format!(
                        "table5[{} | {} GiB].cycles",
                        base_t.uarch, base_t.memory_gib
                    ),
                    base_t.total_cycles(),
                    cur_t.total_cycles(),
                );
            }
            None => out.push(Regression {
                metric: format!(
                    "table5[{} | {} GiB] missing",
                    base_t.uarch, base_t.memory_gib
                ),
                baseline: 1.0,
                current: 0.0,
            }),
        }
    }

    for base_t in &baseline.mds {
        match current.mds.iter().find(|t| t.uarch == base_t.uarch) {
            Some(cur_t) => {
                check_accuracy(
                    &mut out,
                    tol,
                    format!("mds[{}].accuracy", base_t.uarch),
                    base_t.mean_accuracy(),
                    cur_t.mean_accuracy(),
                );
                check_cycles(
                    &mut out,
                    tol,
                    format!("mds[{}].cycles", base_t.uarch),
                    base_t.total_cycles(),
                    cur_t.total_cycles(),
                );
            }
            None => out.push(Regression {
                metric: format!("mds[{}] missing", base_t.uarch),
                baseline: 1.0,
                current: 0.0,
            }),
        }
    }

    check_accuracy(
        &mut out,
        tol,
        "perf.decode_cache.hit_rate".to_string(),
        baseline.perf.hit_rate(),
        current.perf.hit_rate(),
    );

    // Only gate the TLB hit rate when the baseline has one — older
    // baselines predate the counter and parse it as 0/0.
    if baseline.perf.tlb_hits + baseline.perf.tlb_misses > 0 {
        check_accuracy(
            &mut out,
            tol,
            "perf.tlb.hit_rate".to_string(),
            baseline.perf.tlb_hit_rate(),
            current.perf.tlb_hit_rate(),
        );
    }

    // Gate the noise sweep's quiet-end points when the baseline has the
    // section. The noisy points degrade by design; the quiet baseline
    // of each axis must not.
    if let Some(base_sweep) = &baseline.noise_sweep {
        let cur_sweep = current.noise_sweep.as_deref().unwrap_or(&[]);
        for base_p in base_sweep.iter().filter(|p| p.is_quiet()) {
            match cur_sweep
                .iter()
                .find(|p| p.axis == base_p.axis && p.value == base_p.value)
            {
                Some(cur_p) => check_accuracy(
                    &mut out,
                    tol,
                    format!("noise_sweep[{} = 0].accuracy", base_p.axis),
                    base_p.accuracy,
                    cur_p.accuracy,
                ),
                None => out.push(Regression {
                    metric: format!("noise_sweep[{} = 0] missing", base_p.axis),
                    baseline: 1.0,
                    current: 0.0,
                }),
            }
        }
    }

    // Gate PHT-channel rows the same way as Table 2, but only when the
    // baseline already has the section (older baselines predate it).
    if let Some(base_rows) = &baseline.pht_channel {
        let cur_rows = current.pht_channel.as_deref().unwrap_or(&[]);
        for base_row in base_rows {
            match cur_rows.iter().find(|r| r.uarch == base_row.uarch) {
                Some(cur_row) => check_accuracy(
                    &mut out,
                    tol,
                    format!("pht_channel[{}].accuracy", base_row.uarch),
                    base_row.accuracy,
                    cur_row.accuracy,
                ),
                None => out.push(Regression {
                    metric: format!("pht_channel[{}] missing", base_row.uarch),
                    baseline: 1.0,
                    current: 0.0,
                }),
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> BenchSnapshot {
        BenchSnapshot {
            meta: RunMeta {
                profile: "quick".into(),
                seed: 0,
            },
            table1: vec![Table1Record {
                train: "jmp*".into(),
                victim: "non branch".into(),
                stages: vec![("Zen".into(), "EX".into()), ("Zen 4".into(), "ID".into())],
            }],
            figure6: vec![Figure6Record {
                uarch: "Zen 2".into(),
                step: 0x100,
                points: vec![Figure6Point {
                    offset: 0xac0,
                    hits: 0,
                    misses: 8,
                }],
            }],
            figure7: Figure7Record {
                samples_per_address: 24,
                masks: vec![(1 << 47) | (1 << 35), 1 << 23],
                paper_patterns_hold: true,
            },
            table2: vec![CovertRecord {
                uarch: "Zen 2".into(),
                model: "R5 3600".into(),
                kind: "fetch (P1)".into(),
                bits: 256,
                accuracy: 0.9921875,
                probes: 520,
                abstentions: 1,
                mean_confidence: 0.91,
                seconds: 0.0125,
                bits_per_sec: 20480.0,
            }],
            table3: vec![SlotTableRecord {
                uarch: "Zen 3".into(),
                runs: vec![SlotRunRecord {
                    guessed_slot: 5,
                    actual_slot: 5,
                    correct: true,
                    best_score: -3,
                    confidence: 0.4,
                    cycles: 123_456,
                    seconds: 0.5,
                }],
            }],
            table4: vec![SlotTableRecord {
                uarch: "Zen".into(),
                runs: vec![],
            }],
            table5: vec![PhysAddrTableRecord {
                uarch: "Zen".into(),
                memory_gib: 1,
                runs: vec![PhysAddrRunRecord {
                    guessed_pa: None,
                    actual_pa: 0x4000_0000,
                    correct: false,
                    guesses_tested: 512,
                    confidence: 0.0,
                    cycles: 999,
                    seconds: 0.001,
                }],
            }],
            mds: vec![MdsTableRecord {
                uarch: "Zen 2".into(),
                runs: vec![MdsRunRecord {
                    leaked_hex: hex_encode(b"secret"),
                    accuracy: 1.0,
                    signal: true,
                    mean_confidence: 0.85,
                    cycles: 777,
                    seconds: 0.0003,
                    bytes_per_sec: 20000.0,
                }],
            }],
            o4: vec![O4Record {
                uarch: "Zen 2".into(),
                baseline: StageFlags {
                    fetched: true,
                    decoded: true,
                    executed: true,
                },
                suppressed: StageFlags {
                    fetched: true,
                    decoded: true,
                    executed: false,
                },
            }],
            o5: O5Record {
                transient_fetch_observed: true,
            },
            software: vec![SoftwareRecord {
                name: "lfence".into(),
                uarch: "Zen 2".into(),
                unprotected: true,
                protected: false,
            }],
            overhead: OverheadRecord {
                per_workload: vec![("arith".into(), 1000, 1010)],
                geomean_overhead_pct: 0.69,
            },
            gadgets: GadgetRecord {
                spectre_gadgets: 183,
                mds_gadgets: 539,
                total_with_phantom: 722,
            },
            perf: PerfRecord {
                decode_cache_hits: 997,
                decode_cache_misses: 3,
                decodes_avoided: 997,
                tlb_hits: 4000,
                tlb_misses: 12,
                cow_faults: 9,
                cow_frames_shared: 700,
                restore_frames_copied: 27,
                trial_retries: 0,
                trace_hits: 4990,
                trace_bailouts: 2,
                trace_invalidations: 1,
                boot_cache_hits: 2,
                rewind_journal_frames: 32,
                frame_pool_reuses: 24,
                probe_arena_rearms: 6,
            },
            noise_sweep: Some(vec![
                NoiseSweepRecord {
                    axis: "spurious_evict".into(),
                    value: 0.0,
                    accuracy: 1.0,
                    probes: 128,
                    abstentions: 0,
                    mean_confidence: 0.97,
                },
                NoiseSweepRecord {
                    axis: "spurious_evict".into(),
                    value: 0.05,
                    accuracy: 0.9,
                    probes: 210,
                    abstentions: 2,
                    mean_confidence: 0.6,
                },
            ]),
            pht_channel: Some(vec![PhtChannelRecord {
                uarch: "Zen 2".into(),
                model: "EPYC 7252".into(),
                flip_mask: 1 << 13,
                bits: 128,
                accuracy: 0.984375,
                probes: 260,
                abstentions: 0,
                mean_confidence: 0.93,
                seconds: 0.004,
                bits_per_sec: 32000.0,
            }]),
            host: None,
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = sample_snapshot();
        let text = snap.to_json_string();
        let back = BenchSnapshot::from_json_str(&text).expect("parses");
        assert_eq!(back, snap);
        // Serialization is a pure function of the value.
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn every_record_type_round_trips() {
        let snap = sample_snapshot();
        macro_rules! rt {
            ($rec:expr, $ty:ident) => {{
                let v = $rec.to_json();
                assert_eq!($ty::from_json(&v).expect("round trip"), $rec);
            }};
        }
        rt!(snap.meta.clone(), RunMeta);
        rt!(snap.table1[0].clone(), Table1Record);
        rt!(snap.figure6[0].clone(), Figure6Record);
        rt!(snap.figure7.clone(), Figure7Record);
        rt!(snap.table2[0].clone(), CovertRecord);
        rt!(snap.table3[0].clone(), SlotTableRecord);
        rt!(snap.table3[0].runs[0].clone(), SlotRunRecord);
        rt!(snap.table5[0].clone(), PhysAddrTableRecord);
        rt!(snap.table5[0].runs[0].clone(), PhysAddrRunRecord);
        rt!(snap.mds[0].clone(), MdsTableRecord);
        rt!(snap.mds[0].runs[0].clone(), MdsRunRecord);
        rt!(snap.o4[0].clone(), O4Record);
        rt!(snap.o5.clone(), O5Record);
        rt!(snap.software[0].clone(), SoftwareRecord);
        rt!(snap.overhead.clone(), OverheadRecord);
        rt!(snap.gadgets.clone(), GadgetRecord);
        rt!(snap.perf.clone(), PerfRecord);
        rt!(
            snap.noise_sweep.as_ref().expect("sample has sweep")[0].clone(),
            NoiseSweepRecord
        );
        rt!(
            snap.pht_channel.as_ref().expect("sample has pht rows")[0].clone(),
            PhtChannelRecord
        );
    }

    #[test]
    fn host_section_round_trips_when_present() {
        let mut snap = sample_snapshot();
        snap.host = Some(HostMeta {
            threads: 8,
            wall_seconds: vec![("table1".into(), 1.25)],
            decode_cache_wall: Some((0.8, 1.3)),
            snapshot_wall: Some((0.02, 0.41)),
        });
        let back = BenchSnapshot::from_json_str(&snap.to_json_string()).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn hex_round_trips() {
        for bytes in [&b""[..], &b"\x00\xff\x10"[..], &b"secret"[..]] {
            assert_eq!(hex_decode(&hex_encode(bytes)).unwrap(), bytes);
        }
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let text = sample_snapshot()
            .to_json_string()
            .replace("phantom-bench/v1", "phantom-bench/v9");
        assert!(BenchSnapshot::from_json_str(&text).is_err());
    }

    #[test]
    fn identical_snapshots_show_no_regressions() {
        let snap = sample_snapshot();
        assert!(diff(&snap, &snap, &Tolerance::default()).is_empty());
    }

    #[test]
    fn accuracy_drop_beyond_tolerance_flags() {
        let base = sample_snapshot();
        let mut cur = base.clone();
        cur.table2[0].accuracy = base.table2[0].accuracy - 0.05; // 5 pp
        let regs = diff(&base, &cur, &Tolerance::default());
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].metric.contains("table2"), "{}", regs[0]);
        // Within tolerance: no flag.
        cur.table2[0].accuracy = base.table2[0].accuracy - 0.005; // 0.5 pp
        assert!(diff(&base, &cur, &Tolerance::default()).is_empty());
    }

    #[test]
    fn cycle_growth_beyond_tolerance_flags() {
        let base = sample_snapshot();
        let mut cur = base.clone();
        cur.table3[0].runs[0].cycles = base.table3[0].runs[0].cycles * 2;
        let regs = diff(&base, &cur, &Tolerance::default());
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].metric.contains("table3"));
        assert!(regs[0].metric.contains("cycles"));
    }

    #[test]
    fn improvements_do_not_flag() {
        let base = sample_snapshot();
        let mut cur = base.clone();
        cur.table3[0].runs[0].cycles /= 2;
        cur.table2[0].accuracy = 1.0;
        assert!(diff(&base, &cur, &Tolerance::default()).is_empty());
    }

    #[test]
    fn missing_experiment_flags_as_coverage_regression() {
        let base = sample_snapshot();
        let mut cur = base.clone();
        cur.mds.clear();
        let regs = diff(&base, &cur, &Tolerance::default());
        assert!(
            regs.iter()
                .any(|r| r.metric.contains("mds") && r.metric.contains("missing")),
            "{regs:?}"
        );
    }

    #[test]
    fn decode_cache_hit_rate_regression_flags() {
        let base = sample_snapshot();
        let mut cur = base.clone();
        cur.perf.decode_cache_hits = 500;
        cur.perf.decode_cache_misses = 500;
        let regs = diff(&base, &cur, &Tolerance::default());
        assert!(
            regs.iter().any(|r| r.metric.contains("decode_cache")),
            "{regs:?}"
        );
    }

    #[test]
    fn tlb_hit_rate_regression_flags() {
        let base = sample_snapshot();
        let mut cur = base.clone();
        cur.perf.tlb_hits = 2000;
        cur.perf.tlb_misses = 2012;
        let regs = diff(&base, &cur, &Tolerance::default());
        assert!(regs.iter().any(|r| r.metric.contains("tlb")), "{regs:?}");
    }

    #[test]
    fn quiet_end_noise_sweep_regression_flags() {
        let base = sample_snapshot();
        let mut cur = base.clone();
        // The quiet (value == 0.0) point is the determinism anchor: an
        // accuracy drop there means the measurement layer broke, not
        // that the noise got worse.
        cur.noise_sweep.as_mut().unwrap()[0].accuracy = 0.9;
        let regs = diff(&base, &cur, &Tolerance::default());
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].metric.contains("noise_sweep"), "{}", regs[0]);
        assert!(regs[0].metric.contains("= 0"), "{}", regs[0]);
    }

    #[test]
    fn noisy_sweep_points_are_not_gated() {
        let base = sample_snapshot();
        let mut cur = base.clone();
        // Nonzero-noise points may drift with decoder tuning; only the
        // quiet end is load-bearing.
        cur.noise_sweep.as_mut().unwrap()[1].accuracy = 0.5;
        assert!(diff(&base, &cur, &Tolerance::default()).is_empty());
    }

    #[test]
    fn missing_quiet_sweep_point_flags_as_coverage_regression() {
        let base = sample_snapshot();
        let mut cur = base.clone();
        cur.noise_sweep = None;
        let regs = diff(&base, &cur, &Tolerance::default());
        assert_eq!(regs.len(), 1, "only the quiet point is gated: {regs:?}");
        assert!(regs[0].metric.contains("missing"), "{}", regs[0]);
    }

    #[test]
    fn baseline_without_noise_sweep_does_not_gate_it() {
        let mut base = sample_snapshot();
        base.noise_sweep = None;
        let text = base.to_json_string();
        assert!(!text.contains("noise_sweep"), "section omitted when None");
        let back = BenchSnapshot::from_json_str(&text).expect("parses");
        assert_eq!(back.noise_sweep, None);
        let cur = sample_snapshot();
        assert!(diff(&back, &cur, &Tolerance::default()).is_empty());
    }

    #[test]
    fn pht_channel_accuracy_regression_flags() {
        let base = sample_snapshot();
        let mut cur = base.clone();
        cur.pht_channel.as_mut().unwrap()[0].accuracy -= 0.05; // 5 pp
        let regs = diff(&base, &cur, &Tolerance::default());
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].metric.contains("pht_channel"), "{}", regs[0]);
        // A current run that dropped the section is a coverage loss.
        cur.pht_channel = None;
        let regs = diff(&base, &cur, &Tolerance::default());
        assert!(
            regs.iter()
                .any(|r| r.metric.contains("pht_channel") && r.metric.contains("missing")),
            "{regs:?}"
        );
    }

    #[test]
    fn baseline_without_pht_channel_does_not_gate_it() {
        let mut base = sample_snapshot();
        base.pht_channel = None;
        let text = base.to_json_string();
        assert!(!text.contains("pht_channel"), "section omitted when None");
        let back = BenchSnapshot::from_json_str(&text).expect("parses");
        assert_eq!(back.pht_channel, None);
        let cur = sample_snapshot();
        assert!(diff(&back, &cur, &Tolerance::default()).is_empty());
    }

    /// Drop keys from an object, emulating a record written before
    /// those fields existed.
    fn without(mut v: JsonValue, keys: &[&str]) -> JsonValue {
        if let JsonValue::Object(members) = &mut v {
            members.retain(|(k, _)| !keys.contains(&k.as_str()));
        }
        v
    }

    #[test]
    fn confidence_fields_added_after_a_baseline_parse_as_zero() {
        // Covert/slot/mds records written before the confidence-scored
        // decoder exist without the new keys; they must load with
        // zeroed metrics rather than fail.
        let snap = sample_snapshot();
        let old = without(
            snap.table2[0].to_json(),
            &["probes", "abstentions", "mean_confidence"],
        );
        let covert = CovertRecord::from_json(&old).expect("old-shape covert parses");
        assert_eq!(covert.probes, 0);
        assert_eq!(covert.abstentions, 0);
        assert_eq!(covert.mean_confidence, 0.0);

        let old = without(snap.table3[0].runs[0].to_json(), &["confidence"]);
        let slot = SlotRunRecord::from_json(&old).expect("old-shape slot parses");
        assert_eq!(slot.confidence, 0.0);

        let old = without(snap.mds[0].runs[0].to_json(), &["mean_confidence"]);
        let mds = MdsRunRecord::from_json(&old).expect("old-shape mds parses");
        assert_eq!(mds.mean_confidence, 0.0);
    }

    #[test]
    fn perf_counters_added_after_a_baseline_parse_as_zero() {
        // A baseline recorded before the TLB/CoW counters existed must
        // still load, with the absent counters defaulting to zero…
        let mut old = JsonValue::object();
        old.set("decode_cache_hits", JsonValue::Uint(997))
            .set("decode_cache_misses", JsonValue::Uint(3))
            .set("decodes_avoided", JsonValue::Uint(997));
        let perf = PerfRecord::from_json(&old).expect("old-shape perf parses");
        assert_eq!(perf.tlb_hits, 0);
        assert_eq!(perf.tlb_misses, 0);
        assert_eq!(perf.restore_frames_copied, 0);
        assert_eq!(perf.trial_retries, 0);
        assert_eq!(perf.trace_hits, 0);
        assert_eq!(perf.trace_bailouts, 0);
        assert_eq!(perf.trace_invalidations, 0);
        assert_eq!(perf.boot_cache_hits, 0);
        assert_eq!(perf.rewind_journal_frames, 0);
        assert_eq!(perf.frame_pool_reuses, 0);
        assert_eq!(perf.probe_arena_rearms, 0);
        // …and such a baseline must not gate the TLB hit rate at all.
        let mut base = sample_snapshot();
        base.perf = perf;
        let mut cur = sample_snapshot();
        cur.perf.tlb_hits = 0;
        cur.perf.tlb_misses = 4012;
        assert!(
            diff(&base, &cur, &Tolerance::default())
                .iter()
                .all(|r| !r.metric.contains("tlb")),
            "old baseline must not flag tlb"
        );
    }
}
