//! A small, deterministic JSON value: writer and parser.
//!
//! The workspace vendors no serialization framework, so the machine
//! readable results layer ([`report::json`](crate::report::json)) is
//! built on this hand-rolled value type. Two properties matter more
//! than generality:
//!
//! * **Determinism** — object members keep insertion order, floats
//!   print with Rust's shortest-roundtrip `Display`, and the writer
//!   has exactly one output for a given value. Equal values always
//!   serialize to identical bytes, which is what lets the snapshot
//!   tests demand byte-identical output across thread counts.
//! * **Round-tripping** — `parse(write(v))` reproduces `v` for every
//!   value the report layer emits (integers stay integers, floats
//!   reparse to the same bits).

use std::fmt;

/// A JSON value. Objects preserve insertion order; numbers keep their
/// integer-ness so `u64` counters survive a round trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the common case: counters, cycles).
    Uint(u64),
    /// A negative integer.
    Int(i64),
    /// A float. Non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object.
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// Append a member to an object (panics on non-objects: builder
    /// misuse is a bug, not data).
    pub fn set(&mut self, key: &str, value: JsonValue) -> &mut Self {
        match self {
            JsonValue::Object(members) => members.push((key.to_string(), value)),
            other => panic!("set {key:?} on non-object {other:?}"),
        }
        self
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` (accepts `Uint` and integral `Float`).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::Uint(n) => Some(n),
            JsonValue::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            JsonValue::Int(n) => Some(n),
            JsonValue::Uint(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::Uint(n) => Some(n as f64),
            JsonValue::Int(n) => Some(n as f64),
            JsonValue::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            JsonValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Serialize with 2-space indentation and a trailing newline. The
    /// output is a pure function of the value.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialize onto one line with no whitespace — the JSONL form
    /// streamed by the campaign service, where one record must be one
    /// line. Same determinism guarantee as
    /// [`to_pretty_string`](JsonValue::to_pretty_string): equal values
    /// produce identical bytes.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Uint(n) => out.push_str(&n.to_string()),
            JsonValue::Int(n) => out.push_str(&n.to_string()),
            JsonValue::Float(f) => {
                if f.is_finite() {
                    out.push_str(&f.to_string());
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Uint(n) => out.push_str(&n.to_string()),
            JsonValue::Int(n) => out.push_str(&n.to_string()),
            JsonValue::Float(f) => {
                if f.is_finite() {
                    // Rust's Display is shortest-roundtrip; integral
                    // floats print without a dot ("1"), which JSON
                    // reads back as an integer — as_f64 bridges it.
                    out.push_str(&f.to_string());
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document. Accepts exactly the subset the writer emits
/// (all of standard JSON minus non-finite numbers).
///
/// # Errors
///
/// Returns a [`ParseError`] with byte offset on malformed input or
/// trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            // The writer only emits \u for control
                            // chars; surrogate pairs are out of scope.
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("non-scalar \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if float {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| self.error("bad number"))
        } else if let Some(rest) = text.strip_prefix('-') {
            rest.parse::<i64>()
                .map(|n| JsonValue::Int(-n))
                .map_err(|_| self.error("bad number"))
        } else {
            text.parse::<u64>()
                .map(JsonValue::Uint)
                .map_err(|_| self.error("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &JsonValue) -> JsonValue {
        parse(&v.to_pretty_string()).expect("round trip")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            JsonValue::Null,
            JsonValue::Bool(true),
            JsonValue::Bool(false),
            JsonValue::Uint(0),
            JsonValue::Uint(u64::MAX),
            JsonValue::Int(-42),
            JsonValue::Str("hello \"quoted\" \\ \n\t".into()),
            JsonValue::Str("µop-cache §7.4".into()),
        ] {
            assert_eq!(round_trip(&v), v, "{v:?}");
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.5, 0.9921875, 1234.5678, -0.001, 1e-9, 123456789.25] {
            let v = JsonValue::Float(f);
            match round_trip(&v) {
                JsonValue::Float(g) => assert_eq!(g.to_bits(), f.to_bits()),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn integral_floats_reparse_as_integers() {
        // 1.0 prints as "1"; as_f64 recovers the numeric value.
        let v = JsonValue::Float(1.0);
        assert_eq!(round_trip(&v).as_f64(), Some(1.0));
    }

    #[test]
    fn compact_form_is_one_line_and_reparses() {
        let mut obj = JsonValue::object();
        obj.set("schema", JsonValue::Str("phantom-bench/v1".into()))
            .set("accuracy", JsonValue::Float(0.9921875))
            .set("probes", JsonValue::Uint(512))
            .set(
                "tags",
                JsonValue::Array(vec![JsonValue::Uint(1), JsonValue::Null]),
            )
            .set("empty", JsonValue::Array(vec![]))
            .set("hole", JsonValue::Object(vec![]));
        let s = obj.to_compact_string();
        assert!(!s.contains('\n') && !s.contains(' '), "{s}");
        assert_eq!(parse(&s).expect("compact form parses"), obj);
        assert_eq!(
            s,
            "{\"schema\":\"phantom-bench/v1\",\"accuracy\":0.9921875,\
             \"probes\":512,\"tags\":[1,null],\"empty\":[],\"hole\":{}}"
        );
    }

    #[test]
    fn objects_keep_insertion_order() {
        let mut obj = JsonValue::object();
        obj.set("zebra", JsonValue::Uint(1))
            .set("apple", JsonValue::Uint(2));
        let s = obj.to_pretty_string();
        assert!(s.find("zebra").unwrap() < s.find("apple").unwrap());
        assert_eq!(round_trip(&obj), obj);
    }

    #[test]
    fn nested_structures_round_trip() {
        let mut inner = JsonValue::object();
        inner.set("hits", JsonValue::Uint(997));
        let v = JsonValue::Array(vec![
            inner,
            JsonValue::Array(vec![]),
            JsonValue::Object(vec![]),
            JsonValue::Null,
        ]);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn writer_is_deterministic() {
        let mut obj = JsonValue::object();
        obj.set("a", JsonValue::Float(0.125))
            .set("b", JsonValue::Array(vec![JsonValue::Uint(1)]));
        assert_eq!(obj.to_pretty_string(), obj.clone().to_pretty_string());
        assert!(obj.to_pretty_string().ends_with('\n'));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn accessors_match_variants() {
        assert_eq!(JsonValue::Uint(7).as_u64(), Some(7));
        assert_eq!(JsonValue::Uint(7).as_i64(), Some(7));
        assert_eq!(JsonValue::Int(-7).as_i64(), Some(-7));
        assert_eq!(JsonValue::Float(7.0).as_u64(), Some(7));
        assert_eq!(JsonValue::Float(7.5).as_u64(), None);
        assert_eq!(JsonValue::Str("x".into()).as_str(), Some("x"));
        assert_eq!(JsonValue::Bool(true).as_bool(), Some(true));
        assert!(JsonValue::Null.is_null());
        let mut obj = JsonValue::object();
        obj.set("k", JsonValue::Uint(1));
        assert_eq!(obj.get("k").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(obj.get("missing"), None);
    }
}
